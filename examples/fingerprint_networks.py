#!/usr/bin/env python3
"""Fingerprinting networks by their truss hierarchy.

The introduction of the paper proposes k-trusses for "visualization and
fingerprinting of large-scale networks": the profile of |T_k| against k
is a compact structural signature.  This example prints side-by-side
profiles of three structurally different stand-in datasets — the P2P
network collapses immediately (no community structure), the
collaboration network decays in steps (paper-team cliques), and the web
crawl holds a deep dense core.

Usage::

    python examples/fingerprint_networks.py [--scale 0.15]
"""

import argparse

from repro.core import truss_hierarchy
from repro.datasets import load_dataset

DATASETS = ("p2p", "hep", "web")


def bar(value: int, total: int, width: int = 40) -> str:
    filled = int(width * value / total) if total else 0
    return "#" * filled


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    args = parser.parse_args()

    for name in DATASETS:
        g = load_dataset(name, scale=args.scale)
        h = truss_hierarchy(g)
        print(f"\n=== {name}  (n={g.num_vertices:,} m={g.num_edges:,}, "
              f"kmax={h.kmax}, collapse at k={h.collapse_level()}) ===")
        total = h.levels[0].num_edges if h.levels else 0
        shown = 0
        for row in h.levels:
            # print the first levels and then every power-of-two-ish step
            if row.k > 8 and row.k not in (16, 32, 64, h.kmax):
                continue
            shown += 1
            print(f"  k={row.k:<4d} |E|={row.num_edges:>8,}  "
                  f"{bar(row.num_edges, total)}")
        if shown < len(h.levels):
            print(f"  ... ({len(h.levels) - shown} more levels)")
    print(
        "\nThe edge-count-vs-k curve is the fingerprint: flat-then-cliff for "
        "P2P,\nstaircase for collaboration, long tail for the web crawl."
    )


if __name__ == "__main__":
    main()
