#!/usr/bin/env python3
"""k-truss vs k-core as community-core detectors (Section 7.4 style).

Generates a social-style network with a planted tight community (a
clique) and a dense-but-incoherent hub region (a biclique), then
compares what the maximum core and the maximum truss each "find".  The
truss lands on the genuine community; the core is distracted by the
triangle-free dense region — the paper's Table 6 argument, runnable.

Usage::

    python examples/community_cores.py [--n 4000] [--clique 24] [--biclique 30]
"""

import argparse

from repro import max_core, truss_decomposition
from repro.cores import average_clustering
from repro.datasets import plant_biclique, plant_clique, powerlaw_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=4000, help="background vertices")
    parser.add_argument("--m", type=int, default=12000, help="background edges")
    parser.add_argument("--clique", type=int, default=24, help="planted community size")
    parser.add_argument("--biclique", type=int, default=30, help="planted biclique side")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    g = powerlaw_graph(args.n, args.m, exponent=2.3, seed=args.seed)
    community = set(plant_clique(g, args.clique, seed=args.seed + 1))
    noise = set(plant_biclique(g, args.biclique, seed=args.seed + 2))
    print(f"graph: n={g.num_vertices} m={g.num_edges}")
    print(f"planted community (clique K{args.clique}): {len(community)} vertices")
    print(f"planted distractor (biclique K{{{args.biclique},{args.biclique}}}): "
          f"{len(noise)} vertices\n")

    td = truss_decomposition(g)
    kmax, t = td.max_truss()
    cmax, c = max_core(g)

    def overlap(sub, target):
        verts = set(sub.vertices())
        return len(verts & target) / max(len(verts), 1)

    print(f"{'':14s}{'kmax-truss':>12s}{'cmax-core':>12s}")
    print(f"{'k / c':14s}{kmax:>12d}{cmax:>12d}")
    print(f"{'|V|':14s}{t.num_vertices:>12d}{c.num_vertices:>12d}")
    print(f"{'|E|':14s}{t.num_edges:>12d}{c.num_edges:>12d}")
    print(f"{'clustering':14s}{average_clustering(t):>12.3f}"
          f"{average_clustering(c):>12.3f}")
    print(f"{'% community':14s}{overlap(t, community):>12.1%}"
          f"{overlap(c, community):>12.1%}")
    print(f"{'% distractor':14s}{overlap(t, noise):>12.1%}"
          f"{overlap(c, noise):>12.1%}")
    print("\nThe truss recovers the planted community almost purely; the core "
          "is dominated\nby the triangle-free biclique — degree alone cannot "
          "tell cohesion from bulk.")


if __name__ == "__main__":
    main()
