#!/usr/bin/env python3
"""Truss-accelerated clique search (Section 7.4's application).

The paper closes its evaluation arguing that k-truss beats k-core as a
pre-filter for clique problems: a c-clique must live inside T_c, which
is usually far smaller than the (c-1)-core.  This example measures both
filters on a noisy graph with a planted community and then finds the
maximum clique through the truss hierarchy.

Usage::

    python examples/clique_search.py [--n 3000] [--clique 12]
"""

import argparse
import time

from repro.cliques import (
    clique_search_report,
    cliques_of_size_at_least,
    maximum_clique,
    maximum_clique_truss_pruned,
)
from repro.core import truss_decomposition
from repro.datasets import plant_biclique, plant_clique, powerlaw_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=3000)
    parser.add_argument("--m", type=int, default=9000)
    parser.add_argument("--clique", type=int, default=12)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    g = powerlaw_graph(args.n, args.m, exponent=2.2, seed=args.seed)
    planted = sorted(plant_clique(g, args.clique, seed=args.seed + 1))
    plant_biclique(g, 20, seed=args.seed + 2)  # a core-inflating distractor
    print(f"graph: n={g.num_vertices:,} m={g.num_edges:,}; "
          f"planted K{args.clique} on {planted}\n")

    td = truss_decomposition(g)
    report = clique_search_report(g, args.clique, decomposition=td)
    print(f"searching for cliques of size >= {args.clique}:")
    print(f"  whole graph:            {report.graph_edges:>8,} edges")
    print(f"  ({args.clique - 1})-core filter:        "
          f"{report.core_edges:>8,} edges")
    print(f"  {args.clique}-truss filter:        "
          f"{report.truss_edges:>8,} edges "
          f"({report.truss_vs_core_reduction:.1%} of the core)")
    print(f"  max-clique bound: core gives <= {report.max_clique_bound_core}, "
          f"truss gives <= {report.max_clique_bound_truss}\n")

    found = cliques_of_size_at_least(g, args.clique, decomposition=td)
    print(f"maximal cliques of size >= {args.clique}: "
          f"{[c for c in found]}")

    t0 = time.perf_counter()
    best_direct = maximum_clique(g)
    t_direct = time.perf_counter() - t0
    t0 = time.perf_counter()
    best_pruned = maximum_clique_truss_pruned(g, decomposition=td)
    t_pruned = time.perf_counter() - t0
    assert len(best_direct) == len(best_pruned)
    print(f"\nmaximum clique ({len(best_pruned)} vertices): {best_pruned}")
    print(f"  direct Bron-Kerbosch: {t_direct:6.2f}s")
    print(f"  truss-pruned search:  {t_pruned:6.2f}s "
          "(decomposition reused across queries)")


if __name__ == "__main__":
    main()
