#!/usr/bin/env python3
"""Why MapReduce loses at truss decomposition (the Table 4 story).

Runs Cohen's TD-MR pipeline on a small graph next to TD-bottomup and
prints the cluster-cost counters: MR job rounds, shuffled records and
bytes.  The iterative peeling forces a fresh triangle enumeration per
round — visible directly in the counters.

Usage::

    python examples/mapreduce_demo.py [--scale 0.05]
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro import IOStats, MemoryBudget
from repro.core import truss_decomposition_bottomup, truss_decomposition_mapreduce
from repro.datasets import load_dataset
from repro.mapreduce import LocalMRRuntime


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="hep")
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()

    g = load_dataset(args.dataset, scale=args.scale)
    print(f"dataset {args.dataset}: n={g.num_vertices:,} m={g.num_edges:,}\n")

    spill = tempfile.mkdtemp(prefix="mr-spill-")
    mr_io = IOStats()
    runtime = LocalMRRuntime(
        num_reducers=8, spill_dir=Path(spill), io_stats=mr_io
    )
    start = time.perf_counter()
    mr = truss_decomposition_mapreduce(g, runtime=runtime)
    t_mr = time.perf_counter() - start

    stats = IOStats()
    start = time.perf_counter()
    bu = truss_decomposition_bottomup(
        g, budget=MemoryBudget(units=max(16, g.size // 4)), stats=stats
    )
    t_bu = time.perf_counter() - start
    assert mr == bu, "the two methods must agree"

    c = runtime.counters
    print(f"TD-MR       : {t_mr:7.2f}s  "
          f"{c.rounds} MR rounds, {c.shuffle_records:,} shuffled records "
          f"({c.shuffle_bytes/1e6:.1f} MB over the wire, "
          f"{mr_io.total_blocks:,} block I/Os)")
    print(f"TD-bottomup : {t_bu:7.2f}s  "
          f"{stats.total_blocks:,} block I/Os "
          f"({stats.total_bytes/1e6:.1f} MB to disk)")
    print(f"\nslowdown: {t_mr / max(t_bu, 1e-9):.1f}x — every peeling level "
          "relaunches the whole triangle pipeline,")
    print("which is the paper's explanation for TD-MR's 3-orders-of-magnitude "
          "deficit on a real cluster.")


if __name__ == "__main__":
    main()
