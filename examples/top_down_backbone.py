#!/usr/bin/env python3
"""Extracting a network's backbone with top-down truss decomposition.

Applications that only need the "heart" of a network (the paper's
motivation for Algorithm 7) should not pay for a full decomposition.
This example compares three ways of getting the top-t classes of a
Web-like graph and prints the backbone it finds.

Usage::

    python examples/top_down_backbone.py [--dataset web] [--t 5]
"""

import argparse
import time

from repro import IOStats, MemoryBudget, top_t_classes, truss_decomposition
from repro.datasets import load_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="web")
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--t", type=int, default=5, help="how many top classes")
    args = parser.parse_args()

    g = load_dataset(args.dataset, scale=args.scale)
    budget = MemoryBudget(units=max(16, g.size // 4))
    print(f"dataset {args.dataset}: n={g.num_vertices:,} m={g.num_edges:,}; "
          f"memory budget |G|/4\n")

    start = time.perf_counter()
    stats_top = IOStats()
    top = truss_decomposition(
        g, method="topdown", top_t=args.t,
        memory_budget=budget, io_stats=stats_top,
    )
    t_top = time.perf_counter() - start

    start = time.perf_counter()
    stats_full = IOStats()
    truss_decomposition(
        g, method="bottomup", memory_budget=budget, io_stats=stats_full
    )
    t_full = time.perf_counter() - start

    print(f"top-{args.t} via TD-topdown : {t_top:6.1f}s, "
          f"{stats_top.total_blocks:>8,} block I/Os")
    print(f"all-k via TD-bottomup : {t_full:6.1f}s, "
          f"{stats_full.total_blocks:>8,} block I/Os\n")

    kmax = top.kmax
    print(f"kmax = {kmax}; backbone classes:")
    for k in range(kmax, max(kmax - args.t, 1), -1):
        edges = top.k_class(k)
        verts = {v for e in edges for v in e}
        print(f"  Phi_{k:<4d}: {len(edges):6,} edges on {len(verts):5,} vertices")
    backbone = top.k_truss(kmax)
    print(f"\nthe kmax-truss ({backbone.num_vertices} vertices, "
          f"{backbone.num_edges} edges) is the graph's innermost community")


if __name__ == "__main__":
    main()
