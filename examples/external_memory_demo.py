#!/usr/bin/env python3
"""TD-bottomup under a memory budget: watching the (M, B) model work.

Decomposes one of the "massive" stand-in datasets with progressively
smaller simulated memory, reporting block I/O, LowerBounding
iterations, and candidate-subgraph sizes — the quantities behind the
paper's Theorem 3 bound ``O((m/M + kmax) · scan(|G|))``.

Usage::

    python examples/external_memory_demo.py [--dataset lj] [--scale 0.2]
"""

import argparse
import time

from repro import MemoryBudget, IOStats, truss_decomposition
from repro.datasets import load_dataset


def run_with_budget(g, fraction: int) -> None:
    budget = MemoryBudget(units=max(16, g.size // fraction))
    stats = IOStats()
    start = time.perf_counter()
    td = truss_decomposition(
        g, method="bottomup", memory_budget=budget, io_stats=stats
    )
    elapsed = time.perf_counter() - start
    extra = td.stats.extra
    print(
        f"M = |G|/{fraction:<2d} ({budget.units:>8,} units): "
        f"{elapsed:6.1f}s  kmax={td.kmax:<4d} "
        f"blocks R/W = {stats.blocks_read:>7,}/{stats.blocks_written:>6,}  "
        f"LB iters = {int(extra['lowerbound_iterations'])}  "
        f"max |H| = {int(extra['max_candidate_size']):,}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="lj", help="registry dataset name")
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()

    g = load_dataset(args.dataset, scale=args.scale)
    print(f"dataset {args.dataset} @ scale {args.scale}: "
          f"n={g.num_vertices:,} m={g.num_edges:,} (|G| = {g.size:,} units)\n")
    print("shrinking the simulated memory — I/O grows as Theorem 3 predicts:\n")
    for fraction in (1, 2, 4, 8):
        run_with_budget(g, fraction)
    print("\nEvery run produces the identical decomposition; only the I/O "
          "schedule changes.")


if __name__ == "__main__":
    main()
