#!/usr/bin/env python3
"""Quickstart: truss decomposition on the paper's own graphs.

Runs the improved in-memory algorithm (TD-inmem+) on the running
example of Figure 2 and on the 21-manager graph of Figure 1, printing
the k-classes and extracting k-trusses — the 60-second tour of the
public API.

Usage::

    python examples/quickstart.py
"""

from repro import Graph, k_truss, truss_decomposition
from repro.cores import average_clustering, k_core
from repro.datasets import manager_graph, running_example_graph, vname


def tiny_graph_demo() -> None:
    print("=== A 4-clique with a pendant edge ===")
    g = Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 99)])
    td = truss_decomposition(g)
    print(f"kmax = {td.kmax}")
    for k, edges in sorted(td.k_classes().items()):
        print(f"  Phi_{k}: {edges}")
    t4 = k_truss(g, 4)
    print(f"4-truss: {t4.num_vertices} vertices, {t4.num_edges} edges\n")


def running_example_demo() -> None:
    print("=== Figure 2: the paper's running example ===")
    g = running_example_graph()
    td = truss_decomposition(g)
    print(f"n={g.num_vertices} m={g.num_edges} kmax={td.kmax}")
    for k, edges in sorted(td.k_classes().items()):
        named = ", ".join(f"({vname(u)},{vname(v)})" for u, v in edges)
        print(f"  Phi_{k} ({len(edges):2d} edges): {named}")
    print()


def manager_graph_demo() -> None:
    print("=== Figure 1: the 21-manager advice network ===")
    g = manager_graph()
    td = truss_decomposition(g)
    c3 = k_core(g, 3)
    t4 = td.k_truss(4)
    print(f"G:       n={g.num_vertices:2d} m={g.num_edges:2d} "
          f"CC={average_clustering(g):.2f}   (paper: 0.51)")
    print(f"3-core:  n={c3.num_vertices:2d} m={c3.num_edges:2d} "
          f"CC={average_clustering(c3):.2f}   (paper: 0.65)")
    print(f"4-truss: n={t4.num_vertices:2d} m={t4.num_edges:2d} "
          f"CC={average_clustering(t4):.2f}   (paper: 0.80)")
    print(f"no 5-truss exists (kmax = {td.kmax}); the 4-truss keeps only "
          "the tightly-knit cliques")


if __name__ == "__main__":
    tiny_graph_demo()
    running_example_demo()
    manager_graph_demo()
