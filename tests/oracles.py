"""Brute-force reference implementations used as test oracles.

Every oracle here is written for *obviousness*, not speed: direct
transcriptions of the paper's definitions.  The library implementations
are validated against these on small graphs; the oracles themselves are
cross-checked against networkx in ``tests/integration``.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.graph import Graph, norm_edge

Edge = Tuple[int, int]


def brute_support(g: Graph, u: int, v: int) -> int:
    """sup(e, G): count common neighbors by definition."""
    return sum(1 for w in g.neighbors(u) if w in g.neighbors(v))


def brute_all_supports(g: Graph) -> Dict[Edge, int]:
    """Support of every edge, by repeated neighbor intersection."""
    return {(u, v): brute_support(g, u, v) for u, v in g.edges()}


def brute_triangles(g: Graph) -> Set[FrozenSet[int]]:
    """Every triangle as a frozenset of 3 vertices."""
    out: Set[FrozenSet[int]] = set()
    for u, v in g.edges():
        for w in g.common_neighbors(u, v):
            out.add(frozenset((u, v, w)))
    return out


def brute_k_truss(g: Graph, k: int) -> Graph:
    """The k-truss by definition: repeatedly drop edges with support < k-2.

    ``T_2`` is G itself (every edge trivially has support >= 0).
    """
    h = g.copy()
    changed = True
    while changed:
        changed = False
        for u, v in list(h.edges()):
            if brute_support(h, u, v) < k - 2:
                h.remove_edge(u, v)
                changed = True
    h.drop_isolated_vertices()
    return h


def brute_trussness(g: Graph) -> Dict[Edge, int]:
    """phi(e) for every edge: the largest k with e in the k-truss."""
    phi: Dict[Edge, int] = {e: 2 for e in g.edges()}
    k = 3
    h = brute_k_truss(g, k)
    while h.num_edges > 0:
        for e in h.edges():
            phi[e] = k
        k += 1
        h = brute_k_truss(g, k)
    return phi


def brute_k_classes(g: Graph) -> Dict[int, Set[Edge]]:
    """Phi_k for every k present in the graph."""
    phi = brute_trussness(g)
    classes: Dict[int, Set[Edge]] = {}
    for e, k in phi.items():
        classes.setdefault(k, set()).add(e)
    return classes


def brute_core_numbers(g: Graph) -> Dict[int, int]:
    """core(v) for every vertex by repeated minimum-degree peeling."""
    h = g.copy()
    core: Dict[int, int] = {}
    k = 0
    while h.num_vertices > 0:
        while True:
            low = [v for v in h.vertices() if h.degree(v) <= k]
            if not low:
                break
            for v in low:
                core[v] = k
                h.remove_vertex(v)
        k += 1
    return core


def brute_local_clustering(g: Graph, v: int) -> float:
    """Watts-Strogatz local clustering coefficient of one vertex."""
    nbrs = list(g.neighbors(v))
    d = len(nbrs)
    if d < 2:
        return 0.0
    links = sum(
        1 for a, b in itertools.combinations(nbrs, 2) if g.has_edge(a, b)
    )
    return 2.0 * links / (d * (d - 1))


def brute_average_clustering(g: Graph) -> float:
    """Average local clustering coefficient over all vertices."""
    n = g.num_vertices
    if n == 0:
        return 0.0
    return sum(brute_local_clustering(g, v) for v in g.vertices()) / n


def graphs_equal(a: Graph, b: Graph) -> bool:
    """Structural equality on the non-isolated part of two graphs."""
    return set(a.edges()) == set(b.edges())
