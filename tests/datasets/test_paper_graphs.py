"""Tests for the paper's example graphs (Figure 1 + Figure 2)."""

import pytest

from repro.core import truss_decomposition
from repro.cores import average_clustering, core_numbers, k_core, max_core
from repro.datasets import (
    EXAMPLE3_PARTITION,
    MANAGER_CLIQUES,
    RUNNING_EXAMPLE_CLASSES,
    clique_union_edges,
    manager_graph,
    running_example_graph,
    running_example_trussness,
    vid,
    vname,
)


class TestRunningExample:
    """Example 2: the exact k-classes printed in the paper."""

    def test_shape(self):
        g = running_example_graph()
        assert g.num_vertices == 12
        assert g.num_edges == 26

    def test_k_classes_match_paper(self):
        g = running_example_graph()
        td = truss_decomposition(g)
        for k, edges in RUNNING_EXAMPLE_CLASSES.items():
            assert sorted(td.k_class(k)) == sorted(edges), f"Phi_{k}"
        assert td.kmax == 5

    def test_phi2_is_single_edge_ik(self):
        assert RUNNING_EXAMPLE_CLASSES[2] == [(vid("i"), vid("k"))]

    def test_trussness_helper_consistent(self):
        g = running_example_graph()
        td = truss_decomposition(g)
        assert dict(td.trussness) == running_example_trussness()

    def test_vertex_naming_roundtrip(self):
        for v in range(12):
            assert vid(vname(v)) == v

    def test_example3_partition_covers_vertices(self):
        flat = [v for block in EXAMPLE3_PARTITION for v in block]
        assert sorted(flat) == list(range(12))

    def test_truss_hierarchy(self):
        g = running_example_graph()
        td = truss_decomposition(g)
        for k in (3, 4, 5):
            assert set(td.k_truss_edges(k + 1)) <= set(td.k_truss_edges(k))


class TestManagerGraph:
    """Example 1 / Figure 1: every property the paper asserts."""

    @pytest.fixture(scope="class")
    def graph(self):
        return manager_graph()

    @pytest.fixture(scope="class")
    def decomposition(self, graph):
        return truss_decomposition(graph)

    def test_21_managers(self, graph):
        assert graph.num_vertices == 21

    def test_no_5_truss(self, decomposition):
        assert decomposition.kmax == 4

    def test_4_truss_is_exactly_the_five_cliques(self, decomposition):
        t4 = decomposition.k_truss(4)
        assert sorted(t4.edges()) == clique_union_edges()

    def test_named_cliques_present(self, graph):
        for clique in MANAGER_CLIQUES:
            for i in range(4):
                for j in range(i + 1, 4):
                    assert graph.has_edge(clique[i], clique[j])

    def test_no_4_core(self, graph):
        cmax, _ = max_core(graph)
        assert cmax == 3

    def test_3_core_nonempty_proper_subgraph(self, graph):
        c3 = k_core(graph, 3)
        assert 0 < c3.num_vertices < graph.num_vertices

    def test_clustering_coefficients_ordered_and_close_to_paper(
        self, graph, decomposition
    ):
        ccg = average_clustering(graph)
        cc3 = average_clustering(k_core(graph, 3))
        cc4 = average_clustering(decomposition.k_truss(4))
        assert ccg < cc3 < cc4
        # paper: 0.51 / 0.65 / 0.80
        assert abs(ccg - 0.51) < 0.05
        assert abs(cc3 - 0.65) < 0.05
        assert abs(cc4 - 0.80) < 0.05

    def test_4_truss_satisfies_3_core_requirement(self, decomposition):
        """Example 1: 'The 4-truss also satisfies the requirement of a
        3-core by definition.'"""
        t4 = decomposition.k_truss(4)
        assert all(t4.degree(v) >= 3 for v in t4.vertices())

    def test_deterministic(self):
        assert set(manager_graph().edges()) == set(manager_graph().edges())
