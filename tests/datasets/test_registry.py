"""Tests for the SNAP-like dataset registry (small scales for speed)."""

import pytest

from repro.core import truss_decomposition
from repro.datasets import (
    IN_MEMORY_DATASETS,
    MASSIVE_DATASETS,
    SMALL_DATASETS,
    TRUSS_VS_CORE_DATASETS,
    dataset_names,
    dataset_spec,
    load_dataset,
)
from repro.errors import GraphError


class TestRegistryShape:
    def test_nine_datasets(self):
        assert len(dataset_names()) == 9

    def test_groupings_are_registered(self):
        names = set(dataset_names())
        for group in (
            IN_MEMORY_DATASETS,
            MASSIVE_DATASETS,
            SMALL_DATASETS,
            TRUSS_VS_CORE_DATASETS,
        ):
            assert set(group) <= names

    def test_unknown_dataset_rejected(self):
        with pytest.raises(GraphError):
            load_dataset("facebook")
        with pytest.raises(GraphError):
            dataset_spec("facebook")

    def test_bad_scale_rejected(self):
        with pytest.raises(GraphError):
            load_dataset("p2p", scale=0)

    def test_paper_stats_attached(self):
        spec = dataset_spec("wiki")
        assert spec.paper.kmax == 53
        assert spec.paper.median_degree == 1


class TestGeneration:
    @pytest.mark.parametrize("name", dataset_names())
    def test_small_scale_generates(self, name):
        g = load_dataset(name, scale=0.02)
        assert g.num_edges > 0
        assert g.num_vertices > 0

    def test_deterministic(self):
        a = load_dataset("p2p", scale=0.05)
        b = load_dataset("p2p", scale=0.05)
        assert set(a.edges()) == set(b.edges())

    def test_scale_changes_size(self):
        small = load_dataset("amazon", scale=0.02)
        large = load_dataset("amazon", scale=0.08)
        assert large.num_edges > small.num_edges

    @pytest.mark.parametrize("name", ["p2p", "hep", "btc"])
    def test_kmax_pinned_at_small_scale(self, name):
        """Planted cliques keep kmax stable across scales."""
        spec = dataset_spec(name)
        g = load_dataset(name, scale=0.05)
        td = truss_decomposition(g)
        assert td.kmax == spec.expected_kmax

    def test_wiki_is_hub_heavy(self):
        from repro.cores import median_degree

        g = load_dataset("wiki", scale=0.2)
        assert g.max_degree() > 50 * median_degree(g)
