"""Tests for the synthetic graph generators."""

import pytest

from repro.core import truss_decomposition
from repro.cores import average_clustering, max_core, median_degree
from repro.datasets import (
    barabasi_albert,
    collaboration_graph,
    community_graph,
    erdos_renyi,
    plant_biclique,
    plant_clique,
    powerlaw_graph,
    star_heavy_graph,
)
from repro.errors import GraphError
from repro.graph import Graph


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(50, 100, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 100

    def test_deterministic(self):
        assert set(erdos_renyi(30, 60, seed=5).edges()) == set(
            erdos_renyi(30, 60, seed=5).edges()
        )

    def test_seed_changes_graph(self):
        assert set(erdos_renyi(30, 60, seed=1).edges()) != set(
            erdos_renyi(30, 60, seed=2).edges()
        )

    def test_rejects_impossible_m(self):
        with pytest.raises(GraphError):
            erdos_renyi(4, 7)

    def test_full_density(self):
        g = erdos_renyi(5, 10, seed=0)
        assert g.num_edges == 10


class TestBarabasiAlbert:
    def test_counts(self):
        g = barabasi_albert(100, 3, seed=2)
        assert g.num_vertices == 100
        # seed clique C(4,2)=6 edges + 96 * 3
        assert g.num_edges == 6 + 96 * 3

    def test_hub_emerges(self):
        g = barabasi_albert(300, 2, seed=3)
        assert g.max_degree() > 10

    def test_validation(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, 3)
        with pytest.raises(GraphError):
            barabasi_albert(10, 0)


class TestPowerlaw:
    def test_heavy_tail(self):
        g = powerlaw_graph(2000, 4000, exponent=2.1, seed=4)
        assert g.max_degree() > 10 * median_degree(g)

    def test_edge_budget_met_approximately(self):
        g = powerlaw_graph(1000, 3000, seed=5)
        assert g.num_edges >= 2700  # duplicates may cost a few

    def test_validation(self):
        with pytest.raises(GraphError):
            powerlaw_graph(1, 0)
        with pytest.raises(GraphError):
            powerlaw_graph(10, 5, exponent=0.9)


class TestCollaboration:
    def test_large_teams_give_large_kmax(self):
        g = collaboration_graph(400, 300, seed=6, max_team=20)
        td = truss_decomposition(g)
        assert td.kmax >= 8

    def test_high_clustering(self):
        g = collaboration_graph(500, 400, seed=7)
        assert average_clustering(g) > 0.3


class TestCommunityAndStars:
    def test_community_clustering(self):
        g = community_graph(500, 300, community_size=5, seed=8)
        assert average_clustering(g) > 0.2

    def test_star_heavy_median_low(self):
        g = star_heavy_graph(2000, 3000, n_hubs=5, seed=9)
        assert median_degree(g) <= 3
        assert g.max_degree() > 100


class TestPlanting:
    def test_plant_clique_pins_kmax(self):
        g = erdos_renyi(300, 500, seed=10)
        members = plant_clique(g, 12, seed=11)
        assert len(members) == 12
        td = truss_decomposition(g)
        assert td.kmax == 12
        # the kmax-truss contains the planted clique
        t = td.k_truss(12)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                assert t.has_edge(u, v)

    def test_plant_biclique_pins_core_not_truss(self):
        g = erdos_renyi(400, 600, seed=12)
        plant_biclique(g, 20, seed=13)
        cmax, _ = max_core(g)
        td = truss_decomposition(g)
        assert cmax >= 20
        assert td.kmax < 20  # triangle-poor: trussness stays low

    def test_plant_validation(self):
        g = erdos_renyi(10, 10, seed=1)
        with pytest.raises(GraphError):
            plant_clique(g, 11)
        with pytest.raises(GraphError):
            plant_biclique(g, 6)
