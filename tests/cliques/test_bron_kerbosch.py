"""Tests for Bron-Kerbosch maximal clique enumeration."""

import pytest
from hypothesis import given, settings

from repro.cliques import iter_maximal_cliques, maximal_cliques, maximum_clique
from repro.graph import Graph, complete_graph, cycle_graph, disjoint_union, star_graph

from helpers import small_edge_lists


class TestMaximalCliques:
    @pytest.mark.parametrize("order", [True, False], ids=["degeneracy", "plain"])
    def test_clique_graph(self, order):
        cliques = maximal_cliques(complete_graph(5), use_degeneracy_order=order)
        assert cliques == [[0, 1, 2, 3, 4]]

    def test_triangle_free(self):
        cliques = maximal_cliques(cycle_graph(5))
        assert len(cliques) == 5
        assert all(len(c) == 2 for c in cliques)

    def test_star(self):
        cliques = maximal_cliques(star_graph(4))
        assert all(len(c) == 2 for c in cliques)
        assert len(cliques) == 4

    def test_isolated_vertex_is_singleton_clique(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        assert [9] in maximal_cliques(g)

    def test_empty_graph(self):
        assert maximal_cliques(Graph()) == []

    def test_two_overlapping_triangles(self):
        g = Graph([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
        cliques = maximal_cliques(g)
        assert [0, 1, 2] in cliques
        assert [1, 2, 3] in cliques
        assert len(cliques) == 2

    @settings(max_examples=40, deadline=None)
    @given(small_edge_lists())
    def test_matches_networkx(self, edges):
        import networkx as nx

        g = Graph(edges)
        ng = nx.Graph(list(g.edges()))
        ng.add_nodes_from(g.vertices())
        ours = {tuple(c) for c in maximal_cliques(g)}
        theirs = {tuple(sorted(c)) for c in nx.find_cliques(ng)}
        assert ours == theirs

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_orders_agree(self, edges):
        g = Graph(edges)
        assert maximal_cliques(g, True) == maximal_cliques(g, False)

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_every_output_is_a_maximal_clique(self, edges):
        g = Graph(edges)
        for clique in iter_maximal_cliques(g):
            for i, u in enumerate(clique):
                for v in clique[i + 1 :]:
                    assert g.has_edge(u, v)
            members = set(clique)
            for w in g.vertices():
                if w not in members:
                    assert not members <= g.neighbors(w) | {w}


class TestMaximumClique:
    def test_planted(self):
        g = disjoint_union([complete_graph(4), complete_graph(6)])
        assert len(maximum_clique(g)) == 6

    def test_empty(self):
        assert maximum_clique(Graph()) == []
