"""Tests for truss-pruned clique search (Section 7.4's claims)."""

import pytest
from hypothesis import given, settings

from repro.cliques import (
    clique_search_report,
    cliques_of_size_at_least,
    maximum_clique,
    maximum_clique_truss_pruned,
)
from repro.core import truss_decomposition_improved
from repro.datasets import erdos_renyi, plant_biclique, plant_clique
from repro.graph import Graph, complete_graph, disjoint_union

from helpers import random_graph, small_edge_lists


class TestCliquesOfSizeAtLeast:
    def test_finds_planted_clique(self):
        g = erdos_renyi(200, 400, seed=81)
        members = sorted(plant_clique(g, 8, seed=82))
        found = cliques_of_size_at_least(g, 8)
        assert any(set(members) <= set(c) for c in found)

    def test_no_large_cliques_in_sparse_graph(self):
        g = erdos_renyi(100, 150, seed=83)
        assert cliques_of_size_at_least(g, 10) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            cliques_of_size_at_least(complete_graph(3), 1)

    def test_reuses_supplied_decomposition(self):
        g = complete_graph(5)
        td = truss_decomposition_improved(g)
        assert cliques_of_size_at_least(g, 5, decomposition=td) == [[0, 1, 2, 3, 4]]

    @settings(max_examples=20, deadline=None)
    @given(small_edge_lists())
    def test_matches_unpruned_search(self, edges):
        """Pruning must lose nothing: same big cliques with and without."""
        from repro.cliques import maximal_cliques

        g = Graph(edges)
        for c in (3, 4):
            pruned = {tuple(x) for x in cliques_of_size_at_least(g, c)}
            full = {
                tuple(x) for x in maximal_cliques(g) if len(x) >= c
            }
            assert pruned == full


class TestMaximumCliqueTrussPruned:
    def test_matches_direct_search(self):
        for seed in range(4):
            g = random_graph(35, 0.3, seed=seed)
            assert len(maximum_clique_truss_pruned(g)) == len(maximum_clique(g))

    def test_planted_maximum(self):
        g = erdos_renyi(300, 600, seed=84)
        members = sorted(plant_clique(g, 10, seed=85))
        assert maximum_clique_truss_pruned(g) == members

    def test_edgeless_graph(self):
        g = Graph()
        g.add_vertex(3)
        assert maximum_clique_truss_pruned(g) == [3]


class TestSection74Claims:
    def test_truss_filter_tighter_than_core_filter(self):
        """|E(T_c)| <= |E((c-1)-core)| and the truss bound on the max
        clique is at most the core bound."""
        g = erdos_renyi(300, 900, seed=86)
        plant_clique(g, 9, seed=87)
        plant_biclique(g, 15, seed=88)  # inflates cores, not trusses
        report = clique_search_report(g, 9)
        assert report.truss_edges <= report.core_edges
        assert report.max_clique_bound_truss <= report.max_clique_bound_core
        assert report.truss_vs_core_reduction < 0.8  # decisively smaller

    @settings(max_examples=20, deadline=None)
    @given(small_edge_lists())
    def test_clique_inside_its_truss(self, edges):
        """A clique of size c is contained in T_c (the pruning theorem)."""
        g = Graph(edges)
        td = truss_decomposition_improved(g)
        from repro.cliques import maximal_cliques

        for clique in maximal_cliques(g):
            c = len(clique)
            if c < 3:
                continue
            truss_edges = set(td.k_truss_edges(c))
            for i, u in enumerate(clique):
                for v in clique[i + 1 :]:
                    assert ((u, v) if u < v else (v, u)) in truss_edges

    @settings(max_examples=20, deadline=None)
    @given(small_edge_lists())
    def test_kmax_bounds_max_clique(self, edges):
        g = Graph(edges)
        if g.num_edges == 0:
            return
        td = truss_decomposition_improved(g)
        assert len(maximum_clique(g)) <= max(td.kmax, 2)
