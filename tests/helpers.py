"""Shared test helpers and hypothesis strategies.

These used to live in ``tests/conftest.py`` and were imported with
``from conftest import ...`` — which broke the moment a *second*
top-level ``conftest.py`` (the benchmark suite's) was collected in the
same run: pytest imports rootdir-relative conftests under the bare
module name ``conftest``, and whichever loads first wins.  Plain
helpers therefore live here, in a module with an unambiguous name;
``tests/conftest.py`` keeps only fixtures and the ``sys.path`` shim
that makes this module (and ``oracles``) importable.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from hypothesis import strategies as st

from repro.graph import Graph


def random_graph(n: int, p: float, seed: int) -> Graph:
    """Seeded G(n, p) used by deterministic randomized tests."""
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------
@st.composite
def small_edge_lists(draw, max_vertices: int = 12, max_edges: int = 40):
    """A list of distinct canonical edges over a small vertex range."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return draw(
        st.lists(
            st.sampled_from(possible),
            max_size=min(max_edges, len(possible)),
            unique=True,
        )
    )


@st.composite
def small_graphs(draw, max_vertices: int = 12, max_edges: int = 40):
    """A small random simple graph (possibly empty / disconnected)."""
    return Graph(draw(small_edge_lists(max_vertices, max_edges)))
