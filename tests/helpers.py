"""Shared test helpers and hypothesis strategies.

These used to live in ``tests/conftest.py`` and were imported with
``from conftest import ...`` — which broke the moment a *second*
top-level ``conftest.py`` (the benchmark suite's) was collected in the
same run: pytest imports rootdir-relative conftests under the bare
module name ``conftest``, and whichever loads first wins.  Plain
helpers therefore live here, in a module with an unambiguous name;
``tests/conftest.py`` keeps only fixtures and the ``sys.path`` shim
that makes this module (and ``oracles``) importable.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from hypothesis import strategies as st

from repro.datasets import erdos_renyi, powerlaw_graph, star_heavy_graph
from repro.graph import Graph

#: the (ranks, transport) matrix the dist parity sweeps cover: every
#: rank count the acceptance bar names, on both fabrics.  Loopback
#: first — it is cheap, so a genuine peel bug fails there before the
#: process-spawning TCP configurations even start.
DIST_SWEEP: Tuple[Tuple[int, str], ...] = tuple(
    (ranks, transport)
    for transport in ("loopback", "tcp")
    for ranks in (1, 2, 4)
)


def random_graph(n: int, p: float, seed: int) -> Graph:
    """Seeded G(n, p) used by deterministic randomized tests."""
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------
@st.composite
def small_edge_lists(draw, max_vertices: int = 12, max_edges: int = 40):
    """A list of distinct canonical edges over a small vertex range."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return draw(
        st.lists(
            st.sampled_from(possible),
            max_size=min(max_edges, len(possible)),
            unique=True,
        )
    )


@st.composite
def small_graphs(draw, max_vertices: int = 12, max_edges: int = 40):
    """A small random simple graph (possibly empty / disconnected)."""
    return Graph(draw(small_edge_lists(max_vertices, max_edges)))


@st.composite
def peel_graphs(draw, max_vertices: int = 26, max_edges: int = 60):
    """A random graph from the registry's structural families.

    The cross-method parity property sweeps this: ER (uniform), power
    law (heavy-tailed, the Wiki/Skitter shape) and star-heavy (a few
    hubs, the BTC shape) cover very different wave/level schedules —
    hub graphs peel in a handful of huge waves, ER in many small ones.
    Sizes stay small enough for the brute-force oracle.
    """
    family = draw(st.sampled_from(("er", "powerlaw", "stars")))
    n = draw(st.integers(min_value=5, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    if family == "er":
        return erdos_renyi(n, min(m, n * (n - 1) // 2), seed=seed)
    if family == "powerlaw":
        return powerlaw_graph(n, m, seed=seed)
    return star_heavy_graph(n, m, n_hubs=min(3, n - 1), seed=seed)


@st.composite
def update_streams(
    draw,
    max_vertices: int = 12,
    max_edges: int = 28,
    max_updates: int = 10,
):
    """A ``(graph, updates)`` pair for the incremental-parity sweeps.

    The base graph comes from :func:`peel_graphs` (all three structural
    families); ``updates`` is a list of ``(op, u, v)`` tuples that the
    maintainer parity property replays against a mutable mirror.  The
    mix deliberately covers every update shape the maintainer must
    survive: fresh inserts and deletes over the occupied vertex range
    plus two spare ids, *duplicate* inserts of existing edges, deletes
    of absent (or already-deleted) edges, triangle-*creating* inserts
    (closing an open wedge of the base graph) and triangle-*destroying*
    deletes (edges sampled from the base graph's edge set).  Endpoint
    order is flipped at random so canonicalization is exercised.
    """
    g = draw(peel_graphs(max_vertices=max_vertices, max_edges=max_edges))
    verts = sorted(g.vertices())
    hi = (verts[-1] + 2) if verts else 3
    base = sorted(g.edges())
    closures = sorted(
        {
            (a, b)
            for w in verts
            for a in g.neighbors(w)
            for b in g.neighbors(w)
            if a < b and not g.has_edge(a, b)
        }
    )[:64]
    kinds = ["insert_pair", "delete_pair"]
    if base:
        kinds += ["delete_existing", "insert_duplicate"]
    if closures:
        kinds.append("close_wedge")
    pair = st.tuples(
        st.integers(min_value=0, max_value=hi),
        st.integers(min_value=0, max_value=hi),
    ).filter(lambda p: p[0] != p[1])
    updates: List[Tuple[str, int, int]] = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_updates))):
        kind = draw(st.sampled_from(kinds))
        if kind == "insert_pair":
            op, (u, v) = "insert", draw(pair)
        elif kind == "delete_pair":
            op, (u, v) = "delete", draw(pair)
        elif kind == "delete_existing":
            op, (u, v) = "delete", draw(st.sampled_from(base))
        elif kind == "insert_duplicate":
            op, (u, v) = "insert", draw(st.sampled_from(base))
        else:
            op, (u, v) = "insert", draw(st.sampled_from(closures))
        if draw(st.booleans()):
            u, v = v, u
        updates.append((op, u, v))
    return g, updates


# ---------------------------------------------------------------------------
# seeded edge-list file fuzzer
# ---------------------------------------------------------------------------
#: line kinds the fuzzer draws from, with (weight, is_error) — the mix
#: leans on valid lines so most seeds produce parseable files
_FUZZ_KINDS = (
    ("edge", 30, False),          # plain 'u v'
    ("dup", 6, False),            # repeat of an earlier edge, maybe flipped
    ("self_loop", 4, False),      # 'v v' (dropped by the cleaners)
    ("comment", 6, False),        # '# ...' (sometimes indented)
    ("blank", 5, False),          # empty or whitespace-only
    ("extra_cols", 6, False),     # 'u v w ...' — first two columns count
    ("extra_noninteger", 3, False),  # 'u v x' — trailing junk is ignored
    ("short", 2, True),           # a single token: no 'v'
    ("non_integer", 2, True),     # a non-numeric token in column 1 or 2
)


def fuzzed_edge_list(
    seed: int, n_lines: int = 28
) -> Tuple[str, Optional[int]]:
    """A seeded messy edge-list file and its expected first error line.

    Returns ``(text, first_error_lineno)``: the text mixes comments,
    blank lines, duplicate/reversed/self-loop edges, ragged-but-valid
    rows (extra columns, including non-integer trailing columns) and —
    with ``first_error_lineno`` set — genuinely malformed lines (a
    missing column, a non-integer vertex id).  The contract under test:
    :meth:`repro.graph.csr.CSRGraph.from_edge_list_file` must either
    build the same snapshot as the ``read_edge_list`` route or raise
    :class:`~repro.errors.FormatError` naming the *file-absolute*
    ``first_error_lineno`` — chunked bulk parsing must never shift,
    mask or reorder errors.  Only one in three seeds injects errors, so
    the round-trip side of the contract gets real coverage too.
    """
    rng = random.Random(seed)
    inject_errors = rng.random() < 1 / 3
    kinds = [k for k in _FUZZ_KINDS if inject_errors or not k[2]]
    names = [k[0] for k in kinds]
    weights = [k[1] for k in kinds]
    lines: List[str] = []
    edges: List[Tuple[int, int]] = []
    error_line: Optional[int] = None

    def vid() -> int:
        # mostly small ids with occasional huge/negative ones so the
        # canonicalization (non-contiguous labels) is exercised too
        r = rng.random()
        if r < 0.8:
            return rng.randrange(0, 40)
        if r < 0.95:
            return rng.randrange(1_000, 1_000_000)
        return -rng.randrange(1, 50)

    for lineno in range(1, n_lines + 1):
        kind = rng.choices(names, weights=weights)[0]
        if kind == "edge" or (kind == "dup" and not edges):
            u, v = vid(), vid()
            while u == v:
                v = vid()
            edges.append((u, v))
            lines.append(f"{u} {v}")
        elif kind == "dup":
            u, v = rng.choice(edges)
            if rng.random() < 0.5:
                u, v = v, u
            lines.append(f"{u} {v}")
        elif kind == "self_loop":
            v = vid()
            lines.append(f"{v} {v}")
        elif kind == "comment":
            pad = " " * rng.randrange(0, 3)
            lines.append(f"{pad}# fuzz comment {lineno}")
        elif kind == "blank":
            lines.append(" " * rng.randrange(0, 3))
        elif kind == "extra_cols":
            u, v = vid(), vid() + 1
            extras = " ".join(
                str(rng.randrange(100)) for _ in range(rng.randrange(1, 4))
            )
            lines.append(f"{u} {v} {extras}")
            if u != v:
                edges.append((u, v))
        elif kind == "extra_noninteger":
            u, v = vid(), vid() + 1
            lines.append(f"{u} {v} {rng.choice(('x', '0.5', 'w=3'))}")
            if u != v:
                edges.append((u, v))
        elif kind == "short":
            lines.append(rng.choice((str(vid()), "lonely")))
            if error_line is None:
                error_line = lineno
        else:  # non_integer
            bad = rng.choice(("foo", "3.14", "0x1f"))
            pair = (bad, str(vid())) if rng.random() < 0.5 else (str(vid()), bad)
            lines.append(" ".join(pair))
            if error_line is None:
                error_line = lineno
    text = "\n".join(lines)
    if rng.random() < 0.8:
        text += "\n"
    return text, error_line
