"""Tests for ASCII/markdown table rendering."""

from repro.bench import format_number, render_markdown, render_table


class TestFormatNumber:
    def test_none_is_dash(self):
        assert format_number(None) == "-"

    def test_ints_get_separators(self):
        assert format_number(1234567) == "1,234,567"

    def test_floats_scale(self):
        assert format_number(0.12345) == "0.1235"
        assert format_number(3.14159) == "3.14"
        assert format_number(12345.6) == "12,346"
        assert format_number(0.0) == "0"

    def test_bool_and_str_passthrough(self):
        assert format_number(True) == "True"
        assert format_number("abc") == "abc"


class TestRenderTable:
    def test_basic_shape(self):
        text = render_table(
            "My Table",
            ["a", "b"],
            [{"a": 1, "b": 2.5}, {"a": None, "b": "x"}],
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "| a" in lines[2]
        assert any("| 1" in line for line in lines)
        assert any("| -" in line for line in lines)

    def test_empty_rows(self):
        text = render_table("T", ["col"], [])
        assert "col" in text

    def test_note_appended(self):
        text = render_table("T", ["a"], [{"a": 1}], note="hello")
        assert text.endswith("hello")

    def test_missing_keys_render_dash(self):
        text = render_table("T", ["a", "b"], [{"a": 1}])
        assert "| -" in text


class TestRenderMarkdown:
    def test_markdown_shape(self):
        md = render_markdown(["x", "y"], [{"x": 1, "y": 2}])
        lines = md.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
