"""Tests for the experiment harness (tiny scales for speed)."""

import pytest

from repro.bench import (
    external_budget,
    figure1_rows,
    figure2_rows,
    measure,
    table2_rows,
    table3_rows,
    table6_rows,
)
from repro.graph import complete_graph


class TestMeasure:
    def test_returns_result_and_timing(self):
        m = measure(lambda: 41 + 1)
        assert m.result == 42
        assert m.seconds >= 0
        assert m.peak_bytes >= 0

    def test_memory_tracking_optional(self):
        m = measure(lambda: [0] * 100000, track_memory=False)
        assert m.peak_bytes == 0

    def test_memory_tracking_sees_allocation(self):
        m = measure(lambda: list(range(200000)), track_memory=True)
        assert m.peak_bytes > 100000


class TestExternalBudget:
    def test_quarter_size(self):
        g = complete_graph(40)  # size = 40 + 780
        b = external_budget(g)
        assert b.units == (40 + 780) // 4

    def test_floor(self):
        g = complete_graph(3)
        assert external_budget(g).units == 16


class TestRowGenerators:
    def test_figure2_rows_match(self):
        rows = figure2_rows()
        assert [r["k"] for r in rows] == [2, 3, 4, 5]
        assert all(r["match"] for r in rows)
        assert [r["|Phi_k| paper"] for r in rows] == [1, 9, 6, 10]

    def test_figure1_rows_ordered(self):
        rows = figure1_rows()
        ccs = [r["CC"] for r in rows]
        assert ccs == sorted(ccs)
        assert rows[0]["|V|"] == 21

    def test_table2_row_tiny_scale(self):
        rows = table2_rows(scale=0.02, names=["p2p"])
        assert len(rows) == 1
        row = rows[0]
        assert row["dataset"] == "p2p"
        assert row["kmax"] == 5
        assert row["paper kmax"] == 5
        assert row["|E|"] > 0

    def test_table3_row_tiny_scale(self):
        rows = table3_rows(scale=0.03, names=["amazon"])
        row = rows[0]
        assert row["TD-inmem (s)"] > 0
        assert row["TD-inmem+ (s)"] > 0
        assert row["speedup"] > 0
        assert row["paper speedup"] == pytest.approx(68 / 31, rel=1e-6)

    def test_table6_row_tiny_scale(self):
        rows = table6_rows(scale=0.05, names=["btc"])
        row = rows[0]
        assert row["kmax"] == 7
        assert row["cmax"] > row["kmax"]  # the biclique core
        assert row["CC_T"] >= row["CC_C"]
