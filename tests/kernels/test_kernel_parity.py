"""Cross-backend kernel parity: every backend, every engine, one truth.

The kernel contract (see :mod:`repro.kernels`) promises bit-for-bit
interchangeable backends.  This suite promotes that promise to a
hypothesis property: every generated graph is decomposed by every
available backend under every engine configuration — flat, parallel at
jobs 1/2 in both shard modes, dist at ranks 1/2 over loopback — and
every run must reproduce the brute-force oracle *and* the reference
run's wave/level schedule exactly.  A numba leg mirrors the sweep and
skips wherever the optional package is absent (tier-1 CI); the tier-2
job installs numba and runs it for real.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import truss_decomposition
from repro.kernels import kernel_available

from helpers import peel_graphs
from oracles import brute_trussness

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

pytestmark = pytest.mark.skipif(
    np is None, reason="the kernel engines need the numpy substrate"
)

#: the engine matrix one backend must sweep: method plus its knobs
ENGINE_SWEEP = (
    ("flat", {}),
    ("parallel", {"jobs": 1, "shards": "dynamic"}),
    ("parallel", {"jobs": 1, "shards": "static"}),
    ("parallel", {"jobs": 2, "shards": "dynamic"}),
    ("parallel", {"jobs": 2, "shards": "static"}),
    ("dist", {"ranks": 1}),
    ("dist", {"ranks": 2}),
)

#: the schedule stats every engine records and every run must match
SCHEDULE_KEYS = ("waves", "levels", "max_wave")


def _sweep_backend(g, backend):
    """Run the full engine matrix on one backend vs oracle + reference."""
    oracle = brute_trussness(g)
    ref = truss_decomposition(g, method="flat", kernel="numpy")
    assert dict(ref.trussness) == oracle
    # an edgeless graph returns before any wave runs (no stats at all)
    schedule = {
        key: ref.stats.extra[key]
        for key in SCHEDULE_KEYS
        if g.num_edges
    }
    for method, knobs in ENGINE_SWEEP:
        td = truss_decomposition(g, method=method, kernel=backend, **knobs)
        assert dict(td.trussness) == oracle, (method, knobs, backend)
        got = {key: td.stats.extra[key] for key in schedule}
        assert got == schedule, (method, knobs, backend)
        if g.num_edges:
            assert td.stats.extra["kernel"] == backend, (method, knobs)


class TestBackendEngineParity:
    """Each backend × the engine matrix against the brute oracle."""

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(peel_graphs())
    def test_numpy_backend_sweep(self, g):
        _sweep_backend(g, "numpy")

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(peel_graphs())
    def test_python_backend_sweep(self, g):
        _sweep_backend(g, "python")

    @pytest.mark.skipif(
        not kernel_available("numba"),
        reason="optional numba backend not installed (tier-2 covers it)",
    )
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(peel_graphs())
    def test_numba_backend_sweep(self, g):
        _sweep_backend(g, "numba")


class TestBackendOpBitIdentity:
    """The five kernel ops, python vs numpy, on real wave inputs.

    The engine sweep above checks end-to-end results; this pins the
    per-op contract — same sorted/deduped arrays, element for element —
    on the first wave of real graphs, where a drift would otherwise be
    masked by downstream merging.
    """

    def _backends(self):
        from repro.kernels import get_kernel

        names = ["python", "numpy"]
        if kernel_available("numba"):
            names.append("numba")
        return [(name, get_kernel(name)) for name in names]

    @pytest.mark.parametrize("seed", [3, 17, 44])
    def test_first_wave_ops_identical(self, seed):
        from repro.core.flat import _as_csr
        from repro.triangles.index_builder import build_triangle_index

        from helpers import random_graph

        g = random_graph(24, 0.3, seed=seed)
        csr = _as_csr(g)
        m = csr.num_edges
        tri = build_triangle_index(csr)
        if not tri.num_triangles:
            pytest.skip("seed produced a triangle-free graph")
        sup0 = tri.initial_supports()
        k = int(sup0.min()) + 2
        frontier0 = np.flatnonzero(sup0 <= k - 2)
        outputs = []
        for name, kern in self._backends():
            sup = sup0.copy()
            alive = np.ones(m, dtype=bool)
            phi = np.zeros(m, dtype=np.int64)
            hist = np.bincount(sup)
            tdead = np.zeros(tri.num_triangles, dtype=bool)
            kern.pop_frontier(sup, alive, phi, hist, frontier0, k)
            hit = kern.gather_incident(
                tri.tptr, tri.tinc, frontier0, tdead
            )
            tdead[hit] = True
            touched, dec = kern.count_decrements(
                tri.e1, tri.e2, tri.e3, hit, alive
            )
            merged = kern.merge_decrements([(touched, dec)])
            nxt = kern.apply_decrements(sup, hist, touched, dec, k)
            outputs.append(
                (name, phi, hist, hit, touched, dec, merged, nxt, sup)
            )
        ref = outputs[0]
        for other in outputs[1:]:
            for field, a, b in zip(
                ("phi", "hist", "hit", "touched", "dec",
                 "merged", "next", "sup"),
                ref[1:], other[1:],
            ):
                if field == "merged":
                    assert np.array_equal(a[0], b[0])
                    assert np.array_equal(a[1], b[1])
                else:
                    assert np.array_equal(a, b), (
                        field, ref[0], other[0]
                    )

    @pytest.mark.parametrize("nbuf", [2, 3])
    def test_merge_decrements_multi_buffer(self, nbuf):
        """The coordinator reduction: overlapping buffers sum exactly."""
        rng = np.random.default_rng(9 + nbuf)
        buffers = []
        dense = np.zeros(50, dtype=np.int64)
        for _ in range(nbuf):
            ids = np.unique(rng.integers(0, 50, size=20))
            cnt = rng.integers(1, 5, size=ids.size)
            buffers.append((ids, cnt.astype(np.int64)))
            dense[ids] += cnt
        expect_ids = np.flatnonzero(dense)
        for name, kern in self._backends():
            touched, dec = kern.merge_decrements(buffers)
            assert np.array_equal(touched, expect_ids), name
            assert np.array_equal(dec, dense[expect_ids]), name
