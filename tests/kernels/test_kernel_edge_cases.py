"""Regression pins for the wave step's degenerate shapes.

Three graph shapes exercise the histogram/floor bookkeeping where an
off-by-one would hide: a triangle-free graph (the gather returns
nothing and the first wave must still retire every edge), a complete
graph (the whole edge set pops in a single wave — ``frontier.size ==
remaining``, so the histogram empties in one pop), and a triangle
strip (every edge lands in one trussness class but the level needs two
waves, so the sub-frontier path and the empty-frontier pop both run).
Each case pins the exact wave/level schedule across every engine and
available backend, plus direct unit pins for the empty-input kernel
calls the engines make on those paths.
"""

import itertools

import pytest

from repro.core import truss_decomposition
from repro.graph import Graph, complete_graph
from repro.kernels import available_kernels

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

pytestmark = pytest.mark.skipif(
    np is None, reason="the kernel engines need the numpy substrate"
)

#: every engine configuration the shape pins sweep
ENGINES = (
    ("flat", {}),
    ("parallel", {"jobs": 2, "shards": "dynamic"}),
    ("parallel", {"jobs": 2, "shards": "static"}),
    ("dist", {"ranks": 2}),
)


def _csr_backends():
    return [k for k in available_kernels() if k != "numba"] + (
        ["numba"] if "numba" in available_kernels() else []
    )


def _sweep(g, expect_phi, expect_waves, expect_levels):
    for backend in _csr_backends():
        for method, knobs in ENGINES:
            td = truss_decomposition(
                g, method=method, kernel=backend, **knobs
            )
            assert dict(td.trussness) == expect_phi, (method, backend)
            assert td.stats.extra["waves"] == expect_waves, (
                method, knobs, backend
            )
            assert td.stats.extra["levels"] == expect_levels, (
                method, knobs, backend
            )


class TestDegenerateShapes:
    def test_triangle_free_graph_single_wave(self):
        """A star: zero triangles, every edge pops in wave one at k=2."""
        g = Graph([(0, v) for v in range(1, 7)])
        expect = {(0, v): 2 for v in range(1, 7)}
        _sweep(g, expect, expect_waves=1, expect_levels=1)

    def test_complete_graph_single_wave(self):
        """K5: the frontier is the whole edge set — one wave, one level."""
        g = complete_graph(5)
        expect = {
            (u, v): 5 for u, v in itertools.combinations(range(5), 2)
        }
        _sweep(g, expect, expect_waves=1, expect_levels=1)

    def test_triangle_strip_one_level_two_waves(self):
        """Triangles (0,1,2),(1,2,3),(2,3,4): one class, two waves.

        The support-1 rim edges pop first; the shared edges (1,2) and
        (2,3) fall to the floor and pop in a second wave of the same
        level — every edge ends in the phi=3 class.
        """
        g = Graph(
            [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]
        )
        expect = {e: 3 for e in g.edges()}
        _sweep(g, expect, expect_waves=2, expect_levels=1)

    def test_empty_graph(self):
        g = Graph()
        g.add_vertex(0)
        for backend in _csr_backends():
            for method, knobs in ENGINES:
                td = truss_decomposition(
                    g, method=method, kernel=backend, **knobs
                )
                assert dict(td.trussness) == {}
                assert td.kmax == 2


class TestEmptyInputOps:
    """The kernel calls the engines make on degenerate waves."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_empty_frontier_pop_is_noop(self, backend):
        from repro.kernels import get_kernel

        kern = get_kernel(backend)
        sup = np.array([1, 2], dtype=np.int64)
        alive = np.ones(2, dtype=bool)
        phi = np.zeros(2, dtype=np.int64)
        hist = np.bincount(sup)
        empty = np.zeros(0, dtype=np.int64)
        kern.pop_frontier(sup, alive, phi, hist, empty, 3)
        assert alive.all() and not phi.any()
        assert np.array_equal(hist, np.bincount(sup))

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_empty_inputs_round_trip(self, backend):
        from repro.kernels import get_kernel

        kern = get_kernel(backend)
        empty = np.zeros(0, dtype=np.int64)
        tptr = np.zeros(3, dtype=np.int64)
        assert kern.gather_incident(tptr, empty, empty).size == 0
        col = np.zeros(0, dtype=np.int64)
        alive = np.ones(4, dtype=bool)
        touched, dec = kern.count_decrements(col, col, col, empty, alive)
        assert touched.size == 0 and dec.size == 0
        sup = np.array([3, 3], dtype=np.int64)
        hist = np.bincount(sup)
        out = kern.apply_decrements(sup, hist, touched, dec, 4)
        assert out.size == 0
        assert np.array_equal(hist, np.bincount(sup))

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_single_buffer_merge_passes_through(self, backend):
        from repro.kernels import get_kernel

        kern = get_kernel(backend)
        ids = np.array([1, 4, 9], dtype=np.int64)
        cnt = np.array([2, 1, 3], dtype=np.int64)
        touched, dec = kern.merge_decrements([(ids, cnt)])
        assert np.array_equal(touched, ids)
        assert np.array_equal(dec, cnt)

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_bounded_count_respects_shard_window(self, backend):
        """Partners outside [lo, hi) are skipped; base shifts outputs."""
        from repro.kernels import get_kernel

        kern = get_kernel(backend)
        # one triangle with partners 1, 3, 5; the owner of [2, 6) sees
        # only 3 and 5, reported shard-locally when base=lo
        e1 = np.array([1], dtype=np.int64)
        e2 = np.array([3], dtype=np.int64)
        e3 = np.array([5], dtype=np.int64)
        tris = np.array([0], dtype=np.int64)
        alive = np.ones(4, dtype=bool)
        touched, dec = kern.count_decrements(
            e1, e2, e3, tris, alive, lo=2, hi=6, base=2
        )
        assert np.array_equal(touched, np.array([1, 3]))
        assert np.array_equal(dec, np.array([1, 1]))
