"""The kernel registry's selection, gating and degradation contract."""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.core import truss_decomposition
from repro.errors import DecompositionError
from repro.graph import complete_graph
from repro.kernels import (
    KERNELS,
    available_kernels,
    get_kernel,
    kernel_available,
    resolve_kernel,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


class TestRegistry:
    def test_python_backend_always_available(self):
        assert kernel_available("python")
        assert "python" in available_kernels()
        assert get_kernel("python").name == "python"

    @pytest.mark.skipif(np is None, reason="numpy not installed")
    def test_numpy_backend_available_with_numpy(self):
        assert kernel_available("numpy")
        assert get_kernel("numpy").name == "numpy"

    def test_auto_prefers_most_compiled_available(self):
        order = ("numba", "numpy", "python")
        expect = next(n for n in order if kernel_available(n))
        assert resolve_kernel(None) == expect
        assert resolve_kernel("auto") == expect
        assert get_kernel().name == expect

    def test_instances_are_cached_per_process(self):
        assert get_kernel("python") is get_kernel("python")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(DecompositionError, match="unknown kernel"):
            resolve_kernel("cython")

    def test_unavailable_named_backend_raises_specific_message(self):
        if kernel_available("numba"):
            pytest.skip("numba installed; unavailability not testable")
        with pytest.raises(DecompositionError, match="numba"):
            resolve_kernel("numba")

    def test_registry_vocabulary(self):
        assert KERNELS == ("python", "numpy", "numba")
        assert set(available_kernels()) <= set(KERNELS)


class TestApiGating:
    """The ``kernel`` knob mirrors ``index_storage``'s method gate."""

    @pytest.mark.parametrize(
        "method", ["improved", "baseline", "bottomup", "topdown",
                    "mapreduce"]
    )
    def test_kernel_rejected_off_csr_methods(self, method):
        with pytest.raises(DecompositionError, match="kernel"):
            truss_decomposition(
                complete_graph(4), method=method, kernel="python"
            )

    @pytest.mark.skipif(np is None, reason="numpy not installed")
    @pytest.mark.parametrize("method", ["flat", "parallel", "dist"])
    def test_unknown_kernel_rejected_eagerly(self, method):
        with pytest.raises(DecompositionError, match="unknown kernel"):
            truss_decomposition(
                complete_graph(4), method=method, kernel="bogus"
            )

    @pytest.mark.skipif(np is None, reason="numpy not installed")
    def test_decompose_file_threads_kernel(self, tmp_path):
        from repro.core import decompose_file
        from repro.graph import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(complete_graph(5), path)
        td = decompose_file(path, method="flat", kernel="python")
        assert td.stats.extra["kernel"] == "python"
        assert td.kmax == 5

    def test_missing_numba_degrades_not_crashes(self):
        """``kernel="auto"`` never fails, with or without numba."""
        td = truss_decomposition(
            complete_graph(4), method="flat", kernel="auto"
        )
        assert td.kmax == 4


class TestCliGating:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from repro.graph import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(complete_graph(5), path)
        return path

    def test_kernel_rejected_off_csr_methods(self, graph_file, capsys):
        from repro.cli import main

        assert main([
            "decompose", str(graph_file), "--method", "improved",
            "--kernel", "numpy",
        ]) == 2
        assert "--kernel only applies" in capsys.readouterr().err

    @pytest.mark.skipif(np is None, reason="numpy not installed")
    @pytest.mark.parametrize("kernel", ["auto", "python", "numpy"])
    def test_kernel_flag_matches_flat_default(
        self, graph_file, tmp_path, kernel
    ):
        from repro.cli import main

        out = tmp_path / "phi.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(out),
            "--method", "flat", "--kernel", kernel,
        ]) == 0
        reference = tmp_path / "ref.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(reference),
            "--method", "flat",
        ]) == 0
        assert out.read_text() == reference.read_text()


class TestNumbaAbsentImportGuard:
    """The package must import and decompose with numba truly absent.

    Run in a subprocess whose meta path blocks ``numba`` imports, so
    the guard holds even on environments (the tier-2 CI leg) where
    numba *is* installed.
    """

    def test_import_and_decompose_without_numba(self):
        src_root = Path(repro.__file__).resolve().parent.parent
        code = textwrap.dedent(
            """
            import sys

            class _BlockNumba:
                def find_spec(self, name, path=None, target=None):
                    if name == "numba" or name.startswith("numba."):
                        raise ImportError("numba blocked for this test")
                    return None

            sys.meta_path.insert(0, _BlockNumba())

            from repro.core import truss_decomposition
            from repro.graph import complete_graph
            from repro.kernels import available_kernels, resolve_kernel

            kernels = available_kernels()
            assert "numba" not in kernels, kernels
            assert "python" in kernels, kernels
            assert resolve_kernel("auto") != "numba"
            td = truss_decomposition(
                complete_graph(5), method="flat", kernel="auto"
            )
            assert td.kmax == 5, td.kmax
            print("guard-ok")
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "guard-ok" in proc.stdout
