"""Unit tests for repro.exio.diskgraph.DiskAdjacencyGraph."""

import pytest
from hypothesis import given, settings

from repro.exio import DiskAdjacencyGraph, IOStats
from repro.graph import Graph, complete_graph

from helpers import small_edge_lists


def build(tmp_path, edges, memory_records=4, block_size=64):
    stats = IOStats(block_size=block_size)
    dg = DiskAdjacencyGraph.build_from_edges(
        edges, tmp_path / "g.adj", stats, tmp_path / "work",
        memory_records=memory_records,
    )
    return dg, stats


class TestBuild:
    def test_counts(self, tmp_path):
        dg, _ = build(tmp_path, complete_graph(5).edges())
        assert dg.num_vertices == 5
        assert dg.num_edges == 10
        assert dg.size == 15

    def test_empty(self, tmp_path):
        dg, _ = build(tmp_path, [])
        assert dg.num_vertices == 0
        assert dg.num_edges == 0
        assert list(dg.scan()) == []

    def test_duplicate_edges_collapse(self, tmp_path):
        dg, _ = build(tmp_path, [(1, 2), (2, 1), (1, 2)])
        assert dg.num_edges == 1

    def test_build_from_graph(self, tmp_path):
        g = complete_graph(4)
        stats = IOStats()
        dg = DiskAdjacencyGraph.build_from_graph(
            g, tmp_path / "g.adj", stats, tmp_path / "w"
        )
        assert set(dg.scan_edges()) == set(g.edges())

    def test_io_accounted(self, tmp_path):
        _, stats = build(tmp_path, complete_graph(10).edges(), memory_records=8)
        assert stats.blocks_written > 0
        assert stats.blocks_read > 0


class TestScan:
    def test_vertices_ascending_with_sorted_neighbors(self, tmp_path):
        dg, _ = build(tmp_path, [(3, 1), (1, 2), (3, 2), (0, 3)])
        rows = list(dg.scan())
        assert [v for v, _ in rows] == [0, 1, 2, 3]
        assert dict(rows)[3] == [0, 1, 2]

    def test_scan_edges_canonical_once(self, tmp_path):
        g = complete_graph(6)
        dg, _ = build(tmp_path, g.edges())
        edges = list(dg.scan_edges())
        assert len(edges) == 15
        assert set(edges) == set(g.edges())

    def test_scan_vertices_degrees(self, tmp_path):
        dg, _ = build(tmp_path, [(0, 1), (0, 2)])
        assert dict(dg.scan_vertices()) == {0: 2, 1: 1, 2: 1}

    def test_to_graph_roundtrip(self, tmp_path):
        g = complete_graph(5)
        dg, _ = build(tmp_path, g.edges())
        assert set(dg.to_graph().edges()) == set(g.edges())

    def test_each_scan_is_charged(self, tmp_path):
        dg, stats = build(tmp_path, complete_graph(4).edges())
        before = stats.snapshot()
        list(dg.scan())
        list(dg.scan())
        assert stats.delta_since(before).scans_started == 2

    def test_delete(self, tmp_path):
        dg, _ = build(tmp_path, [(0, 1)])
        dg.delete()
        assert not dg.path.exists()

    @settings(max_examples=20, deadline=None)
    @given(small_edge_lists())
    def test_roundtrip_property(self, edges):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as d:
            d = Path(d)
            stats = IOStats(block_size=32)
            dg = DiskAdjacencyGraph.build_from_edges(
                edges, d / "g.adj", stats, d / "w", memory_records=3
            )
            g = Graph(edges)
            assert set(dg.scan_edges()) == set(g.edges())
            assert dg.num_edges == g.num_edges
            assert dg.num_vertices == g.num_vertices
