"""Unit tests for repro.exio.iostats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exio import IOStats


class TestBlocksFor:
    def test_zero_and_negative(self):
        s = IOStats(block_size=100)
        assert s.blocks_for(0) == 0
        assert s.blocks_for(-5) == 0

    def test_partial_block_rounds_up(self):
        s = IOStats(block_size=100)
        assert s.blocks_for(1) == 1
        assert s.blocks_for(100) == 1
        assert s.blocks_for(101) == 2

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            IOStats(block_size=0)

    @given(st.integers(1, 10**9), st.integers(1, 10**6))
    def test_ceil_property(self, nbytes, bs):
        s = IOStats(block_size=bs)
        b = s.blocks_for(nbytes)
        assert (b - 1) * bs < nbytes <= b * bs


class TestAccounting:
    def test_read_write_accumulate(self):
        s = IOStats(block_size=10)
        s.account_read(25)
        s.account_write(5)
        assert s.bytes_read == 25
        assert s.blocks_read == 3
        assert s.bytes_written == 5
        assert s.blocks_written == 1
        assert s.total_blocks == 4
        assert s.total_bytes == 30

    def test_scans_and_seeks(self):
        s = IOStats()
        s.begin_scan()
        s.begin_scan()
        s.account_seek()
        assert s.scans_started == 2
        assert s.seeks == 1

    def test_merge(self):
        a = IOStats(block_size=10)
        b = IOStats(block_size=10)
        a.account_read(10)
        b.account_write(20)
        b.begin_scan()
        a.merge(b)
        assert a.blocks_read == 1
        assert a.blocks_written == 2
        assert a.scans_started == 1

    def test_merge_block_size_mismatch(self):
        with pytest.raises(ValueError):
            IOStats(block_size=10).merge(IOStats(block_size=20))

    def test_snapshot_and_delta(self):
        s = IOStats(block_size=10)
        s.account_read(10)
        snap = s.snapshot()
        s.account_read(30)
        s.account_write(10)
        d = s.delta_since(snap)
        assert d.bytes_read == 30
        assert d.blocks_read == 3
        assert d.bytes_written == 10
        # snapshot is independent
        snap.account_read(100)
        assert s.bytes_read == 40

    def test_summary_mentions_counts(self):
        s = IOStats(block_size=10)
        s.account_read(10)
        text = s.summary()
        assert "1 blk read" in text
        assert "B=10" in text
