"""Unit and property tests for repro.exio.extsort."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryBudgetError
from repro.exio import DIRECTED, EDGE, ExternalSorter, IOStats


def make_sorter(tmp_path, memory_records=4, fan_in=2, key=None, block_size=32):
    stats = IOStats(block_size=block_size)
    return (
        ExternalSorter(
            DIRECTED, tmp_path, stats, memory_records=memory_records,
            fan_in=fan_in, key=key,
        ),
        stats,
    )


class TestValidation:
    def test_zero_memory_rejected(self, tmp_path):
        with pytest.raises(MemoryBudgetError):
            ExternalSorter(EDGE, tmp_path, IOStats(), memory_records=0)

    def test_fan_in_too_small(self, tmp_path):
        with pytest.raises(ValueError):
            ExternalSorter(EDGE, tmp_path, IOStats(), memory_records=4, fan_in=1)


class TestSorting:
    def test_empty_input_produces_empty_file(self, tmp_path):
        sorter, _ = make_sorter(tmp_path)
        out = tmp_path / "out.bin"
        assert sorter.sort_to_file([], out) == 0
        assert out.exists()
        assert out.stat().st_size == 0

    def test_single_run(self, tmp_path):
        sorter, _ = make_sorter(tmp_path, memory_records=100)
        recs = [(3, 1), (1, 2), (2, 0)]
        assert list(sorter.sort_iter(recs)) == [(1, 2), (2, 0), (3, 1)]

    def test_multiple_runs_and_merge_passes(self, tmp_path):
        # 20 records, memory for 3, fan-in 2 => several merge passes
        sorter, stats = make_sorter(tmp_path, memory_records=3, fan_in=2)
        recs = [(i % 7, i) for i in range(20)]
        out = list(sorter.sort_iter(recs))
        assert out == sorted(recs)
        assert stats.blocks_written > 0
        assert stats.blocks_read > 0

    def test_custom_key(self, tmp_path):
        sorter, _ = make_sorter(tmp_path, key=lambda r: -r[0])
        recs = [(1, 0), (3, 0), (2, 0)]
        assert [r[0] for r in sorter.sort_iter(recs)] == [3, 2, 1]

    def test_duplicates_preserved(self, tmp_path):
        sorter, _ = make_sorter(tmp_path, memory_records=2)
        recs = [(5, 5)] * 7
        assert list(sorter.sort_iter(recs)) == recs

    def test_temp_runs_cleaned_up(self, tmp_path):
        sorter, _ = make_sorter(tmp_path, memory_records=2, fan_in=2)
        out = tmp_path / "out.bin"
        sorter.sort_to_file([(i, 0) for i in range(17)], out)
        leftovers = list(tmp_path.glob("extsort-*"))
        assert leftovers == []

    def test_sort_to_file_returns_count(self, tmp_path):
        sorter, _ = make_sorter(tmp_path, memory_records=3)
        out = tmp_path / "out.bin"
        assert sorter.sort_to_file([(i, i) for i in range(11)], out) == 11


class TestSortingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50)), max_size=60),
        st.integers(1, 8),
        st.integers(2, 4),
    )
    def test_matches_sorted(self, recs, memory_records, fan_in):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as d:
            sorter = ExternalSorter(
                DIRECTED, Path(d), IOStats(block_size=16),
                memory_records=memory_records, fan_in=fan_in,
            )
            assert list(sorter.sort_iter(recs)) == sorted(recs)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40))
    def test_stability_of_multiset(self, recs):
        """External sort must neither drop nor invent records."""
        import tempfile
        from collections import Counter
        from pathlib import Path

        with tempfile.TemporaryDirectory() as d:
            sorter = ExternalSorter(
                DIRECTED, Path(d), IOStats(block_size=16), memory_records=3
            )
            assert Counter(sorter.sort_iter(recs)) == Counter(recs)
