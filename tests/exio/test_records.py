"""Unit tests for repro.exio.records."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.exio import ATTR_EDGE, DIRECTED, EDGE, BlockReader, BlockWriter, IOStats

i64 = st.integers(min_value=-(2**62), max_value=2**62)


class TestCodecBasics:
    def test_sizes(self):
        assert EDGE.size == 16
        assert ATTR_EDGE.size == 24
        assert DIRECTED.size == 16

    def test_arity(self):
        assert EDGE.arity == 2
        assert ATTR_EDGE.arity == 3

    def test_pack_unpack(self):
        data = ATTR_EDGE.pack(1, 2, 3)
        assert ATTR_EDGE.unpack(data) == (1, 2, 3)

    def test_count_in(self):
        assert ATTR_EDGE.count_in(0) == 0
        assert ATTR_EDGE.count_in(48) == 2
        with pytest.raises(FormatError):
            ATTR_EDGE.count_in(47)

    @given(i64, i64, i64)
    def test_roundtrip_property(self, a, b, c):
        assert ATTR_EDGE.unpack(ATTR_EDGE.pack(a, b, c)) == (a, b, c)


class TestStreams:
    def test_write_then_read_stream(self, tmp_path):
        stats = IOStats(block_size=16)
        p = tmp_path / "r.bin"
        recs = [(1, 2, 10), (3, 4, 20), (5, 6, 30)]
        with BlockWriter(p, stats) as w:
            assert ATTR_EDGE.write_stream(w, recs) == 3
        with BlockReader(p, stats) as r:
            assert list(ATTR_EDGE.read_stream(r)) == recs

    def test_empty_stream(self, tmp_path):
        stats = IOStats()
        p = tmp_path / "r.bin"
        with BlockWriter(p, stats) as w:
            assert EDGE.write_stream(w, []) == 0
        with BlockReader(p, stats) as r:
            assert list(EDGE.read_stream(r)) == []

    def test_truncated_stream_raises(self, tmp_path):
        stats = IOStats()
        p = tmp_path / "r.bin"
        p.write_bytes(b"\x00" * 20)  # not a multiple of 16
        with BlockReader(p, stats) as r:
            it = EDGE.read_stream(r)
            assert next(it) == (0, 0)
            with pytest.raises(EOFError):
                next(it)
