"""Failure injection: corrupted and truncated on-disk state.

A library that owns on-disk formats must fail loudly and precisely on
damaged input, never by silently mis-parsing.  These tests damage files
in targeted ways and assert the exact failure surface.
"""

import os

import pytest

from repro.errors import FormatError
from repro.exio import ATTR_EDGE, DiskAdjacencyGraph, DiskEdgeFile, IOStats
from repro.graph import complete_graph


class TestTruncatedEdgeFiles:
    def test_reopen_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "e.bin"
        DiskEdgeFile.from_records(path, [(1, 2, 3), (4, 5, 6)], IOStats())
        # chop mid-record
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(FormatError):
            DiskEdgeFile(path, IOStats())

    def test_scan_of_externally_truncated_file_raises(self, tmp_path):
        path = tmp_path / "e.bin"
        f = DiskEdgeFile.from_records(path, [(1, 2, 3)] * 4, IOStats())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])
        with pytest.raises(EOFError):
            list(f.scan())

    def test_appended_garbage_detected_on_reopen(self, tmp_path):
        path = tmp_path / "e.bin"
        DiskEdgeFile.from_records(path, [(1, 2, 3)], IOStats())
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02\x03")
        with pytest.raises(FormatError):
            DiskEdgeFile(path, IOStats())


class TestDamagedAdjacencyFiles:
    def _build(self, tmp_path):
        stats = IOStats()
        return DiskAdjacencyGraph.build_from_graph(
            complete_graph(6), tmp_path / "g.adj", stats, tmp_path / "w"
        )

    def test_truncated_neighbor_list_raises(self, tmp_path):
        dg = self._build(tmp_path)
        data = dg.path.read_bytes()
        dg.path.write_bytes(data[:-4])
        with pytest.raises(EOFError):
            list(dg.scan())

    def test_negative_degree_detected(self, tmp_path):
        dg = self._build(tmp_path)
        data = bytearray(dg.path.read_bytes())
        # the second header word is vertex 0's degree; make it negative
        import struct

        struct.pack_into("<q", data, 8, -3)
        dg.path.write_bytes(bytes(data))
        with pytest.raises(FormatError):
            list(dg.scan())


class TestRewriteAtomicity:
    def test_failed_transform_leaves_original_intact(self, tmp_path):
        path = tmp_path / "e.bin"
        f = DiskEdgeFile.from_records(
            path, [(1, 2, 3), (4, 5, 6)], IOStats()
        )

        def exploding(rec):
            if rec[0] == 4:
                raise RuntimeError("boom")
            return rec

        with pytest.raises(RuntimeError):
            f.rewrite(exploding)
        # the original file was never replaced
        fresh = DiskEdgeFile(path, IOStats())
        assert list(fresh.scan()) == [(1, 2, 3), (4, 5, 6)]

    def test_temp_rewrite_file_not_left_behind(self, tmp_path):
        path = tmp_path / "e.bin"
        f = DiskEdgeFile.from_records(path, [(1, 2, 3)], IOStats())
        f.rewrite(lambda rec: rec)
        leftovers = [p for p in tmp_path.iterdir() if "rewrite" in p.name]
        assert leftovers == []
