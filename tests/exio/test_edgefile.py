"""Unit tests for repro.exio.edgefile.DiskEdgeFile."""

import pytest

from repro.exio import DiskEdgeFile, IOStats


@pytest.fixture
def stats():
    return IOStats(block_size=48)


class TestConstruction:
    def test_empty_file(self, tmp_path, stats):
        f = DiskEdgeFile(tmp_path / "e.bin", stats)
        assert len(f) == 0
        assert f.is_empty
        assert list(f.scan()) == []

    def test_from_records(self, tmp_path, stats):
        f = DiskEdgeFile.from_records(
            tmp_path / "e.bin", [(1, 2, 3), (4, 5, 6)], stats
        )
        assert len(f) == 2
        assert list(f.scan()) == [(1, 2, 3), (4, 5, 6)]

    def test_from_edges_constant_attr(self, tmp_path, stats):
        f = DiskEdgeFile.from_edges(tmp_path / "e.bin", [(1, 2), (3, 4)], stats, attr=7)
        assert list(f.scan()) == [(1, 2, 7), (3, 4, 7)]

    def test_reopen_existing_recovers_count(self, tmp_path, stats):
        path = tmp_path / "e.bin"
        DiskEdgeFile.from_records(path, [(1, 2, 0)] * 5, stats)
        g = DiskEdgeFile(path, stats)
        assert len(g) == 5

    def test_append_normalizes_orientation(self, tmp_path, stats):
        f = DiskEdgeFile(tmp_path / "e.bin", stats)
        f.append([(9, 2, 1)])
        assert list(f.scan()) == [(2, 9, 1)]

    def test_scan_edges_strips_attr(self, tmp_path, stats):
        f = DiskEdgeFile.from_records(tmp_path / "e.bin", [(1, 2, 99)], stats)
        assert list(f.scan_edges()) == [(1, 2)]


class TestRewrite:
    def test_rewrite_transform_and_drop(self, tmp_path, stats):
        f = DiskEdgeFile.from_records(
            tmp_path / "e.bin", [(1, 2, 0), (3, 4, 0), (5, 6, 0)], stats
        )
        kept = f.rewrite(lambda rec: None if rec[0] == 3 else (rec[0], rec[1], 9))
        assert kept == 2
        assert list(f.scan()) == [(1, 2, 9), (5, 6, 9)]
        assert len(f) == 2

    def test_rewrite_accounts_io(self, tmp_path, stats):
        f = DiskEdgeFile.from_records(tmp_path / "e.bin", [(1, 2, 0)] * 10, stats)
        before = stats.snapshot()
        f.rewrite(lambda rec: rec)
        d = stats.delta_since(before)
        assert d.bytes_read == 240
        assert d.bytes_written == 240

    def test_remove_edges_single_chunk(self, tmp_path, stats):
        f = DiskEdgeFile.from_records(
            tmp_path / "e.bin", [(1, 2, 0), (3, 4, 0), (5, 6, 0)], stats
        )
        removed = f.remove_edges([(2, 1), (5, 6)])
        assert removed == 2
        assert list(f.scan_edges()) == [(3, 4)]

    def test_remove_edges_chunked_multiple_scans(self, tmp_path, stats):
        f = DiskEdgeFile.from_records(
            tmp_path / "e.bin", [(i, i + 1, 0) for i in range(0, 20, 2)], stats
        )
        before = stats.snapshot()
        removed = f.remove_edges(
            [(0, 1), (2, 3), (4, 5), (6, 7)], chunk_size=2
        )
        assert removed == 4
        # two chunks => two read scans in the rewrite phase
        assert stats.delta_since(before).scans_started == 2
        assert len(f) == 6

    def test_remove_edges_empty_noop(self, tmp_path, stats):
        f = DiskEdgeFile.from_records(tmp_path / "e.bin", [(1, 2, 0)], stats)
        before = stats.snapshot()
        assert f.remove_edges([]) == 0
        assert stats.delta_since(before).total_blocks == 0

    def test_update_attrs(self, tmp_path, stats):
        f = DiskEdgeFile.from_records(
            tmp_path / "e.bin", [(1, 2, 0), (3, 4, 0)], stats
        )
        assert f.update_attrs({(1, 2): 42}) == 1
        assert list(f.scan()) == [(1, 2, 42), (3, 4, 0)]

    def test_delete(self, tmp_path, stats):
        f = DiskEdgeFile.from_records(tmp_path / "e.bin", [(1, 2, 0)], stats)
        f.delete()
        assert not f.path.exists()
        assert len(f) == 0
