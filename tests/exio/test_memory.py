"""Unit tests for repro.exio.memory.MemoryBudget."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryBudgetError
from repro.exio import UNBOUNDED, MemoryBudget
from repro.graph import complete_graph


class TestBudget:
    def test_too_small_rejected(self):
        with pytest.raises(MemoryBudgetError):
            MemoryBudget(units=3)

    def test_fits(self):
        b = MemoryBudget(units=20)
        assert b.fits(20)
        assert not b.fits(21)

    def test_fits_graph(self):
        g = complete_graph(4)  # size = 4 + 6 = 10
        assert MemoryBudget(units=10).fits_graph(g)
        assert not MemoryBudget(units=9).fits_graph(g)

    def test_num_partitions_matches_paper_formula(self):
        b = MemoryBudget(units=10)
        # p >= 2|G|/M
        assert b.num_partitions(5) == 1
        assert b.num_partitions(10) == 2
        assert b.num_partitions(11) == 3
        assert b.num_partitions(0) == 1

    def test_partition_capacity_is_half_m(self):
        assert MemoryBudget(units=10).partition_capacity() == 5
        assert MemoryBudget(units=5).partition_capacity() == 2

    def test_require_fits(self):
        b = MemoryBudget(units=10)
        b.require_fits(10, "thing")
        with pytest.raises(MemoryBudgetError):
            b.require_fits(11, "thing")

    def test_unbounded_fits_everything(self):
        assert UNBOUNDED.fits(10**15)
        assert UNBOUNDED.num_partitions(10**12) == 1

    @given(st.integers(4, 10**6), st.integers(0, 10**7))
    def test_partition_count_sufficient(self, m_units, g_size):
        """p partitions of capacity M/2 can hold the whole graph."""
        b = MemoryBudget(units=m_units)
        p = b.num_partitions(g_size)
        assert p * b.units >= 2 * g_size or p == 1 and g_size == 0 or (
            p * b.partition_capacity() * 2 + 2 * p >= g_size
        )
