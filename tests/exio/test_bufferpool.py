"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import MemoryBudgetError
from repro.exio import BufferPool, IOStats


@pytest.fixture
def data_file(tmp_path):
    p = tmp_path / "data.bin"
    p.write_bytes(bytes(range(256)) * 4)  # 1024 bytes
    return p


class TestBufferPool:
    def test_capacity_validation(self, data_file):
        with pytest.raises(MemoryBudgetError):
            BufferPool(data_file, IOStats(), capacity_pages=0)

    def test_read_page_roundtrip(self, data_file):
        stats = IOStats(block_size=256)
        with BufferPool(data_file, stats, capacity_pages=2) as pool:
            assert pool.read_page(0) == bytes(range(256))
            assert pool.read_page(3) == bytes(range(256))

    def test_hit_and_miss_accounting(self, data_file):
        stats = IOStats(block_size=256)
        with BufferPool(data_file, stats, capacity_pages=2) as pool:
            pool.read_page(0)
            pool.read_page(0)
            pool.read_page(1)
            assert pool.misses == 2
            assert pool.hits == 1
            assert pool.hit_rate == pytest.approx(1 / 3)
            assert stats.blocks_read == 2

    def test_lru_eviction(self, data_file):
        stats = IOStats(block_size=256)
        with BufferPool(data_file, stats, capacity_pages=2) as pool:
            pool.read_page(0)
            pool.read_page(1)
            pool.read_page(0)  # 0 most recent; 1 is LRU
            pool.read_page(2)  # evicts 1
            assert pool.evictions == 1
            pool.read_page(0)  # still cached
            assert pool.hits == 2
            pool.read_page(1)  # miss again
            assert pool.misses == 4

    def test_seeks_charged_for_nonsequential(self, data_file):
        stats = IOStats(block_size=256)
        with BufferPool(data_file, stats, capacity_pages=8) as pool:
            pool.read_page(0)  # first fetch: a seek
            pool.read_page(1)  # sequential successor: no seek
            pool.read_page(3)  # jump: seek
        assert stats.seeks == 2

    def test_read_range_within_and_across_pages(self, data_file):
        stats = IOStats(block_size=256)
        with BufferPool(data_file, stats, capacity_pages=4) as pool:
            assert pool.read_range(10, 5) == bytes(range(10, 15))
            assert pool.read_range(250, 12) == bytes(range(250, 256)) + bytes(
                range(0, 6)
            )
            assert pool.read_range(5, 0) == b""

    def test_read_range_past_eof_raises(self, data_file):
        stats = IOStats(block_size=256)
        with BufferPool(data_file, stats, capacity_pages=2) as pool:
            with pytest.raises(EOFError):
                pool.read_range(1020, 10)
