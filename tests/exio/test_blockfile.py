"""Unit tests for repro.exio.blockfile."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exio import BlockReader, BlockWriter, IOStats, file_size, remove_if_exists


class TestBlockWriter:
    def test_roundtrip_bytes(self, tmp_path):
        stats = IOStats(block_size=8)
        p = tmp_path / "f.bin"
        with BlockWriter(p, stats) as w:
            w.write(b"hello")
            w.write(b"world!!")
        assert p.read_bytes() == b"helloworld!!"
        assert stats.bytes_written == 12
        assert stats.blocks_written == 2  # 8 + 4

    def test_append_mode(self, tmp_path):
        stats = IOStats(block_size=4)
        p = tmp_path / "f.bin"
        with BlockWriter(p, stats) as w:
            w.write(b"abcd")
        with BlockWriter(p, stats, append=True) as w:
            w.write(b"ef")
        assert p.read_bytes() == b"abcdef"

    def test_write_after_close_raises(self, tmp_path):
        stats = IOStats()
        w = BlockWriter(tmp_path / "f.bin", stats)
        w.close()
        with pytest.raises(ValueError):
            w.write(b"x")
        w.close()  # double close is fine

    def test_empty_file_no_blocks(self, tmp_path):
        stats = IOStats()
        with BlockWriter(tmp_path / "f.bin", stats):
            pass
        assert stats.blocks_written == 0
        assert file_size(tmp_path / "f.bin") == 0


class TestBlockReader:
    def test_read_exactly(self, tmp_path):
        stats = IOStats(block_size=4)
        p = tmp_path / "f.bin"
        p.write_bytes(b"abcdefgh")
        with BlockReader(p, stats) as r:
            assert r.read_exactly(3) == b"abc"
            assert r.read_exactly(5) == b"defgh"
            assert r.read_exactly(4) == b""  # clean EOF
        assert stats.blocks_read == 2
        assert stats.scans_started == 1

    def test_truncated_record_raises(self, tmp_path):
        stats = IOStats(block_size=4)
        p = tmp_path / "f.bin"
        p.write_bytes(b"abc")
        with BlockReader(p, stats) as r:
            with pytest.raises(EOFError):
                r.read_exactly(5)

    def test_spanning_blocks(self, tmp_path):
        stats = IOStats(block_size=2)
        p = tmp_path / "f.bin"
        p.write_bytes(bytes(range(10)))
        with BlockReader(p, stats) as r:
            assert r.read_exactly(7) == bytes(range(7))
        assert stats.blocks_read >= 4

    @settings(max_examples=20)
    @given(st.binary(max_size=200), st.integers(1, 16))
    def test_roundtrip_property(self, payload, bs):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as d:
            p = Path(d) / "f.bin"
            stats = IOStats(block_size=bs)
            with BlockWriter(p, stats) as w:
                w.write(payload)
            with BlockReader(p, stats) as r:
                assert r.read_exactly(len(payload)) == payload
            assert stats.bytes_written == len(payload)
            assert stats.bytes_read == len(payload)


class TestHelpers:
    def test_file_size_missing(self, tmp_path):
        assert file_size(tmp_path / "nope") == 0

    def test_remove_if_exists(self, tmp_path):
        p = tmp_path / "f"
        p.write_text("x")
        remove_if_exists(p)
        assert not p.exists()
        remove_if_exists(p)  # no error on missing
