"""The HTTP surface, in-thread: routes, headers, shed paths, spans."""

from __future__ import annotations

import http.client
import json
import socket
from types import SimpleNamespace

import pytest

from repro.graph import Graph, write_edge_list
from repro.obs import Tracer, validate_event
from repro.serve.http import TrussHTTPServer
from repro.serve.server import _local_write
from repro.serve.service import TrussService

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3), (4, 5)]


def _start(tmp_path, **service_kw):
    path = tmp_path / "g.txt"
    write_edge_list(Graph(EDGES), path)
    service_kw.setdefault("kernel", "python")
    tracer = service_kw.pop("tracer", None)
    svc = TrussService(tmp_path / "data", path, tracer=tracer, **service_kw)
    svc.open()
    sock = socket.create_server(("127.0.0.1", 0))
    httpd = TrussHTTPServer(
        sock,
        reader=svc.reader,
        write_fn=lambda updates, deadline: _local_write(
            svc, updates, deadline
        ),
        metrics_fn=svc.metrics_text,
        registry=svc.registry,
        tracer=tracer,
        deadline_ms=2000.0,
        max_inflight=4,
        client_timeout=5.0,
    )
    httpd.serve_background(poll_interval=0.02)
    return SimpleNamespace(
        svc=svc, httpd=httpd, port=sock.getsockname()[1], tracer=tracer
    )


@pytest.fixture
def served(tmp_path):
    box = _start(tmp_path)
    yield box
    box.httpd.shutdown()
    box.httpd.server_close()
    box.svc.close()


def _request(box, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", box.port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        data = resp.read()
        hdrs = {k.lower(): v for k, v in resp.getheaders()}
        return resp.status, hdrs, data
    finally:
        conn.close()


def _get_json(box, path, **kw):
    status, hdrs, data = _request(box, "GET", path, **kw)
    return status, hdrs, json.loads(data)


class TestReads:
    def test_edge_lookup(self, served):
        status, hdrs, doc = _get_json(served, "/edge/0/1/trussness")
        assert status == 200
        assert doc == {"u": 0, "v": 1, "trussness": 4}
        assert hdrs["x-repro-generation"] == str(served.svc.gen)
        assert hdrs["x-repro-stale"] == "0"

    def test_edge_order_is_canonicalized(self, served):
        status, _, doc = _get_json(served, "/edge/1/0/trussness")
        assert status == 200 and doc["trussness"] == 4

    def test_missing_edge_is_404(self, served):
        status, hdrs, doc = _get_json(served, "/edge/0/99/trussness")
        assert status == 404 and doc["error"] == "no such edge"
        assert "x-repro-generation" in hdrs  # still stamped

    def test_community_explicit_k(self, served):
        status, _, doc = _get_json(served, "/community/0?k=4")
        assert status == 200
        assert doc["num_vertices"] == 4 and doc["num_edges"] == 6
        assert [4, 5] not in [e[:2] for e in doc["edges"]]

    def test_community_defaults_to_max_k(self, served):
        _, _, doc = _get_json(served, "/community/0")
        assert doc["k"] == 4

    def test_community_bad_k_is_400(self, served):
        status, _, doc = _get_json(served, "/community/0?k=banana")
        assert status == 400 and "integer" in doc["error"]

    def test_community_unknown_vertex_is_404(self, served):
        status, _, _ = _get_json(served, "/community/99?k=3")
        assert status == 404

    def test_dump_matches_decomposition(self, served):
        status, _, data = _request(served, "GET", "/dump")
        view, _ = served.svc.reader.current()
        assert status == 200
        assert data.decode() == "\n".join(view.dump_lines()) + "\n"

    def test_unknown_route_is_404(self, served):
        status, _, doc = _get_json(served, "/no/such/route")
        assert status == 404 and "no route" in doc["error"]


class TestHealth:
    def test_healthz_readyz_metrics(self, served):
        assert _request(served, "GET", "/healthz")[0] == 200
        assert _request(served, "GET", "/readyz")[0] == 200
        status, _, data = _request(served, "GET", "/metrics")
        assert status == 200
        text = data.decode()
        # one exposition merging the service and maintainer registries
        assert "repro_serve_publishes_total" in text
        assert "repro_http_requests_total" in text


class TestWrites:
    def test_post_edge_json_body(self, served):
        body = json.dumps({"u": 5, "v": 6})
        status, _, data = _request(
            served, "POST", "/edges", body=body,
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        doc = json.loads(data)
        assert doc["applied"] == 1 and doc["seq"] == 1
        assert _get_json(served, "/edge/5/6/trussness")[0] == 200

    def test_delete_edge_query_params(self, served):
        status, _, data = _request(served, "DELETE", "/edges?u=4&v=5")
        assert status == 200 and json.loads(data)["applied"] == 1
        assert _get_json(served, "/edge/4/5/trussness")[0] == 404

    def test_post_edge_bad_body_is_400(self, served):
        status, _, _ = _request(served, "POST", "/edges", body="not json")
        assert status == 400

    def test_post_edge_missing_endpoints_is_400(self, served):
        status, _, doc = _get_json(served, "/edges")  # GET has no route
        assert status == 404
        status, _, data = _request(served, "POST", "/edges")
        assert status == 400
        assert "missing edge endpoints" in json.loads(data)["error"]

    def test_post_updates_bulk(self, served):
        body = "+ 5 6\n# comment\n\n- 0 3\n"
        status, _, data = _request(served, "POST", "/updates", body=body)
        assert status == 200
        doc = json.loads(data)
        assert doc["applied"] == 2 and doc["seq"] == 2

    def test_post_updates_bad_line_is_400(self, served):
        status, _, data = _request(
            served, "POST", "/updates", body="+ 1 2\n* 3 4\n"
        )
        assert status == 400
        assert "body:2" in json.loads(data)["error"]


class TestStaleness:
    def test_deferred_publish_sets_stale_header(self, tmp_path):
        box = _start(tmp_path, snapshot_every=3)
        try:
            _request(box, "POST", "/edges",
                     body=json.dumps({"u": 5, "v": 6}))
            # applied but unpublished: the view cannot see it yet
            status, hdrs, _ = _get_json(box, "/edge/5/6/trussness")
            assert status == 404 and hdrs["x-repro-stale"] == "1"
            for u, v in [(5, 7), (6, 7)]:
                _request(box, "POST", "/edges",
                         body=json.dumps({"u": u, "v": v}))
            status, hdrs, _ = _get_json(box, "/edge/5/6/trussness")
            assert status == 200 and hdrs["x-repro-stale"] == "0"
        finally:
            box.httpd.shutdown()
            box.httpd.server_close()
            box.svc.close()


class TestShedding:
    def test_expired_deadline_is_504(self, served):
        served.httpd.deadline_s = -1.0  # every deadline is already past
        try:
            status, _, doc = _get_json(served, "/edge/0/1/trussness")
        finally:
            served.httpd.deadline_s = 2.0
        assert status == 504 and doc["error"] == "deadline expired"

    def test_deadline_header_overrides_default(self, served):
        status, _, _ = _get_json(
            served, "/edge/0/1/trussness",
            headers={"X-Deadline-Ms": "5000"},
        )
        assert status == 200

    def test_full_inflight_window_is_503(self, served):
        held = 0
        while served.httpd.inflight.acquire(blocking=False):
            held += 1
        try:
            status, hdrs, doc = _get_json(served, "/edge/0/1/trussness")
            assert status == 503 and hdrs["retry-after"] == "1"
            assert "capacity" in doc["error"]
            # health and metrics bypass admission control
            assert _request(served, "GET", "/healthz")[0] == 200
            assert _request(served, "GET", "/metrics")[0] == 200
        finally:
            for _ in range(held):
                served.httpd.inflight.release()
        assert 'reason="inflight"' in served.svc.registry.to_prometheus()


class TestObservability:
    def test_request_spans_and_counters(self, tmp_path):
        box = _start(tmp_path, tracer=Tracer(sink=None))
        try:
            _get_json(box, "/edge/0/1/trussness")
            _request(box, "POST", "/edges", body=json.dumps({"u": 5, "v": 6}))
            _get_json(box, "/edge/0/99/trussness")
        finally:
            box.httpd.shutdown()
            box.httpd.server_close()
            box.svc.close()
        events = box.tracer.drain()
        for event in events:
            validate_event(event)
        spans = [e for e in events if e["name"] == "request"]
        assert len(spans) == 3
        by_route = {
            (e["attrs"]["route"], e["attrs"]["status"]) for e in spans
        }
        assert ("/edge/{u}/{v}/trussness", 200) in by_route
        assert ("/edge/{u}/{v}/trussness", 404) in by_route
        assert ("/edges", 200) in by_route
        text = box.svc.registry.to_prometheus()
        assert 'repro_http_requests_total{route="/edges",status="200"}' in text
