"""Snapshot generations: atomicity, tears, pruning, maintainer round-trips."""

from __future__ import annotations

import json

import pytest

from repro.core import truss_decomposition
from repro.graph import Graph, complete_graph, write_edge_list
from repro.serve import snapshot as snap
from repro.serve.chaos import tear_snapshot
from repro.stream import TrussMaintainer

PHI = {(0, 1): 3, (0, 2): 3, (1, 2): 4}
SUP = {(0, 1): 1, (0, 2): 1, (1, 2): 2}


class TestGenerations:
    def test_write_load_roundtrip(self, tmp_path):
        snap.write_generation(tmp_path, 0, PHI, SUP, wal_seq=7)
        phi, sup, wal_seq = snap.load_generation(tmp_path, 0)
        assert (phi, sup, wal_seq) == (PHI, SUP, 7)

    def test_want_sup_false(self, tmp_path):
        snap.write_generation(tmp_path, 0, PHI, SUP, wal_seq=0)
        phi, sup, _ = snap.load_generation(tmp_path, 0, want_sup=False)
        assert phi == PHI and sup is None

    def test_mismatched_keysets_refused(self, tmp_path):
        with pytest.raises(snap.SnapshotError):
            snap.write_generation(tmp_path, 0, PHI, {(0, 1): 1}, wal_seq=0)

    def test_empty_state_roundtrips(self, tmp_path):
        snap.write_generation(tmp_path, 3, {}, {}, wal_seq=2)
        phi, sup, wal_seq = snap.load_generation(tmp_path, 3)
        assert (phi, sup, wal_seq) == ({}, {}, 2)

    @pytest.mark.parametrize("mode", ["truncate", "flip", "manifest"])
    def test_torn_generation_never_validates(self, tmp_path, mode):
        snap.write_generation(tmp_path, 0, PHI, SUP, wal_seq=0)
        tear_snapshot(tmp_path, mode=mode)
        assert not snap.generation_valid(tmp_path, 0)
        with pytest.raises(snap.SnapshotError):
            snap.load_generation(tmp_path, 0)

    def test_latest_valid_skips_torn_newest(self, tmp_path):
        snap.write_generation(tmp_path, 0, PHI, SUP, wal_seq=1)
        snap.write_generation(tmp_path, 1, PHI, SUP, wal_seq=5)
        tear_snapshot(tmp_path, gen=1, mode="truncate")
        assert snap.latest_valid_generation(tmp_path) == 0

    def test_prune_keeps_newest_two_valid(self, tmp_path):
        for gen in range(4):
            snap.write_generation(tmp_path, gen, PHI, SUP, wal_seq=gen)
        snap.prune_generations(tmp_path)
        assert snap.generations(tmp_path) == [2, 3]
        # the WAL may be pruned only to the *oldest retained* gen
        assert snap.oldest_retained_wal_seq(tmp_path) == 2

    def test_prune_spares_torn_newer_than_cutoff(self, tmp_path):
        for gen in range(3):
            snap.write_generation(tmp_path, gen, PHI, SUP, wal_seq=gen)
        tear_snapshot(tmp_path, gen=2, mode="truncate")
        snap.prune_generations(tmp_path)
        # valid gens are 0,1 -> both kept; the torn 2 is newer than the
        # cutoff and left alone
        assert snap.generations(tmp_path) == [0, 1, 2]

    def test_manifest_gen_mismatch_detected(self, tmp_path):
        snap.write_generation(tmp_path, 0, PHI, SUP, wal_seq=0)
        man = tmp_path / "gen_00000000" / snap.MANIFEST
        doc = json.loads(man.read_text())
        doc["gen"] = 9
        man.write_text(json.dumps(doc))
        assert not snap.generation_valid(tmp_path, 0)


class TestHead:
    def test_roundtrip(self, tmp_path):
        snap.write_head(tmp_path, 4, 17, 19)
        assert snap.read_head(tmp_path) == {
            "gen": 4, "wal_seq": 17, "applied_seq": 19,
        }

    def test_absent_or_garbage_is_none(self, tmp_path):
        assert snap.read_head(tmp_path) is None
        (tmp_path / snap.HEAD).write_text("{not json")
        assert snap.read_head(tmp_path) is None
        (tmp_path / snap.HEAD).write_text('{"gen": "x"}')
        assert snap.read_head(tmp_path) is None


def _flat_phi(edges):
    return dict(
        truss_decomposition(Graph(sorted(edges)), method="flat",
                            kernel="python").trussness
    )


class TestMaintainerRoundTrip:
    """Snapshot -> ``from_state`` -> further updates stays bit-identical."""

    def _seed(self, tmp_path):
        g = complete_graph(5)
        g.add_edge(0, 10)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        return g, TrussMaintainer.from_graph(g, kernel="python")

    def test_reload_then_update_matches_fresh(self, tmp_path):
        _, tm = self._seed(tmp_path)
        tm.apply_batch([("insert", 1, 10), ("insert", 2, 10)])
        snap.write_generation(
            tmp_path, 0, dict(tm.trussness), dict(tm.supports), wal_seq=2
        )
        phi, sup, _ = snap.load_generation(tmp_path, 0)
        reloaded = TrussMaintainer.from_state(phi, sup, kernel="python")
        later = [("insert", 3, 10), ("delete", 0, 1), ("insert", 0, 11)]
        tm.apply_batch(later)
        reloaded.apply_batch(later)
        assert dict(reloaded.trussness) == dict(tm.trussness)
        assert dict(reloaded.supports) == dict(tm.supports)

    def test_eid_shifting_insert_after_reload(self, tmp_path):
        """An insert that lands mid-sort-order (shifting every packed
        row behind it) must not disturb the reloaded state."""
        _, tm = self._seed(tmp_path)
        snap.write_generation(
            tmp_path, 0, dict(tm.trussness), dict(tm.supports), wal_seq=0
        )
        phi, sup, _ = snap.load_generation(tmp_path, 0)
        reloaded = TrussMaintainer.from_state(phi, sup, kernel="python")
        # (1, 2) already exists; (1, 10) sorts between (1, 4) and (2, 3)
        reloaded.apply_batch([("insert", 1, 10), ("insert", 2, 10)])
        edges = set(phi) | {(1, 10), (2, 10)}
        assert dict(reloaded.trussness) == _flat_phi(edges)

    def test_from_state_validates_keys(self):
        with pytest.raises(Exception):
            TrussMaintainer.from_state({(1, 0): 2}, {(1, 0): 0})  # u > v
        with pytest.raises(Exception):
            TrussMaintainer.from_state({(0, 1): 2}, {})  # keyset mismatch
