"""Chaos pins against real ``repro serve`` subprocesses.

The survivability contract, end to end: a SIGKILL mid-batch must
recover to the exact state the acks promised (byte-identical to a
fresh flat decomposition), torn artifacts must be skipped, Ctrl-C must
reap every process, and flood load must shed within deadlines while
reads keep answering.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import truss_decomposition
from repro.graph import Graph, complete_graph, write_edge_list
from repro.serve.chaos import (
    CRASH_EXIT,
    ServerProcess,
    flood,
    kill_mid_batch,
    slow_loris,
    tear_snapshot,
    tear_wal_tail,
)
from repro.serve.server import ENDPOINT

UPDATES = [
    ("insert", 0, 10), ("insert", 1, 10), ("insert", 2, 10),
    ("insert", 3, 10), ("delete", 0, 1),
]


def _graph_file(tmp_path):
    g = complete_graph(5)
    g.add_edge(0, 5)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    return g, path


def _expected_dump(g, updates):
    """The ``/dump`` body a fresh flat decomposition would produce."""
    edges = {tuple(sorted(e)) for e in g.edges()}
    for op, u, v in updates:
        key = (u, v) if u < v else (v, u)
        if op == "insert":
            edges.add(key)
        else:
            edges.discard(key)
    result = truss_decomposition(
        Graph(sorted(edges)), method="flat", kernel="python"
    )
    phi = dict(result.trussness)
    return "\n".join(f"{u} {v} {phi[(u, v)]}" for u, v in sorted(phi)) + "\n"


def _serve_procs(tag: str):
    """PIDs of every live ``repro serve`` process mentioning ``tag``."""
    pids = []
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            cmd = (Path("/proc") / pid / "cmdline").read_bytes()
        except OSError:
            continue
        if b"repro" in cmd and tag.encode() in cmd:
            pids.append(int(pid))
    return pids


def _wait_gone(tag: str, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _serve_procs(tag):
            return True
        time.sleep(0.05)
    return False


class TestKillRecovery:
    def test_sigkill_mid_batch_recovers_bit_identical(self, tmp_path):
        """The acceptance pin: die after the 3rd WAL record is durable
        (before its apply), restart, and the served state is
        byte-identical to a fresh flat decomposition of the graph plus
        every durable update — acked or not."""
        g, graph = _graph_file(tmp_path)
        data = tmp_path / "data"
        outcome = kill_mid_batch(data, graph, UPDATES, crash_after=3)
        assert outcome["exit_code"] == CRASH_EXIT
        # records 1-2 were acked; record 3 is durable but was never
        # applied or acked — recovery must replay all three
        assert len(outcome["acked"]) == 2
        server = ServerProcess(data)
        with server:
            assert server.dump() == _expected_dump(g, UPDATES[:3])
        assert server.wait() == 0

    def test_restart_after_plain_sigkill(self, tmp_path):
        g, graph = _graph_file(tmp_path)
        data = tmp_path / "data"
        server = ServerProcess(data, graph)
        server.start()
        for op, u, v in UPDATES[:2]:
            status, _, _ = server.post_update(op, u, v)
            assert status == 200
        before = server.dump()
        server.kill()
        server.start()
        try:
            assert server.dump() == before == _expected_dump(g, UPDATES[:2])
        finally:
            server.stop()

    def test_torn_artifacts_are_skipped_on_recovery(self, tmp_path):
        g, graph = _graph_file(tmp_path)
        data = tmp_path / "data"
        server = ServerProcess(data, graph)
        server.start()
        for op, u, v in UPDATES[:2]:
            server.post_update(op, u, v)
        server.kill()
        # corrupt the newest generation AND append a torn WAL record:
        # recovery must fall back to the prior generation, replay the
        # intact WAL tail, and truncate the tear — same state
        tear_snapshot(data / "snapshots", mode="truncate")
        tear_wal_tail(data / "wal")
        server.start()
        try:
            assert server.dump() == _expected_dump(g, UPDATES[:2])
            _, _, metrics = server.request("GET", "/metrics")
            text = metrics.decode()
            assert 'path="serve_torn_snapshot"' in text
            assert 'path="serve_wal_torn"' in text
        finally:
            server.stop()


class TestContainment:
    def test_sigint_reaps_workers_and_closes_wal(self, tmp_path):
        """Satellite: Ctrl-C must reap every worker, fsync+close the
        WAL, and remove the endpoint file — no orphans, exit 0."""
        _, graph = _graph_file(tmp_path)
        data = tmp_path / "data"
        server = ServerProcess(data, graph, workers=2)
        server.start()
        tag = str(data)
        assert len(_serve_procs(tag)) >= 3  # master + 2 workers
        status, _, _ = server.post_update("insert", 0, 10)
        assert status == 200
        server.interrupt()
        assert server.wait(timeout=30.0) == 0
        assert _wait_gone(tag), f"orphans left: {_serve_procs(tag)}"
        assert not (data / ENDPOINT).exists()
        # the WAL was closed cleanly: every record ends in a newline
        segments = sorted((data / "wal").glob("wal_*.log"))
        for seg in segments:
            content = seg.read_bytes()
            assert not content or content.endswith(b"\n")

    def test_sigkill_master_leaves_no_orphan_workers(self, tmp_path):
        """The death pipe: workers see EOF when the master dies without
        any chance to clean up, and exit on their own."""
        _, graph = _graph_file(tmp_path)
        data = tmp_path / "data"
        server = ServerProcess(data, graph, workers=2)
        server.start()
        tag = str(data)
        assert len(_serve_procs(tag)) >= 3
        server.kill()
        assert _wait_gone(tag), f"orphans left: {_serve_procs(tag)}"


class TestOverload:
    def test_flood_sheds_within_deadline_while_reads_answer(self, tmp_path):
        """Writers past the admission bound are shed with 503/504 while
        concurrent reads keep answering 200 from the published view."""
        _, graph = _graph_file(tmp_path)
        data = tmp_path / "data"
        server = ServerProcess(
            data, graph, queue_depth=2, deadline_ms=2000.0,
            client_timeout=1.0,
            env={"REPRO_SERVE_APPLY_DELAY_MS": "50"},
        )
        server.start()
        try:
            out = flood(server, writers=4, writes_per_writer=3,
                        deadline_ms=30.0, readers=2)
            assert set(out["write_status"]) <= {200, 503, 504}
            assert out["shed"] > 0  # the bound held
            assert out["acked"] >= 1  # but the server was not bricked
            assert out["reads_during_flood"] > 0
            assert set(out["read_status"]) == {200}
            # a stalled client is dropped at the socket timeout instead
            # of squatting a handler thread
            loris = slow_loris(server.host, server.port, max_wait_s=10.0)
            assert loris["dropped"] and loris["held_s"] < 8.0
            # shed reasons are visible in the metrics exposition
            _, _, metrics = server.request("GET", "/metrics")
            assert 'repro_serve_shed_total{reason=' in metrics.decode()
            # writes still work after the storm
            status, _, body = server.post_update("insert", 500, 501)
            assert status == 200 and json.loads(body)["applied"] == 1
        finally:
            server.stop()
