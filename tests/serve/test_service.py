"""``TrussService``: the write path, recovery, deadlines, backpressure."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import truss_decomposition
from repro.graph import Graph, write_edge_list
from repro.obs import Tracer
from repro.serve.chaos import tear_snapshot, tear_wal_tail
from repro.serve.service import (
    DeadlineExpiredError,
    NotReadyError,
    OverloadedError,
    ServeError,
    TrussService,
)

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (0, 3),
         (4, 5), (4, 6), (5, 6), (3, 4)]


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    write_edge_list(Graph(EDGES), path)
    return path


def _service(tmp_path, graph=None, **kw):
    kw.setdefault("kernel", "python")
    return TrussService(tmp_path / "data", graph, **kw)


def _flat_phi(edges):
    return dict(
        truss_decomposition(Graph(sorted(edges)), method="flat",
                            kernel="python").trussness
    )


class TestLifecycle:
    def test_seed_write_publish(self, tmp_path, graph_file):
        with _service(tmp_path, graph_file) as svc:
            assert svc.ready
            view, stale = svc.reader.current()
            assert view.num_edges == len(EDGES) and not stale
            applied, seq, gen = svc.apply_write(
                [("insert", 5, 7), ("insert", 6, 7)]
            )
            assert (applied, seq) == (2, 2)
            view, _ = svc.reader.current()
            assert view.gen == gen
            assert view.lookup(5, 7) == 3
        assert not svc.ready  # closed

    def test_no_snapshot_and_no_graph_raises(self, tmp_path):
        svc = _service(tmp_path, None)
        with pytest.raises(ServeError):
            svc.open()

    def test_not_ready_before_open(self, tmp_path, graph_file):
        svc = _service(tmp_path, graph_file)
        with pytest.raises(NotReadyError):
            svc.apply_write([("insert", 9, 10)])

    def test_close_is_idempotent(self, tmp_path, graph_file):
        svc = _service(tmp_path, graph_file)
        svc.open()
        svc.close()
        svc.close()


class TestRecovery:
    def test_restart_replays_wal_tail(self, tmp_path, graph_file):
        with _service(tmp_path, graph_file, snapshot_every=100) as svc:
            svc.apply_write([("insert", 5, 7)])
            svc.apply_write([("insert", 6, 7), ("delete", 3, 4)])
            expect = dict(svc.maintainer.trussness)
            # simulate a crash: the WAL has the writes, no publish ran
            svc._wal.close()
        svc2 = _service(tmp_path, None)
        svc2.open()
        assert dict(svc2.maintainer.trussness) == expect
        assert svc2.applied_seq == 3
        svc2.close()

    def test_torn_newest_snapshot_falls_back(self, tmp_path, graph_file):
        with _service(tmp_path, graph_file) as svc:
            svc.apply_write([("insert", 5, 7)])
            svc.apply_write([("insert", 6, 7)])
            expect = dict(svc.maintainer.trussness)
        tear_snapshot(tmp_path / "data" / "snapshots", mode="truncate")
        svc2 = _service(tmp_path, None)
        svc2.open()
        # prior generation + WAL tail reconverges to the same state
        assert dict(svc2.maintainer.trussness) == expect
        assert "serve_torn_snapshot" in svc2.registry.to_prometheus()
        svc2.close()

    def test_torn_wal_tail_is_truncated_and_counted(self, tmp_path,
                                                    graph_file):
        with _service(tmp_path, graph_file, snapshot_every=100) as svc:
            svc.apply_write([("insert", 5, 7)])
            expect = dict(svc.maintainer.trussness)
            svc._wal.close()
        tear_wal_tail(tmp_path / "data" / "wal")
        svc2 = _service(tmp_path, None)
        svc2.open()
        assert dict(svc2.maintainer.trussness) == expect
        assert "serve_wal_torn" in svc2.registry.to_prometheus()
        svc2.close()

    def test_recovered_state_matches_flat(self, tmp_path, graph_file):
        updates = [("insert", 5, 7), ("insert", 6, 7), ("delete", 0, 3)]
        with _service(tmp_path, graph_file, snapshot_every=2) as svc:
            for upd in updates:
                svc.apply_write([upd])
        svc2 = _service(tmp_path, None)
        svc2.open()
        edges = set(EDGES) | {(5, 7), (6, 7)}
        edges.discard((0, 3))
        assert dict(svc2.maintainer.trussness) == _flat_phi(edges)
        svc2.close()

    def test_recover_span_emitted(self, tmp_path, graph_file):
        tracer = Tracer(sink=None)
        svc = TrussService(tmp_path / "data", graph_file,
                           kernel="python", tracer=tracer)
        svc.open()
        svc.close()
        names = [e["name"] for e in tracer.drain()]
        assert "recover" in names and "publish" in names


class TestDeadlinesAndBackpressure:
    def test_expired_deadline_is_rejected_before_logging(
        self, tmp_path, graph_file
    ):
        with _service(tmp_path, graph_file) as svc:
            wal_before = svc._wal.last_seq
            with pytest.raises(DeadlineExpiredError):
                svc.apply_write([("insert", 9, 10)],
                                deadline=time.monotonic() - 1.0)
            assert svc._wal.last_seq == wal_before  # nothing durable
            assert 'reason="deadline"' in svc.registry.to_prometheus()

    def test_queue_full_sheds(self, tmp_path, graph_file, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_APPLY_DELAY_MS", "80")
        with _service(tmp_path, graph_file, queue_depth=1) as svc:
            start = threading.Barrier(2)
            errors = []

            def writer(u):
                start.wait()
                try:
                    svc.apply_write([("insert", u, u + 1)])
                except OverloadedError as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=writer, args=(100 + i * 2,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # one admitted (holding the slot through its slow apply),
            # the other shed with 503
            assert len(errors) == 1
            assert 'reason="queue_full"' in svc.registry.to_prometheus()

    def test_snapshot_every_defers_publish(self, tmp_path, graph_file):
        with _service(tmp_path, graph_file, snapshot_every=3) as svc:
            gen0 = svc.gen
            svc.apply_write([("insert", 5, 7)])
            view, stale = svc.reader.current()
            assert view.gen == gen0 and stale  # applied but unpublished
            svc.apply_write([("insert", 6, 7)])
            svc.apply_write([("insert", 0, 7)])
            view, stale = svc.reader.current()
            assert view.gen > gen0 and not stale

    def test_metrics_text_merges_maintainer(self, tmp_path, graph_file):
        with _service(tmp_path, graph_file) as svc:
            svc.apply_write([("insert", 5, 7)])
            text = svc.metrics_text()
            assert "repro_serve_writes_total" in text
            assert "repro_repairs_total" in text or "repairs" in text
