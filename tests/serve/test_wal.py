"""The write-ahead log: durability, torn tails, segments, pruning."""

from __future__ import annotations

import os

import pytest

from repro.serve.wal import WalError, WriteAheadLog, _record_line

UPDATES = [("insert", 0, 1), ("insert", 1, 2), ("delete", 0, 1)]


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            first, last = wal.append(UPDATES)
            assert (first, last) == (1, 3)
            assert wal.last_seq == 3
            assert wal.replay_updates() == UPDATES

    def test_seqs_are_global_and_contiguous(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES[:1])
            first, last = wal.append(UPDATES[1:])
            assert (first, last) == (2, 3)
            assert [seq for seq, _ in wal.replay()] == [1, 2, 3]

    def test_empty_batch_is_a_noop(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            first, last = wal.append([])
            assert last == first - 1
            assert wal.replay_updates() == []

    def test_replay_after_seq(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES)
            assert wal.replay_updates(after_seq=2) == UPDATES[2:]
            assert wal.replay_updates(after_seq=3) == []

    def test_reopen_resumes_the_chain(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.torn_bytes == 0
            assert wal.next_seq == 4
            wal.append([("insert", 7, 8)])
            assert wal.replay_updates() == UPDATES + [("insert", 7, 8)]

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        assert wal.closed
        with pytest.raises(WalError):
            wal.append(UPDATES)
        wal.close()  # idempotent


def _segments(root):
    return sorted(p.name for p in root.glob("wal_*.log"))


class TestTornTails:
    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES)
            seg = tmp_path / _segments(tmp_path)[-1]
        with open(seg, "a") as fh:
            fh.write("4 + 9 9")  # no CRC, no newline: a torn append
        with WriteAheadLog(tmp_path) as wal:
            assert wal.torn_bytes > 0
            assert wal.next_seq == 4  # resumes right after the tear
            assert wal.replay_updates() == UPDATES

    def test_corrupt_crc_stops_replay(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES)
            seg = tmp_path / _segments(tmp_path)[-1]
        lines = seg.read_text().splitlines(keepends=True)
        lines[1] = lines[1].replace(" 1 2 ", " 1 3 ", 1)  # payload flip
        seg.write_text("".join(lines))
        with WriteAheadLog(tmp_path) as wal:
            # replay ends at the corruption: only record 1 survives
            assert wal.replay_updates() == UPDATES[:1]

    def test_seq_gap_stops_replay(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES[:1])
            seg = tmp_path / _segments(tmp_path)[-1]
        with open(seg, "a") as fh:
            fh.write(_record_line(5, "+ 9 9"))  # valid CRC, broken chain
        with WriteAheadLog(tmp_path) as wal:
            assert wal.replay_updates() == UPDATES[:1]

    def test_fully_torn_fresh_segment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES)
            wal.roll()
        seg = tmp_path / _segments(tmp_path)[-1]
        seg.write_text("garbage that never was a record")
        with WriteAheadLog(tmp_path) as wal:
            assert wal.torn_bytes > 0
            assert wal.next_seq == 4
            assert wal.replay_updates() == UPDATES


class TestSegments:
    def test_roll_starts_a_new_segment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES)
            wal.roll()
            wal.append([("insert", 4, 5)])
            assert _segments(tmp_path) == [
                "wal_0000000000000001.log", "wal_0000000000000004.log",
            ]
            assert wal.replay_updates() == UPDATES + [("insert", 4, 5)]

    def test_roll_when_empty_is_a_noop(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES)
            wal.roll()
            wal.roll()
            assert len(_segments(tmp_path)) == 2

    def test_prune_never_touches_the_live_tail(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES)
            assert wal.prune(upto_seq=10**9) == 0
            assert len(_segments(tmp_path)) == 1

    def test_prune_drops_only_fully_covered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(UPDATES)          # seqs 1..3
            wal.roll()
            wal.append([("insert", 4, 5)])  # seq 4
            wal.roll()
            wal.append([("insert", 5, 6)])  # seq 5
            assert wal.prune(upto_seq=3) == 1
            assert wal.replay_updates(after_seq=3) == [
                ("insert", 4, 5), ("insert", 5, 6),
            ]
            assert wal.prune(upto_seq=2) == 0  # nothing else is covered

    def test_fsync_off_still_correct(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=False) as wal:
            wal.append(UPDATES)
            assert wal.replay_updates() == UPDATES
