"""Fault injection and recovery: the survivability acceptance bar.

Three layers, matching the chaos machinery itself:

* :class:`Fault`/:class:`FaultPlan` are plain data — validation,
  attempt/rank slicing, and picklability (plans cross the process
  boundary to TCP ranks);
* :class:`FaultInjectingTransport` unit tests over a loopback pair pin
  the sequence-framing semantics — a duplicated frame is silently
  absorbed, a dropped frame is an *immediate* attributable error, a
  delay changes nothing, a crash fires the crash action;
* driver-level recovery tests assert the ISSUE's bar: a mid-run crash
  under ``on_failure="retry"`` recovers **byte-identical to flat** at
  ranks 2 and 4 on both transports with zero orphaned processes,
  sockets or scratch dirs — plus a hypothesis sweep over random fault
  schedules where every run must either recover bit-identically or
  raise a clean :class:`DistError`.
"""

import multiprocessing
import pickle
import tempfile
import threading
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core import truss_decomposition  # noqa: E402
from repro.core.dist import truss_decomposition_dist  # noqa: E402
from repro.dist import LoopbackFabric  # noqa: E402
from repro.dist.faults import (  # noqa: E402
    FAULT_KINDS,
    FAULT_OPS,
    Fault,
    FaultInjectingTransport,
    FaultPlan,
    InjectedCrash,
)
from repro.dist.transport import DistError, TransportError  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.graph import Graph, complete_graph  # noqa: E402


def _dist_scratch_dirs():
    tmp = Path(tempfile.gettempdir())
    return {p.name for p in tmp.iterdir() if p.name.startswith("repro-dist-")}


def _bridged_cliques() -> Graph:
    g = complete_graph(7)
    for u, v in complete_graph(5).edges():
        g.add_edge(u + 10, v + 10)
    g.add_edge(0, 10)
    return g


class TestFaultData:
    def test_unknown_op_rejected(self):
        with pytest.raises(DistError, match="fault op"):
            Fault(0, "gossip", 0, "crash")

    def test_unknown_kind_rejected(self):
        with pytest.raises(DistError, match="fault kind"):
            Fault(0, "send", 0, "explode")

    def test_negative_coordinates_rejected(self):
        for bad in (
            dict(rank=-1, op="send", round=0, kind="drop"),
            dict(rank=0, op="send", round=-2, kind="drop"),
            dict(rank=0, op="send", round=0, kind="drop", attempt=-1),
        ):
            with pytest.raises(DistError, match="non-negative"):
                Fault(**bad)

    def test_plan_rejects_non_faults(self):
        with pytest.raises(DistError, match="not a Fault"):
            FaultPlan([("rank0", "send")])

    def test_kill_is_one_first_attempt_crash(self):
        plan = FaultPlan.kill(3, round=7)
        assert len(plan) == 1
        (f,) = plan.faults
        assert (f.rank, f.op, f.round, f.kind, f.attempt) == (
            3, "send", 7, "crash", 0,
        )

    def test_attempt_and_rank_slicing(self):
        plan = FaultPlan([
            Fault(0, "send", 0, "crash", attempt=0),
            Fault(1, "recv", 2, "drop", attempt=0),
            Fault(0, "send", 0, "crash", attempt=1),
        ])
        assert len(plan.for_attempt(0)) == 2
        assert len(plan.for_attempt(1)) == 1
        assert not plan.for_attempt(2)  # empty plan is falsy
        assert len(plan.for_rank(0)) == 2
        assert plan.for_rank(7) == ()

    def test_plan_pickles(self):
        plan = FaultPlan.kill(1, op="recv", round=5)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.faults == plan.faults


def _run_pair(fn0, fn1, faults0=(), faults1=(), timeout=5):
    """Two loopback ranks, both wrapped (framing must be symmetric)."""
    fabric = LoopbackFabric(2)
    results = [None, None]
    failures = [None, None]

    def body(r, fn, faults):
        tp = FaultInjectingTransport(
            fabric.endpoint(r, timeout=timeout), faults
        )
        try:
            results[r] = fn(tp)
        except BaseException as exc:
            failures[r] = exc
            tp.abort()
        finally:
            tp.close()

    threads = [
        threading.Thread(target=body, args=(0, fn0, faults0), daemon=True),
        threading.Thread(target=body, args=(1, fn1, faults1), daemon=True),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
        assert not t.is_alive()
    return results, failures


class TestInjectingTransport:
    def test_sequence_framing_is_transparent(self):
        results, failures = _run_pair(
            lambda tp: [tp.send(1, b"alpha"), tp.send(1, b""), None][-1],
            lambda tp: (tp.recv(0), tp.recv(0)),
        )
        assert failures == [None, None]
        assert results[1] == (b"alpha", b"")

    def test_accounting_delegates_to_inner(self):
        def sender(tp):
            tp.send(1, b"xyz")
            return tp.bytes_sent, tp.frames_sent

        results, failures = _run_pair(sender, lambda tp: tp.recv(0))
        assert failures == [None, None]
        sent, frames = results[0]
        assert frames == 1
        # 8B loopback frame header + 8B sequence number + 3B payload
        assert sent == 8 + 8 + 3

    def test_duplicated_frame_is_absorbed(self):
        results, failures = _run_pair(
            lambda tp: [tp.send(1, b"a"), tp.send(1, b"b"), None][-1],
            lambda tp: (tp.recv(0), tp.recv(0)),
            faults0=[Fault(0, "send", 0, "dup")],
        )
        assert failures == [None, None]
        assert results[1] == (b"a", b"b")  # the replayed "a" vanished

    def test_send_dropped_frame_raises_lost(self):
        _results, failures = _run_pair(
            lambda tp: [tp.send(1, b"a"), tp.send(1, b"b"), None][-1],
            lambda tp: tp.recv(0),
            faults0=[Fault(0, "send", 0, "drop")],
        )
        assert failures[0] is None
        assert isinstance(failures[1], TransportError)
        assert "frame 0 from rank 0 lost" in str(failures[1])

    def test_recv_dropped_frame_raises_lost(self):
        _results, failures = _run_pair(
            lambda tp: [tp.send(1, b"a"), tp.send(1, b"b"), None][-1],
            lambda tp: tp.recv(0),
            faults1=[Fault(1, "recv", 0, "drop")],
        )
        assert isinstance(failures[1], TransportError)
        assert "lost" in str(failures[1])

    def test_crash_fires_crash_action(self):
        _results, failures = _run_pair(
            lambda tp: tp.send(1, b"a"),
            lambda tp: tp.recv(0),
            faults0=[Fault(0, "send", 0, "crash")],
        )
        assert isinstance(failures[0], InjectedCrash)
        # the dying rank aborted, so its peer failed too — no hang
        assert isinstance(failures[1], TransportError)

    def test_custom_crash_action(self):
        seen = []
        fabric = LoopbackFabric(1)
        tp = FaultInjectingTransport(
            fabric.endpoint(0, timeout=1),
            [Fault(0, "send", 0, "crash")],
            crash=seen.append,
        )
        tp.send(0, b"x")  # custom action records instead of raising
        (fault,) = seen
        assert fault.kind == "crash"

    def test_delay_sleeps_then_delivers(self):
        start = time.monotonic()
        results, failures = _run_pair(
            lambda tp: tp.send(1, b"slow"),
            lambda tp: tp.recv(0),
            faults0=[Fault(0, "send", 0, "delay", delay=0.2)],
        )
        assert failures == [None, None]
        assert results[1] == b"slow"
        assert time.monotonic() - start >= 0.2

    def test_faults_fire_on_their_round_only(self):
        results, failures = _run_pair(
            lambda tp: [tp.send(1, b"r0"), tp.send(1, b"r1"), None][-1],
            lambda tp: (tp.recv(0), tp.recv(0)),
            faults0=[Fault(0, "send", 1, "dup")],  # round 1, not 0
        )
        assert failures == [None, None]
        assert results[1] == (b"r0", b"r1")


GRAPH = _bridged_cliques()


@pytest.fixture(scope="module")
def flat_reference():
    return truss_decomposition(GRAPH, method="flat")


class TestRecoveryMatrix:
    """The acceptance bar, verbatim: a mid-run crash under
    ``on_failure="retry"`` recovers byte-identical to flat at ranks 2
    and 4 on both transports, with zero orphaned processes, sockets or
    scratch directories."""

    @pytest.mark.parametrize("transport", ["loopback", "tcp"])
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_midrun_crash_recovers_bit_identical(
        self, flat_reference, ranks, transport
    ):
        scratch_before = _dist_scratch_dirs()
        td = truss_decomposition_dist(
            GRAPH,
            ranks=ranks,
            transport=transport,
            fault_plan=FaultPlan.kill(1, round=8),
            on_failure="retry",
            checkpoint_interval=2,
        )
        assert td == flat_reference
        assert td.stats.extra["retries"] == 1
        assert multiprocessing.active_children() == []
        assert _dist_scratch_dirs() == scratch_before

    def test_recovery_resumes_from_checkpoint(self, flat_reference):
        """A late kill with tight barriers must rewind to a snapshot,
        not silently restart from scratch."""
        td = truss_decomposition_dist(
            GRAPH,
            ranks=2,
            fault_plan=FaultPlan.kill(1, round=8),
            on_failure="retry",
            checkpoint_interval=1,
        )
        assert td == flat_reference
        assert td.stats.extra["retries"] == 1
        assert td.stats.extra["resumed_from_epoch"] >= 0

    def test_unfaulted_run_records_zero_retries(self, flat_reference):
        td = truss_decomposition_dist(
            GRAPH, ranks=2, on_failure="retry", checkpoint_interval=2
        )
        assert td == flat_reference
        assert td.stats.extra["retries"] == 0
        assert td.stats.extra["resumed_from_epoch"] == -1
        assert td.stats.extra["checkpoints"] > 0

    def test_dup_and_delay_need_no_retry(self, flat_reference):
        """The absorbable faults: bit-identical on the first attempt."""
        plan = FaultPlan([
            Fault(0, "send", 2, "dup"),
            Fault(1, "send", 1, "delay", delay=0.01),
        ])
        td = truss_decomposition_dist(
            GRAPH, ranks=2, fault_plan=plan, on_failure="retry"
        )
        assert td == flat_reference
        assert td.stats.extra["retries"] == 0

    def test_dropped_frame_recovers(self, flat_reference):
        td = truss_decomposition_dist(
            GRAPH,
            ranks=2,
            fault_plan=FaultPlan([Fault(1, "send", 3, "drop")]),
            on_failure="retry",
            checkpoint_interval=2,
        )
        assert td == flat_reference
        assert td.stats.extra["retries"] == 1

    def test_retry_budget_exhaustion_raises(self):
        """A crash scripted on every attempt must exhaust the budget
        and surface a clean error — never loop forever."""
        plan = FaultPlan([
            Fault(1, "send", 0, "crash", attempt=a) for a in range(3)
        ])
        scratch_before = _dist_scratch_dirs()
        with pytest.raises(ReproError, match="rank"):
            truss_decomposition_dist(
                GRAPH,
                ranks=2,
                fault_plan=plan,
                on_failure="retry",
                max_retries=1,
                checkpoint_interval=2,
            )
        assert multiprocessing.active_children() == []
        assert _dist_scratch_dirs() == scratch_before

    def test_fallback_flat_degrades_instead_of_raising(
        self, flat_reference
    ):
        plan = FaultPlan([
            Fault(1, "send", 0, "crash", attempt=a) for a in range(3)
        ])
        td = truss_decomposition_dist(
            GRAPH,
            ranks=2,
            fault_plan=plan,
            on_failure="fallback_flat",
            max_retries=1,
            checkpoint_interval=2,
        )
        assert td == flat_reference
        assert td.stats.extra["fallback"] == "flat"
        assert td.stats.extra["retries_exhausted"] == 1
        assert multiprocessing.active_children() == []

    def test_raise_policy_fails_fast_without_snapshots(self):
        with pytest.raises(ReproError, match="rank"):
            truss_decomposition_dist(
                GRAPH, ranks=2, fault_plan=FaultPlan.kill(0)
            )


@st.composite
def fault_plans(draw, ranks):
    """A short random chaos schedule addressed within ``ranks``."""
    n = draw(st.integers(min_value=1, max_value=3))
    faults = []
    for _ in range(n):
        faults.append(Fault(
            rank=draw(st.integers(0, ranks - 1)),
            op=draw(st.sampled_from(FAULT_OPS)),
            round=draw(st.integers(0, 12)),
            kind=draw(st.sampled_from(FAULT_KINDS)),
            attempt=draw(st.integers(0, 1)),
            delay=0.01,
        ))
    return FaultPlan(faults)


class TestChaosSweep:
    """Random fault schedules across the full (ranks, transport)
    matrix: every run must either recover bit-identically to flat or
    raise a clean :class:`DistError` — and leak nothing either way."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_every_schedule_recovers_or_raises_cleanly(
        self, flat_reference, data
    ):
        ranks = data.draw(st.sampled_from([1, 2, 4]), label="ranks")
        transport = data.draw(
            st.sampled_from(["loopback", "tcp"]), label="transport"
        )
        plan = data.draw(fault_plans(ranks), label="plan")
        scratch_before = _dist_scratch_dirs()
        try:
            td = truss_decomposition_dist(
                GRAPH,
                ranks=ranks,
                transport=transport,
                fault_plan=plan,
                on_failure="retry",
                max_retries=1,
                checkpoint_interval=2,
                timeout=10,
            )
        except DistError:
            pass  # a clean, attributable failure is the other allowed
            # outcome (e.g. crashes scripted on both attempts)
        else:
            assert td == flat_reference
        assert multiprocessing.active_children() == []
        assert _dist_scratch_dirs() == scratch_before
