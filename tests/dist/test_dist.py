"""Driver-level tests for ``method="dist"``.

Covers what the transport unit tests cannot: the scatter/run/gather
driver across real rank processes (TCP) and fabric threads (loopback),
parity against the flat engine, the distributed-state accounting the
acceptance bar names, argument guards through the public API, and the
fault-injection contract — a killed rank surfaces a clean
:class:`~repro.errors.ReproError` with no orphaned processes, sockets
or scratch directories.
"""

import multiprocessing
import tempfile
import time
from pathlib import Path

import pytest

from repro.core import decompose_file, truss_decomposition
from repro.core.dist import truss_decomposition_dist
from repro.errors import DecompositionError, ReproError
from repro.graph import CSRGraph, Graph, complete_graph, write_edge_list

from helpers import DIST_SWEEP

np = pytest.importorskip("numpy")

from repro.dist.faults import FaultPlan  # noqa: E402  (needs numpy first)


def _dist_scratch_dirs():
    tmp = Path(tempfile.gettempdir())
    return {p.name for p in tmp.iterdir() if p.name.startswith("repro-dist-")}


@pytest.fixture
def bridged_cliques() -> Graph:
    g = complete_graph(7)
    for u, v in complete_graph(5).edges():
        g.add_edge(u + 10, v + 10)
    g.add_edge(0, 10)
    return g


class TestParity:
    def test_full_sweep_matches_flat(self, bridged_cliques):
        ref = truss_decomposition(bridged_cliques, method="flat")
        for ranks, transport in DIST_SWEEP:
            td = truss_decomposition(
                bridged_cliques,
                method="dist",
                ranks=ranks,
                transport=transport,
            )
            assert td == ref, (ranks, transport)
            assert td.stats.extra["ranks"] == ranks
            assert td.stats.extra["transport"] == transport

    def test_more_ranks_than_edges(self):
        g = complete_graph(3)
        ref = truss_decomposition(g, method="flat")
        assert truss_decomposition_dist(g, ranks=8) == ref

    def test_triangle_free_graph(self):
        star = Graph([(0, i) for i in range(1, 6)])
        td = truss_decomposition_dist(star, ranks=2, transport="tcp")
        assert dict(td.trussness) == {(0, i): 2 for i in range(1, 6)}

    def test_empty_graph(self):
        td = truss_decomposition_dist(Graph(), ranks=2)
        assert td.kmax == 2
        assert dict(td.trussness) == {}

    def test_csr_snapshot_accepted(self, bridged_cliques):
        csr = CSRGraph.from_graph(bridged_cliques)
        ref = truss_decomposition(bridged_cliques, method="flat")
        assert truss_decomposition(csr, method="dist", ranks=2) == ref

    def test_decompose_file_fast_path(self, bridged_cliques, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(bridged_cliques, path)
        ref = truss_decomposition(bridged_cliques, method="flat")
        td = decompose_file(path, method="dist", ranks=2)
        assert td == ref


class TestDistributedState:
    def test_dedupe_state_shrinks_with_ranks(self, bridged_cliques):
        """No rank holds the global triangle set: peak per-rank dedupe
        state must shrink as the rank count grows."""
        peaks = {}
        for ranks in (1, 2, 4):
            td = truss_decomposition_dist(bridged_cliques, ranks=ranks)
            peaks[ranks] = td.stats.extra["dedupe_peak_bytes"]
        assert peaks[1] > peaks[2] > peaks[4]
        n_tri = truss_decomposition_dist(
            bridged_cliques, ranks=1
        ).stats.extra["triangles"]
        assert peaks[1] == n_tri  # one bool per triangle at one rank

    def test_message_accounting(self, bridged_cliques):
        td = truss_decomposition_dist(bridged_cliques, ranks=2)
        extra = td.stats.extra
        assert extra["msg_bytes"] > 0
        assert extra["bytes_per_wave"] > 0
        assert extra["waves"] > 0
        assert extra["exchange_rounds"] > 0
        solo = truss_decomposition_dist(bridged_cliques, ranks=1)
        assert solo.stats.extra["msg_bytes"] == 0  # self-sends are free

    def test_transports_account_identically(self, bridged_cliques):
        """Loopback charges the TCP frame cost, so the byte columns of
        the two fabrics are directly comparable."""
        loop = truss_decomposition_dist(
            bridged_cliques, ranks=2, transport="loopback"
        )
        tcp = truss_decomposition_dist(
            bridged_cliques, ranks=2, transport="tcp"
        )
        assert (
            loop.stats.extra["msg_bytes"] == tcp.stats.extra["msg_bytes"]
        )


class TestArgumentGuards:
    def test_ranks_rejected_off_method(self, triangle_graph):
        with pytest.raises(DecompositionError, match="ranks"):
            truss_decomposition(triangle_graph, method="flat", ranks=2)

    def test_transport_rejected_off_method(self, triangle_graph):
        with pytest.raises(DecompositionError, match="transport"):
            truss_decomposition(
                triangle_graph, method="parallel", transport="tcp"
            )

    def test_unknown_transport(self, triangle_graph):
        with pytest.raises(DecompositionError, match="unknown transport"):
            truss_decomposition_dist(triangle_graph, transport="mpi")

    def test_bad_rank_count(self, triangle_graph):
        with pytest.raises(DecompositionError, match="at least 1 rank"):
            truss_decomposition_dist(triangle_graph, ranks=0)

    def test_external_args_rejected(self, triangle_graph):
        from repro.exio import MemoryBudget

        with pytest.raises(DecompositionError, match="does not accept"):
            truss_decomposition(
                triangle_graph,
                method="dist",
                memory_budget=MemoryBudget(units=16),
            )

    def test_index_storage_rejected_off_csr_methods(self, triangle_graph):
        with pytest.raises(DecompositionError, match="index_storage"):
            truss_decomposition(
                triangle_graph, method="improved", index_storage="mmap"
            )

    def test_unknown_index_storage(self, triangle_graph):
        with pytest.raises(DecompositionError, match="index storage"):
            truss_decomposition_dist(triangle_graph, index_storage="tape")


class TestDriverIndexMemory:
    """The tentpole's dist acceptance bar: O(m + chunk) driver build.

    With ``index_storage="mmap"`` the driver streams the triangle index
    straight into the on-disk layout — at no point may it hold an array
    of length >= 3·|△G| in RAM.  Asserted by tracing the build's actual
    heap allocations (numpy reports through tracemalloc) against the
    size one ``tinc``-scale array would need.
    """

    def test_mmap_build_never_materializes_index(self, monkeypatch):
        import tracemalloc

        import repro.core.dist as dist_mod
        import repro.triangles.index_builder as ib

        # many chunks, so a buggy accumulate-then-concatenate would
        # still peak at triangle scale
        monkeypatch.setattr(ib, "_WEDGE_CHUNK", 1024)
        peaks = {}
        real_build = dist_mod.build_triangle_index

        def traced_build(csr, **kwargs):
            tracemalloc.start()
            try:
                tri = real_build(csr, **kwargs)
                _cur, peaks["peak"] = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            peaks["n_tri"] = tri.num_triangles
            return tri

        monkeypatch.setattr(dist_mod, "build_triangle_index", traced_build)
        g = complete_graph(80)  # |△G| = C(80,3) = 82,160 on m = 3,160
        ref = truss_decomposition(g, method="flat")
        td = truss_decomposition_dist(g, ranks=2, index_storage="mmap")
        assert td == ref
        assert td.stats.extra["index_storage"] == "mmap"
        assert peaks["n_tri"] == 82_160
        # the acceptance bound: no 3·|△G| int64 array in driver RAM
        # (the legacy argsort build held several simultaneously)
        assert peaks["peak"] < 3 * peaks["n_tri"] * 8, peaks

    def test_ram_storage_still_supported(self, bridged_cliques):
        ref = truss_decomposition(bridged_cliques, method="flat")
        td = truss_decomposition_dist(
            bridged_cliques, ranks=2, index_storage="ram"
        )
        assert td == ref
        assert td.stats.extra["index_storage"] == "ram"


class TestFaultInjection:
    """The kill contract: a dead rank means a clean error, not a hang,
    and never an orphaned process, socket or scratch directory.  The
    kills are scripted through :class:`~repro.dist.faults.FaultPlan`
    (which replaced the ad-hoc ``_kill_rank`` hook), so every failure
    point replays identically."""

    @pytest.mark.parametrize("transport", ["loopback", "tcp"])
    def test_killed_rank_surfaces_repro_error(
        self, bridged_cliques, transport
    ):
        scratch_before = _dist_scratch_dirs()
        with pytest.raises(ReproError, match="rank"):
            truss_decomposition_dist(
                bridged_cliques,
                ranks=2,
                transport=transport,
                fault_plan=FaultPlan.kill(1),
            )
        # the scratch tempdir (index + checkpoints) is gone even on
        # the failure path
        assert _dist_scratch_dirs() == scratch_before
        # every rank process was reaped (loopback spawns none)
        assert multiprocessing.active_children() == []

    def test_killed_rank_zero_tcp(self, bridged_cliques):
        """Rank 0 dying must not wedge the port/result gathering."""
        with pytest.raises(ReproError):
            truss_decomposition_dist(
                bridged_cliques, ranks=3, transport="tcp",
                fault_plan=FaultPlan.kill(0),
            )
        assert multiprocessing.active_children() == []

    def test_clean_run_leaves_nothing_behind(self, bridged_cliques):
        scratch_before = _dist_scratch_dirs()
        truss_decomposition_dist(bridged_cliques, ranks=2, transport="tcp")
        assert _dist_scratch_dirs() == scratch_before
        assert multiprocessing.active_children() == []


class TestInterruptCleanup:
    """A driver-side KeyboardInterrupt must reap every rank process,
    unwind loopback rank threads, and remove the scratch directory —
    interrupting a run cannot leak what a clean failure would not."""

    def test_tcp_interrupt_reaps_and_removes_scratch(
        self, bridged_cliques, monkeypatch
    ):
        import repro.core.dist as dist_mod

        real_collect = dist_mod._collect
        calls = {"n": 0}

        def interrupting_collect(procs, pipes, expect, timeout):
            calls["n"] += 1
            if expect == "ok":
                # mid-run: ranks are meshed and peeling right now
                raise KeyboardInterrupt
            return real_collect(procs, pipes, expect, timeout)

        monkeypatch.setattr(dist_mod, "_collect", interrupting_collect)
        scratch_before = _dist_scratch_dirs()
        with pytest.raises(KeyboardInterrupt):
            truss_decomposition_dist(
                bridged_cliques, ranks=2, transport="tcp"
            )
        assert calls["n"] >= 2
        assert multiprocessing.active_children() == []
        assert _dist_scratch_dirs() == scratch_before

    def test_loopback_interrupt_unwinds_rank_threads(
        self, bridged_cliques, monkeypatch
    ):
        """An interrupt mid-join poisons the fabric so every rank
        thread unwinds promptly instead of running out its timeout."""
        import threading

        import repro.core.dist as dist_mod

        real_fabric = {}
        orig_fabric_cls = dist_mod.LoopbackFabric

        class RecordingFabric(orig_fabric_cls):
            def __init__(self, size):
                super().__init__(size)
                real_fabric["fabric"] = self

        interrupted = {"done": False}
        orig_join = threading.Thread.join

        def interrupting_join(self, timeout=None):
            if timeout is None and not interrupted["done"]:
                interrupted["done"] = True
                raise KeyboardInterrupt
            return orig_join(self, timeout)

        monkeypatch.setattr(dist_mod, "LoopbackFabric", RecordingFabric)
        monkeypatch.setattr(threading.Thread, "join", interrupting_join)
        threads_before = threading.active_count()
        scratch_before = _dist_scratch_dirs()
        with pytest.raises(KeyboardInterrupt):
            truss_decomposition_dist(bridged_cliques, ranks=2)
        monkeypatch.undo()
        # the poison unblocked every rank thread; give them a moment
        deadline = time.monotonic() + 10
        while (
            threading.active_count() > threads_before
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert threading.active_count() <= threads_before
        assert _dist_scratch_dirs() == scratch_before


class TestSupervisorArgs:
    """Resolution guards for the survivability knobs."""

    def test_unknown_on_failure(self, triangle_graph):
        with pytest.raises(DecompositionError, match="on_failure"):
            truss_decomposition_dist(
                triangle_graph, on_failure="shrug"
            )

    def test_bad_timeout(self, triangle_graph):
        with pytest.raises(DecompositionError, match="timeout"):
            truss_decomposition_dist(triangle_graph, timeout=0)

    def test_bad_max_retries(self, triangle_graph):
        with pytest.raises(DecompositionError, match="max_retries"):
            truss_decomposition_dist(
                triangle_graph, on_failure="retry", max_retries=-1
            )

    def test_bad_checkpoint_interval(self, triangle_graph):
        with pytest.raises(
            DecompositionError, match="checkpoint_interval"
        ):
            truss_decomposition_dist(
                triangle_graph, checkpoint_interval=-4
            )

    def test_timeout_rejected_off_method(self, triangle_graph):
        with pytest.raises(DecompositionError, match="timeout"):
            truss_decomposition(
                triangle_graph, method="flat", timeout=30
            )

    def test_on_failure_rejected_off_method(self, triangle_graph):
        with pytest.raises(DecompositionError, match="on_failure"):
            truss_decomposition(
                triangle_graph, method="parallel", on_failure="retry"
            )

    def test_timeout_accepted_on_dist(self, bridged_cliques):
        ref = truss_decomposition(bridged_cliques, method="flat")
        td = truss_decomposition(
            bridged_cliques, method="dist", ranks=2, timeout=60,
            on_failure="retry",
        )
        assert td == ref
        assert td.stats.extra["on_failure"] == "retry"
