"""Unit tests for the wave-checkpoint store.

The recovery protocol's whole correctness rests on two properties
pinned here: a torn or corrupted snapshot is *never* restorable (the
manifest is written last, atomically, and every array is checksummed
on load), and :func:`latest_common_epoch` only ever names a barrier
at which every rank holds a complete, valid snapshot.
"""

import json

import pytest

np = pytest.importorskip("numpy")

from repro.dist.checkpoint import (  # noqa: E402  (needs numpy first)
    KEEP_EPOCHS,
    MANIFEST,
    CheckpointError,
    latest_common_epoch,
    load_rank_checkpoint,
    manifest_valid,
    prune_rank_checkpoints,
    rank_epochs,
    write_rank_checkpoint,
)


def _state(seed: int):
    rng = np.random.default_rng(seed)
    arrays = {
        "sup": rng.integers(0, 50, size=17, dtype=np.int64),
        "alive": rng.integers(0, 2, size=17).astype(bool),
        "phi": rng.integers(2, 9, size=17, dtype=np.int64),
        "hist": rng.integers(0, 5, size=8, dtype=np.int64),
        "owned_dead": rng.integers(0, 2, size=31).astype(bool),
    }
    scalars = {
        "floor": 1,
        "k": 4,
        "remaining": 11,
        "waves": 6 + seed,
        "levels": 3,
        "max_wave": 5,
        "exchange_rounds": 19,
    }
    return arrays, scalars


class TestRoundTrip:
    def test_arrays_and_scalars_survive(self, tmp_path):
        arrays, scalars = _state(0)
        write_rank_checkpoint(tmp_path, 3, 1, arrays, scalars)
        got_arrays, got_scalars = load_rank_checkpoint(tmp_path, 3, 1)
        assert got_scalars == scalars
        assert set(got_arrays) == set(arrays)
        for name in arrays:
            assert got_arrays[name].dtype == arrays[name].dtype
            assert np.array_equal(got_arrays[name], arrays[name])

    def test_loaded_arrays_are_writable_copies(self, tmp_path):
        arrays, scalars = _state(1)
        write_rank_checkpoint(tmp_path, 0, 0, arrays, scalars)
        got, _ = load_rank_checkpoint(tmp_path, 0, 0)
        got["sup"][0] = 12345  # a resumed rank mutates its state
        reloaded, _ = load_rank_checkpoint(tmp_path, 0, 0)
        assert reloaded["sup"][0] == arrays["sup"][0]

    def test_missing_epoch_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="manifest"):
            load_rank_checkpoint(tmp_path, 7, 0)


class TestTornWrites:
    """A snapshot without a clean manifest does not exist."""

    def test_missing_manifest_is_invalid(self, tmp_path):
        arrays, scalars = _state(2)
        write_rank_checkpoint(tmp_path, 1, 0, arrays, scalars)
        mpath = tmp_path / "epoch_00000001" / "rank_0" / MANIFEST
        mpath.unlink()
        assert not manifest_valid(tmp_path, 1, 0)

    def test_truncated_manifest_is_invalid(self, tmp_path):
        arrays, scalars = _state(3)
        write_rank_checkpoint(tmp_path, 1, 0, arrays, scalars)
        mpath = tmp_path / "epoch_00000001" / "rank_0" / MANIFEST
        mpath.write_text(mpath.read_text()[: -10])
        assert not manifest_valid(tmp_path, 1, 0)

    def test_corrupted_array_fails_checksum(self, tmp_path):
        arrays, scalars = _state(4)
        write_rank_checkpoint(tmp_path, 2, 1, arrays, scalars)
        sup = tmp_path / "epoch_00000002" / "rank_1" / "sup.npy"
        raw = bytearray(sup.read_bytes())
        raw[-1] ^= 0xFF  # flip one payload byte, sizes stay right
        sup.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum"):
            load_rank_checkpoint(tmp_path, 2, 1)
        assert not manifest_valid(tmp_path, 2, 1)

    def test_missing_array_file_is_invalid(self, tmp_path):
        arrays, scalars = _state(5)
        write_rank_checkpoint(tmp_path, 2, 0, arrays, scalars)
        (tmp_path / "epoch_00000002" / "rank_0" / "phi.npy").unlink()
        assert not manifest_valid(tmp_path, 2, 0)

    def test_epoch_mismatch_in_manifest_is_invalid(self, tmp_path):
        """A manifest copied/renamed across epochs must not validate."""
        arrays, scalars = _state(6)
        write_rank_checkpoint(tmp_path, 1, 0, arrays, scalars)
        mpath = tmp_path / "epoch_00000001" / "rank_0" / MANIFEST
        doc = json.loads(mpath.read_text())
        doc["epoch"] = 9
        mpath.write_text(json.dumps(doc))
        assert not manifest_valid(tmp_path, 1, 0)

    def test_no_tmp_manifest_left_behind(self, tmp_path):
        arrays, scalars = _state(7)
        write_rank_checkpoint(tmp_path, 1, 0, arrays, scalars)
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []


class TestCommonEpoch:
    def test_picks_newest_complete_barrier(self, tmp_path):
        for rank in (0, 1):
            for epoch in (1, 2):
                arrays, scalars = _state(epoch)
                write_rank_checkpoint(tmp_path, epoch, rank, arrays, scalars)
        # rank 1 crashed mid-snapshot of epoch 3; rank 0 completed it
        arrays, scalars = _state(3)
        write_rank_checkpoint(tmp_path, 3, 0, arrays, scalars)
        assert latest_common_epoch(tmp_path, 2) == 2

    def test_torn_newest_epoch_falls_back(self, tmp_path):
        for rank in (0, 1):
            for epoch in (4, 5):
                arrays, scalars = _state(epoch)
                write_rank_checkpoint(tmp_path, epoch, rank, arrays, scalars)
        mpath = tmp_path / "epoch_00000005" / "rank_1" / MANIFEST
        mpath.write_text("{not json")
        assert latest_common_epoch(tmp_path, 2) == 4

    def test_no_common_epoch_is_none(self, tmp_path):
        arrays, scalars = _state(8)
        write_rank_checkpoint(tmp_path, 1, 0, arrays, scalars)
        # rank 1 never checkpointed at all
        assert latest_common_epoch(tmp_path, 2) is None

    def test_empty_root_is_none(self, tmp_path):
        assert latest_common_epoch(tmp_path, 4) is None
        assert latest_common_epoch(tmp_path / "absent", 2) is None


class TestPruning:
    def test_writer_keeps_two_newest_epochs(self, tmp_path):
        for epoch in range(1, 6):
            arrays, scalars = _state(epoch)
            write_rank_checkpoint(tmp_path, epoch, 0, arrays, scalars)
        assert rank_epochs(tmp_path, 0) == [4, 5]
        assert KEEP_EPOCHS == 2

    def test_prune_spares_other_ranks(self, tmp_path):
        for epoch in (1, 2, 3):
            for rank in (0, 1):
                arrays, scalars = _state(epoch)
                write_rank_checkpoint(tmp_path, epoch, rank, arrays, scalars)
        prune_rank_checkpoints(tmp_path, 0, keep=1)
        assert rank_epochs(tmp_path, 0) == [3]
        assert rank_epochs(tmp_path, 1) == [2, 3]
