"""Unit tests for the dist transports and exchange primitives.

Both fabrics are driven through the same scenarios by running one
thread per rank (TCP ranks are threads *here* — the sockets neither
know nor care; real process fan-out is covered by the driver tests in
``test_dist.py``), so every assertion below pins behavior the two
implementations must share: alltoallv/allgather contents, empty
frames, byte accounting, and fail-fast peer-death semantics.
"""

import threading

import pytest

np = pytest.importorskip("numpy")

from repro.dist import (  # noqa: E402  (needs numpy first)
    LoopbackFabric,
    TcpTransport,
    TransportError,
    allgather,
    alltoallv,
    open_listener,
)


def run_ranks(size, make_transport, fn):
    """Run ``fn(rank, transport)`` on one thread per rank.

    Returns the per-rank results; re-raises the first failure after
    every thread has been unblocked (a failing rank aborts its
    transport, exactly like the driver's rank body).
    """
    results = [None] * size
    failures = []

    def body(r):
        tp = make_transport(r)
        try:
            results[r] = fn(r, tp)
        except BaseException as exc:
            failures.append(exc)
            tp.abort()
        finally:
            tp.close()

    threads = [
        threading.Thread(target=body, args=(r,), daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
        assert not t.is_alive(), "rank thread failed to finish"
    if failures:
        # a failing rank poisons its peers, whose exchanges then raise
        # TransportError; surface the root cause, as the driver does
        primary = [e for e in failures if not isinstance(e, TransportError)]
        raise (primary or failures)[0]
    return results


def loopback_maker(size):
    fabric = LoopbackFabric(size)
    return lambda r: fabric.endpoint(r, timeout=10)


def tcp_maker(size):
    listeners = [open_listener() for _ in range(size)]
    ports = [port for (_listener, port) in listeners]
    return lambda r: TcpTransport.connect_mesh(
        r, size, ports, listeners[r][0], timeout=10
    )


MAKERS = {"loopback": loopback_maker, "tcp": tcp_maker}


@pytest.fixture(params=sorted(MAKERS))
def maker(request):
    return MAKERS[request.param]


class TestExchange:
    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_alltoallv_roundtrip(self, maker, size):
        """Rank r's inbox from src must be exactly src's outbox to r."""

        def body(r, tp):
            out = [
                np.array([100 * r + dst, r], dtype=np.int64)
                for dst in range(size)
            ]
            return alltoallv(tp, out)

        inboxes = run_ranks(size, maker(size), body)
        for r, inbox in enumerate(inboxes):
            for src in range(size):
                assert inbox[src].tolist() == [100 * src + r, src]

    def test_alltoallv_variable_lengths_and_empties(self, maker):
        """Buffers of different lengths — including empty — round-trip."""
        size = 3

        def body(r, tp):
            out = [
                np.arange(r * dst, dtype=np.int64)  # dst 0 gets empty
                for dst in range(size)
            ]
            return alltoallv(tp, out)

        inboxes = run_ranks(size, maker(size), body)
        for r, inbox in enumerate(inboxes):
            for src in range(size):
                assert inbox[src].tolist() == list(range(src * r))

    def test_allgather_rows(self, maker):
        size = 3

        def body(r, tp):
            return allgather(tp, (r, r * r, 7))

        gathered = run_ranks(size, maker(size), body)
        expected = [[r, r * r, 7] for r in range(size)]
        for table in gathered:
            assert table.tolist() == expected

    def test_outbox_count_is_checked(self, maker):
        def body(r, tp):
            with pytest.raises(ValueError):
                alltoallv(tp, [np.zeros(1, dtype=np.int64)])  # 1 != 2
            # the mesh must still be usable for a well-formed round
            return allgather(tp, (r,)).tolist()

        assert run_ranks(2, maker(2), body) == [[[0], [1]], [[0], [1]]]

    def test_bytes_accounting(self, maker):
        """Both fabrics charge payload + 8-byte header per frame."""
        size = 2

        def body(r, tp):
            alltoallv(tp, [np.arange(4, dtype=np.int64)] * size)
            return tp.bytes_sent, tp.frames_sent

        for sent, frames in run_ranks(size, maker(size), body):
            assert frames == 1  # the self-message never hits the wire
            assert sent == 4 * 8 + 8

    def test_single_rank_needs_no_wire(self, maker):
        def body(r, tp):
            inbox = alltoallv(tp, [np.array([5], dtype=np.int64)])
            return inbox[0].tolist(), tp.bytes_sent

        assert run_ranks(1, maker(1), body) == [([5], 0)]


class TestFailureSemantics:
    def test_aborted_peer_raises_transport_error(self, maker):
        """A rank dying mid-protocol must fail its peer, not hang it."""
        size = 2

        def body(r, tp):
            if r == 0:
                raise RuntimeError("rank 0 dies before sending")
            tp.recv(0)  # must unblock with an error, not wait forever

        with pytest.raises(RuntimeError, match="rank 0 dies"):
            run_ranks(size, maker(size), body)

    def test_loopback_recv_timeout(self):
        fabric = LoopbackFabric(2)
        tp = fabric.endpoint(0, timeout=0.05)
        with pytest.raises(TransportError, match="no frame"):
            tp.recv(1)

    def test_tcp_close_is_idempotent(self):
        def body(r, tp):
            tp.close()
            tp.close()
            return True

        assert run_ranks(2, tcp_maker(2), body) == [True, True]
