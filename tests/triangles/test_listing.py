"""Unit + property tests for repro.triangles.listing."""

from hypothesis import given, settings

from repro.graph import Graph, complete_graph, cycle_graph, disjoint_union, star_graph
from repro.triangles import (
    degree_ranks,
    iter_triangles,
    oriented_adjacency,
    triangle_count,
)

from helpers import small_edge_lists
from oracles import brute_triangles


class TestDegreeRanks:
    def test_dense_and_ordered_by_degree(self):
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2)])
        rank = degree_ranks(g)
        assert sorted(rank.values()) == [0, 1, 2, 3]
        assert rank[3] < rank[0]  # deg(3)=1 < deg(0)=3

    def test_ties_broken_by_id(self):
        g = cycle_graph(4)  # all degree 2
        rank = degree_ranks(g)
        assert rank[0] < rank[1] < rank[2] < rank[3]


class TestOrientedAdjacency:
    def test_each_edge_oriented_once(self):
        g = complete_graph(5)
        out = oriented_adjacency(g)
        assert sum(len(s) for s in out.values()) == g.num_edges

    def test_out_neighbors_have_higher_rank(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (2, 3)])
        rank = degree_ranks(g)
        out = oriented_adjacency(g)
        for v, outs in out.items():
            for w in outs:
                assert rank[w] > rank[v]


class TestTriangles:
    def test_k3(self):
        assert triangle_count(complete_graph(3)) == 1
        assert len(list(iter_triangles(complete_graph(3)))) == 1

    def test_k5_count(self):
        # C(5,3) = 10 triangles
        assert triangle_count(complete_graph(5)) == 10

    def test_triangle_free_graphs(self):
        assert triangle_count(cycle_graph(5)) == 0
        assert triangle_count(star_graph(10)) == 0
        assert list(iter_triangles(cycle_graph(6))) == []

    def test_empty_graph(self):
        assert triangle_count(Graph()) == 0

    def test_disjoint_components_sum(self):
        g = disjoint_union([complete_graph(4), complete_graph(3)])
        assert triangle_count(g) == 4 + 1

    def test_each_triangle_listed_once(self):
        g = complete_graph(6)
        tris = [frozenset(t) for t in iter_triangles(g)]
        assert len(tris) == len(set(tris)) == 20

    def test_listed_triangles_are_triangles(self):
        g = Graph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 0)])
        for a, b, c in iter_triangles(g):
            assert g.has_edge(a, b) and g.has_edge(b, c) and g.has_edge(a, c)

    @settings(max_examples=60)
    @given(small_edge_lists())
    def test_matches_bruteforce(self, edges):
        g = Graph(edges)
        listed = {frozenset(t) for t in iter_triangles(g)}
        assert listed == brute_triangles(g)
        assert triangle_count(g) == len(listed)

    @settings(max_examples=30)
    @given(small_edge_lists())
    def test_count_matches_networkx(self, edges):
        import networkx as nx

        g = Graph(edges)
        ng = nx.Graph(list(g.edges()))
        ng.add_nodes_from(g.vertices())
        assert triangle_count(g) == sum(nx.triangles(ng).values()) // 3
