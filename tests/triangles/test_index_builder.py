"""Tests for the streaming two-pass triangle-index builder.

The contract under test: both storages, at *any* wedge-chunk size
(including one wedge run per chunk), produce bit-identical
``(e1, e2, e3, tptr, tinc)`` bundles whose supports match the brute
oracle, whose incidence windows are ascending in triangle id, and over
which every CSR peel engine computes the same trussness map as the
dict-based methods.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings

import repro.triangles.index_builder as ib
from repro.core import truss_decomposition_flat, truss_decomposition_parallel
from repro.core.flat import _as_csr
from repro.core.truss_improved import truss_decomposition_improved
from repro.errors import DecompositionError
from repro.graph import CSRGraph, Graph, complete_graph

from helpers import peel_graphs, random_graph, small_edge_lists
from oracles import brute_all_supports, brute_triangles

np = pytest.importorskip("numpy")


def build_all_ways(csr, tmp_path, chunks=(1, 7, None)):
    """The same index through every storage and several chunk sizes."""
    built = []
    for chunk in chunks:
        built.append(("ram", chunk, ib.build_triangle_index(csr, chunk=chunk)))
        d = tempfile.mkdtemp(dir=tmp_path)
        built.append(
            (
                "mmap",
                chunk,
                ib.build_triangle_index(
                    csr, storage="mmap", dirpath=d, chunk=chunk
                ),
            )
        )
    return built


def assert_index_matches_oracle(g, csr, tri):
    """Structural correctness of one built index vs the brute oracle."""
    labels = csr.labels
    eu, ev = csr.edge_endpoints()
    m = csr.num_edges
    sup = tri.initial_supports()
    oracle_sup = brute_all_supports(g)
    for e in range(m):
        edge = (labels[eu[e]], labels[ev[e]])
        assert sup[e] == oracle_sup[edge], edge
    # tptr is the running sum of the incidence counts
    assert np.array_equal(
        np.asarray(tri.tptr),
        np.concatenate(([0], np.cumsum(sup))),
    )
    # every triangle appears exactly once, as three consistent edges
    tri_sets = set()
    for t in range(tri.num_triangles):
        eids = (int(tri.e1[t]), int(tri.e2[t]), int(tri.e3[t]))
        verts = frozenset(
            labels[x] for e in eids for x in (eu[e], ev[e])
        )
        assert len(verts) == 3
        tri_sets.add(verts)
    assert tri_sets == brute_triangles(g)
    # each edge's incidence window holds exactly its triangles, with
    # the builder's canonical ascending-triangle-id layout
    tinc = np.asarray(tri.tinc)
    for e in range(m):
        window = tinc[tri.tptr[e]:tri.tptr[e + 1]]
        assert np.all(window[1:] > window[:-1]), e  # ascending, unique
        for t in window:
            assert e in (tri.e1[t], tri.e2[t], tri.e3[t])


class TestBuilderProperty:
    @settings(max_examples=25, deadline=None)
    @given(peel_graphs())
    def test_storages_and_chunks_bit_identical(self, tmp_path_factory, g):
        csr = _as_csr(g)
        tmp = tmp_path_factory.mktemp("triidx")
        built = build_all_ways(csr, tmp)
        ref = built[0][2]
        for storage, chunk, tri in built[1:]:
            for field in ib.TriangleIndex.FIELDS:
                assert np.array_equal(
                    np.asarray(getattr(tri, field)),
                    np.asarray(getattr(ref, field)),
                ), (storage, chunk, field)
        assert_index_matches_oracle(g, csr, ref)

    @settings(max_examples=20, deadline=None)
    @given(small_edge_lists())
    def test_counting_pass_matches_oracle(self, edges):
        g = Graph(edges)
        csr = _as_csr(g)
        for chunk in (1, 5, None):
            sup, n_tri = ib.count_edge_incidence(csr, chunk=chunk)
            assert n_tri == len(brute_triangles(g))
            oracle = brute_all_supports(g)
            labels = csr.labels
            eu, ev = csr.edge_endpoints()
            for e in range(csr.num_edges):
                assert sup[e] == oracle[(labels[eu[e]], labels[ev[e]])]


class TestDecompositionParity:
    @pytest.mark.parametrize("storage", ["ram", "mmap"])
    @pytest.mark.parametrize("chunk", [1, 16])
    def test_flat_over_tiny_chunks(self, monkeypatch, storage, chunk):
        monkeypatch.setattr(ib, "_WEDGE_CHUNK", chunk)
        g = random_graph(24, 0.3, seed=71)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_flat(g, index_storage=storage)
        assert td == ref
        assert td.stats.extra["index_storage"] == storage

    @pytest.mark.parametrize("storage", ["ram", "mmap"])
    def test_pooled_peel_over_both_storages(self, storage):
        g = random_graph(22, 0.35, seed=72)
        ref = truss_decomposition_flat(g)
        for shards in ("dynamic", "static"):
            td = truss_decomposition_parallel(
                g, jobs=2, shards=shards, index_storage=storage
            )
            assert td == ref, (storage, shards)
            assert td.stats.extra["index_storage"] == storage

    def test_auto_threshold_picks_mmap(self, monkeypatch):
        # shrink the auto cutoff so even a toy graph spills to disk
        monkeypatch.setattr(ib, "_AUTO_MMAP_INDEX_BYTES", 1)
        g = complete_graph(6)
        td = truss_decomposition_flat(g)
        assert td.stats.extra["index_storage"] == "mmap"
        assert td == truss_decomposition_improved(g)

    def test_auto_threshold_default_is_ram(self):
        td = truss_decomposition_flat(complete_graph(6))
        assert td.stats.extra["index_storage"] == "ram"


class TestEdgeCases:
    @pytest.mark.parametrize("storage", ["ram", "mmap"])
    def test_triangle_free_graph(self, tmp_path, storage):
        csr = _as_csr(Graph([(0, 1), (1, 2), (2, 3)]))
        tri = ib.build_triangle_index(
            csr, storage=storage,
            dirpath=tmp_path if storage == "mmap" else None,
        )
        assert tri.num_triangles == 0
        assert np.all(np.asarray(tri.tptr) == 0)
        assert len(tri.tinc) == 0

    def test_mmap_layout_reopens_as_triangle_index(self, tmp_path):
        # the builder's on-disk output IS the dist ranks' read format
        csr = _as_csr(complete_graph(5))
        built = ib.build_triangle_index(csr, storage="mmap", dirpath=tmp_path)
        reopened = ib.TriangleIndex.open(tmp_path)
        for field in ib.TriangleIndex.FIELDS:
            assert np.array_equal(
                np.asarray(getattr(reopened, field)),
                np.asarray(getattr(built, field)),
            ), field
        assert reopened.storage == "mmap"

    def test_auto_spill_without_dirpath_is_cleanable(self, monkeypatch):
        # auto with no caller dirpath mkdtemps; the index owns that
        # directory and cleanup() must remove it (and only that case)
        monkeypatch.setattr(ib, "_AUTO_MMAP_INDEX_BYTES", 1)
        csr = _as_csr(complete_graph(6))
        tri = ib.build_triangle_index(csr, storage="auto")
        assert tri.storage == "mmap" and tri.owns_dirpath
        spilled = tri.dirpath
        assert spilled.exists()
        tri.cleanup()
        assert not spilled.exists()
        tri.cleanup()  # idempotent

    def test_cleanup_leaves_caller_dirs_alone(self, tmp_path):
        csr = _as_csr(complete_graph(5))
        tri = ib.build_triangle_index(csr, storage="mmap", dirpath=tmp_path)
        assert not tri.owns_dirpath
        tri.cleanup()
        assert (tmp_path / "tinc.npy").exists()

    def test_unknown_storage_rejected(self):
        csr = _as_csr(complete_graph(4))
        with pytest.raises(DecompositionError):
            ib.build_triangle_index(csr, storage="tape")

    def test_mmap_without_dirpath_rejected(self):
        csr = _as_csr(complete_graph(4))
        with pytest.raises(DecompositionError):
            ib.build_triangle_index(csr, storage="mmap")
