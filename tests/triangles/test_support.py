"""Unit + property tests for repro.triangles.support."""

from hypothesis import given, settings

from repro.graph import Graph, complete_graph, cycle_graph, neighborhood_subgraph
from repro.triangles import edge_supports, max_support, support_of_edges, supports_within

from helpers import small_edge_lists
from oracles import brute_all_supports, brute_support


class TestEdgeSupports:
    def test_clique_supports(self):
        g = complete_graph(5)
        sup = edge_supports(g)
        assert all(s == 3 for s in sup.values())
        assert len(sup) == 10

    def test_triangle_free_all_zero(self):
        sup = edge_supports(cycle_graph(6))
        assert all(s == 0 for s in sup.values())
        assert len(sup) == 6

    def test_every_edge_present(self):
        g = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        sup = edge_supports(g)
        assert set(sup) == set(g.edges())
        assert sup[(2, 3)] == 0
        assert sup[(0, 1)] == 1

    def test_empty_graph(self):
        assert edge_supports(Graph()) == {}
        assert max_support(Graph()) == 0

    def test_max_support(self):
        assert max_support(complete_graph(6)) == 4

    @settings(max_examples=60)
    @given(small_edge_lists())
    def test_matches_bruteforce(self, edges):
        g = Graph(edges)
        assert edge_supports(g) == brute_all_supports(g)


class TestSupportOfEdges:
    def test_subset_query(self):
        g = complete_graph(4)
        sup = support_of_edges(g, [(0, 1)])
        assert sup == {(0, 1): 2}

    def test_accepts_unordered_pairs(self):
        g = complete_graph(3)
        assert support_of_edges(g, [(2, 0)]) == {(0, 2): 1}


class TestSupportsWithin:
    def test_internal_supports_exact(self):
        # path 0-1-2-3 plus triangles around 1-2
        g = Graph([(0, 1), (1, 2), (2, 3), (1, 4), (2, 4), (1, 5), (2, 5)])
        ns = neighborhood_subgraph(g, [1, 2])
        sup = supports_within(ns.graph, ns.internal_vertices)
        assert sup == {(1, 2): 2}

    @settings(max_examples=40)
    @given(small_edge_lists())
    def test_matches_global_support(self, edges):
        g = Graph(edges)
        vs = sorted(g.vertices())
        internal = set(vs[::2])
        ns = neighborhood_subgraph(g, internal)
        sup = supports_within(ns.graph, ns.internal_vertices)
        for (u, v), s in sup.items():
            assert s == brute_support(g, u, v)
