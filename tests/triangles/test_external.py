"""Tests for I/O-efficient external support counting."""

import pytest
from hypothesis import given, settings

from repro.exio import DiskEdgeFile, IOStats, MemoryBudget
from repro.graph import Graph, complete_graph
from repro.partition import (
    DominatingSetPartitioner,
    RandomizedPartitioner,
    SequentialPartitioner,
)
from repro.triangles import (
    edge_supports,
    external_edge_supports,
    external_supports_to_file,
    external_triangle_count,
    triangle_count,
)

from helpers import random_graph, small_edge_lists


def run_external(g, tmp_path, units=20, partitioner=None):
    stats = IOStats()
    f = DiskEdgeFile.from_edges(tmp_path / "g.bin", g.sorted_edges(), stats)
    out = dict()
    for u, v, s in external_edge_supports(
        f, MemoryBudget(units=units), partitioner or SequentialPartitioner(),
        tmp_path / "work", stats,
    ):
        assert (u, v) not in out, "edge reported twice"
        out[(u, v)] = s
    return out, stats


class TestExactness:
    def test_clique(self, tmp_path):
        sup, _ = run_external(complete_graph(6), tmp_path)
        assert all(s == 4 for s in sup.values())
        assert len(sup) == 15

    @pytest.mark.parametrize("units", [8, 20, 100_000])
    def test_matches_in_memory(self, tmp_path, units):
        g = random_graph(24, 0.3, seed=61)
        sup, _ = run_external(g, tmp_path, units=units)
        assert sup == edge_supports(g)

    @pytest.mark.parametrize(
        "part",
        [SequentialPartitioner(), DominatingSetPartitioner(), RandomizedPartitioner(seed=3)],
        ids=lambda p: p.name,
    )
    def test_partitioner_independent(self, tmp_path, part):
        g = random_graph(20, 0.35, seed=62)
        sup, _ = run_external(g, tmp_path, units=16, partitioner=part)
        assert sup == edge_supports(g)

    def test_split_triangle_counted(self, tmp_path):
        """The cross-round case: a tiny budget forces a triangle's edges
        into different rounds, and each must still see the full count
        because extraction reads the untouched full graph."""
        sup, _ = run_external(complete_graph(3), tmp_path, units=5)
        assert sup == {(0, 1): 1, (0, 2): 1, (1, 2): 1}

    @settings(max_examples=15, deadline=None)
    @given(small_edge_lists())
    def test_property(self, edges):
        import tempfile
        from pathlib import Path

        g = Graph(edges)
        with tempfile.TemporaryDirectory() as d:
            sup, _ = run_external(g, Path(d), units=10)
            assert sup == edge_supports(g)


class TestHelpers:
    def test_supports_to_file(self, tmp_path):
        g = random_graph(15, 0.3, seed=63)
        stats = IOStats()
        f = DiskEdgeFile.from_edges(tmp_path / "g.bin", g.sorted_edges(), stats)
        out = external_supports_to_file(
            f, tmp_path / "sup.bin", MemoryBudget(units=16),
            SequentialPartitioner(), tmp_path / "w", stats,
        )
        assert {(u, v): s for u, v, s in out.scan()} == edge_supports(g)

    def test_triangle_count(self, tmp_path):
        g = random_graph(18, 0.3, seed=64)
        stats = IOStats()
        f = DiskEdgeFile.from_edges(tmp_path / "g.bin", g.sorted_edges(), stats)
        n = external_triangle_count(
            f, MemoryBudget(units=16), SequentialPartitioner(),
            tmp_path / "w", stats,
        )
        assert n == triangle_count(g)

    def test_input_file_left_intact(self, tmp_path):
        g = complete_graph(5)
        sup, stats = run_external(g, tmp_path, units=8)
        # input file still scannable with all edges
        f = DiskEdgeFile(tmp_path / "g.bin", IOStats())
        assert len(f) == 10

    def test_io_charged(self, tmp_path):
        g = random_graph(20, 0.3, seed=65)
        _sup, stats = run_external(g, tmp_path, units=12)
        assert stats.blocks_read > 0
        assert stats.scans_started > 0
