"""The tracing-off overhead pin: under 5% of any real peel, by math.

An A/B wall-clock comparison of traced-off vs pre-instrumentation runs
would be hopelessly flaky at test scale, so the pin is deterministic
instead: measure what one ``tracer.enabled`` guard actually costs,
bound the number of guards a peel executes (a small constant per wave
and level plus a constant per run), and assert the product stays under
5% of the *measured* wall time of a real decomposition.  Every term is
measured in-process on the same host, so the ratio is stable.
"""

import time
import timeit

from repro.core import truss_decomposition_flat
from repro.datasets import load_dataset
from repro.obs import NULL_TRACER

#: guards per wave on the instrumented hot paths: wave entry, wave
#: exit, and slack for the exchange-accounting reads next to them
GUARDS_PER_WAVE = 4
#: guards per level: entry and exit
GUARDS_PER_LEVEL = 2
#: constant per run: run_start, kernel wrap, index build, peel span …
GUARDS_PER_RUN = 16


def _per_guard_seconds() -> float:
    """Seconds one ``if tracer.enabled:`` check costs, measured."""
    n = 200_000
    best = min(
        timeit.timeit(
            "if tr.enabled:\n    pass",
            globals={"tr": NULL_TRACER},
            number=n,
        )
        for _ in range(3)
    )
    return best / n


def test_null_tracer_guard_cost_under_5_percent():
    g = load_dataset("p2p", scale=0.25)
    t0 = time.perf_counter()
    td = truss_decomposition_flat(g)  # tracing off: the default path
    wall = time.perf_counter() - t0
    extra = td.stats.extra
    # on the stdlib substrate the flat engine takes the wedge-bisect
    # fallback — no wave loop, so only the per-run guards remain and
    # waves/levels stay 0; with numpy the wave counts must be real
    waves = int(extra.get("waves", 0))
    levels = int(extra.get("levels", 0))
    try:
        import numpy  # noqa: F401
        assert waves > 0 and levels > 0
    except ImportError:
        pass
    guards = (
        GUARDS_PER_WAVE * waves
        + GUARDS_PER_LEVEL * levels
        + GUARDS_PER_RUN
    )
    overhead = guards * _per_guard_seconds()
    assert overhead < 0.05 * wall, (
        f"{guards} guards x {_per_guard_seconds():.2e}s "
        f"= {overhead:.2e}s vs wall {wall:.4f}s"
    )


def test_untraced_run_emits_no_trace_state():
    g = load_dataset("p2p", scale=0.15)
    td = truss_decomposition_flat(g)
    extra = td.stats.extra
    # the tracing-only instruments stay silent when tracing is off:
    # no kernel-op counters, no frontier histogram series
    assert not any("kernel_ops" in key for key in extra)
    assert not any("frontier_edges" in key for key in extra)
