"""The one trace-event schema: accept/reject cases, stdlib-only."""

import pytest

from repro.obs import TRACE_SCHEMA_VERSION, validate_event


def _span(**over):
    base = {"ts": 0.5, "kind": "span", "name": "wave", "dur": 0.01}
    base.update(over)
    return base


def _event(**over):
    base = {"ts": 0.0, "kind": "event", "name": "run_start"}
    base.update(over)
    return base


def test_schema_version_pinned():
    assert TRACE_SCHEMA_VERSION == 1


@pytest.mark.parametrize("obj", [
    _span(),
    _span(attrs={"k": 3, "frontier": 10, "engine": "flat"}),
    _span(rank=0),
    _span(rank=3, level="info"),
    _event(),
    _event(level="warning", attrs={"path": "stdlib_fallback"}),
    _event(attrs={"x": None, "y": True, "z": 1.5}),
    _span(ts=0, dur=0),  # ints where numbers are allowed
])
def test_valid_events(obj):
    validate_event(obj)


@pytest.mark.parametrize("obj,needle", [
    ("not a dict", "object"),
    (_span(extra_key=1), "unknown event keys"),
    (_span(ts=-0.1), "ts"),
    (_span(ts=True), "ts"),
    (_span(ts=None), "ts"),
    (_event(kind="metric"), "kind"),
    (_span(name=""), "name"),
    (_span(name=7), "name"),
    (_span(dur=None), "dur"),
    (_span(dur=-1.0), "dur"),
    (_span(dur=True), "dur"),
    (_event(dur=0.1), "must not carry dur"),
    (_span(level="debug"), "level"),
    (_span(rank=-1), "rank"),
    (_span(rank=1.5), "rank"),
    (_span(rank=True), "rank"),
    (_span(attrs=[1, 2]), "attrs"),
    (_span(attrs={"nested": {"a": 1}}), "scalar"),
    (_span(attrs={"listy": [1]}), "scalar"),
])
def test_invalid_events(obj, needle):
    with pytest.raises(ValueError, match=needle):
        validate_event(obj)
