"""Degradation paths: always counted, warned in the trace when tracing."""

from repro.graph import complete_graph
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    validate_event,
    warn_degraded,
)
from repro.stream import TrussMaintainer


def test_warn_degraded_counts_even_untraced():
    reg = MetricsRegistry()
    warn_degraded(NULL_TRACER, reg, "stdlib_fallback", engine="flat")
    warn_degraded(NULL_TRACER, reg, "stdlib_fallback", engine="flat")
    assert reg.value("repro_degraded_total", path="stdlib_fallback") == 2


def test_warn_degraded_emits_warning_event_when_traced():
    reg = MetricsRegistry()
    tr = Tracer(sink=None)
    warn_degraded(tr, reg, "dist_retry", attempt=1, resume_epoch=3)
    (event,) = tr.drain()
    validate_event(event)
    assert event["level"] == "warning"
    assert event["name"] == "degraded"
    assert event["attrs"]["path"] == "dist_retry"
    assert event["attrs"]["attempt"] == 1
    assert reg.value("repro_degraded_total", path="dist_retry") == 1


def test_stream_full_repeel_is_diagnosable_from_trace():
    # K20 has 190 edges -> region cap max(64, 19) = 64; a 40-delete
    # batch widens the traversal slack until the region blows past it,
    # forcing the full-repeel fallback — which must leave both a
    # warning in the trace and a counter in the stats
    tr = Tracer(sink=None)
    tm = TrussMaintainer.from_graph(complete_graph(20), trace=tr)
    edges = list(tm.trussness)[:40]
    tm.apply_batch([("delete", u, v) for u, v in edges])
    events = tr.drain()
    warns = [e for e in events if e.get("level") == "warning"]
    assert any(e["attrs"].get("path") == "stream_full_repeel" for e in warns)
    (warn,) = [
        e for e in warns if e["attrs"].get("path") == "stream_full_repeel"
    ]
    assert warn["attrs"]["region"] > warn["attrs"]["cap"]
    extra = tm.stats.extra
    assert extra["repro_degraded_total{path=stream_full_repeel}"] == 1
    assert extra["full_repeels"] == 1
    # the truncated repair span documents the fallback too
    repair = [e for e in events if e["name"] == "repair"][-1]
    assert repair["attrs"]["truncated"] is True


def test_stream_full_repeel_counted_without_tracer():
    tm = TrussMaintainer.from_graph(complete_graph(20))
    edges = list(tm.trussness)[:40]
    tm.apply_batch([("delete", u, v) for u, v in edges])
    extra = tm.stats.extra
    assert extra["repro_degraded_total{path=stream_full_repeel}"] == 1
