"""MetricsRegistry instruments and expositions, stdlib-only."""

import json

import pytest

from repro.obs import CountingKernel, MetricsRegistry


# ------------------------------------------------------------ instruments
def test_counter_accumulates_per_label_set():
    reg = MetricsRegistry()
    reg.inc("repro_degraded_total", path="dist_retry")
    reg.inc("repro_degraded_total", 2, path="dist_retry")
    reg.inc("repro_degraded_total", path="stdlib_fallback")
    assert reg.value("repro_degraded_total", path="dist_retry") == 3
    assert reg.value("repro_degraded_total", path="stdlib_fallback") == 1
    assert reg.value("repro_degraded_total", path="nope") is None


def test_gauge_set_overwrites():
    reg = MetricsRegistry()
    reg.set("peel_s", 0.5)
    reg.set("peel_s", 0.25)
    assert reg.value("peel_s") == 0.25


def test_string_gauge_becomes_info_series():
    reg = MetricsRegistry()
    reg.set("index_storage", "mmap")
    assert reg.value("index_storage") == "mmap"
    text = reg.to_prometheus()
    assert 'repro_index_storage_info{value="mmap"} 1' in text
    # numeric overwrite moves the series back to a plain gauge
    reg.set("index_storage", 3)
    assert reg.value("index_storage") == 3
    assert "index_storage_info" not in reg.to_prometheus()


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    for v in (1, 5, 500, 2_000_000):
        reg.observe("repro_wave_frontier_edges", v)
    snap = reg.to_json()["histograms"]["repro_wave_frontier_edges"][""]
    assert snap["count"] == 4
    assert snap["sum"] == 2_000_506
    by_edge = dict(tuple(b) for b in snap["buckets"])
    assert by_edge[1] == 1       # <= 1
    assert by_edge[10] == 2      # <= 10
    assert by_edge[1_000] == 3   # <= 1000
    assert by_edge[1_000_000] == 3  # the 2M observation overflows


def test_counter_items_yields_merge_feed():
    reg = MetricsRegistry()
    reg.inc("repro_kernel_ops_total", 4, op="pop_frontier")
    reg.inc("repro_kernel_ops_total", 2, op="apply_decrements")
    items = sorted(reg.counter_items(), key=lambda t: t[1]["op"])
    assert items == [
        ("repro_kernel_ops_total", {"op": "apply_decrements"}, 2),
        ("repro_kernel_ops_total", {"op": "pop_frontier"}, 4),
    ]


# ----------------------------------------------------------- as_dict view
def test_as_dict_is_the_legacy_extra_shape():
    reg = MetricsRegistry()
    reg.set("waves", 7)
    reg.set("method", "flat")
    reg.inc("repro_degraded_total", path="stream_full_repeel")
    reg.observe("repro_wave_frontier_edges", 100)
    d = reg.as_dict()
    assert d["waves"] == 7
    assert d["method"] == "flat"
    assert d["repro_degraded_total{path=stream_full_repeel}"] == 1
    assert d["repro_wave_frontier_edges_count"] == 1
    assert d["repro_wave_frontier_edges_sum"] == 100
    # a fresh dict each call: mutating it never touches the registry
    d["waves"] = 99
    assert reg.as_dict()["waves"] == 7


# ------------------------------------------------------------ expositions
def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    reg.inc("repro_degraded_total", path="dist_retry")
    reg.set("waves", 12)
    reg.observe("frontier", 5, buckets=(10, 100))
    text = reg.to_prometheus()
    assert "# TYPE repro_degraded_total counter" in text
    assert 'repro_degraded_total{path="dist_retry"} 1' in text
    # legacy short names get the repro_ prefix; counters get _total
    assert "# TYPE repro_waves gauge" in text
    assert "repro_waves 12" in text
    assert 'repro_frontier_bucket{le="10"} 1' in text
    assert 'repro_frontier_bucket{le="+Inf"} 1' in text
    assert "repro_frontier_sum 5" in text
    assert "repro_frontier_count 1" in text
    assert text.endswith("\n")


def test_prometheus_sanitizes_hostile_names():
    reg = MetricsRegistry()
    reg.set("b/wave (avg)", 3)
    text = reg.to_prometheus()
    assert "repro_b_wave__avg_ 3" in text


def test_json_exposition_round_trips():
    reg = MetricsRegistry()
    reg.inc("repro_kernel_ops_total", 2, op="pop_frontier")
    reg.set("kmax", 5)
    reg.set("method", "dist")
    doc = json.loads(json.dumps(reg.to_json()))
    assert doc["counters"]["repro_kernel_ops_total"]['{op="pop_frontier"}'] == 2
    assert doc["gauges"]["kmax"][""] == 5
    assert doc["info"]["method"][""] == "dist"


def test_empty_registry_expositions():
    reg = MetricsRegistry()
    assert reg.to_prometheus() == ""
    assert reg.as_dict() == {}
    assert all(not v for v in reg.to_json().values())


# -------------------------------------------------------- CountingKernel
class _FakeKernel:
    name = "fake"

    def pop_frontier(self, *a):
        return "popped"

    def gather_incident(self, *a):
        return "gathered"

    def count_decrements(self, *a, **kw):
        return "counted"

    def apply_decrements(self, *a):
        return "applied"

    def merge_decrements(self, *a):
        return "merged"


def test_counting_kernel_proxies_and_counts():
    kern = CountingKernel(_FakeKernel())
    assert kern.name == "fake"
    assert kern.pop_frontier() == "popped"
    assert kern.pop_frontier() == "popped"
    assert kern.gather_incident() == "gathered"
    assert kern.count_decrements(lo=0) == "counted"
    assert kern.apply_decrements() == "applied"
    assert kern.merge_decrements() == "merged"
    assert kern.ops == {
        "pop_frontier": 2,
        "gather_incident": 1,
        "count_decrements": 1,
        "apply_decrements": 1,
        "merge_decrements": 1,
    }


def test_counting_kernel_flush_into_registry():
    kern = CountingKernel(_FakeKernel())
    kern.pop_frontier()
    kern.pop_frontier()
    kern.apply_decrements()
    reg = MetricsRegistry()
    kern.flush_into(reg)
    assert reg.value("repro_kernel_ops_total", op="pop_frontier") == 2
    assert reg.value("repro_kernel_ops_total", op="apply_decrements") == 1
