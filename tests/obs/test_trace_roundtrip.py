"""End-to-end traces from every engine: one schema, one renderer.

The tentpole contract: ``decompose`` over flat/parallel/dist and
``update`` over the stream maintainer all emit the schema of
:mod:`repro.obs.schema`, tracing never changes an answer, and every
trace renders through ``repro trace-report``'s code path.
"""

import json

import pytest

from repro.core import truss_decomposition
from repro.core.api import apply_updates
from repro.errors import DecompositionError
from repro.graph import complete_graph, disjoint_union
from repro.obs import Tracer, validate_event
from repro.obs.report import phase_durations, render_report


def _graph():
    g = disjoint_union([complete_graph(6), complete_graph(5)])
    g.add_edge(0, 6)
    g.add_edge(1, 6)
    return g


def _traced(method, **kwargs):
    g = _graph()
    tracer = Tracer(sink=None)
    td = truss_decomposition(g, method=method, trace=tracer, **kwargs)
    events = tracer.drain()
    assert events, method
    for e in events:
        validate_event(e)
    return td, events


@pytest.mark.parametrize("method,kwargs", [
    ("flat", {}),
    ("parallel", {"jobs": 2}),
    ("dist", {"ranks": 2}),
    ("improved", {}),
    ("baseline", {}),
])
def test_traced_run_matches_untraced(method, kwargs):
    td, events = _traced(method, **kwargs)
    ref = truss_decomposition(_graph(), method=method, **kwargs)
    assert td == ref
    # every trace opens with run_start naming its engine
    first = events[0]
    assert first["name"] == "run_start"
    assert first["attrs"]["engine"] == method
    # and renders through the one report path without blowing up
    assert render_report(events).startswith("trace:")


@pytest.mark.parametrize("method,kwargs", [
    ("flat", {}),
    ("parallel", {"jobs": 2}),
    ("dist", {"ranks": 2}),
])
def test_engine_traces_carry_phase_spans(method, kwargs):
    pytest.importorskip("numpy")
    _, events = _traced(method, **kwargs)
    names = {e["name"] for e in events}
    assert {"run_start", "index_build", "peel", "wave", "level"} <= names
    phases = phase_durations(events)
    assert phases.get("index_build", 0) >= 0
    assert phases.get("peel", 0) > 0
    # wave spans carry the peel's vital signs as flat scalar attrs
    wave = next(e for e in events if e["name"] == "wave")
    assert set(wave["attrs"]) >= {"k", "frontier", "killed"}


def test_non_csr_method_traces_whole_run_span():
    _, events = _traced("improved")
    span = next(e for e in events if e["name"] == "decompose")
    assert span["kind"] == "span"
    assert span["attrs"]["method"] == "improved"


def test_trace_path_writes_valid_jsonl(tmp_path):
    path = tmp_path / "run.jsonl"
    td = truss_decomposition(_graph(), method="flat", trace_path=str(path))
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert events
    for e in events:
        validate_event(e)
    assert td == truss_decomposition(_graph(), method="flat")


def test_trace_and_trace_path_are_exclusive():
    with pytest.raises(DecompositionError, match="not both"):
        truss_decomposition(
            _graph(), method="flat",
            trace=Tracer(sink=None), trace_path="/tmp/never.jsonl",
        )
    with pytest.raises(DecompositionError, match="not both"):
        apply_updates(
            _graph(), [("insert", 0, 7)],
            trace=Tracer(sink=None), trace_path="/tmp/never.jsonl",
        )


def test_update_trace_has_repair_spans():
    tracer = Tracer(sink=None)
    td = apply_updates(
        _graph(),
        [("insert", 0, 7), ("insert", 1, 7), ("delete", 2, 3)],
        trace=tracer,
    )
    events = tracer.drain()
    for e in events:
        validate_event(e)
    repairs = [e for e in events if e["name"] == "repair"]
    assert len(repairs) == 3  # one per apply_batch call
    for span in repairs:
        assert span["kind"] == "span"
        assert set(span["attrs"]) >= {
            "updates", "region", "frozen", "triangles", "truncated",
        }
    ref = apply_updates(
        _graph(),
        [("insert", 0, 7), ("insert", 1, 7), ("delete", 2, 3)],
    )
    assert dict(td.trussness) == dict(ref.trussness)
    assert "repairs (stream):" in render_report(events)
