"""The dist trace's homeward leg: per-rank streams merged by the driver.

Ranks may be other OS processes (the TCP fabric), so each records into
its own in-memory tracer and ships the events home inside the stats
dict it already returns; the driver absorbs them in rank order into one
trace.  These tests pin that merge on the real 2-rank TCP path.
"""

import pytest

pytest.importorskip("numpy")

from repro.core import truss_decomposition_dist, truss_decomposition_flat
from repro.graph import complete_graph, disjoint_union
from repro.obs import Tracer, validate_event
from repro.obs.report import rank_rows, render_report


def _graph():
    g = disjoint_union([complete_graph(7), complete_graph(5)])
    g.add_edge(0, 7)
    g.add_edge(1, 7)
    return g


@pytest.fixture(scope="module", params=["loopback", "tcp"])
def merged(request):
    tracer = Tracer(sink=None)
    td = truss_decomposition_dist(
        _graph(), ranks=2, transport=request.param, trace=tracer,
    )
    return td, tracer.drain(), request.param


def test_merged_trace_is_schema_valid(merged):
    td, events, _ = merged
    assert events
    for e in events:
        validate_event(e)
    assert td == truss_decomposition_flat(_graph())


def test_both_rank_streams_present(merged):
    _, events, transport = merged
    ranks = {e["rank"] for e in events if "rank" in e}
    assert ranks == {0, 1}, transport
    # both ranks peeled: wave spans with real frontiers on each
    for r in (0, 1):
        waves = [
            e for e in events
            if e.get("rank") == r and e["name"] == "wave"
        ]
        assert waves, (transport, r)
        assert sum(e["attrs"]["frontier"] for e in waves) > 0


def test_driver_order_merge(merged):
    _, events, _ = merged
    # driver events (no rank) first — run_start/index_build/peel happen
    # before the rank streams are absorbed — then rank 0's whole
    # stream, then rank 1's
    tagged = [e.get("rank") for e in events]
    first_ranked = next(i for i, r in enumerate(tagged) if r is not None)
    assert all(r is None for r in tagged[:first_ranked])
    ranked = [r for r in tagged if r is not None]
    assert ranked == sorted(ranked)


def test_per_rank_stream_is_time_ordered(merged):
    _, events, _ = merged
    # ts is comparable within one rank stream only; spans backdate
    # their start, so the monotone quantity is the *end* time ts + dur
    for r in (0, 1):
        ends = [
            e["ts"] + e.get("dur", 0)
            for e in events if e.get("rank") == r
        ]
        # 2e-6 slack: ts and dur are each rounded to the microsecond
        assert all(
            b >= a - 2e-6 for a, b in zip(ends, ends[1:])
        ), (r, ends)


def test_exchange_attrs_on_tcp_waves(merged):
    _, events, transport = merged
    if transport != "tcp":
        pytest.skip("byte accounting only meaningful on the wire fabric")
    wave_bytes = [
        e["attrs"]["bytes"]
        for e in events if e["name"] == "wave" and "rank" in e
    ]
    assert sum(wave_bytes) > 0
    frames = [
        e["attrs"]["frames"]
        for e in events if e["name"] == "wave" and "rank" in e
    ]
    assert all(f >= 0 for f in frames) and sum(frames) > 0


def test_kernel_ops_merged_into_driver_metrics(merged):
    td, _, _ = merged
    extra = td.stats.extra
    ops = {
        key: val for key, val in extra.items()
        if key.startswith("repro_kernel_ops_total{")
    }
    assert ops, sorted(extra)
    assert ops.get("repro_kernel_ops_total{op=pop_frontier}", 0) > 0


def test_report_renders_rank_skew(merged):
    _, events, _ = merged
    rows = rank_rows(events)
    assert [r[0] for r in rows] == [0, 1]
    assert max(r[5] for r in rows) == pytest.approx(1.0)
    assert "per-rank skew:" in render_report(events)
