"""The CLI profiling surface: --trace, --metrics, trace-report."""

import json

import pytest

from repro.cli import main
from repro.graph import complete_graph, disjoint_union, write_edge_list
from repro.obs import validate_event


@pytest.fixture
def graph_file(tmp_path):
    g = disjoint_union([complete_graph(6), complete_graph(4)])
    g.add_edge(0, 6)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    return path


def test_decompose_trace_and_report(graph_file, tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    out = tmp_path / "phi.txt"
    rc = main([
        "decompose", str(graph_file), "--method", "flat",
        "--trace", str(trace), "-o", str(out),
    ])
    assert rc == 0
    events = [json.loads(line) for line in trace.read_text().splitlines()]
    assert events
    for e in events:
        validate_event(e)
    assert events[0]["name"] == "run_start"
    capsys.readouterr()
    rc = main(["trace-report", str(trace)])
    assert rc == 0
    report = capsys.readouterr().out
    assert report.startswith("trace:")
    assert "phases:" in report


def test_decompose_traced_output_parity(graph_file, tmp_path):
    plain = tmp_path / "plain.txt"
    traced = tmp_path / "traced.txt"
    assert main([
        "decompose", str(graph_file), "--method", "flat", "-o", str(plain),
    ]) == 0
    assert main([
        "decompose", str(graph_file), "--method", "flat",
        "--trace", str(tmp_path / "t.jsonl"), "-o", str(traced),
    ]) == 0
    assert plain.read_text() == traced.read_text()


def test_decompose_metrics_prometheus(graph_file, tmp_path):
    metrics = tmp_path / "run.prom"
    rc = main([
        "decompose", str(graph_file), "--method", "flat",
        "--metrics", str(metrics), "-o", str(tmp_path / "phi.txt"),
    ])
    assert rc == 0
    text = metrics.read_text()
    assert "# TYPE repro_peel_s gauge" in text
    assert "repro_kmax" in text


def test_decompose_metrics_json(graph_file, tmp_path):
    metrics = tmp_path / "run.json"
    rc = main([
        "decompose", str(graph_file), "--method", "flat",
        "--metrics", str(metrics), "-o", str(tmp_path / "phi.txt"),
    ])
    assert rc == 0
    doc = json.loads(metrics.read_text())
    assert set(doc) == {"counters", "gauges", "histograms", "info"}
    assert "peel_s" in doc["gauges"]


def test_legacy_method_takes_trace(graph_file, tmp_path):
    trace = tmp_path / "t.jsonl"
    rc = main([
        "decompose", str(graph_file), "--method", "improved",
        "--trace", str(trace), "-o", str(tmp_path / "phi.txt"),
    ])
    assert rc == 0
    names = [
        json.loads(line)["name"]
        for line in trace.read_text().splitlines()
    ]
    assert "run_start" in names and "decompose" in names


def test_update_trace_metrics_and_report(graph_file, tmp_path, capsys):
    updates = tmp_path / "u.txt"
    updates.write_text("+ 0 7\n+ 1 7\n- 2 3\n")
    trace = tmp_path / "u.jsonl"
    metrics = tmp_path / "u.json"
    rc = main([
        "update", str(graph_file), str(updates),
        "--trace", str(trace), "--metrics", str(metrics),
        "-o", str(tmp_path / "phi.txt"),
    ])
    assert rc == 0
    events = [json.loads(line) for line in trace.read_text().splitlines()]
    for e in events:
        validate_event(e)
    assert sum(e["name"] == "repair" for e in events) == 3
    doc = json.loads(metrics.read_text())
    assert "repairs" in doc["gauges"] or "repairs" in doc["counters"]
    capsys.readouterr()
    assert main(["trace-report", str(trace)]) == 0
    assert "repairs (stream):" in capsys.readouterr().out


def test_trace_report_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("0 1 3\n")
    assert main(["trace-report", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_trace_report_missing_file(tmp_path, capsys):
    assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err
