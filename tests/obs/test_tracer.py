"""Tracer and NullTracer behavior, stdlib-only."""

import io
import json

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer, open_tracer, validate_event


def _parse(text):
    events = [json.loads(line) for line in text.splitlines() if line]
    for e in events:
        validate_event(e)
    return events


# ------------------------------------------------------------- NullTracer
def test_null_tracer_is_disabled_and_inert():
    tr = NULL_TRACER
    assert tr.enabled is False
    assert tr.now() == 0.0
    tr.event("run_start", engine="flat")
    tr.warn("degraded", path="x")
    tr.complete_span("peel", 0.1, engine="flat")
    tr.absorb([{"ts": 0, "kind": "event", "name": "x"}], rank=1)
    assert tr.drain() == []
    tr.flush()
    tr.close()
    with NullTracer() as inner:
        assert inner.enabled is False


def test_null_tracer_has_no_span_method():
    # engines must guard span emission with `if tracer.enabled:` and use
    # complete_span — the context-manager form would allocate on the
    # hot path even when tracing is off, so the null tracer refuses it
    assert not hasattr(NULL_TRACER, "span")


def test_null_tracer_allocates_nothing():
    assert NullTracer.__slots__ == ()


# ----------------------------------------------------------------- Tracer
def test_event_and_span_records():
    buf = io.StringIO()
    with Tracer(buf) as tr:
        assert tr.enabled is True
        tr.event("run_start", engine="flat", m=10)
        tr.warn("degraded", path="stdlib_fallback")
        tr.complete_span("peel", 0.25, engine="flat")
    events = _parse(buf.getvalue())
    assert [e["name"] for e in events] == ["run_start", "degraded", "peel"]
    assert events[0]["kind"] == "event"
    assert events[0]["attrs"] == {"engine": "flat", "m": 10}
    assert "level" not in events[0]  # info is the implied default
    assert events[1]["level"] == "warning"
    span = events[2]
    assert span["kind"] == "span"
    assert span["dur"] == pytest.approx(0.25)
    # a complete_span backdates its start so ts + dur == emission time
    assert span["ts"] >= 0


def test_now_is_monotonic_from_construction():
    tr = Tracer(sink=None)
    a = tr.now()
    b = tr.now()
    assert 0 <= a <= b


def test_span_context_manager_times_body():
    tr = Tracer(sink=None)
    with tr.span("index_build", storage="ram"):
        pass
    (event,) = tr.drain()
    validate_event(event)
    assert event["name"] == "index_build"
    assert event["kind"] == "span"
    assert event["dur"] >= 0
    assert event["attrs"] == {"storage": "ram"}


def test_complete_span_clamps_negative_inputs():
    tr = Tracer(sink=None)
    tr.complete_span("peel", -1.0)
    (event,) = tr.drain()
    assert event["dur"] == 0
    assert event["ts"] >= 0


def test_in_memory_drain_clears():
    tr = Tracer(sink=None)
    tr.event("a")
    tr.event("b")
    first = tr.drain()
    assert [e["name"] for e in first] == ["a", "b"]
    assert tr.drain() == []
    tr.event("c")
    assert [e["name"] for e in tr.drain()] == ["c"]


def test_file_sink_mode_has_no_drain():
    buf = io.StringIO()
    tr = Tracer(buf)
    tr.event("a")
    assert tr.drain() == []  # drain is the in-memory accessor only
    tr.flush()
    assert _parse(buf.getvalue())[0]["name"] == "a"


def test_flush_every_batches_writes():
    buf = io.StringIO()
    tr = Tracer(buf, flush_every=3)
    tr.event("a")
    tr.event("b")
    assert buf.getvalue() == ""  # buffered below the threshold
    tr.event("c")
    assert len(_parse(buf.getvalue())) == 3  # threshold crossed
    tr.close()


def test_path_sink_owned_and_closed(tmp_path):
    path = tmp_path / "trace.jsonl"
    tr = Tracer(str(path))
    tr.event("run_start", engine="flat")
    tr.complete_span("peel", 0.01)
    tr.close()
    events = _parse(path.read_text())
    assert [e["name"] for e in events] == ["run_start", "peel"]
    tr.close()  # idempotent


def test_absorb_tags_rank_and_preserves_order():
    tr = Tracer(sink=None)
    rank_stream = [
        {"ts": 0.1, "kind": "span", "name": "wave", "dur": 0.01},
        {"ts": 0.2, "kind": "event", "name": "checkpoint"},
    ]
    tr.absorb(rank_stream, rank=1)
    tr.absorb([{"ts": 0.0, "kind": "event", "name": "x"}])
    events = tr.drain()
    assert [e.get("rank") for e in events] == [1, 1, None]
    for e in events:
        validate_event(e)
    # absorb copies: the caller's records are not mutated in place
    assert "rank" not in rank_stream[0]


# ------------------------------------------------------------ open_tracer
def test_open_tracer_default_is_null():
    tr, owned = open_tracer()
    assert tr is NULL_TRACER
    assert owned is False


def test_open_tracer_borrows_ready_tracer():
    mine = Tracer(sink=None)
    tr, owned = open_tracer(trace=mine)
    assert tr is mine
    assert owned is False


def test_open_tracer_owns_path(tmp_path):
    path = tmp_path / "t.jsonl"
    tr, owned = open_tracer(trace_path=str(path))
    assert owned is True
    tr.event("run_start")
    tr.close()
    assert _parse(path.read_text())[0]["name"] == "run_start"


def test_open_tracer_rejects_both():
    with pytest.raises(ValueError, match="not both"):
        open_tracer(trace=Tracer(sink=None), trace_path="/tmp/x.jsonl")
