"""The trace-report renderer on synthetic traces, stdlib-only."""

import json

import pytest

from repro.obs.report import (
    level_rows,
    load_trace,
    phase_durations,
    rank_rows,
    render_report,
    render_trace_report,
    request_rows,
    warnings_of,
)

#: a server-shaped trace: per-request spans across two routes
SERVE_EVENTS = [
    {"ts": 0.0, "kind": "span", "name": "recover", "dur": 0.2,
     "attrs": {"gen": 0, "replayed": 3, "from_snapshot": True}},
    {"ts": 0.3, "kind": "span", "name": "request", "dur": 0.004,
     "attrs": {"route": "/edge/{u}/{v}/trussness", "status": 200,
               "stale": False, "method": "GET"}},
    {"ts": 0.4, "kind": "span", "name": "request", "dur": 0.010,
     "attrs": {"route": "/edge/{u}/{v}/trussness", "status": 404,
               "stale": True, "method": "GET"}},
    {"ts": 0.5, "kind": "span", "name": "request", "dur": 0.050,
     "attrs": {"route": "/updates", "status": 200, "stale": False,
               "method": "POST"}},
]

#: a hand-built dist-shaped trace: driver spans, two rank streams, one
#: degradation warning — every renderer section lights up
DIST_EVENTS = [
    {"ts": 0.0, "kind": "event", "name": "run_start",
     "attrs": {"engine": "dist", "m": 100, "ranks": 2}},
    {"ts": 0.0, "kind": "span", "name": "index_build", "dur": 0.5,
     "attrs": {"storage": "ram", "triangles": 40}},
    {"ts": 0.5, "kind": "span", "name": "peel", "dur": 1.0,
     "attrs": {"engine": "dist", "ranks": 2}},
    {"ts": 0.1, "kind": "span", "name": "wave", "dur": 0.2, "rank": 0,
     "attrs": {"k": 3, "frontier": 30, "killed": 25, "bytes": 64}},
    {"ts": 0.3, "kind": "span", "name": "wave", "dur": 0.1, "rank": 0,
     "attrs": {"k": 4, "frontier": 10, "killed": 10, "bytes": 16}},
    {"ts": 0.2, "kind": "event", "name": "checkpoint", "rank": 0,
     "attrs": {"epoch": 1, "waves": 1}},
    {"ts": 0.1, "kind": "span", "name": "wave", "dur": 0.4, "rank": 1,
     "attrs": {"k": 3, "frontier": 50, "killed": 45, "bytes": 128}},
    {"ts": 0.6, "kind": "event", "name": "degraded", "level": "warning",
     "attrs": {"path": "dist_retry", "attempt": 1}},
]


def test_phase_durations_sums_phase_spans():
    phases = phase_durations(DIST_EVENTS)
    assert phases == {"index_build": 0.5, "peel": 1.0}


def test_level_rows_aggregate_by_k():
    rows = level_rows(DIST_EVENTS)
    assert [r[0] for r in rows] == [3, 4]
    k3 = rows[0]
    # waves sum across ranks; popped and bytes are additive
    assert k3[1] == 2
    assert k3[2] == 80
    assert k3[3] == 50  # max single wave
    # concurrent ranks: level wall time is the max per-rank busy time
    assert k3[4] == pytest.approx(0.4)
    assert k3[5] == 192


def test_rank_rows_share_of_slowest():
    rows = rank_rows(DIST_EVENTS)
    assert [r[0] for r in rows] == [0, 1]
    r0, r1 = rows
    assert r0[1] == 2 and r1[1] == 1  # waves
    assert r0[3] == pytest.approx(0.3)  # busy seconds
    assert r1[3] == pytest.approx(0.4)
    assert r1[5] == pytest.approx(1.0)  # the straggler has share 1
    assert r0[5] == pytest.approx(0.75)


def test_rank_rows_empty_for_serial_traces():
    serial = [e for e in DIST_EVENTS if "rank" not in e]
    assert rank_rows(serial) == []


def test_request_rows_aggregate_by_route():
    rows = request_rows(SERVE_EVENTS)
    assert [r[0] for r in rows] == ["/edge/{u}/{v}/trussness", "/updates"]
    edge = rows[0]
    assert edge[1] == 2  # requests
    assert edge[2] == 1  # the 404
    assert edge[3] == 1  # the stale read
    assert edge[5] == pytest.approx(10.0)  # p99 ms
    assert request_rows(DIST_EVENTS) == []  # engine traces: no table


def test_render_report_server_requests():
    report = render_report(SERVE_EVENTS)
    assert "server requests (latency by route):" in report
    assert "/updates" in report
    assert "recover" in report  # the recovery span lands in phases


def test_warnings_of():
    (warn,) = warnings_of(DIST_EVENTS)
    assert warn["name"] == "degraded"
    assert warn["attrs"]["path"] == "dist_retry"


def test_render_report_sections():
    text = render_report(DIST_EVENTS, source="synthetic.jsonl")
    assert "trace: 8 events from synthetic.jsonl (engine: dist)" in text
    assert "phases: index_build 0.5000s  peel 1.0000s" in text
    assert "warnings (1):" in text
    assert "path=dist_retry" in text
    assert "per-level timeline" in text
    assert "per-rank skew" in text
    assert "repairs" not in text  # no repair spans in this trace


def test_render_report_stream_repairs():
    events = [
        {"ts": 0.0, "kind": "event", "name": "run_start",
         "attrs": {"engine": "stream"}},
        {"ts": 0.1, "kind": "span", "name": "repair", "dur": 0.02,
         "attrs": {"updates": 2, "region": 9, "frozen": 3,
                   "triangles": 4, "truncated": False}},
        {"ts": 0.2, "kind": "span", "name": "repair", "dur": 0.5,
         "attrs": {"updates": 64, "region": 900, "frozen": 0,
                   "triangles": 0, "truncated": True}},
    ]
    text = render_report(events)
    assert "repairs (stream):" in text
    assert "True" in text and "False" in text


def test_render_report_empty_trace():
    assert render_report([]).startswith("trace: 0 events")


# -------------------------------------------------------------- load_trace
def test_load_trace_round_trip(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        "\n".join(json.dumps(e) for e in DIST_EVENTS) + "\n\n",
        encoding="utf-8",
    )
    events = load_trace(path)
    assert events == DIST_EVENTS
    assert "per-rank skew" in render_trace_report(path)


def test_load_trace_names_bad_json_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ts": 0, "kind": "event", "name": "a"}\nnot json\n')
    with pytest.raises(ValueError, match=r"bad\.jsonl:2: not JSON"):
        load_trace(path)


def test_load_trace_names_schema_violation_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        '{"ts": 0, "kind": "event", "name": "a"}\n'
        '{"ts": 0, "kind": "span", "name": "wave"}\n'
    )
    with pytest.raises(ValueError, match=r"bad\.jsonl:2: .*dur"):
        load_trace(path)
