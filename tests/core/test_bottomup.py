"""Tests for Algorithm 4 / Procedures 5 & 9 (TD-bottomup)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    ample_budget,
    truss_decomposition_bottomup,
    truss_decomposition_improved,
)
from repro.exio import IOStats, MemoryBudget
from repro.graph import Graph, complete_graph, disjoint_union
from repro.partition import (
    DominatingSetPartitioner,
    RandomizedPartitioner,
    SequentialPartitioner,
)

from helpers import random_graph, small_edge_lists

PARTITIONERS = [
    SequentialPartitioner(),
    DominatingSetPartitioner(),
    RandomizedPartitioner(seed=5),
]


class TestAgreement:
    @pytest.mark.parametrize("units", [16, 48, None])
    def test_matches_improved_on_random_graph(self, units):
        g = random_graph(28, 0.2, seed=11)
        ref = truss_decomposition_improved(g)
        budget = MemoryBudget(units=units) if units else None
        td = truss_decomposition_bottomup(g, budget=budget)
        assert td == ref

    @pytest.mark.parametrize("part", PARTITIONERS, ids=lambda p: p.name)
    def test_matches_improved_for_every_partitioner(self, part):
        g = random_graph(24, 0.25, seed=13)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_bottomup(
            g, budget=MemoryBudget(units=20), partitioner=part
        )
        assert td == ref

    @settings(max_examples=15, deadline=None)
    @given(small_edge_lists())
    def test_matches_improved_property(self, edges):
        g = Graph(edges)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_bottomup(g, budget=MemoryBudget(units=12))
        assert td == ref

    def test_two_cliques_bridge(self):
        g = disjoint_union([complete_graph(5), complete_graph(4)])
        g.add_edge(0, 5)
        td = truss_decomposition_bottomup(g, budget=MemoryBudget(units=14))
        assert td.phi(0, 5) == 2
        assert td.kmax == 5

    def test_empty_and_tiny_graphs(self):
        assert truss_decomposition_bottomup(Graph()).num_edges == 0
        td = truss_decomposition_bottomup(Graph([(0, 1)]))
        assert td.phi(0, 1) == 2


class TestMechanics:
    def test_io_stats_populated_under_small_budget(self):
        g = random_graph(25, 0.25, seed=3)
        stats = IOStats()
        truss_decomposition_bottomup(g, budget=MemoryBudget(units=16), stats=stats)
        assert stats.blocks_read > 0
        assert stats.blocks_written > 0
        assert stats.scans_started > 0

    def test_small_budget_costs_more_io_than_large(self):
        g = random_graph(30, 0.25, seed=5)
        small, large = IOStats(), IOStats()
        truss_decomposition_bottomup(g, budget=MemoryBudget(units=14), stats=small)
        truss_decomposition_bottomup(g, budget=ample_budget(g), stats=large)
        assert small.total_blocks > large.total_blocks

    def test_stats_record_method_and_counters(self):
        g = random_graph(20, 0.3, seed=2)
        td = truss_decomposition_bottomup(g, budget=MemoryBudget(units=16))
        assert td.stats.method == "bottomup"
        assert td.stats.extra["lowerbound_iterations"] >= 1
        assert "kmax" in td.stats.extra

    def test_input_graph_untouched(self):
        g = random_graph(15, 0.3, seed=8)
        edges_before = set(g.edges())
        truss_decomposition_bottomup(g, budget=MemoryBudget(units=12))
        assert set(g.edges()) == edges_before

    def test_procedure9_used_when_candidate_overflows(self):
        # budget so small that every NS(U_k) overflows memory
        g = random_graph(26, 0.35, seed=4)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_bottomup(g, budget=MemoryBudget(units=8))
        assert td == ref
        assert td.stats.extra.get("procedure9_rounds", 0) >= 1


class TestAmpleBudget:
    def test_single_partition(self):
        g = complete_graph(6)
        b = ample_budget(g)
        assert b.fits(g.size)
        td = truss_decomposition_bottomup(g, budget=b)
        assert td.stats.extra["lowerbound_iterations"] == 1
        assert td.stats.extra["lowerbound_blocks"] == 1
