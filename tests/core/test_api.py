"""Tests for the uniform dispatch API."""

import pytest

from repro.core import METHODS, k_truss, top_t_classes, truss_decomposition, trussness
from repro.errors import DecompositionError
from repro.exio import MemoryBudget
from repro.graph import Graph, complete_graph, disjoint_union

from helpers import random_graph


class TestDispatch:
    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_agree(self, method):
        g = random_graph(16, 0.3, seed=50)
        ref = truss_decomposition(g, method="improved")
        assert truss_decomposition(g, method=method) == ref

    def test_unknown_method_rejected(self):
        with pytest.raises(DecompositionError):
            truss_decomposition(Graph(), method="quantum")

    def test_external_args_rejected_for_inmem(self):
        with pytest.raises(DecompositionError):
            truss_decomposition(
                Graph(), method="improved", memory_budget=MemoryBudget(units=8)
            )

    def test_top_t_rejected_for_bottomup(self):
        with pytest.raises(DecompositionError):
            truss_decomposition(Graph(), method="bottomup", top_t=1)

    def test_memory_budget_passes_through(self):
        g = random_graph(15, 0.3, seed=51)
        td = truss_decomposition(
            g, method="bottomup", memory_budget=MemoryBudget(units=12)
        )
        assert td == truss_decomposition(g, method="improved")


class TestConveniences:
    def test_trussness(self):
        assert trussness(complete_graph(3)) == {(0, 1): 3, (0, 2): 3, (1, 2): 3}

    def test_k_truss_2_is_graph_itself(self):
        g = complete_graph(4)
        g.add_vertex(99)
        t2 = k_truss(g, 2)
        assert set(t2.edges()) == set(g.edges())
        assert not t2.has_vertex(99)  # isolated vertices dropped

    def test_k_truss_does_not_mutate(self):
        g = complete_graph(4)
        k_truss(g, 4)
        assert g.num_edges == 6

    def test_k_truss_rejects_k_below_2(self):
        with pytest.raises(DecompositionError):
            k_truss(complete_graph(3), 1)

    def test_top_t_classes_topdown_vs_improved(self):
        g = disjoint_union([complete_graph(6), complete_graph(4)])
        a = top_t_classes(g, 2, method="topdown")
        b = top_t_classes(g, 2, method="improved")
        assert {k: sorted(v) for k, v in a.items()} == {
            k: sorted(v) for k, v in b.items()
        }
