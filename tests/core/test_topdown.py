"""Tests for Algorithm 7 / Procedures 8 & 10 (TD-topdown)."""

import pytest
from hypothesis import given, settings

from repro.core import truss_decomposition_improved, truss_decomposition_topdown
from repro.errors import DecompositionError
from repro.exio import IOStats, MemoryBudget
from repro.graph import Graph, complete_graph, disjoint_union
from repro.partition import (
    DominatingSetPartitioner,
    RandomizedPartitioner,
    SequentialPartitioner,
)

from helpers import random_graph, small_edge_lists


class TestFullDecomposition:
    @pytest.mark.parametrize("units", [16, 48, None])
    def test_matches_improved(self, units):
        g = random_graph(26, 0.22, seed=21)
        ref = truss_decomposition_improved(g)
        budget = MemoryBudget(units=units) if units else None
        td = truss_decomposition_topdown(g, budget=budget)
        assert td == ref

    @pytest.mark.parametrize(
        "part",
        [SequentialPartitioner(), DominatingSetPartitioner(), RandomizedPartitioner(seed=2)],
        ids=lambda p: p.name,
    )
    def test_matches_improved_for_every_partitioner(self, part):
        g = random_graph(22, 0.3, seed=23)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_topdown(
            g, budget=MemoryBudget(units=18), partitioner=part
        )
        assert td == ref

    @settings(max_examples=12, deadline=None)
    @given(small_edge_lists())
    def test_matches_improved_property(self, edges):
        g = Graph(edges)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_topdown(g, budget=MemoryBudget(units=12))
        assert td == ref

    def test_without_kinit_fast_forward(self):
        g = random_graph(20, 0.3, seed=25)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_topdown(
            g, budget=MemoryBudget(units=16), use_kinit=False
        )
        assert td == ref

    def test_book_graph_trap(self):
        """A high-support low-trussness spine must not be promoted: this
        is the case requiring the valid-support restriction."""
        g = Graph([(0, 1)])
        for i in range(2, 10):
            g.add_edge(0, i)
            g.add_edge(1, i)
        for u, v in complete_graph(6, offset=100).edges():
            g.add_edge(u, v)
        g.add_edge(0, 100)
        g.add_edge(1, 101)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_topdown(g)
        assert td == ref
        assert td.phi(0, 1) == 3

    def test_empty_graph(self):
        assert truss_decomposition_topdown(Graph()).num_edges == 0


class TestTopT:
    def test_top_1_is_kmax_class(self):
        g = disjoint_union([complete_graph(6), complete_graph(4)])
        td = truss_decomposition_topdown(g, t=1)
        assert td.kmax == 6
        assert len(td.k_class(6)) == 15
        assert td.num_edges == 15  # partial result: only the top class

    @pytest.mark.parametrize("t", [1, 2, 3, 10])
    def test_top_t_matches_reference_window(self, t):
        g = random_graph(24, 0.3, seed=27)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_topdown(g, t=t, budget=MemoryBudget(units=24))
        expected = {e: k for e, k in ref.trussness.items() if k > ref.kmax - t}
        assert dict(td.trussness) == expected

    def test_top_t_covering_everything_includes_phi2(self):
        g = random_graph(18, 0.2, seed=28)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_topdown(g, t=100)
        assert td == ref

    def test_rejects_bad_t(self):
        with pytest.raises(DecompositionError):
            truss_decomposition_topdown(complete_graph(3), t=0)


class TestMechanics:
    def test_stats_and_io(self):
        g = random_graph(24, 0.3, seed=29)
        stats = IOStats()
        td = truss_decomposition_topdown(
            g, budget=MemoryBudget(units=16), stats=stats
        )
        assert td.stats.method == "topdown"
        assert stats.total_blocks > 0
        assert td.stats.extra["k1st"] >= td.kmax

    def test_pruning_happens(self):
        g = disjoint_union([complete_graph(6), complete_graph(5)])
        td = truss_decomposition_topdown(g, budget=MemoryBudget(units=20))
        assert td.stats.extra.get("pruned_edges", 0) > 0

    def test_input_graph_untouched(self):
        g = random_graph(15, 0.3, seed=30)
        before = set(g.edges())
        truss_decomposition_topdown(g, t=1)
        assert set(g.edges()) == before

    def test_top_t_cheaper_than_full(self):
        """Table 5's story: top-t should do less candidate work than
        the full top-down run."""
        g = random_graph(40, 0.2, seed=31)
        s_top, s_full = IOStats(), IOStats()
        truss_decomposition_topdown(
            g, t=1, budget=MemoryBudget(units=60), stats=s_top
        )
        truss_decomposition_topdown(
            g, budget=MemoryBudget(units=60), stats=s_full
        )
        assert s_top.total_blocks <= s_full.total_blocks
