"""Tests for the naive random-access baseline (Section 3.3)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    truss_decomposition_bottomup,
    truss_decomposition_improved,
    truss_decomposition_semi_external,
)
from repro.exio import IOStats, MemoryBudget
from repro.graph import Graph, complete_graph

from helpers import random_graph, small_edge_lists


class TestCorrectness:
    def test_matches_improved_on_random_graph(self):
        g = random_graph(30, 0.25, seed=91)
        assert truss_decomposition_semi_external(g) == truss_decomposition_improved(g)

    def test_matches_under_tiny_cache(self):
        g = random_graph(25, 0.3, seed=92)
        td = truss_decomposition_semi_external(g, budget=MemoryBudget(units=8))
        assert td == truss_decomposition_improved(g)

    @settings(max_examples=12, deadline=None)
    @given(small_edge_lists())
    def test_matches_improved_property(self, edges):
        g = Graph(edges)
        assert truss_decomposition_semi_external(g) == truss_decomposition_improved(g)

    def test_empty_graph(self):
        assert truss_decomposition_semi_external(Graph()).num_edges == 0


class TestIOProfile:
    def test_random_access_seeks_recorded(self):
        g = random_graph(40, 0.25, seed=93)
        stats = IOStats()
        td = truss_decomposition_semi_external(
            g, budget=MemoryBudget(units=16), stats=stats
        )
        assert stats.seeks > 0
        assert td.stats.extra["buffer_misses"] > 0

    def test_larger_cache_fewer_misses(self):
        g = random_graph(50, 0.2, seed=94)
        small, large = IOStats(), IOStats()
        truss_decomposition_semi_external(
            g, budget=MemoryBudget(units=8), stats=small
        )
        truss_decomposition_semi_external(
            g, budget=MemoryBudget(units=4 * g.size), stats=large
        )
        assert large.blocks_read <= small.blocks_read

    def test_section33_claim_scan_based_wins_on_io(self):
        """The paper's motivation: at the same memory budget, the naive
        random-access baseline moves far more blocks (and seeks) than
        the scan-only bottom-up algorithm."""
        g = random_graph(120, 0.12, seed=95)
        budget = MemoryBudget(units=max(16, g.size // 6))
        naive, scan = IOStats(), IOStats()
        a = truss_decomposition_semi_external(g, budget=budget, stats=naive)
        b = truss_decomposition_bottomup(g, budget=budget, stats=scan)
        assert a == b
        assert naive.seeks > 10 * scan.seeks  # bottom-up never seeks
        assert naive.blocks_read > scan.total_blocks // 4
