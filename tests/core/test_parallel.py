"""Tests for the shared-memory parallel wave peel (repro.core.parallel).

The contract: ``method="parallel"`` produces the *identical* trussness
map as ``flat`` and ``improved`` at every worker count — the wave
schedule does not depend on how the frontier is partitioned — through
the pooled path (jobs>1), the serial in-process path (jobs=1), the
static owner-computes shard mode, and the stdlib degradation (no
numpy).
"""

import pytest
from hypothesis import given, settings

import repro.core.parallel as parallel_mod
from repro.core import (
    decompose_file,
    truss_decomposition,
    truss_decomposition_flat,
    truss_decomposition_improved,
)
from repro.core.parallel import _resolve_jobs, truss_decomposition_parallel
from repro.datasets import (
    RUNNING_EXAMPLE_CLASSES,
    dataset_names,
    load_dataset,
    running_example_graph,
)
from repro.errors import DecompositionError
from repro.graph import CSRGraph, Graph, complete_graph, cycle_graph, write_edge_list

from helpers import random_graph, small_edge_lists
from oracles import brute_trussness


class TestSmallGraphs:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_empty(self, jobs):
        td = truss_decomposition_parallel(Graph(), jobs=jobs)
        assert td.num_edges == 0
        assert td.kmax == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_single_edge(self, jobs):
        td = truss_decomposition_parallel(Graph([(0, 1)]), jobs=jobs)
        assert dict(td.trussness) == {(0, 1): 2}

    def test_k5_more_workers_than_waves(self, k5_graph):
        td = truss_decomposition_parallel(k5_graph, jobs=3)
        assert set(td.trussness.values()) == {5}

    def test_cycle_has_no_triangles(self):
        td = truss_decomposition_parallel(cycle_graph(8), jobs=2)
        assert set(td.trussness.values()) == {2}

    def test_two_communities(self, two_communities):
        td = truss_decomposition_parallel(two_communities, jobs=2)
        td.verify(two_communities)
        assert td.kmax == 5

    def test_running_example_classes(self):
        td = truss_decomposition_parallel(running_example_graph(), jobs=2)
        for k, edges in RUNNING_EXAMPLE_CLASSES.items():
            assert sorted(td.k_class(k)) == sorted(edges), k


class TestOracleParity:
    """jobs=1 and jobs=2 pinned against the improved-method oracle."""

    @pytest.mark.parametrize("name", dataset_names())
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_registry_parity(self, name, jobs):
        g = load_dataset(name, scale=0.05)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_parallel(g, jobs=jobs)
        assert td == ref
        assert td == truss_decomposition_flat(g)

    @pytest.mark.parametrize("seed", [3, 17])
    def test_gnp_parity(self, seed):
        g = random_graph(40, 0.2, seed=seed)
        ref = truss_decomposition_improved(g)
        for jobs in (1, 2, 3):
            assert truss_decomposition_parallel(g, jobs=jobs) == ref

    @settings(max_examples=15, deadline=None)
    @given(small_edge_lists())
    def test_matches_oracle_serial(self, edges):
        g = Graph(edges)
        td = truss_decomposition_parallel(g, jobs=1)
        assert dict(td.trussness) == brute_trussness(g)


class TestInputsAndDispatch:
    def test_accepts_csr_snapshot(self):
        g = random_graph(30, 0.25, seed=5)
        csr = CSRGraph.from_edges(g.edges())
        assert truss_decomposition_parallel(csr, jobs=2) == (
            truss_decomposition_improved(g)
        )

    def test_api_dispatch_with_jobs(self):
        g = random_graph(25, 0.3, seed=9)
        td = truss_decomposition(g, method="parallel", jobs=2)
        assert td == truss_decomposition(g)
        assert td.stats.method == "parallel"
        # the stdlib degradation is serial and records jobs=1 honestly
        expected = 2 if parallel_mod._np is not None else 1
        assert td.stats.extra["jobs"] == expected

    def test_jobs_rejected_for_other_methods(self):
        with pytest.raises(DecompositionError, match="jobs"):
            truss_decomposition(complete_graph(4), method="flat", jobs=2)

    def test_csr_rejected_for_dict_methods(self):
        csr = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        with pytest.raises(DecompositionError, match="CSR"):
            truss_decomposition(csr, method="improved")

    def test_auto_jobs_serial_on_small_graphs(self):
        assert _resolve_jobs(None, 10) == 1
        assert _resolve_jobs(None, parallel_mod._MIN_PARALLEL_EDGES) >= 1
        assert _resolve_jobs(2, 10) == 2
        assert _resolve_jobs(0, 10) == 1

    @pytest.mark.skipif(
        parallel_mod._np is None, reason="wave stats need the numpy engine"
    )
    def test_wave_stats_recorded(self):
        td = truss_decomposition_parallel(complete_graph(6), jobs=2)
        extra = td.stats.extra
        assert extra["jobs"] == 2
        assert extra["waves"] >= 1
        assert extra["triangles"] == 20
        assert extra["kmax"] == 6


class TestStaticShards:
    """The owner-computes mode: same map, shard-sliced state."""

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_registry_parity(self, jobs):
        g = load_dataset("hep", scale=0.05)
        ref = truss_decomposition_flat(g)
        td = truss_decomposition_parallel(g, jobs=jobs, shards="static")
        assert td == ref

    def test_running_example_classes(self):
        td = truss_decomposition_parallel(
            running_example_graph(), jobs=2, shards="static"
        )
        for k, edges in RUNNING_EXAMPLE_CLASSES.items():
            assert sorted(td.k_class(k)) == sorted(edges), k

    def test_more_shards_than_edges(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        td = truss_decomposition_parallel(g, jobs=8, shards="static")
        assert set(td.trussness.values()) == {3}

    def test_api_dispatch_records_mode(self):
        g = random_graph(25, 0.3, seed=9)
        td = truss_decomposition(g, method="parallel", jobs=2, shards="static")
        assert td == truss_decomposition(g)
        assert td.stats.extra["shards"] == "static"
        default = truss_decomposition(g, method="parallel", jobs=1)
        assert default.stats.extra["shards"] == "dynamic"

    def test_unknown_mode_rejected(self):
        with pytest.raises(DecompositionError, match="shards"):
            truss_decomposition_parallel(complete_graph(4), shards="wavy")
        with pytest.raises(DecompositionError, match="shards"):
            truss_decomposition(
                complete_graph(4), method="parallel", shards="wavy"
            )

    def test_shards_rejected_for_other_methods(self):
        with pytest.raises(DecompositionError, match="shards"):
            truss_decomposition(
                complete_graph(4), method="flat", shards="static"
            )

    @pytest.mark.skipif(
        parallel_mod._np is None, reason="IPC stats need the numpy engine"
    )
    @pytest.mark.parametrize("mode", ["dynamic", "static"])
    def test_ipc_bytes_recorded(self, mode, two_communities):
        pooled = truss_decomposition_parallel(
            two_communities, jobs=2, shards=mode
        )
        inline = truss_decomposition_parallel(
            two_communities, jobs=1, shards=mode
        )
        assert pooled == inline
        assert pooled.stats.extra["ipc_bytes"] > 0  # arrays crossed the pool
        assert inline.stats.extra["ipc_bytes"] == 0  # nothing crossed

    def test_decompose_file_static(self, tmp_path):
        g = random_graph(35, 0.25, seed=11)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        td = decompose_file(path, method="parallel", jobs=2, shards="static")
        assert td == truss_decomposition_improved(g)


class TestSharedMemoryHygiene:
    """Regression: no shared-memory block may back a zero-length array.

    A triangle-free graph has empty ``e1``/``e2``/``e3``/``tinc``/
    ``tdead`` arrays; the pooled path used to allocate dummy 1-byte
    segments for them, and the serial path must allocate none at all.
    """

    @pytest.fixture
    def spy_shm(self, monkeypatch):
        if parallel_mod._np is None or parallel_mod._shm is None:
            pytest.skip("shared memory needs the numpy engine")
        created = []
        real = parallel_mod._shm.SharedMemory

        class Spy(real):
            def __init__(self, *args, **kwargs):
                if kwargs.get("create"):
                    created.append(kwargs.get("size"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(parallel_mod._shm, "SharedMemory", Spy)
        return created

    @pytest.mark.parametrize("mode", ["dynamic", "static"])
    def test_jobs1_never_allocates(self, spy_shm, mode):
        for g in (Graph(), cycle_graph(8), complete_graph(5)):
            td = truss_decomposition_parallel(g, jobs=1, shards=mode)
            td.verify(g)
        assert spy_shm == []

    @pytest.mark.parametrize("mode", ["dynamic", "static"])
    def test_empty_graph_pooled_never_allocates(self, spy_shm, mode):
        td = truss_decomposition_parallel(Graph(), jobs=2, shards=mode)
        assert td.kmax == 2
        assert spy_shm == []

    def test_triangle_free_pooled_skips_empty_arrays(self, spy_shm):
        g = cycle_graph(8)
        td = truss_decomposition_parallel(g, jobs=2, shards="dynamic")
        assert set(td.trussness.values()) == {2}
        # of the 8 shared peel arrays only tptr, sup and alive hold
        # bytes here; e1/e2/e3/tinc/tdead are empty and get no segment
        assert len(spy_shm) == 3
        assert all(size > 0 for size in spy_shm)

    def test_triangle_free_pooled_static_skips_empty_arrays(self, spy_shm):
        g = cycle_graph(8)
        td = truss_decomposition_parallel(g, jobs=2, shards="static")
        assert set(td.trussness.values()) == {2}
        # static adds phi, hist and shard_bounds to the shared set; the
        # five empty triangle arrays still get no segment
        assert len(spy_shm) == 6
        assert all(size > 0 for size in spy_shm)


class TestStdlibFallback:
    @pytest.mark.parametrize("shards", [None, "static"])
    def test_degrades_without_numpy(self, monkeypatch, shards):
        monkeypatch.setattr(parallel_mod, "_np", None)
        g = random_graph(30, 0.25, seed=7)
        td = truss_decomposition_parallel(g, jobs=4, shards=shards)
        assert td == truss_decomposition_improved(g)
        assert td.stats.method == "parallel"
        assert td.stats.extra["stdlib_fallback"] == 1

    def test_invalid_shards_rejected_without_numpy(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_np", None)
        with pytest.raises(DecompositionError, match="shards"):
            truss_decomposition_parallel(complete_graph(4), shards="wavy")


class TestFileFastPath:
    def test_decompose_file_parallel(self, tmp_path):
        g = random_graph(35, 0.25, seed=11)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        td = decompose_file(path, method="parallel", jobs=2)
        assert td == truss_decomposition_improved(g)

    def test_decompose_file_dict_method_fallback(self, tmp_path):
        g = random_graph(20, 0.3, seed=12)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        td = decompose_file(path, method="improved")
        assert td == truss_decomposition_improved(g)
        assert td.stats.method == "improved"
