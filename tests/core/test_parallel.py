"""Tests for the shared-memory parallel wave peel (repro.core.parallel).

The contract: ``method="parallel"`` produces the *identical* trussness
map as ``flat`` and ``improved`` at every worker count — the wave
schedule does not depend on how the frontier is partitioned — through
the pooled path (jobs>1), the serial in-process path (jobs=1), and the
stdlib degradation (no numpy).
"""

import pytest
from hypothesis import given, settings

import repro.core.parallel as parallel_mod
from repro.core import (
    decompose_file,
    truss_decomposition,
    truss_decomposition_flat,
    truss_decomposition_improved,
)
from repro.core.parallel import _resolve_jobs, truss_decomposition_parallel
from repro.datasets import (
    RUNNING_EXAMPLE_CLASSES,
    dataset_names,
    load_dataset,
    running_example_graph,
)
from repro.errors import DecompositionError
from repro.graph import CSRGraph, Graph, complete_graph, cycle_graph, write_edge_list

from helpers import random_graph, small_edge_lists
from oracles import brute_trussness


class TestSmallGraphs:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_empty(self, jobs):
        td = truss_decomposition_parallel(Graph(), jobs=jobs)
        assert td.num_edges == 0
        assert td.kmax == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_single_edge(self, jobs):
        td = truss_decomposition_parallel(Graph([(0, 1)]), jobs=jobs)
        assert dict(td.trussness) == {(0, 1): 2}

    def test_k5_more_workers_than_waves(self, k5_graph):
        td = truss_decomposition_parallel(k5_graph, jobs=3)
        assert set(td.trussness.values()) == {5}

    def test_cycle_has_no_triangles(self):
        td = truss_decomposition_parallel(cycle_graph(8), jobs=2)
        assert set(td.trussness.values()) == {2}

    def test_two_communities(self, two_communities):
        td = truss_decomposition_parallel(two_communities, jobs=2)
        td.verify(two_communities)
        assert td.kmax == 5

    def test_running_example_classes(self):
        td = truss_decomposition_parallel(running_example_graph(), jobs=2)
        for k, edges in RUNNING_EXAMPLE_CLASSES.items():
            assert sorted(td.k_class(k)) == sorted(edges), k


class TestOracleParity:
    """jobs=1 and jobs=2 pinned against the improved-method oracle."""

    @pytest.mark.parametrize("name", dataset_names())
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_registry_parity(self, name, jobs):
        g = load_dataset(name, scale=0.05)
        ref = truss_decomposition_improved(g)
        td = truss_decomposition_parallel(g, jobs=jobs)
        assert td == ref
        assert td == truss_decomposition_flat(g)

    @pytest.mark.parametrize("seed", [3, 17])
    def test_gnp_parity(self, seed):
        g = random_graph(40, 0.2, seed=seed)
        ref = truss_decomposition_improved(g)
        for jobs in (1, 2, 3):
            assert truss_decomposition_parallel(g, jobs=jobs) == ref

    @settings(max_examples=15, deadline=None)
    @given(small_edge_lists())
    def test_matches_oracle_serial(self, edges):
        g = Graph(edges)
        td = truss_decomposition_parallel(g, jobs=1)
        assert dict(td.trussness) == brute_trussness(g)


class TestInputsAndDispatch:
    def test_accepts_csr_snapshot(self):
        g = random_graph(30, 0.25, seed=5)
        csr = CSRGraph.from_edges(g.edges())
        assert truss_decomposition_parallel(csr, jobs=2) == (
            truss_decomposition_improved(g)
        )

    def test_api_dispatch_with_jobs(self):
        g = random_graph(25, 0.3, seed=9)
        td = truss_decomposition(g, method="parallel", jobs=2)
        assert td == truss_decomposition(g)
        assert td.stats.method == "parallel"
        # the stdlib degradation is serial and records jobs=1 honestly
        expected = 2 if parallel_mod._np is not None else 1
        assert td.stats.extra["jobs"] == expected

    def test_jobs_rejected_for_other_methods(self):
        with pytest.raises(DecompositionError, match="jobs"):
            truss_decomposition(complete_graph(4), method="flat", jobs=2)

    def test_csr_rejected_for_dict_methods(self):
        csr = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        with pytest.raises(DecompositionError, match="CSR"):
            truss_decomposition(csr, method="improved")

    def test_auto_jobs_serial_on_small_graphs(self):
        assert _resolve_jobs(None, 10) == 1
        assert _resolve_jobs(None, parallel_mod._MIN_PARALLEL_EDGES) >= 1
        assert _resolve_jobs(2, 10) == 2
        assert _resolve_jobs(0, 10) == 1

    @pytest.mark.skipif(
        parallel_mod._np is None, reason="wave stats need the numpy engine"
    )
    def test_wave_stats_recorded(self):
        td = truss_decomposition_parallel(complete_graph(6), jobs=2)
        extra = td.stats.extra
        assert extra["jobs"] == 2
        assert extra["waves"] >= 1
        assert extra["triangles"] == 20
        assert extra["kmax"] == 6


class TestStdlibFallback:
    def test_degrades_without_numpy(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_np", None)
        g = random_graph(30, 0.25, seed=7)
        td = truss_decomposition_parallel(g, jobs=4)
        assert td == truss_decomposition_improved(g)
        assert td.stats.method == "parallel"
        assert td.stats.extra["stdlib_fallback"] == 1


class TestFileFastPath:
    def test_decompose_file_parallel(self, tmp_path):
        g = random_graph(35, 0.25, seed=11)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        td = decompose_file(path, method="parallel", jobs=2)
        assert td == truss_decomposition_improved(g)

    def test_decompose_file_dict_method_fallback(self, tmp_path):
        g = random_graph(20, 0.3, seed=12)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        td = decompose_file(path, method="improved")
        assert td == truss_decomposition_improved(g)
        assert td.stats.method == "improved"
