"""Tests for Algorithm 1 (baseline) and Algorithm 2 (improved).

Both must produce identical, definition-correct decompositions; the
improved algorithm is additionally cross-checked against networkx's
k_truss on random graphs.
"""

import pytest
from hypothesis import given, settings

from repro.core import (
    TrussDecomposition,
    truss_decomposition_baseline,
    truss_decomposition_improved,
)
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    star_graph,
)

from helpers import random_graph, small_edge_lists
from oracles import brute_trussness

ALGOS = [truss_decomposition_baseline, truss_decomposition_improved]


def ids(fn):
    return fn.__name__.replace("truss_decomposition_", "")


@pytest.mark.parametrize("algo", ALGOS, ids=ids)
class TestDefinitionCases:
    def test_empty_graph(self, algo):
        td = algo(Graph())
        assert td.num_edges == 0
        assert td.kmax == 2

    def test_single_edge_is_phi2(self, algo):
        td = algo(Graph([(0, 1)]))
        assert td.phi(0, 1) == 2

    def test_triangle_is_phi3(self, algo):
        td = algo(complete_graph(3))
        assert all(k == 3 for k in td.trussness.values())

    def test_clique_phi_equals_size(self, algo):
        for n in (4, 5, 6, 7):
            td = algo(complete_graph(n))
            assert all(k == n for k in td.trussness.values()), f"K{n}"

    def test_triangle_free_all_phi2(self, algo):
        td = algo(cycle_graph(8))
        assert all(k == 2 for k in td.trussness.values())
        td = algo(star_graph(6))
        assert all(k == 2 for k in td.trussness.values())

    def test_clique_with_pendant(self, algo):
        g = complete_graph(4)
        g.add_edge(0, 99)
        td = algo(g)
        assert td.phi(0, 99) == 2
        assert td.phi(0, 1) == 4

    def test_two_cliques_bridge(self, algo):
        g = disjoint_union([complete_graph(5), complete_graph(4)])
        g.add_edge(0, 5)
        td = algo(g)
        assert td.phi(0, 5) == 2
        assert td.phi(0, 1) == 5
        assert td.phi(5, 6) == 4
        assert td.kmax == 5

    def test_book_graph(self, algo):
        """Triangles sharing one edge: the shared edge has high support
        but the page edges cap the trussness at 3."""
        g = Graph([(0, 1)])
        for i in range(2, 7):
            g.add_edge(0, i)
            g.add_edge(1, i)
        td = algo(g)
        assert all(k == 3 for k in td.trussness.values())

    def test_input_not_modified(self, algo):
        g = complete_graph(5)
        before = set(g.edges())
        algo(g)
        assert set(g.edges()) == before

    def test_stats_attached(self, algo):
        td = algo(complete_graph(4))
        assert td.stats is not None
        assert td.stats.method in ("baseline", "improved")


@pytest.mark.parametrize("algo", ALGOS, ids=ids)
class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(small_edge_lists())
    def test_matches_bruteforce(self, algo, edges):
        g = Graph(edges)
        td = algo(g)
        assert dict(td.trussness) == brute_trussness(g)

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_verify_passes(self, algo, edges):
        g = Graph(edges)
        algo(g).verify(g)


class TestAlgorithmsAgree:
    @settings(max_examples=40, deadline=None)
    @given(small_edge_lists())
    def test_baseline_equals_improved(self, edges):
        g = Graph(edges)
        assert truss_decomposition_baseline(g) == truss_decomposition_improved(g)

    def test_agree_on_random_graphs(self):
        for seed in range(5):
            g = random_graph(40, 0.15, seed=seed)
            assert truss_decomposition_baseline(g) == truss_decomposition_improved(g)


class TestAgainstNetworkX:
    @pytest.mark.parametrize("seed", range(4))
    def test_k_truss_subgraphs_match(self, seed):
        import networkx as nx

        g = random_graph(35, 0.2, seed=seed)
        td = truss_decomposition_improved(g)
        ng = nx.Graph(list(g.edges()))
        for k in range(3, td.kmax + 2):
            ours = set(td.k_truss(k).edges())
            theirs = {
                tuple(sorted(e)) for e in nx.k_truss(ng, k).edges()
            }
            assert ours == theirs, f"k={k}"


class TestTrussCoreRelation:
    @settings(max_examples=30, deadline=None)
    @given(small_edge_lists())
    def test_k_truss_is_subgraph_of_km1_core(self, edges):
        """Section 1: a k-truss is a (k-1)-core but not vice versa."""
        from repro.cores import k_core

        g = Graph(edges)
        td = truss_decomposition_improved(g)
        for k in range(3, td.kmax + 1):
            tk = td.k_truss(k)
            core = k_core(g, k - 1)
            assert set(tk.edges()) <= set(core.edges())

    @settings(max_examples=30, deadline=None)
    @given(small_edge_lists())
    def test_kmax_at_most_cmax_plus_one(self, edges):
        """Section 7.4: the max clique size is bounded by both kmax and
        cmax+1, and kmax <= cmax + 1 always."""
        from repro.cores import max_core

        g = Graph(edges)
        if g.num_edges == 0:
            return
        td = truss_decomposition_improved(g)
        cmax, _ = max_core(g)
        assert td.kmax <= cmax + 1
