"""Unit tests for the TrussDecomposition result model."""

import pytest

from repro.core import TrussDecomposition
from repro.core.decomposition import DecompositionStats
from repro.errors import DecompositionError
from repro.graph import Graph, complete_graph


def k4_decomposition():
    return TrussDecomposition({e: 4 for e in complete_graph(4).edges()})


class TestBasics:
    def test_normalizes_edge_keys(self):
        td = TrussDecomposition({(5, 2): 3})
        assert td.phi(2, 5) == 3
        assert td.phi(5, 2) == 3

    def test_rejects_trussness_below_two(self):
        with pytest.raises(DecompositionError):
            TrussDecomposition({(0, 1): 1})

    def test_kmax(self):
        td = TrussDecomposition({(0, 1): 2, (1, 2): 5})
        assert td.kmax == 5

    def test_kmax_empty(self):
        assert TrussDecomposition({}).kmax == 2

    def test_num_edges(self):
        assert k4_decomposition().num_edges == 6

    def test_equality_ignores_stats(self):
        a = TrussDecomposition({(0, 1): 3})
        b = TrussDecomposition({(1, 0): 3}, stats=DecompositionStats("x"))
        assert a == b

    def test_repr(self):
        assert "kmax=4" in repr(k4_decomposition())


class TestClassesAndTrusses:
    def test_k_classes(self):
        td = TrussDecomposition({(0, 1): 2, (1, 2): 3, (2, 3): 3})
        classes = td.k_classes()
        assert classes[2] == [(0, 1)]
        assert classes[3] == [(1, 2), (2, 3)]

    def test_k_class_missing_is_empty(self):
        assert k4_decomposition().k_class(7) == []

    def test_k_truss_edges_union_of_higher_classes(self):
        td = TrussDecomposition({(0, 1): 2, (1, 2): 3, (2, 3): 4})
        assert td.k_truss_edges(3) == [(1, 2), (2, 3)]
        assert td.k_truss_edges(2) == [(0, 1), (1, 2), (2, 3)]
        assert td.k_truss_edges(5) == []

    def test_k_truss_graph(self):
        td = k4_decomposition()
        t4 = td.k_truss(4)
        assert t4.num_edges == 6
        assert t4.num_vertices == 4

    def test_max_truss(self):
        k, t = k4_decomposition().max_truss()
        assert k == 4
        assert t.num_edges == 6

    def test_top_classes(self):
        td = TrussDecomposition({(0, 1): 2, (1, 2): 4, (2, 3): 4})
        top = td.top_classes(2)
        assert sorted(top) == [3, 4]
        assert top[4] == [(1, 2), (2, 3)]
        assert top[3] == []

    def test_top_classes_rejects_bad_t(self):
        with pytest.raises(DecompositionError):
            k4_decomposition().top_classes(0)

    def test_top_classes_does_not_go_below_two(self):
        td = TrussDecomposition({(0, 1): 3})
        assert sorted(td.top_classes(10)) == [2, 3]


class TestVerify:
    def test_accepts_correct_decomposition(self):
        g = complete_graph(4)
        k4_decomposition().verify(g)

    def test_rejects_wrong_edge_set(self):
        g = complete_graph(4)
        td = TrussDecomposition({(0, 1): 4})
        with pytest.raises(DecompositionError):
            td.verify(g)

    def test_rejects_understated_trussness(self):
        g = complete_graph(4)
        td = TrussDecomposition({e: 3 for e in g.edges()})  # should be 4
        with pytest.raises(DecompositionError):
            td.verify(g)

    def test_rejects_overstated_trussness(self):
        g = complete_graph(4)
        td = TrussDecomposition({e: 5 for e in g.edges()})
        with pytest.raises(DecompositionError):
            td.verify(g)


class TestStats:
    def test_record_and_bump(self):
        s = DecompositionStats(method="x")
        s.record("a", 3)
        s.bump("b")
        s.bump("b", 2)
        assert s.extra == {"a": 3, "b": 3}
