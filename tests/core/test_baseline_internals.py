"""Behavioural tests for Algorithm 1's cost model.

Table 3's story depends on the baseline actually paying
O(deg(u) + deg(v)) per removal over *never-compacted* adjacency lists;
these tests pin that cost model so a well-meaning optimization cannot
silently delete the paper's comparison.
"""

from repro.core import truss_decomposition_baseline, truss_decomposition_improved
from repro.graph import Graph, complete_graph, star_graph


def book(pages: int) -> Graph:
    g = Graph([(0, 1)])
    for i in range(2, pages + 2):
        g.add_edge(0, i)
        g.add_edge(1, i)
    return g


class TestIntersectionWorkCounter:
    def test_counter_present_and_positive(self):
        td = truss_decomposition_baseline(complete_graph(4))
        assert td.stats.extra["intersection_work"] > 0

    def test_work_counts_full_list_lengths(self):
        """Removing the star's edges costs ~deg(hub) per removal even
        though each leaf has degree 1 — the asymmetric-merge penalty."""
        n = 50
        td = truss_decomposition_baseline(star_graph(n))
        # each of the n removals merges the (never-shrinking) hub list
        assert td.stats.extra["intersection_work"] >= n * n

    def test_quadratic_on_book_graphs(self):
        w1 = truss_decomposition_baseline(book(50)).stats.extra[
            "intersection_work"
        ]
        w2 = truss_decomposition_baseline(book(200)).stats.extra[
            "intersection_work"
        ]
        # 4x edges -> ~16x work
        assert w2 / w1 > 8

    def test_improved_does_not_pay_the_hub(self):
        """Algorithm 2 walks the lower-degree endpoint: its runtime on
        the star is trivial and it never touches the hub list length."""
        g = star_graph(2000)
        td = truss_decomposition_improved(g)
        assert all(k == 2 for k in td.trussness.values())


class TestMarkDeletionSemantics:
    def test_dead_wing_edges_do_not_resurrect_triangles(self):
        """After (u,w) is removed, the w entry still sits in u's sorted
        list; the aliveness check must ignore it or supports would be
        decremented twice."""
        # two triangles sharing edge (0,1): the wings peel at level 4 and
        # the shared edge must come down with them exactly once
        g = Graph([(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)])
        td = truss_decomposition_baseline(g)
        assert td == truss_decomposition_improved(g)
        assert td.phi(0, 1) == 3  # support 2 but both triangles die at k=4
