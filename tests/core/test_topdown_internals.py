"""Targeted unit tests for top-down internals (kinit, pruning, valid set)."""

from array import array

import pytest

from repro.core.topdown import _choose_kinit, _extract_candidate, _valid_subgraph
from repro.exio import DiskEdgeFile, IOStats, MemoryBudget
from repro.graph import CSRGraph, Graph, complete_graph


def make_psi_file(tmp_path, records):
    return DiskEdgeFile.from_records(tmp_path / "psi.bin", records, IOStats())


def make_candidate(psi_of):
    """A CSR candidate subgraph H plus its eid-indexed psi array."""
    h = CSRGraph.from_edges(list(psi_of))
    psi = array("q", [0]) * h.num_edges
    for (u, v), p in psi_of.items():
        psi[h.edge_id(h.compact_id(u), h.compact_id(v))] = p
    return h, psi


class TestChooseKinit:
    def test_everything_fits_gives_lowest_level(self, tmp_path):
        f = make_psi_file(tmp_path, [(0, 1, 5), (1, 2, 4), (2, 3, 3)])
        assert _choose_kinit(f, MemoryBudget(units=10_000), k1st=5) == 3

    def test_tight_memory_stays_at_k1st(self, tmp_path):
        # K6 edges at psi 6: even level 6's candidate exceeds the budget
        g = complete_graph(6)
        f = make_psi_file(tmp_path, [(u, v, 6) for u, v in g.edges()])
        assert _choose_kinit(f, MemoryBudget(units=8), k1st=6) == 6

    def test_intermediate_budget_partial_descent(self, tmp_path):
        # two tiers: a small psi-9 clique and a big psi-3 blob
        records = [(u, v, 9) for u, v in complete_graph(4).edges()]
        records += [(100 + i, 200 + i, 3) for i in range(60)]
        f = make_psi_file(tmp_path, records)
        k = _choose_kinit(f, MemoryBudget(units=60), k1st=9)
        assert 3 < k <= 9  # descends below 9, cannot reach 3


class TestExtractCandidate:
    def test_only_unclassified_high_psi_define_uk(self, tmp_path):
        f = make_psi_file(
            tmp_path, [(0, 1, 5), (1, 2, 5), (3, 4, 2)]
        )
        h, psi, u_k = _extract_candidate(f, classified={(0, 1): 5}, k=5)
        assert u_k == {1, 2}
        # (0,1) rides along (incident to 1) but is classified
        assert set(h.edges_original()) == {(0, 1), (1, 2)}
        assert psi[h.edge_id(h.compact_id(1), h.compact_id(2))] == 5
        assert psi[h.edge_id(h.compact_id(0), h.compact_id(1))] == 5

    def test_empty_uk_when_all_classified(self, tmp_path):
        f = make_psi_file(tmp_path, [(0, 1, 5)])
        h, _psi, u_k = _extract_candidate(f, classified={(0, 1): 5}, k=3)
        assert u_k == set()
        assert h.num_edges == 0

    def test_h_is_a_csr_snapshot(self, tmp_path):
        # the candidate subgraph must never be dict-of-set adjacency
        f = make_psi_file(tmp_path, [(0, 1, 4), (1, 2, 4), (0, 2, 4)])
        h, psi, _u_k = _extract_candidate(f, classified={}, k=4)
        assert isinstance(h, CSRGraph)
        assert len(psi) == h.num_edges == 3


class TestValidSubgraph:
    def test_low_psi_unclassified_excluded(self):
        h, psi = make_candidate({(0, 1): 5, (1, 2): 3, (0, 2): 5})
        valid, candidates = _valid_subgraph(h, psi, classified={}, k=5)
        assert set(valid.edges()) == {(0, 1), (0, 2)}
        assert candidates == {(0, 1), (0, 2)}

    def test_classified_included_but_not_candidate(self):
        h, psi = make_candidate({(0, 1): 4, (1, 2): 4})
        valid, candidates = _valid_subgraph(
            h, psi, classified={(0, 1): 7}, k=4
        )
        assert set(valid.edges()) == {(0, 1), (1, 2)}
        assert candidates == {(1, 2)}
