"""Property tests for the shared level-peeling primitive."""

from hypothesis import given, settings

from repro.core import peel_level, truss_decomposition_improved
from repro.graph import Graph, complete_graph

from helpers import small_edge_lists


class TestPeelLevelBottomUpMode:
    """strict=False removes sup <= k-2: Procedure 5's semantics."""

    def test_removes_exactly_phi_k_on_full_graph(self):
        g = Graph(complete_graph(4).edges())
        g.add_edge(0, 9)
        g.add_edge(1, 9)  # edge pair forming one triangle with (0,1)
        td = truss_decomposition_improved(g)
        # at level 3, peeling T_3 = whole graph minus Phi_2 removes Phi_3
        t3 = td.k_truss(3)
        targets = set(t3.edges())
        removed = peel_level(t3, targets, 3, strict=False)
        assert sorted(removed) == sorted(td.k_class(3))

    @settings(max_examples=30, deadline=None)
    @given(small_edge_lists())
    def test_survivors_have_high_support(self, edges):
        g = Graph(edges)
        targets = set(g.edges())
        k = 4
        peel_level(g, targets, k, strict=False)
        for u, v in g.edges():
            assert len(g.common_neighbors(u, v)) > k - 2

    @settings(max_examples=30, deadline=None)
    @given(small_edge_lists())
    def test_only_targets_removed(self, edges):
        g = Graph(edges)
        all_edges = list(g.edges())
        targets = set(all_edges[::2])
        protected = set(all_edges) - targets
        peel_level(g, targets, 5, strict=False)
        for e in protected:
            assert g.has_edge(*e)


class TestPeelLevelTopDownMode:
    """strict=True removes sup < k-2: Procedure 8's semantics."""

    def test_clique_survives_its_level(self):
        g = complete_graph(5)
        removed = peel_level(g, set(g.edges()), 5, strict=True)
        assert removed == []  # sup == 3 == k-2 everywhere: all survive

    def test_clique_dies_above_its_level(self):
        g = complete_graph(5)
        removed = peel_level(g, set(g.edges()), 6, strict=True)
        assert len(removed) == 10

    @settings(max_examples=30, deadline=None)
    @given(small_edge_lists())
    def test_fixpoint_property(self, edges):
        g = Graph(edges)
        k = 4
        peel_level(g, set(g.edges()), k, strict=True)
        # re-peeling removes nothing: a true fixpoint
        assert peel_level(g, set(g.edges()), k, strict=True) == []
