"""Unit tests for Algorithm 3 (LowerBounding)."""

import pytest
from hypothesis import given, settings

from repro.core import lower_bounding, prepare_input, truss_decomposition_improved
from repro.exio import DiskEdgeFile, IOStats, MemoryBudget
from repro.graph import Graph, complete_graph
from repro.partition import SequentialPartitioner

from helpers import random_graph, small_edge_lists


def run_lowerbound(g, tmp_path, units=24, partitioner=None):
    stats = IOStats()
    g_file = prepare_input(g, tmp_path / "in.bin", stats)
    return lower_bounding(
        g_file,
        tmp_path / "gnew.bin",
        MemoryBudget(units=units),
        partitioner or SequentialPartitioner(),
        stats,
    )


class TestPhi2:
    def test_triangle_free_graph_goes_entirely_to_phi2(self, tmp_path):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        res = run_lowerbound(g, tmp_path)
        assert sorted(res.phi2) == g.sorted_edges()
        assert res.gnew.is_empty

    def test_clique_keeps_everything(self, tmp_path):
        g = complete_graph(5)
        res = run_lowerbound(g, tmp_path)
        assert res.phi2 == []
        assert len(res.gnew) == 10

    def test_phi2_matches_zero_support_edges(self, tmp_path):
        g = random_graph(25, 0.15, seed=7)
        ref = truss_decomposition_improved(g)
        res = run_lowerbound(g, tmp_path, units=20)
        assert sorted(res.phi2) == sorted(ref.k_class(2))

    def test_split_triangle_not_misclassified(self, tmp_path):
        """The cross-iteration trap: a triangle whose first edge retires
        in round one must not send the other two edges to Phi_2."""
        g = complete_graph(3)
        # tiny budget forces several partition blocks
        res = run_lowerbound(g, tmp_path, units=5)
        assert res.phi2 == []
        assert len(res.gnew) == 3


class TestBounds:
    def test_bounds_never_exceed_trussness(self, tmp_path):
        g = random_graph(22, 0.3, seed=3)
        ref = truss_decomposition_improved(g)
        res = run_lowerbound(g, tmp_path, units=18)
        for u, v, lb in res.gnew.scan():
            assert 3 <= lb <= ref.trussness[(u, v)]

    def test_bounds_exact_when_graph_fits(self, tmp_path):
        g = random_graph(18, 0.3, seed=5)
        ref = truss_decomposition_improved(g)
        res = run_lowerbound(g, tmp_path, units=100_000)
        assert res.iterations == 1
        for u, v, lb in res.gnew.scan():
            assert lb == ref.trussness[(u, v)]

    @settings(max_examples=20, deadline=None)
    @given(small_edge_lists())
    def test_partition_of_edges_property(self, edges):
        """Phi2 ∪ Gnew must be exactly the input edge set, disjointly."""
        import tempfile
        from pathlib import Path

        g = Graph(edges)
        with tempfile.TemporaryDirectory() as d:
            res = run_lowerbound(g, Path(d), units=12)
            gnew_edges = set(res.gnew.scan_edges())
            phi2 = set(res.phi2)
            assert gnew_edges | phi2 == set(g.edges())
            assert not (gnew_edges & phi2)


class TestMechanics:
    def test_input_file_drained(self, tmp_path):
        g = complete_graph(4)
        stats = IOStats()
        g_file = prepare_input(g, tmp_path / "in.bin", stats)
        lower_bounding(
            g_file, tmp_path / "gnew.bin", MemoryBudget(units=10),
            SequentialPartitioner(), stats,
        )
        assert g_file.is_empty

    def test_iteration_and_block_counters(self, tmp_path):
        g = random_graph(20, 0.3, seed=1)
        res = run_lowerbound(g, tmp_path, units=14)
        assert res.iterations >= 1
        assert res.blocks_processed >= res.iterations
        assert res.counters["phi2_size"] == len(res.phi2)

    def test_empty_graph(self, tmp_path):
        res = run_lowerbound(Graph(), tmp_path)
        assert res.phi2 == []
        assert res.gnew.is_empty
        assert res.iterations == 0
