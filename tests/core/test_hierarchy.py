"""Tests for truss hierarchy profiles (the fingerprinting layer)."""

from hypothesis import given, settings

from repro.core import truss_decomposition_improved, truss_hierarchy
from repro.datasets import running_example_graph
from repro.graph import Graph, complete_graph, disjoint_union, star_graph

from helpers import small_edge_lists


class TestHierarchyShape:
    def test_clique_profile(self):
        h = truss_hierarchy(complete_graph(5))
        assert [row.k for row in h.levels] == [2, 3, 4, 5]
        assert all(row.num_edges == 10 for row in h.levels)
        assert h.kmax == 5
        assert h.level(5).density == 1.0

    def test_star_is_flat(self):
        h = truss_hierarchy(star_graph(6))
        assert h.kmax == 2
        assert len(h.levels) == 1

    def test_running_example_profile(self):
        h = truss_hierarchy(running_example_graph())
        assert h.signature() == [26, 25, 16, 10]
        assert h.level(4).num_components == 2  # K5 region and the f-h-i-j clique

    def test_level_lookup_missing(self):
        h = truss_hierarchy(complete_graph(3))
        assert h.level(9) is None

    def test_collapse_level(self):
        # hub network collapses immediately, clique never
        hub = truss_hierarchy(star_graph(10))
        assert hub.collapse_level() == hub.kmax + 1  # never halves (flat)
        g = disjoint_union([complete_graph(4)] + [star_graph(3, center=0)] * 8)
        h = truss_hierarchy(g)
        assert h.collapse_level() == 3  # most edges are not in any triangle

    def test_accepts_precomputed_decomposition(self):
        g = complete_graph(4)
        td = truss_decomposition_improved(g)
        assert truss_hierarchy(g, decomposition=td).kmax == 4

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_monotone_nesting(self, edges):
        g = Graph(edges)
        h = truss_hierarchy(g)
        sizes = h.signature()
        assert sizes == sorted(sizes, reverse=True)
        for row in h.levels:
            assert 0 <= row.clustering <= 1
            assert 0 <= row.density <= 1

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_level2_is_whole_graph(self, edges):
        g = Graph(edges)
        if g.num_edges == 0:
            return
        h = truss_hierarchy(g)
        assert h.levels[0].num_edges == g.num_edges
