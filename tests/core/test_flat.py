"""Tests for the flat edge-indexed peeling engine (repro.core.flat).

The contract: ``method="flat"`` produces the *identical* trussness map
as every other method, on every graph family, through both the numpy
wave peel and the pure-stdlib wedge-closing fallback.
"""

import pytest
from hypothesis import given, settings

import repro.core.flat as flat_mod
from repro.core import truss_decomposition, truss_decomposition_flat
from repro.core.flat import _initial_supports_python, _peel_wedge_bisect
from repro.graph import CSRGraph, Graph, complete_graph, cycle_graph
from repro.datasets import (
    manager_graph,
    running_example_graph,
    RUNNING_EXAMPLE_CLASSES,
)

from helpers import random_graph, small_edge_lists
from oracles import brute_all_supports, brute_trussness


@pytest.fixture(params=["accelerated", "stdlib"])
def flat_decompose(request, monkeypatch):
    """Run each test through both engine paths."""
    if request.param == "stdlib":
        import repro.graph.csr as csr_mod

        monkeypatch.setattr(flat_mod, "_np", None)
        monkeypatch.setattr(csr_mod, "_np", None)
    return truss_decomposition_flat


class TestSmallGraphs:
    def test_empty(self, flat_decompose):
        td = flat_decompose(Graph())
        assert td.num_edges == 0
        assert td.kmax == 2

    def test_single_edge(self, flat_decompose):
        td = flat_decompose(Graph([(0, 1)]))
        assert dict(td.trussness) == {(0, 1): 2}

    def test_triangle(self, flat_decompose, triangle_graph):
        td = flat_decompose(triangle_graph)
        assert set(td.trussness.values()) == {3}

    def test_k5(self, flat_decompose, k5_graph):
        td = flat_decompose(k5_graph)
        assert set(td.trussness.values()) == {5}

    def test_cycle_has_no_triangles(self, flat_decompose):
        td = flat_decompose(cycle_graph(8))
        assert set(td.trussness.values()) == {2}

    def test_two_communities(self, flat_decompose, two_communities):
        td = flat_decompose(two_communities)
        td.verify(two_communities)
        assert td.kmax == 5

    def test_noncontiguous_labels(self, flat_decompose):
        g = Graph([(1000, 7), (7, 52), (52, 1000), (3, 1000)])
        td = flat_decompose(g)
        assert td.phi(7, 52) == 3
        assert td.phi(3, 1000) == 2


class TestPaperGraphs:
    def test_running_example_classes(self, flat_decompose):
        """Example 2's ground-truth k-classes, exactly."""
        td = flat_decompose(running_example_graph())
        for k, edges in RUNNING_EXAMPLE_CLASSES.items():
            assert sorted(td.k_class(k)) == sorted(edges), k

    def test_krackhardt_manager_graph(self, flat_decompose):
        g = manager_graph()
        td = flat_decompose(g)
        assert td == truss_decomposition(g, method="improved")
        td.verify(g)


class TestCrossMethodEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 42])
    @pytest.mark.parametrize("np_", [0.08, 0.2, 0.45])
    def test_matches_all_inmem_methods_on_gnp(self, flat_decompose, seed, np_):
        g = random_graph(40, np_, seed=seed)
        td = flat_decompose(g)
        for method in ("improved", "baseline", "mapreduce"):
            assert td == truss_decomposition(g, method=method), method

    @pytest.mark.parametrize("seed", [5, 23])
    def test_verify_on_gnp(self, flat_decompose, seed):
        g = random_graph(30, 0.25, seed=seed)
        flat_decompose(g).verify(g)

    @settings(max_examples=30, deadline=None)
    @given(small_edge_lists())
    def test_matches_oracle(self, edges):
        g = Graph(edges)
        td = truss_decomposition_flat(g)
        assert dict(td.trussness) == brute_trussness(g)

    def test_api_dispatch(self):
        g = random_graph(25, 0.3, seed=9)
        assert truss_decomposition(g, method="flat") == truss_decomposition(g)

    def test_stats_method_tag(self):
        td = truss_decomposition(complete_graph(4), method="flat")
        assert td.stats.method == "flat"
        assert td.stats.extra["kmax"] == 4


class TestInternals:
    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_initial_supports_match_oracle(self, edges):
        """The merge-intersection support pass, against the definition."""
        g = Graph(edges)
        csr = CSRGraph.from_graph(g)
        sup = _initial_supports_python(csr, csr.num_edges)
        brute = brute_all_supports(g)
        eu, ev = csr.edge_endpoints()
        labels = csr.labels
        for e in range(csr.num_edges):
            u, v = labels[eu[e]], labels[ev[e]]
            assert sup[e] == brute[(u, v)], (u, v)

    @pytest.mark.skipif(
        flat_mod._np is None, reason="wave peel needs the numpy accelerator"
    )
    def test_wedge_peel_equals_wave_peel(self):
        """The stdlib peel and the numpy wave peel, edge for edge."""
        g = random_graph(35, 0.3, seed=77)
        csr = CSRGraph.from_graph(g)
        m = csr.num_edges
        eu, ev = csr.edge_endpoints()
        sup = _initial_supports_python(csr, m)
        phi_wedge, k_wedge = _peel_wedge_bisect(csr, m, sup, eu, ev)
        phi_wave, k_wave = flat_mod._peel_waves(csr, m)
        assert list(phi_wedge) == list(phi_wave)
        assert k_wedge == k_wave
