"""Replays of the paper's worked examples (Examples 3, 4, 5).

These tests pin the *internal* behaviour of the external algorithms to
the traces the paper prints for the Figure 2 running example, not just
the final answer.
"""

import pytest

from repro.core import truss_decomposition_improved
from repro.datasets import (
    EXAMPLE3_PARTITION,
    RUNNING_EXAMPLE_CLASSES,
    running_example_graph,
    vid,
)
from repro.graph import neighborhood_subgraph
from repro.triangles import supports_within


def edge(a: str, b: str):
    u, v = vid(a), vid(b)
    return (u, v) if u < v else (v, u)


class TestExample3LowerBoundTrace:
    """Example 3: local classes of NS(P1), NS(P2), NS(P3)."""

    @pytest.fixture(scope="class")
    def g(self):
        return running_example_graph()

    def test_ns_p1_local_classes(self, g):
        """'Given NS(P1), Algorithm 2 returns Phi_2(P1) = {(d,l),(g,l)}.
        All the remaining edges in NS(P1) belong to Phi_4(P1).'"""
        ns = neighborhood_subgraph(g, EXAMPLE3_PARTITION[0])
        local = truss_decomposition_improved(ns.graph)
        classes = {k: set(v) for k, v in local.k_classes().items()}
        assert classes[2] == {edge("d", "l"), edge("g", "l")}
        assert set(classes) == {2, 4}
        assert len(classes[4]) == ns.graph.num_edges - 2

    def test_ns_p2_local_classes(self, g):
        """'Phi_2(P2) = {(f,i),(f,j)} and all the other edges in NS(P2)
        belong to Phi_3(P2).'"""
        ns = neighborhood_subgraph(g, EXAMPLE3_PARTITION[1])
        local = truss_decomposition_improved(ns.graph)
        classes = {k: set(v) for k, v in local.k_classes().items()}
        assert classes[2] == {edge("f", "i"), edge("f", "j")}
        assert set(classes) == {2, 3}

    def test_ns_p3_trace(self, g):
        """'We add the internal edge (i,k) of NS(P3) to Phi_2 ... and
        update the lower bounds of the 6 edges in the clique {f,h,i,j}
        to 4.'"""
        block = EXAMPLE3_PARTITION[2]
        ns = neighborhood_subgraph(g, block)
        sup = supports_within(ns.graph, set(block))
        assert sup[edge("i", "k")] == 0
        local = truss_decomposition_improved(ns.graph)
        for a in "fhij":
            for b in "fhij":
                if a < b:
                    assert local.trussness[edge(a, b)] == 4

    def test_stage2_candidate_u3(self, g):
        """Figure 4(a): with exact bounds, NS(U_3) for the 3-class pass
        contains every edge with a bound <= 3 plus their neighbors."""
        ref = truss_decomposition_improved(g)
        # after Phi_2 removal, Gnew = all edges with phi >= 3
        gnew_edges = [e for e, k in ref.trussness.items() if k >= 3]
        u3 = set()
        for (u, v) in gnew_edges:
            if ref.trussness[(u, v)] <= 3:
                u3.add(u)
                u3.add(v)
        # the paper's Phi_3 must be internal to NS(U_3)
        for u, v in RUNNING_EXAMPLE_CLASSES[3]:
            assert u in u3 and v in u3


class TestExample5TopDownTrace:
    """Example 5: psi-driven candidate sets for k = 5 and k = 4."""

    @pytest.fixture(scope="class")
    def g(self):
        return running_example_graph()

    @pytest.fixture(scope="class")
    def psi(self, g):
        import tempfile
        from pathlib import Path

        from repro.core import upper_bounding
        from repro.exio import DiskEdgeFile, IOStats, MemoryBudget
        from repro.triangles import edge_supports

        sup = edge_supports(g)
        with tempfile.TemporaryDirectory() as d:
            d = Path(d)
            stats = IOStats()
            sup_file = DiskEdgeFile.from_records(
                d / "sup.bin", [(u, v, s) for (u, v), s in sup.items()], stats
            )
            out = upper_bounding(
                sup_file, d / "psi.bin", MemoryBudget(units=100_000), stats
            )
            return {(u, v): p for u, v, p in out.scan()}

    def test_k_starts_at_5(self, psi):
        """'k is set to 5 in Step 4 of Algorithm 7' — max psi is 5."""
        assert max(psi.values()) == 5

    def test_u5_is_the_five_clique(self, psi):
        """Figure 5(a): U_5 induces the clique {a,b,c,d,e}."""
        u5 = set()
        for (u, v), p in psi.items():
            if p >= 5:
                u5.add(u)
                u5.add(v)
        assert u5 == {vid(c) for c in "abcde"}

    def test_u4_matches_figure_5b(self, psi):
        """Figure 5(b): U_4 = {d,e,f,g,h,i,j} once Phi_5 is classified."""
        classified = {e for e in RUNNING_EXAMPLE_CLASSES[5]}
        u4 = set()
        for (u, v), p in psi.items():
            if p >= 4 and (u, v) not in classified:
                u4.add(u)
                u4.add(v)
        assert u4 == {vid(c) for c in "defghij"}

    def test_phi5_and_phi4_computed_in_order(self, g):
        from repro.core import truss_decomposition_topdown

        td = truss_decomposition_topdown(g, t=2)
        assert sorted(td.k_class(5)) == sorted(RUNNING_EXAMPLE_CLASSES[5])
        assert sorted(td.k_class(4)) == sorted(RUNNING_EXAMPLE_CLASSES[4])
        # t=2 stops before the 3-class
        assert td.k_class(3) == []


class TestExternalAlgorithmsOnRunningExample:
    @pytest.mark.parametrize("units", [8, 16, 64])
    def test_bottomup_reproduces_example2(self, units):
        from repro.core import truss_decomposition_bottomup
        from repro.exio import MemoryBudget

        g = running_example_graph()
        td = truss_decomposition_bottomup(g, budget=MemoryBudget(units=units))
        for k, edges in RUNNING_EXAMPLE_CLASSES.items():
            assert sorted(td.k_class(k)) == sorted(edges)

    @pytest.mark.parametrize("units", [8, 16, 64])
    def test_topdown_reproduces_example2(self, units):
        from repro.core import truss_decomposition_topdown
        from repro.exio import MemoryBudget

        g = running_example_graph()
        td = truss_decomposition_topdown(g, budget=MemoryBudget(units=units))
        for k, edges in RUNNING_EXAMPLE_CLASSES.items():
            assert sorted(td.k_class(k)) == sorted(edges)

    def test_mapreduce_reproduces_example2(self):
        from repro.core import truss_decomposition_mapreduce

        g = running_example_graph()
        td = truss_decomposition_mapreduce(g)
        for k, edges in RUNNING_EXAMPLE_CLASSES.items():
            assert sorted(td.k_class(k)) == sorted(edges)
