"""Tests for the TD-MR baseline (Cohen's graph-twiddling truss)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    k_truss_mr,
    truss_decomposition_improved,
    truss_decomposition_mapreduce,
)
from repro.graph import Graph, complete_graph, cycle_graph, disjoint_union
from repro.mapreduce import LocalMRRuntime

from helpers import random_graph, small_edge_lists


class TestKTrussMR:
    def test_clique_survives_its_own_level(self):
        rt = LocalMRRuntime()
        kept, iterations = k_truss_mr(rt, complete_graph(5).edges(), 5)
        assert len(kept) == 10
        assert iterations >= 1

    def test_clique_dies_above_its_level(self):
        rt = LocalMRRuntime()
        kept, _ = k_truss_mr(rt, complete_graph(5).edges(), 6)
        assert kept == set()

    def test_triangle_free_graph_dies_at_3(self):
        rt = LocalMRRuntime()
        kept, _ = k_truss_mr(rt, cycle_graph(8).edges(), 3)
        assert kept == set()

    def test_cascade_needs_multiple_iterations(self):
        # chain of triangles: peeling one layer exposes the next
        g = Graph()
        for i in range(6):
            g.add_edge(i, i + 1)
            g.add_edge(i, i + 2)
        rt = LocalMRRuntime()
        kept, iterations = k_truss_mr(rt, g.edges(), 4)
        assert kept == set()
        assert iterations > 1

    def test_matches_definition_against_improved(self):
        g = random_graph(20, 0.3, seed=40)
        ref = truss_decomposition_improved(g)
        rt = LocalMRRuntime()
        for k in range(3, ref.kmax + 2):
            kept, _ = k_truss_mr(rt, g.edges(), k)
            assert kept == set(ref.k_truss_edges(k)), f"k={k}"


class TestDecomposition:
    def test_matches_improved(self):
        g = random_graph(18, 0.3, seed=41)
        assert truss_decomposition_mapreduce(g) == truss_decomposition_improved(g)

    @settings(max_examples=10, deadline=None)
    @given(small_edge_lists(max_vertices=9, max_edges=18))
    def test_matches_improved_property(self, edges):
        g = Graph(edges)
        assert truss_decomposition_mapreduce(g) == truss_decomposition_improved(g)

    def test_round_counters_grow_with_kmax(self):
        """The paper's complaint: rounds scale with levels and cascades."""
        small = truss_decomposition_mapreduce(complete_graph(4))
        large = truss_decomposition_mapreduce(complete_graph(8))
        assert (
            large.stats.extra["mr_rounds"] > small.stats.extra["mr_rounds"]
        )

    def test_stats_present(self):
        td = truss_decomposition_mapreduce(complete_graph(4))
        assert td.stats.method == "mapreduce"
        assert td.stats.extra["shuffle_records"] > 0
        assert td.stats.extra["shuffle_bytes"] > 0

    def test_empty_graph(self):
        td = truss_decomposition_mapreduce(Graph())
        assert td.num_edges == 0
