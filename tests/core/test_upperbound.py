"""Unit tests for Procedure 6 (UpperBounding) and the h-index helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import h_index, truss_decomposition_improved, upper_bounding, x_excluding
from repro.exio import DiskEdgeFile, IOStats, MemoryBudget
from repro.graph import Graph, complete_graph
from repro.triangles import edge_supports

from helpers import random_graph


class TestHIndex:
    def test_basic_cases(self):
        assert h_index([]) == 0
        assert h_index([0, 0]) == 0
        assert h_index([1]) == 1
        assert h_index([5, 4, 3, 2, 1]) == 3
        assert h_index([10, 10, 10]) == 3

    @given(st.lists(st.integers(0, 50), max_size=40))
    def test_definition(self, values):
        h = h_index(values)
        assert sum(1 for v in values if v >= h) >= h
        assert sum(1 for v in values if v >= h + 1) < h + 1

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=25), st.integers(0, 24))
    def test_x_excluding_matches_recount(self, values, idx):
        idx = idx % len(values)
        h = h_index(values)
        c = sum(1 for v in values if v >= h)
        removed = values[:idx] + values[idx + 1 :]
        assert x_excluding(h, c, values[idx]) == h_index(removed)


class TestPaperExample4:
    def test_edge_dg_bound_is_four(self):
        """Example 4: sup((d,g))=3, x_d=3 but x_g=2, so psi((d,g))=4."""
        from repro.datasets import running_example_graph, vid

        g = running_example_graph()
        sup = edge_supports(g)
        d, gg = vid("d"), vid("g")
        e = (d, gg) if d < gg else (gg, d)
        assert sup[e] == 3

        def x_of(w):
            incident = [
                sup[(min(w, n), max(w, n))] for n in g.neighbors(w)
                if (min(w, n), max(w, n)) != e
            ]
            return h_index(incident)

        assert x_of(d) == 3
        assert x_of(gg) == 2
        assert min(sup[e], x_of(d), x_of(gg)) + 2 == 4

    def test_five_class_edges_bound_is_five(self):
        from repro.datasets import RUNNING_EXAMPLE_CLASSES, running_example_graph

        g = running_example_graph()
        psi = compute_psi(g)
        for e in RUNNING_EXAMPLE_CLASSES[5]:
            assert psi[e] == 5


def compute_psi(g, units=100_000):
    """Run the real UpperBounding procedure over a spilled support file."""
    import tempfile
    from pathlib import Path

    sup = edge_supports(g)
    with tempfile.TemporaryDirectory() as d:
        d = Path(d)
        stats = IOStats()
        sup_file = DiskEdgeFile.from_records(
            d / "sup.bin", [(u, v, s) for (u, v), s in sup.items()], stats
        )
        out = upper_bounding(sup_file, d / "psi.bin", MemoryBudget(units=units), stats)
        return {(u, v): psi for u, v, psi in out.scan()}


class TestUpperBounding:
    def test_clique_bound_tight(self):
        psi = compute_psi(complete_graph(6))
        assert all(p == 6 for p in psi.values())

    @pytest.mark.parametrize("units", [16, 64, 100_000])
    def test_bound_dominates_trussness(self, units):
        g = random_graph(24, 0.3, seed=9)
        ref = truss_decomposition_improved(g)
        psi = compute_psi(g, units=units)
        for e, k in ref.trussness.items():
            if e in psi:  # support-0 edges are upstream of this stage
                assert psi[e] >= k, e

    def test_batched_equals_unbatched(self):
        g = random_graph(20, 0.35, seed=4)
        assert compute_psi(g, units=16) == compute_psi(g, units=100_000)

    def test_bound_never_exceeds_support_plus_two(self):
        g = random_graph(20, 0.3, seed=2)
        sup = edge_supports(g)
        psi = compute_psi(g)
        for e, p in psi.items():
            assert p <= sup[e] + 2
