"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import complete_graph, read_edge_list, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    g = complete_graph(5)
    g.add_edge(0, 10)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    return path


class TestDecompose:
    def test_writes_phi_lines(self, graph_file, tmp_path, capsys):
        out = tmp_path / "phi.txt"
        assert main(["decompose", str(graph_file), "-o", str(out)]) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 11
        phi = {}
        for line in lines:
            u, v, k = map(int, line.split())
            phi[(u, v)] = k
        assert phi[(0, 10)] == 2
        assert phi[(0, 1)] == 5
        assert "kmax=5" in capsys.readouterr().err

    def test_stdout_default(self, graph_file, capsys):
        assert main(["decompose", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 11

    @pytest.mark.parametrize("method", ["baseline", "bottomup", "topdown"])
    def test_other_methods(self, graph_file, tmp_path, method):
        out = tmp_path / "phi.txt"
        args = ["decompose", str(graph_file), "-o", str(out), "--method", method]
        if method in ("bottomup", "topdown"):
            args += ["--memory-fraction", "4"]
        assert main(args) == 0
        assert len(out.read_text().strip().splitlines()) == 11

    @pytest.mark.parametrize("method", ["flat", "parallel"])
    def test_csr_fastpath_methods(self, graph_file, tmp_path, method, capsys):
        out = tmp_path / "phi.txt"
        args = ["decompose", str(graph_file), "-o", str(out), "--method", method]
        if method == "parallel":
            args += ["--jobs", "2"]
        assert main(args) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 11
        phi = {}
        for line in lines:
            u, v, k = map(int, line.split())
            phi[(u, v)] = k
        assert phi[(0, 10)] == 2
        assert phi[(0, 1)] == 5
        err = capsys.readouterr().err
        assert "streaming CSR ingest" in err
        assert "kmax=5" in err

    @pytest.mark.parametrize("shards", ["dynamic", "static"])
    def test_shard_modes(self, graph_file, tmp_path, shards):
        out = tmp_path / "phi.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(out),
            "--method", "parallel", "--jobs", "2", "--shards", shards,
        ]) == 0
        reference = tmp_path / "flat.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(reference),
            "--method", "flat",
        ]) == 0
        assert out.read_text() == reference.read_text()

    @pytest.mark.parametrize("transport", ["loopback", "tcp"])
    def test_dist_method_matches_flat(self, graph_file, tmp_path, transport):
        out = tmp_path / "phi.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(out),
            "--method", "dist", "--ranks", "2", "--transport", transport,
        ]) == 0
        reference = tmp_path / "flat.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(reference),
            "--method", "flat",
        ]) == 0
        assert out.read_text() == reference.read_text()

    def test_jobs_rejected_without_parallel(self, graph_file, capsys):
        assert main([
            "decompose", str(graph_file), "--method", "flat", "--jobs", "2",
        ]) == 2
        assert "--jobs only applies" in capsys.readouterr().err

    def test_shards_rejected_without_parallel(self, graph_file, capsys):
        assert main([
            "decompose", str(graph_file), "--method", "flat",
            "--shards", "static",
        ]) == 2
        assert "--shards only applies" in capsys.readouterr().err

    def test_ranks_rejected_without_dist(self, graph_file, capsys):
        assert main([
            "decompose", str(graph_file), "--method", "parallel",
            "--ranks", "2",
        ]) == 2
        assert "--ranks only applies to --method dist" in (
            capsys.readouterr().err
        )

    def test_transport_rejected_without_dist(self, graph_file, capsys):
        assert main([
            "decompose", str(graph_file), "--method", "flat",
            "--transport", "tcp",
        ]) == 2
        assert "--transport only applies to --method dist" in (
            capsys.readouterr().err
        )

    def test_timeout_rejected_without_dist(self, graph_file, capsys):
        assert main([
            "decompose", str(graph_file), "--method", "flat",
            "--timeout", "30",
        ]) == 2
        assert "--timeout only applies to --method dist" in (
            capsys.readouterr().err
        )

    def test_on_failure_rejected_without_dist(self, graph_file, capsys):
        assert main([
            "decompose", str(graph_file), "--method", "parallel",
            "--on-failure", "retry",
        ]) == 2
        assert "--on-failure only applies to --method dist" in (
            capsys.readouterr().err
        )

    def test_unknown_on_failure_rejected(self, graph_file, capsys):
        with pytest.raises(SystemExit):  # argparse choices guard
            main([
                "decompose", str(graph_file), "--method", "dist",
                "--on-failure", "shrug",
            ])

    def test_dist_survivability_flags_accepted(
        self, graph_file, tmp_path
    ):
        out = tmp_path / "phi.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(out),
            "--method", "dist", "--ranks", "2",
            "--timeout", "60", "--on-failure", "retry",
        ]) == 0
        reference = tmp_path / "flat.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(reference),
            "--method", "flat",
        ]) == 0
        assert out.read_text() == reference.read_text()

    @pytest.mark.parametrize("method", ["flat", "parallel", "dist"])
    @pytest.mark.parametrize("storage", ["ram", "mmap"])
    def test_index_storage_matches_flat(
        self, graph_file, tmp_path, method, storage
    ):
        out = tmp_path / "phi.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(out),
            "--method", method, "--index-storage", storage,
        ]) == 0
        reference = tmp_path / "flat.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(reference),
            "--method", "flat",
        ]) == 0
        assert out.read_text() == reference.read_text()

    def test_index_storage_rejected_off_csr_methods(self, graph_file, capsys):
        assert main([
            "decompose", str(graph_file), "--method", "improved",
            "--index-storage", "mmap",
        ]) == 2
        assert "--index-storage only applies" in capsys.readouterr().err

    def test_external_flags_rejected_on_fastpath(self, graph_file, capsys):
        assert main([
            "decompose", str(graph_file), "--method", "flat", "--top", "3",
        ]) == 2
        assert "--top/--memory-fraction" in capsys.readouterr().err
        assert main([
            "decompose", str(graph_file), "--method", "parallel",
            "--memory-fraction", "4",
        ]) == 2
        assert "--top/--memory-fraction" in capsys.readouterr().err

    def test_top_t(self, graph_file, tmp_path):
        out = tmp_path / "phi.txt"
        assert main([
            "decompose", str(graph_file), "-o", str(out),
            "--method", "topdown", "--top", "1",
        ]) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 10  # only the 5-class
        assert all(line.endswith(" 5") for line in lines)


class TestOtherCommands:
    def test_ktruss(self, graph_file, tmp_path, capsys):
        out = tmp_path / "t4.txt"
        assert main(["ktruss", str(graph_file), "4", str(out)]) == 0
        t = read_edge_list(out)
        assert t.num_edges == 10

    def test_stats(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "kmax (truss)    5" in out
        assert "edges           11" in out

    def test_hierarchy(self, graph_file, capsys):
        assert main(["hierarchy", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].split() == ["k", "|V|", "|E|", "comps", "density", "CC"]
        assert len(out.strip().splitlines()) == 5  # header + k=2..5

    def test_generate_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "p2p.txt"
        assert main(["generate", "p2p", str(out), "--scale", "0.02"]) == 0
        g = read_edge_list(out)
        assert g.num_edges > 0

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nope", str(tmp_path / "x.txt")])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
