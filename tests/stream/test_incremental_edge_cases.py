"""Regression pins for degenerate update shapes.

Each case checks exact trussness parity against the brute oracle plus
the affected-set hygiene invariant: ``last_affected`` contains only
edges that exist after the repair (no stale ids), and the phi map
covers exactly the current edge set.
"""

from __future__ import annotations

import pytest

from oracles import brute_trussness
from repro.errors import DecompositionError
from repro.graph import Graph, complete_graph
from repro.stream import TrussMaintainer


def _check(tm: TrussMaintainer, mirror: Graph) -> None:
    want = brute_trussness(mirror)
    assert dict(tm.trussness) == want
    assert set(tm.last_affected) <= set(want)
    assert set(tm.trussness) == set(want)
    assert len(set(tm.last_affected)) == len(tm.last_affected)


def test_insert_into_empty_graph():
    tm = TrussMaintainer.from_graph(Graph())
    assert dict(tm.trussness) == {}
    assert tm.insert_edge(3, 1)
    mirror = Graph([(1, 3)])
    _check(tm, mirror)
    assert tm.trussness[(1, 3)] == 2
    assert tm.last_affected == ((1, 3),)


def test_delete_last_edge():
    tm = TrussMaintainer.from_graph(Graph([(0, 1)]))
    assert tm.delete_edge(1, 0)
    _check(tm, Graph())
    assert tm.trussness == {}
    assert tm.last_affected == ()
    # and deleting again is a clean no-op
    assert not tm.delete_edge(0, 1)


def test_insert_closing_k4_to_k5():
    g = complete_graph(5)
    g.remove_edge(0, 1)
    tm = TrussMaintainer.from_graph(g)
    assert tm.trussness[(2, 3)] == 4
    assert tm.insert_edge(0, 1)
    mirror = complete_graph(5)
    _check(tm, mirror)
    assert set(tm.trussness.values()) == {5}
    # every edge of the clique moved, so all must be in the region
    assert set(tm.last_affected) == set(mirror.edges())


def test_component_splitting_delete():
    # two triangles joined by a bridge; cutting the bridge splits the
    # graph into components but must not disturb either triangle
    g = Graph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
    tm = TrussMaintainer.from_graph(g)
    assert tm.delete_edge(2, 3)
    mirror = g.copy()
    mirror.remove_edge(2, 3)
    _check(tm, mirror)
    assert tm.trussness[(0, 1)] == 3
    assert tm.trussness[(3, 4)] == 3
    # the bridge closed no triangle: nothing needed re-peeling
    assert tm.last_affected == ()


def test_triangle_destroying_delete_affects_neighbors():
    g = Graph([(0, 1), (1, 2), (0, 2)])
    tm = TrussMaintainer.from_graph(g)
    assert tm.delete_edge(0, 1)
    mirror = Graph([(1, 2), (0, 2)])
    _check(tm, mirror)
    assert dict(tm.trussness) == {(0, 2): 2, (1, 2): 2}
    assert set(tm.last_affected) == {(0, 2), (1, 2)}


def test_net_noop_batch():
    g = complete_graph(4)
    tm = TrussMaintainer.from_graph(g)
    before = dict(tm.trussness)
    # both updates are effective, the net effect is none
    assert tm.apply_batch([("insert", 0, 9), ("delete", 9, 0)]) == 2
    _check(tm, g)
    assert dict(tm.trussness) == before
    assert (0, 9) not in tm.trussness
    assert all(e != (0, 9) for e in tm.last_affected)


def test_noop_updates_return_false():
    tm = TrussMaintainer.from_graph(complete_graph(3))
    before = dict(tm.trussness)
    assert not tm.insert_edge(0, 1)  # duplicate
    assert not tm.insert_edge(2, 2)  # self-loop, dropped like ingest
    assert not tm.delete_edge(0, 7)  # absent
    assert tm.apply_batch([("insert", 1, 0), ("delete", 5, 6)]) == 0
    assert dict(tm.trussness) == before


def test_unknown_op_raises_before_mutating():
    tm = TrussMaintainer.from_graph(complete_graph(3))
    with pytest.raises(DecompositionError):
        tm.apply_batch([("upsert", 0, 5)])
    assert dict(tm.trussness) == brute_trussness(complete_graph(3))


def test_insert_then_delete_same_edge_in_batch_with_triangles():
    # the transient edge closes triangles while it exists; the batch
    # repair must still land exactly on the final graph's trussness
    g = Graph([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
    tm = TrussMaintainer.from_graph(g)
    assert tm.apply_batch([("insert", 0, 3), ("delete", 0, 3)]) == 2
    _check(tm, g)


def test_giant_region_falls_back_to_full_repeel():
    # a batch whose slack-widened region covers most of a large clique
    # must take the full-repeel guard and still land exactly
    g = complete_graph(20)
    tm = TrussMaintainer.from_graph(g)
    updates = [("delete", 0, v) for v in range(1, 8)]
    updates += [("insert", 0, 30), ("insert", 1, 30)]
    assert tm.apply_batch(updates) == len(updates)
    mirror = g.copy()
    for op, u, v in updates:
        (mirror.add_edge if op == "insert" else mirror.discard_edge)(u, v)
    _check(tm, mirror)
    assert tm.stats.extra.get("full_repeels", 0) >= 1


def test_stats_counters_accumulate():
    tm = TrussMaintainer.from_graph(complete_graph(4))
    tm.insert_edge(0, 4)
    tm.insert_edge(1, 4)
    assert tm.stats.extra["repairs"] == 2
    assert tm.stats.extra["affected_edges"] >= 1
