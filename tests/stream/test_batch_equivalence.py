"""``apply_batch(U)`` is bit-identical to replaying ``U`` one by one.

This pins the repair-once optimization against the simple path: the
batched traversal runs with a relaxed (slack) chain rule over the
final adjacency, and any unsoundness there would show up here as a
divergence from the sequentially-maintained twin.
"""

from __future__ import annotations

from hypothesis import given, settings

from helpers import update_streams
from oracles import brute_trussness
from repro.core import truss_decomposition
from repro.stream import TrussMaintainer


def _final_mirror(g, updates):
    mirror = g.copy()
    for op, u, v in updates:
        if u == v:
            continue
        if op == "insert":
            mirror.add_edge(u, v)
        else:
            mirror.discard_edge(u, v)
    return mirror


@settings(deadline=None)
@given(update_streams(max_updates=12))
def test_batch_equals_sequential(stream):
    g, updates = stream
    seq = TrussMaintainer.from_graph(g)
    applied_seq = 0
    for op, u, v in updates:
        applied_seq += int(
            seq.insert_edge(u, v) if op == "insert" else seq.delete_edge(u, v)
        )
    bat = TrussMaintainer.from_graph(g)
    applied_bat = bat.apply_batch(updates)
    assert applied_bat == applied_seq
    assert dict(bat.trussness) == dict(seq.trussness)
    # and both match ground truth on the final graph
    mirror = _final_mirror(g, updates)
    assert dict(bat.trussness) == brute_trussness(mirror)
    assert bat.as_decomposition() == truss_decomposition(mirror, method="flat")


@settings(deadline=None, max_examples=30)
@given(update_streams(max_updates=12))
def test_batch_chunking_is_associative(stream):
    """Splitting one batch into two consecutive batches changes nothing."""
    g, updates = stream
    whole = TrussMaintainer.from_graph(g)
    whole.apply_batch(updates)
    halved = TrussMaintainer.from_graph(g)
    mid = len(updates) // 2
    halved.apply_batch(updates[:mid])
    halved.apply_batch(updates[mid:])
    assert dict(whole.trussness) == dict(halved.trussness)
