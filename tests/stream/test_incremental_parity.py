"""Prefix parity: the maintainer never drifts from a fresh peel.

The one property that makes an incremental algorithm trustworthy:
after *every prefix* of a generated update stream, the maintained
trussness map is bit-identical to the brute-force oracle and to a
from-scratch ``method="flat"`` decomposition of the mutated mirror.
An incremental algorithm that silently drifts is worse than none.
"""

from __future__ import annotations

from hypothesis import given, settings

from helpers import update_streams
from oracles import brute_trussness
from repro.core import truss_decomposition
from repro.stream import TrussMaintainer


def _mirror_apply(mirror, op, u, v):
    """Replay one update on the dict-of-set mirror; True if it changed."""
    if u == v:
        return False
    if op == "insert":
        return mirror.add_edge(u, v)
    return mirror.discard_edge(u, v)


@settings(deadline=None)
@given(update_streams())
def test_prefix_parity_against_oracle_and_flat(stream):
    g, updates = stream
    tm = TrussMaintainer.from_graph(g)
    mirror = g.copy()
    assert dict(tm.trussness) == brute_trussness(mirror)
    for op, u, v in updates:
        changed = (
            tm.insert_edge(u, v) if op == "insert" else tm.delete_edge(u, v)
        )
        assert changed == _mirror_apply(mirror, op, u, v)
        want = brute_trussness(mirror)
        assert dict(tm.trussness) == want
        assert tm.as_decomposition() == truss_decomposition(
            mirror, method="flat"
        )
        # the affected set never leaks stale edges: it is a subset of
        # the current edge set, and phi covers exactly the edge set
        edges = set(want)
        assert set(tm.last_affected) <= edges
        assert set(tm.trussness) == edges


@settings(deadline=None)
@given(update_streams())
def test_supports_stay_exact(stream):
    """The incrementally-maintained support map never drifts either.

    Support drift is the precursor of trussness drift — pinning it
    separately localizes failures to the mutation bookkeeping rather
    than the repair peel.
    """
    from oracles import brute_all_supports

    g, updates = stream
    tm = TrussMaintainer.from_graph(g)
    mirror = g.copy()
    for op, u, v in updates:
        tm.insert_edge(u, v) if op == "insert" else tm.delete_edge(u, v)
        _mirror_apply(mirror, op, u, v)
        assert dict(tm.supports) == brute_all_supports(mirror)


@settings(deadline=None, max_examples=25)
@given(update_streams(max_updates=6))
def test_python_kernel_parity(stream):
    """The repair is kernel-agnostic: forced-python matches the oracle."""
    g, updates = stream
    tm = TrussMaintainer.from_graph(g, kernel="python")
    mirror = g.copy()
    for op, u, v in updates:
        tm.insert_edge(u, v) if op == "insert" else tm.delete_edge(u, v)
        _mirror_apply(mirror, op, u, v)
    assert dict(tm.trussness) == brute_trussness(mirror)
