"""The ``repro update`` command: file-in, file-out incremental repair."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.graph import complete_graph, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    g = complete_graph(5)
    g.add_edge(0, 10)
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    return path


def _updates_file(tmp_path, text):
    path = tmp_path / "ups.txt"
    path.write_text(text)
    return path


class TestUpdate:
    @pytest.mark.parametrize("batch", [1, 3])
    def test_matches_flat_recompute_bytes(
        self, graph_file, tmp_path, batch, capsys
    ):
        ups = _updates_file(
            tmp_path,
            "# grow a second clique corner, then retract the pendant\n"
            "+ 1 10\n+ 2 10\n- 0 10\n- 7 8\n",
        )
        out = tmp_path / "incr.txt"
        assert main([
            "update", str(graph_file), str(ups),
            "-o", str(out), "--batch", str(batch),
        ]) == 0
        err = capsys.readouterr().err
        assert "applied=3" in err  # '- 7 8' is an absent-edge no-op
        # reference: mutate the graph, flat-decompose from scratch
        g = complete_graph(5)
        g.add_edge(1, 10)
        g.add_edge(2, 10)
        after = tmp_path / "after.txt"
        write_edge_list(g, after)
        ref = tmp_path / "flat.txt"
        assert main([
            "decompose", str(after), "--method", "flat", "-o", str(ref),
        ]) == 0
        assert out.read_text() == ref.read_text()

    def test_malformed_update_line_is_rejected(
        self, graph_file, tmp_path, capsys
    ):
        ups = _updates_file(tmp_path, "+ 1 2\nzap 3 4\n")
        assert main(["update", str(graph_file), str(ups)]) == 2
        assert "expected '+ u v' or '- u v'" in capsys.readouterr().err

    def test_non_integer_vertex_is_rejected(
        self, graph_file, tmp_path, capsys
    ):
        ups = _updates_file(tmp_path, "+ 1 two\n")
        assert main(["update", str(graph_file), str(ups)]) == 2
        assert "non-integer vertex id" in capsys.readouterr().err

    def test_updates_from_stdin(
        self, graph_file, tmp_path, monkeypatch, capsys
    ):
        """``repro update GRAPH -`` reads the update stream from stdin."""
        monkeypatch.setattr("sys.stdin", io.StringIO("+ 1 10\n+ 2 10\n"))
        out = tmp_path / "incr.txt"
        assert main([
            "update", str(graph_file), "-", "-o", str(out),
        ]) == 0
        assert "applied=2" in capsys.readouterr().err
        ups = _updates_file(tmp_path, "+ 1 10\n+ 2 10\n")
        ref = tmp_path / "ref.txt"
        assert main([
            "update", str(graph_file), str(ups), "-o", str(ref),
        ]) == 0
        assert out.read_text() == ref.read_text()

    def test_stdin_malformed_line_is_rejected(
        self, graph_file, monkeypatch, capsys
    ):
        monkeypatch.setattr("sys.stdin", io.StringIO("+ 1 10\nzap\n"))
        assert main(["update", str(graph_file), "-"]) == 2
        assert "<stdin>:2" in capsys.readouterr().err

    def test_bad_batch_is_rejected(self, graph_file, tmp_path, capsys):
        ups = _updates_file(tmp_path, "+ 1 2\n")
        assert main([
            "update", str(graph_file), str(ups), "--batch", "0",
        ]) == 2
        assert "--batch must be >= 1" in capsys.readouterr().err
