"""The shared update-stream parser (CLI file/stdin, WAL, POST body)."""

from __future__ import annotations

import io

import pytest

from repro.stream.updates import (
    format_update,
    parse_update_line,
    read_update_lines,
    read_update_stream,
)


class TestParseLine:
    @pytest.mark.parametrize("line,expect", [
        ("+ 1 2", ("insert", 1, 2)),
        ("- 3 4", ("delete", 3, 4)),
        ("  +   10   20  ", ("insert", 10, 20)),
        ("+ -5 7", ("insert", -5, 7)),
        ("+ 1 2 trailing junk is ignored", ("insert", 1, 2)),
    ])
    def test_well_formed(self, line, expect):
        assert parse_update_line(line) == expect

    @pytest.mark.parametrize("line", ["", "   ", "\n", "# comment", "#+ 1 2"])
    def test_blank_and_comment_skip(self, line):
        assert parse_update_line(line) is None

    @pytest.mark.parametrize("line", ["* 1 2", "+ 1", "insert 1 2", "1 2"])
    def test_malformed_shape(self, line):
        with pytest.raises(ValueError, match="expected '\\+ u v' or '- u v'"):
            parse_update_line(line)

    def test_non_integer_vertex(self):
        with pytest.raises(ValueError, match="non-integer vertex id"):
            parse_update_line("+ 1 two")

    def test_where_prefixes_the_error(self):
        with pytest.raises(ValueError, match="ups.txt:7: expected"):
            parse_update_line("bogus", where="ups.txt:7")


class TestStreams:
    TEXT = "# header\n+ 1 2\n\n- 3 4\n+ 5 6\n"
    PARSED = [("insert", 1, 2), ("delete", 3, 4), ("insert", 5, 6)]

    def test_read_update_lines(self):
        assert read_update_lines(io.StringIO(self.TEXT)) == self.PARSED

    def test_read_update_lines_names_the_source_line(self):
        with pytest.raises(ValueError, match="ups:2:"):
            read_update_lines(io.StringIO("+ 1 2\nzap\n"), source="ups")

    def test_read_update_stream_file(self, tmp_path):
        path = tmp_path / "ups.txt"
        path.write_text(self.TEXT)
        assert read_update_stream(path) == self.PARSED

    def test_read_update_stream_stdin(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(self.TEXT))
        assert read_update_stream("-") == self.PARSED

    def test_stdin_errors_name_stdin(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("zap\n"))
        with pytest.raises(ValueError, match="<stdin>:1:"):
            read_update_stream("-")


class TestFormat:
    @pytest.mark.parametrize("op,u,v,expect", [
        ("insert", 1, 2, "+ 1 2"),
        ("delete", 3, 4, "- 3 4"),
        ("+", 5, 6, "+ 5 6"),  # line opcodes pass through
        ("-", 7, 8, "- 7 8"),
    ])
    def test_canonical_text(self, op, u, v, expect):
        assert format_update(op, u, v) == expect

    def test_roundtrip(self):
        for upd in [("insert", 0, 1), ("delete", 9, 3)]:
            assert parse_update_line(format_update(*upd)) == upd

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown update op"):
            format_update("upsert", 1, 2)
