"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path
from typing import List, Tuple

import pytest
from hypothesis import strategies as st

# Make the sibling ``oracles`` module importable from every test package.
sys.path.insert(0, str(Path(__file__).parent))

from repro.graph import Graph, complete_graph, disjoint_union  # noqa: E402


@pytest.fixture
def triangle_graph() -> Graph:
    """K3: the smallest graph with a non-trivial truss (all edges phi=3)."""
    return complete_graph(3)


@pytest.fixture
def k5_graph() -> Graph:
    """K5: all edges have trussness 5."""
    return complete_graph(5)


@pytest.fixture
def two_communities() -> Graph:
    """Two cliques (K5, K4) joined by a single bridge edge."""
    g = disjoint_union([complete_graph(5), complete_graph(4)])
    g.add_edge(0, 5)
    return g


def random_graph(n: int, p: float, seed: int) -> Graph:
    """Seeded G(n, p) used by deterministic randomized tests."""
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------
@st.composite
def small_edge_lists(draw, max_vertices: int = 12, max_edges: int = 40):
    """A list of distinct canonical edges over a small vertex range."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return draw(
        st.lists(
            st.sampled_from(possible),
            max_size=min(max_edges, len(possible)),
            unique=True,
        )
    )


@st.composite
def small_graphs(draw, max_vertices: int = 12, max_edges: int = 40):
    """A small random simple graph (possibly empty / disconnected)."""
    return Graph(draw(small_edge_lists(max_vertices, max_edges)))
