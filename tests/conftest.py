"""Shared fixtures for the test suite.

Plain helpers and hypothesis strategies live in :mod:`tests.helpers`
(imported as ``from helpers import ...`` thanks to the ``sys.path``
shim below) so they can never be shadowed by another ``conftest.py``
collected in the same run — see the note in ``helpers.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest
from hypothesis import settings

# Make the sibling ``oracles`` and ``helpers`` modules importable from
# every test package.
sys.path.insert(0, str(Path(__file__).parent))

from repro.graph import Graph, complete_graph, disjoint_union  # noqa: E402

# Raised-budget profile for the tier-2 soak jobs (e.g. stream-soak runs
# the incremental-parity sweep with it): select with
# ``--hypothesis-profile=soak``.  The default profile is untouched.
settings.register_profile("soak", max_examples=300, deadline=None)


@pytest.fixture
def triangle_graph() -> Graph:
    """K3: the smallest graph with a non-trivial truss (all edges phi=3)."""
    return complete_graph(3)


@pytest.fixture
def k5_graph() -> Graph:
    """K5: all edges have trussness 5."""
    return complete_graph(5)


@pytest.fixture
def two_communities() -> Graph:
    """Two cliques (K5, K4) joined by a single bridge edge."""
    g = disjoint_union([complete_graph(5), complete_graph(4)])
    g.add_edge(0, 5)
    return g
