"""Tests for the spilling (Hadoop-materialization) MR mode."""

import pytest

from repro.core import truss_decomposition_improved, truss_decomposition_mapreduce
from repro.exio import IOStats
from repro.mapreduce import LocalMRRuntime, MapReduceJob

from helpers import random_graph


def word_count():
    def mapper(_k, line):
        for w in line.split():
            yield (w, 1)

    def reducer(w, counts):
        yield (w, sum(counts))

    return MapReduceJob("wc", mapper, reducer)


class TestSpillingRuntime:
    def test_same_output_as_in_memory(self, tmp_path):
        data = [(None, "a b a c"), (None, "c a")]
        plain = LocalMRRuntime(num_reducers=3)
        spilled = LocalMRRuntime(
            num_reducers=3, spill_dir=tmp_path, io_stats=IOStats()
        )
        assert plain.run(word_count(), data) == spilled.run(word_count(), data)

    def test_io_accounted(self, tmp_path):
        stats = IOStats(block_size=64)
        rt = LocalMRRuntime(num_reducers=2, spill_dir=tmp_path, io_stats=stats)
        rt.run(word_count(), [(None, "x y z " * 50)])
        assert stats.blocks_written > 0
        assert stats.blocks_read > 0
        # materialization reads back what it wrote
        assert stats.bytes_read == stats.bytes_written

    def test_spill_files_cleaned_up(self, tmp_path):
        rt = LocalMRRuntime(num_reducers=2, spill_dir=tmp_path, io_stats=IOStats())
        rt.run(word_count(), [(None, "p q")])
        assert list(tmp_path.glob("mr-*")) == []

    def test_truss_decomposition_identical_with_spill(self, tmp_path):
        g = random_graph(16, 0.35, seed=99)
        rt = LocalMRRuntime(num_reducers=4, spill_dir=tmp_path, io_stats=IOStats())
        td = truss_decomposition_mapreduce(g, runtime=rt)
        assert td == truss_decomposition_improved(g)

    def test_spill_handles_tuple_keys(self, tmp_path):
        def mapper(_k, v):
            yield ((v, v + 1), "edge")

        def reducer(k, vs):
            yield (k, len(vs))

        rt = LocalMRRuntime(num_reducers=2, spill_dir=tmp_path, io_stats=IOStats())
        out = rt.run(MapReduceJob("t", mapper, reducer), [(None, 1), (None, 1)])
        assert out == [((1, 2), 2)]
