"""Unit tests for the local MapReduce runtime."""

import pytest

from repro.mapreduce import LocalMRRuntime, MapReduceJob


def word_count_job():
    def mapper(_key, line):
        for word in line.split():
            yield (word, 1)

    def reducer(word, counts):
        yield (word, sum(counts))

    return MapReduceJob("wordcount", mapper, reducer)


class TestRuntime:
    def test_word_count(self):
        rt = LocalMRRuntime(num_reducers=3)
        out = rt.run(word_count_job(), [(None, "a b a"), (None, "b a")])
        assert dict(out) == {"a": 3, "b": 2}

    def test_counters(self):
        rt = LocalMRRuntime(num_reducers=2)
        rt.run(word_count_job(), [(None, "x y x")])
        c = rt.counters
        assert c.rounds == 1
        assert c.map_records == 3
        assert c.shuffle_records == 3
        assert c.reduce_groups == 2
        assert c.reduce_records == 2
        assert c.shuffle_bytes > 0

    def test_combiner_shrinks_shuffle(self):
        def combiner(word, counts):
            yield (word, sum(counts))

        job = word_count_job()
        with_comb = MapReduceJob("wc", job.mapper, job.reducer, combiner)
        a, b = LocalMRRuntime(), LocalMRRuntime()
        data = [(None, "z z z z z")]
        assert a.run(job, data) == b.run(with_comb, data)
        assert b.counters.shuffle_records < a.counters.shuffle_records

    def test_chain(self):
        def inc_mapper(k, v):
            yield (k, v + 1)

        def identity_reducer(k, vs):
            for v in vs:
                yield (k, v)

        inc = MapReduceJob("inc", inc_mapper, identity_reducer)
        rt = LocalMRRuntime()
        out = rt.chain([inc, inc, inc], [("a", 0)])
        assert out == [("a", 3)]
        assert rt.counters.rounds == 3

    def test_deterministic_output_order(self):
        rt1, rt2 = LocalMRRuntime(num_reducers=4), LocalMRRuntime(num_reducers=4)
        data = [(None, "q w e r t y u i o p")]
        assert rt1.run(word_count_job(), data) == rt2.run(word_count_job(), data)

    def test_rejects_zero_reducers(self):
        with pytest.raises(ValueError):
            LocalMRRuntime(num_reducers=0)

    def test_counter_snapshot_delta(self):
        rt = LocalMRRuntime()
        rt.run(word_count_job(), [(None, "a")])
        snap = rt.counters.snapshot()
        rt.run(word_count_job(), [(None, "b c")])
        d = rt.counters.delta_since(snap)
        assert d.rounds == 1
        assert d.map_records == 2
