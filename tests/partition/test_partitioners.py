"""Unit + property tests for the three partitioners."""

import pytest
from hypothesis import given, settings

from repro.exio import MemoryBudget
from repro.graph import Graph, complete_graph, star_graph
from repro.partition import (
    DominatingSetPartitioner,
    PartitionSource,
    RandomizedPartitioner,
    SequentialPartitioner,
    check_partition,
    partitioner_by_name,
    vertex_weight,
)

from helpers import random_graph, small_edge_lists

ALL_PARTITIONERS = [
    SequentialPartitioner(),
    DominatingSetPartitioner(),
    RandomizedPartitioner(seed=7),
]


def ids(p):
    return p.name


class TestPartitionSource:
    def test_from_graph(self):
        g = complete_graph(4)
        src = PartitionSource.from_graph(g)
        assert src.num_vertices == 4
        assert src.size_units == 10
        assert sorted(src.iter_edges()) == g.sorted_edges()

    def test_iter_edges_restartable(self):
        src = PartitionSource.from_graph(complete_graph(3))
        assert list(src.iter_edges()) == list(src.iter_edges())

    def test_from_edge_file(self, tmp_path):
        from repro.exio import DiskEdgeFile, IOStats

        f = DiskEdgeFile.from_edges(
            tmp_path / "e.bin", complete_graph(4).edges(), IOStats()
        )
        src = PartitionSource.from_edge_file(f)
        assert src.degrees == {0: 3, 1: 3, 2: 3, 3: 3}
        assert set(src.iter_edges()) == set(complete_graph(4).edges())


@pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=ids)
class TestPartitionContract:
    def test_covers_all_vertices_once(self, part):
        g = random_graph(30, 0.2, seed=3)
        src = PartitionSource.from_graph(g)
        blocks = part.partition(src, MemoryBudget(units=20))
        check_partition(blocks, src)

    def test_blocks_respect_capacity(self, part):
        g = random_graph(40, 0.1, seed=5)
        src = PartitionSource.from_graph(g)
        budget = MemoryBudget(units=30)
        cap = budget.partition_capacity()
        for block in part.partition(src, budget):
            weight = sum(vertex_weight(src.degrees[v]) for v in block)
            # single over-heavy vertices are allowed as singleton blocks
            assert weight <= cap or len(block) == 1

    def test_single_block_when_memory_large(self, part):
        g = complete_graph(5)
        src = PartitionSource.from_graph(g)
        blocks = part.partition(src, MemoryBudget(units=10_000))
        assert sum(len(b) for b in blocks) == 5

    def test_empty_graph(self, part):
        src = PartitionSource.from_graph(Graph())
        assert part.partition(src, MemoryBudget(units=10)) == []

    def test_hub_graph_does_not_crash(self, part):
        g = star_graph(50)
        src = PartitionSource.from_graph(g)
        blocks = part.partition(src, MemoryBudget(units=12))
        check_partition(blocks, src)

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_property_partition_valid(self, part, edges):
        g = Graph(edges)
        src = PartitionSource.from_graph(g)
        blocks = part.partition(src, MemoryBudget(units=14))
        check_partition(blocks, src)


class TestSpecificBehaviours:
    def test_sequential_preserves_order(self):
        g = Graph([(0, 1), (2, 3), (4, 5)])
        src = PartitionSource.from_graph(g)
        blocks = SequentialPartitioner().partition(src, MemoryBudget(units=8))
        flattened = [v for b in blocks for v in b]
        assert flattened == sorted(flattened)

    def test_randomized_deterministic_per_seed(self):
        g = random_graph(25, 0.2, seed=1)
        src = PartitionSource.from_graph(g)
        a = RandomizedPartitioner(seed=3).partition(src, MemoryBudget(units=20))
        b = RandomizedPartitioner(seed=3).partition(src, MemoryBudget(units=20))
        assert a == b

    def test_randomized_seed_changes_layout(self):
        g = random_graph(40, 0.3, seed=1)
        src = PartitionSource.from_graph(g)
        a = RandomizedPartitioner(seed=1).partition(src, MemoryBudget(units=20))
        b = RandomizedPartitioner(seed=2).partition(src, MemoryBudget(units=20))
        assert a != b  # overwhelmingly likely

    def test_dominating_has_more_internal_edges_than_sequential(self):
        """The locality property the external algorithms rely on: seed
        clusters pack neighbors together, so far more edges land inside
        a block than with id-order packing on an id-scrambled graph."""
        import random as _random

        from repro.graph import Graph

        rng = _random.Random(5)
        labels = list(range(1000, 1000 + 48))
        rng.shuffle(labels)
        g = Graph()
        for c in range(12):  # chain of K4s with scrambled ids
            quad = labels[4 * c : 4 * c + 4]
            for i in range(4):
                for j in range(i + 1, 4):
                    g.add_edge(quad[i], quad[j])
        src = PartitionSource.from_graph(g)
        budget = MemoryBudget(units=40)

        def internal_fraction(partitioner):
            blocks = partitioner.partition(src, budget)
            block_of = {v: i for i, b in enumerate(blocks) for v in b}
            internal = sum(
                1 for u, v in g.edges() if block_of[u] == block_of[v]
            )
            return internal / g.num_edges

        assert internal_fraction(DominatingSetPartitioner()) > internal_fraction(
            SequentialPartitioner()
        )

    def test_partitioner_by_name(self):
        assert partitioner_by_name("sequential").name == "sequential"
        assert partitioner_by_name("dominating").name == "dominating"
        assert partitioner_by_name("randomized", seed=5).name == "randomized"
        with pytest.raises(ValueError):
            partitioner_by_name("bogus")
