"""Tests for one-scan bucket distribution."""

import pytest
from hypothesis import given, settings

from repro.exio import IOStats
from repro.graph import Graph
from repro.partition.distribute import BucketSet, distribute_edges

from helpers import small_edge_lists


class TestBucketSet:
    def test_append_read_roundtrip(self, tmp_path):
        stats = IOStats(block_size=64)
        b = BucketSet(2, tmp_path, stats, tag="t")
        b.append(0, (1, 2, 9))
        b.append(1, (3, 4, 8))
        b.append(0, (5, 6, 7))
        b.seal()
        assert list(b.read(0)) == [(1, 2, 9), (5, 6, 7)]
        assert list(b.read(1)) == [(3, 4, 8)]
        b.delete()
        assert not any(p.exists() for p in b.paths)

    def test_seal_idempotent(self, tmp_path):
        b = BucketSet(1, tmp_path, IOStats(), tag="t")
        b.seal()
        b.seal()

    def test_context_manager_cleans_up(self, tmp_path):
        with BucketSet(2, tmp_path, IOStats(), tag="c") as b:
            b.append(0, (1, 2, 3))
        assert not any(p.exists() for p in b.paths)

    def test_empty_bucket_reads_empty(self, tmp_path):
        b = BucketSet(3, tmp_path, IOStats(), tag="e")
        b.seal()
        assert list(b.read(2)) == []
        b.delete()


class TestDistributeEdges:
    def test_each_edge_in_its_endpoint_buckets(self, tmp_path):
        block_of = {0: 0, 1: 0, 2: 1, 3: 1}
        records = [(0, 1, 5), (1, 2, 6), (2, 3, 7)]
        buckets = distribute_edges(records, block_of, 2, tmp_path, IOStats())
        assert list(buckets.read(0)) == [(0, 1, 5), (1, 2, 6)]
        assert list(buckets.read(1)) == [(1, 2, 6), (2, 3, 7)]
        buckets.delete()

    def test_unmapped_endpoints_skipped(self, tmp_path):
        block_of = {0: 0}
        records = [(0, 1, 1), (5, 6, 2)]
        buckets = distribute_edges(records, block_of, 1, tmp_path, IOStats())
        assert list(buckets.read(0)) == [(0, 1, 1)]
        buckets.delete()

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_bucket_is_neighborhood_subgraph(self, edges):
        """Bucket i must hold exactly the NS(block_i) edge set."""
        import tempfile
        from pathlib import Path

        g = Graph(edges)
        vs = g.sorted_vertices()
        block_of = {v: v % 3 for v in vs}
        with tempfile.TemporaryDirectory() as d:
            buckets = distribute_edges(
                ((u, v, 0) for u, v in g.edges()), block_of, 3, Path(d), IOStats()
            )
            for i in range(3):
                got = {(u, v) for u, v, _a in buckets.read(i)}
                want = {
                    (u, v)
                    for u, v in g.edges()
                    if block_of[u] == i or block_of[v] == i
                }
                assert got == want, i
            buckets.delete()

    def test_io_accounted(self, tmp_path):
        stats = IOStats(block_size=32)
        buckets = distribute_edges(
            [(i, i + 1, 0) for i in range(0, 40, 2)],
            {v: 0 for v in range(41)},
            1,
            tmp_path,
            stats,
        )
        assert stats.blocks_written > 0
        list(buckets.read(0))
        assert stats.blocks_read > 0
        buckets.delete()
