"""Tests for the static edge-id shard partitioner.

The invariants the owner-computes peel relies on: every canonical edge
id is owned by exactly one shard, shards are contiguous ranges, loads
are incidence-balanced within the greedy-prefix tolerance, routing a
sorted id array through the bounds loses and reorders nothing, and the
per-shard decrement buffers of a routed wave sum to exactly the serial
flat decrements.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.partition.edge_shards as shards_mod
from repro.exio import MemoryBudget
from repro.partition import (
    EdgeShardError,
    EdgeShardPartitioner,
    EdgeShardPlan,
    check_partition,
    edge_shard_source,
    partitioner_by_name,
    plan_edge_shards,
)

from helpers import random_graph

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


@st.composite
def weighted_splits(draw):
    """(m, shards, weights): a random incidence-weighted split request."""
    m = draw(st.integers(min_value=0, max_value=120))
    shards = draw(st.integers(min_value=1, max_value=9))
    weights = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.integers(min_value=0, max_value=25),
                min_size=m,
                max_size=m,
            ),
        )
    )
    return m, shards, weights


@pytest.fixture(params=["accelerated", "stdlib"])
def shard_mode(request, monkeypatch):
    """Run each test through both the numpy and the stdlib planner."""
    if request.param == "stdlib":
        monkeypatch.setattr(shards_mod, "_np", None)
    return request.param


class TestPlanInvariants:
    @settings(max_examples=60, deadline=None)
    @given(weighted_splits())
    def test_every_edge_owned_exactly_once(self, req):
        m, n_shards, weights = req
        plan = plan_edge_shards(m, n_shards, weights)
        assert plan.num_shards == n_shards
        assert plan.num_edges == m
        covered = []
        for _s, lo, hi in plan.iter_shards():
            assert 0 <= lo <= hi <= m  # contiguous, in-range, monotone
            covered.extend(range(lo, hi))
        assert covered == list(range(m))
        for eid in range(m):
            s = plan.owner_of(eid)
            lo, hi = plan.range_of(s)
            assert lo <= eid < hi

    @settings(max_examples=60, deadline=None)
    @given(weighted_splits())
    def test_loads_balanced_within_tolerance(self, req):
        m, n_shards, weights = req
        plan = plan_edge_shards(m, n_shards, weights)
        charged = (
            [1] * m if weights is None else [w + 1 for w in weights]
        )
        loads = plan.shard_loads(charged)
        assert sum(loads) == sum(charged)
        if m:
            ideal = sum(charged) / n_shards
            # greedy prefix cuts overshoot by at most one edge's charge
            assert max(loads) <= ideal + max(charged)

    @settings(max_examples=40, deadline=None)
    @given(weighted_splits(), st.data())
    def test_split_sorted_routes_losslessly(self, req, data):
        m, n_shards, weights = req
        plan = plan_edge_shards(m, n_shards, weights)
        ids = sorted(
            data.draw(
                st.sets(st.integers(min_value=0, max_value=max(m - 1, 0)))
            )
        ) if m else []
        pieces = plan.split_sorted(list(ids))
        assert len(pieces) == n_shards
        rejoined = [e for piece in pieces for e in piece]
        assert rejoined == list(ids)  # nothing lost, order preserved
        for s, piece in enumerate(pieces):
            lo, hi = plan.range_of(s)
            assert all(lo <= e < hi for e in piece)

    @pytest.mark.skipif(np is None, reason="needs numpy to compare against")
    def test_stdlib_matches_numpy_bounds(self, monkeypatch):
        # the plan is a pure function of (m, shards, weights): both
        # planner paths must cut at identical bounds, or a mixed
        # numpy/stdlib deployment would disagree about ownership
        cases = [
            (12, 4, [3, 0, 7, 1, 1, 9, 2, 2, 5, 0, 4, 6]),
            (9, 3, None),
            (7, 5, [0, 0, 0, 10, 0, 0, 0]),
        ]
        accelerated = [
            list(plan_edge_shards(m, s, w).bounds) for m, s, w in cases
        ]
        monkeypatch.setattr(shards_mod, "_np", None)
        fallback = [
            list(plan_edge_shards(m, s, w).bounds) for m, s, w in cases
        ]
        assert accelerated == fallback

    def test_degenerate_shapes(self, shard_mode):
        assert list(plan_edge_shards(0, 3).bounds) == [0, 0, 0, 0]
        assert list(plan_edge_shards(5, 1).bounds) == [0, 5]
        plan = plan_edge_shards(2, 6)  # more shards than edges: empties
        assert plan.num_shards == 6
        assert sum(hi - lo for _s, lo, hi in plan.iter_shards()) == 2

    def test_invalid_requests_raise(self):
        with pytest.raises(EdgeShardError):
            plan_edge_shards(4, 0)
        with pytest.raises(EdgeShardError):
            plan_edge_shards(-1, 2)
        with pytest.raises(EdgeShardError):
            plan_edge_shards(4, 2, weights=[1, 2])
        with pytest.raises(EdgeShardError):
            plan_edge_shards(4, 2).owner_of(4)
        with pytest.raises(EdgeShardError):
            EdgeShardPlan([0, 3, 2])


class TestBaseProtocol:
    """The partitioner face: edge shards as ordinary partition blocks."""

    def _tptr(self, incidences):
        out = [0]
        for w in incidences:
            out.append(out[-1] + w)
        return out

    def test_partition_contract(self):
        tptr = self._tptr([2, 0, 5, 1, 1, 3, 0, 4])
        source = edge_shard_source(tptr)
        blocks = EdgeShardPartitioner(shards=3).partition(
            source, MemoryBudget(units=64)
        )
        check_partition(blocks, source)  # exactly-once coverage
        flat = [e for b in blocks for e in b]
        assert flat == sorted(flat)  # contiguous ascending ranges

    def test_budget_derived_shard_count(self):
        tptr = self._tptr([1] * 40)
        source = edge_shard_source(tptr)
        blocks = EdgeShardPartitioner().partition(
            source, MemoryBudget(units=40)
        )
        check_partition(blocks, source)
        assert len(blocks) >= 2  # 80 units of work cannot fit one 20-cap shard

    def test_static_across_calls(self):
        # unlike the vertex partitioners there is no phase rotation:
        # ownership must never move between waves
        tptr = self._tptr([3, 1, 4, 1, 5, 9, 2, 6])
        p = EdgeShardPartitioner(shards=3)
        source = edge_shard_source(tptr)
        budget = MemoryBudget(units=32)
        first = p.partition(source, budget)
        assert all(
            p.partition(source, budget) == first for _ in range(3)
        )

    def test_registry_lookup(self):
        assert isinstance(
            partitioner_by_name("edge_shards"), EdgeShardPartitioner
        )

    def test_non_dense_source_rejected(self):
        from repro.partition import PartitionSource

        sparse = PartitionSource(
            degrees={0: 1, 2: 1}, iter_edges=lambda: iter(())
        )
        with pytest.raises(EdgeShardError):
            EdgeShardPartitioner(shards=2).partition(
                sparse, MemoryBudget(units=16)
            )


@pytest.mark.skipif(np is None, reason="the routed peel needs numpy")
class TestRoutedDecrementParity:
    """Routed per-shard decrement buffers == the serial flat decrements."""

    @pytest.mark.parametrize("seed", [5, 23, 61])
    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_one_wave_routed_equals_serial(self, seed, n_shards):
        from repro.core.flat import _as_csr
        from repro.kernels import get_kernel
        from repro.triangles.index_builder import build_triangle_index

        kern = get_kernel("numpy")

        g = random_graph(30, 0.25, seed=seed)
        csr = _as_csr(g)
        m = csr.num_edges
        tri = build_triangle_index(csr)
        e1, e2, e3, tptr, tinc = tri.e1, tri.e2, tri.e3, tri.tptr, tri.tinc
        sup = tri.initial_supports()
        if not len(e1):
            pytest.skip("seed produced a triangle-free graph")
        plan = plan_edge_shards(m, n_shards, weights=np.diff(tptr))
        bounds = np.asarray(plan.bounds, dtype=np.int64)

        # first wave of the k = floor+2 level, as the peel would run it
        floor = int(sup.min())
        frontier = np.flatnonzero(sup <= floor)
        alive = np.ones(m, dtype=bool)
        alive[frontier] = False
        tdead = np.zeros(len(e1), dtype=bool)
        hit = kern.gather_incident(tptr, tinc, frontier, tdead)
        tdead[hit] = True

        # serial: one global decrement buffer
        touched, dec = kern.count_decrements(e1, e2, e3, hit, alive)
        serial = np.zeros(m, dtype=np.int64)
        serial[touched] = dec

        # routed: each triangle to the owner shard(s) of its partners,
        # deduped per shard; per-shard buffers scatter into their own
        # disjoint ranges and must sum to the serial decrements
        partners = np.concatenate((e1[hit], e2[hit], e3[hit]))
        owner = np.searchsorted(bounds, partners, side="right") - 1
        stride = len(e1)
        key = np.unique(owner * stride + np.tile(hit, 3))
        owners, tris = key // stride, key % stride
        routed = np.zeros(m, dtype=np.int64)
        for s in range(n_shards):
            lo, hi = plan.range_of(s)
            part = np.concatenate(
                (e1[tris[owners == s]], e2[tris[owners == s]],
                 e3[tris[owners == s]])
            )
            part = part[(part >= lo) & (part < hi)]
            part = part[alive[part]]
            ids, counts = np.unique(part, return_counts=True)
            assert ((ids >= lo) & (ids < hi)).all()  # owner writes only its slice
            routed[ids] += counts
        assert (routed == serial).all()
