"""Tests for NS(P_i) extraction from partition blocks."""

from repro.exio import MemoryBudget
from repro.graph import Graph, complete_graph, neighborhood_subgraph
from repro.partition import (
    PartitionSource,
    SequentialPartitioner,
    extract_block,
    iter_block_subgraphs,
)

from helpers import random_graph
from oracles import brute_support


class TestExtractBlock:
    def test_matches_in_memory_ns(self):
        g = random_graph(20, 0.25, seed=11)
        src = PartitionSource.from_graph(g)
        block = [0, 1, 2, 3, 4]
        ns_stream = extract_block(src, block)
        ns_mem = neighborhood_subgraph(g, block)
        assert set(ns_stream.graph.edges()) == set(ns_mem.graph.edges())

    def test_internal_edges_have_exact_support(self):
        g = random_graph(18, 0.3, seed=2)
        src = PartitionSource.from_graph(g)
        ns = extract_block(src, range(9))
        for u, v in ns.internal_edges():
            assert brute_support(ns.graph, u, v) == brute_support(g, u, v)


class TestIterBlockSubgraphs:
    def test_every_edge_internal_somewhere(self):
        """Each edge must become internal in some block across one round
        of partition+extract — that is what lets Algorithm 3 eventually
        retire every edge."""
        g = random_graph(24, 0.2, seed=9)
        src = PartitionSource.from_graph(g)
        blocks = SequentialPartitioner().partition(src, MemoryBudget(units=1000))
        internal_union = set()
        for _block, ns in iter_block_subgraphs(src, blocks):
            internal_union.update(ns.internal_edges())
        # with a single giant block everything is internal; with several,
        # cross-block edges are external in this round
        flat = [v for b in blocks for v in b]
        if len(blocks) == 1:
            assert internal_union == set(g.edges())
        else:
            assert internal_union <= set(g.edges())

    def test_one_scan_per_block(self, tmp_path):
        from repro.exio import DiskEdgeFile, IOStats

        stats = IOStats()
        f = DiskEdgeFile.from_edges(
            tmp_path / "g.bin", complete_graph(10).edges(), stats
        )
        src = PartitionSource.from_edge_file(f)
        blocks = SequentialPartitioner().partition(src, MemoryBudget(units=20))
        before = stats.snapshot()
        list(iter_block_subgraphs(src, blocks))
        assert stats.delta_since(before).scans_started == len(blocks)
