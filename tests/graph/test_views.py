"""Unit tests for repro.graph.views (neighborhood subgraphs, Definition 4)."""

from hypothesis import given

from repro.graph import (
    Graph,
    complete_graph,
    neighborhood_subgraph,
    neighborhood_subgraph_from_edges,
    union_edge_subgraph,
)

from helpers import small_edge_lists
from oracles import brute_support


class TestNeighborhoodSubgraph:
    def test_contains_all_incident_edges(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (3, 4)])
        ns = neighborhood_subgraph(g, [1, 2])
        assert set(ns.graph.edges()) == {(0, 1), (1, 2), (2, 3)}

    def test_internal_vs_external_edges(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        ns = neighborhood_subgraph(g, [1, 2])
        assert set(ns.internal_edges()) == {(1, 2)}
        assert set(ns.external_edges()) == {(0, 1), (2, 3)}

    def test_internal_vertex_queries(self):
        g = Graph([(0, 1), (1, 2)])
        ns = neighborhood_subgraph(g, [1])
        assert ns.is_internal_vertex(1)
        assert not ns.is_internal_vertex(0)
        assert not ns.is_internal_edge(0, 1)

    def test_missing_internal_vertices_ignored(self):
        g = Graph([(0, 1)])
        ns = neighborhood_subgraph(g, [0, 77])
        assert ns.internal_vertices == frozenset({0})

    def test_size_matches_definition(self):
        g = complete_graph(4)
        ns = neighborhood_subgraph(g, [0])
        # NS({0}) has all 4 vertices but only 0's incident edges
        assert ns.graph.num_vertices == 4
        assert ns.graph.num_edges == 3
        assert ns.size == 7

    def test_from_edge_stream_matches_in_memory(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)])
        a = neighborhood_subgraph(g, [1, 3])
        b = neighborhood_subgraph_from_edges(g.edges(), [1, 3])
        assert set(a.graph.edges()) == set(b.graph.edges())
        assert a.internal_vertices == b.internal_vertices

    @given(small_edge_lists())
    def test_internal_edge_support_is_globally_exact(self, edges):
        """The load-bearing property: local support == global support for
        internal edges (this is what makes Algorithm 3 correct)."""
        g = Graph(edges)
        vs = sorted(g.vertices())
        if not vs:
            return
        internal = vs[: max(1, len(vs) // 2)]
        ns = neighborhood_subgraph(g, internal)
        for u, v in ns.internal_edges():
            assert brute_support(ns.graph, u, v) == brute_support(g, u, v)

    @given(small_edge_lists())
    def test_ns_of_all_vertices_is_g(self, edges):
        g = Graph(edges)
        ns = neighborhood_subgraph(g, g.vertices())
        assert set(ns.graph.edges()) == set(g.edges())
        assert set(ns.internal_edges()) == set(g.edges())


class TestUnionEdgeSubgraph:
    def test_union_of_classes(self):
        g = union_edge_subgraph([[(0, 1), (1, 2)], [(2, 3)], []])
        assert set(g.edges()) == {(0, 1), (1, 2), (2, 3)}

    def test_duplicates_collapse(self):
        g = union_edge_subgraph([[(0, 1)], [(1, 0)]])
        assert g.num_edges == 1
