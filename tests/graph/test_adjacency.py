"""Unit tests for repro.graph.adjacency.Graph."""

import pytest
from hypothesis import given

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph import Graph, complete_graph

from helpers import small_edge_lists


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.size == 0
        assert list(g.edges()) == []

    def test_from_edge_iterable(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_add_edge_normalizes_orientation(self):
        g = Graph()
        g.add_edge(5, 2)
        assert g.has_edge(2, 5)
        assert g.has_edge(5, 2)
        assert list(g.edges()) == [(2, 5)]

    def test_add_edge_returns_true_only_when_new(self):
        g = Graph()
        assert g.add_edge(1, 2) is True
        assert g.add_edge(2, 1) is False
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_add_vertex_is_idempotent(self):
        g = Graph()
        g.add_vertex(7)
        g.add_vertex(7)
        assert g.num_vertices == 1
        assert g.degree(7) == 0


class TestMutation:
    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        # endpoints survive as (possibly isolated) vertices
        assert g.has_vertex(1)

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_discard_edge(self):
        g = Graph([(1, 2)])
        assert g.discard_edge(1, 2) is True
        assert g.discard_edge(1, 2) is False

    def test_remove_vertex_removes_incident_edges(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        g.remove_vertex(1)
        assert g.num_edges == 1
        assert not g.has_vertex(1)
        assert g.has_edge(2, 3)

    def test_remove_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(9)

    def test_drop_isolated_vertices(self):
        g = Graph([(1, 2)])
        g.add_vertex(5)
        g.add_vertex(6)
        assert g.drop_isolated_vertices() == 2
        assert sorted(g.vertices()) == [1, 2]


class TestQueries:
    def test_neighbors_and_degree(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.neighbors(1) == {2, 3, 4}
        assert g.degree(1) == 3
        assert g.degree(2) == 1

    def test_neighbors_of_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.neighbors(0)

    def test_common_neighbors(self):
        g = complete_graph(4)
        assert g.common_neighbors(0, 1) == {2, 3}

    def test_common_neighbors_disjoint(self):
        g = Graph([(0, 1), (2, 3)])
        assert g.common_neighbors(0, 3) == set()

    def test_size_is_n_plus_m(self):
        g = complete_graph(5)
        assert g.size == 5 + 10

    def test_sorted_edges_deterministic(self):
        g = Graph([(3, 1), (2, 0), (1, 0)])
        assert g.sorted_edges() == [(0, 1), (0, 2), (1, 3)]

    def test_max_degree(self):
        assert Graph().max_degree() == 0
        assert complete_graph(6).max_degree() == 5

    def test_degree_sequence_sums_to_2m(self):
        g = complete_graph(5)
        assert sum(g.degree_sequence()) == 2 * g.num_edges

    def test_contains_and_iter(self):
        g = Graph([(1, 2)])
        assert 1 in g
        assert 9 not in g
        assert sorted(g) == [1, 2]


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph([(1, 2), (2, 3)])
        h = g.copy()
        h.remove_edge(1, 2)
        assert g.has_edge(1, 2)
        assert not h.has_edge(1, 2)

    def test_equality(self):
        assert Graph([(1, 2)]) == Graph([(2, 1)])
        assert Graph([(1, 2)]) != Graph([(1, 3)])

    def test_subgraph_induced(self):
        g = complete_graph(5)
        h = g.subgraph([0, 1, 2])
        assert h.num_vertices == 3
        assert h.num_edges == 3

    def test_subgraph_ignores_missing_vertices(self):
        g = Graph([(0, 1)])
        h = g.subgraph([0, 1, 99])
        assert h.num_vertices == 2

    def test_edge_subgraph(self):
        g = complete_graph(4)
        h = g.edge_subgraph([(0, 1), (1, 2)])
        assert h.num_edges == 2
        assert h.num_vertices == 3

    def test_edge_subgraph_rejects_foreign_edges(self):
        g = Graph([(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            g.edge_subgraph([(0, 2)])

    def test_repr_mentions_sizes(self):
        assert "n=3" in repr(complete_graph(3))


class TestProperties:
    @given(small_edge_lists())
    def test_edges_roundtrip(self, edges):
        g = Graph(edges)
        assert set(g.edges()) == set(edges)
        assert g.num_edges == len(edges)

    @given(small_edge_lists())
    def test_degree_handshake(self, edges):
        g = Graph(edges)
        assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges

    @given(small_edge_lists())
    def test_remove_all_edges_leaves_vertices(self, edges):
        g = Graph(edges)
        n = g.num_vertices
        for u, v in list(g.edges()):
            g.remove_edge(u, v)
        assert g.num_edges == 0
        assert g.num_vertices == n
