"""Stateful model-based testing of the Graph class.

Hypothesis drives random sequences of mutations against both the real
Graph and a trivially-correct model (a set of canonical edges plus a
vertex set); every invariant is checked after every step.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.graph import Graph

VERTS = st.integers(min_value=0, max_value=15)


class GraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.graph = Graph()
        self.model_edges = set()
        self.model_vertices = set()

    @rule(u=VERTS, v=VERTS)
    def add_edge(self, u, v):
        if u == v:
            return
        self.graph.add_edge(u, v)
        self.model_edges.add((min(u, v), max(u, v)))
        self.model_vertices |= {u, v}

    @rule(v=VERTS)
    def add_vertex(self, v):
        self.graph.add_vertex(v)
        self.model_vertices.add(v)

    @rule(u=VERTS, v=VERTS)
    def discard_edge(self, u, v):
        if u == v:
            return
        existed = self.graph.discard_edge(u, v)
        key = (min(u, v), max(u, v))
        assert existed == (key in self.model_edges)
        self.model_edges.discard(key)

    @rule(v=VERTS)
    def remove_vertex_if_present(self, v):
        if v in self.model_vertices:
            self.graph.remove_vertex(v)
            self.model_vertices.discard(v)
            self.model_edges = {
                e for e in self.model_edges if v not in e
            }

    @invariant()
    def edges_match_model(self):
        assert set(self.graph.edges()) == self.model_edges

    @invariant()
    def vertices_match_model(self):
        assert set(self.graph.vertices()) == self.model_vertices

    @invariant()
    def counts_consistent(self):
        assert self.graph.num_edges == len(self.model_edges)
        assert self.graph.num_vertices == len(self.model_vertices)
        assert self.graph.size == len(self.model_edges) + len(self.model_vertices)

    @invariant()
    def degrees_consistent(self):
        for v in self.model_vertices:
            expected = sum(1 for e in self.model_edges if v in e)
            assert self.graph.degree(v) == expected


TestGraphMachine = GraphMachine.TestCase
TestGraphMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
