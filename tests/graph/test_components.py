"""Tests for connected components."""

from hypothesis import given, settings

from repro.graph import (
    Graph,
    complete_graph,
    connected_components,
    cycle_graph,
    disjoint_union,
    largest_component,
    num_connected_components,
)

from helpers import small_edge_lists


class TestConnectedComponents:
    def test_empty(self):
        assert connected_components(Graph()) == []
        assert num_connected_components(Graph()) == 0

    def test_single_component(self):
        assert num_connected_components(complete_graph(5)) == 1

    def test_multiple_components_largest_first(self):
        g = disjoint_union([cycle_graph(3), complete_graph(5)])
        comps = connected_components(g)
        assert len(comps) == 2
        assert len(comps[0]) == 5

    def test_isolated_vertices_are_singletons(self):
        g = Graph([(0, 1)])
        g.add_vertex(7)
        g.add_vertex(8)
        comps = connected_components(g)
        assert {7} in comps and {8} in comps

    def test_largest_component(self):
        g = disjoint_union([complete_graph(4), complete_graph(3)])
        lc = largest_component(g)
        assert lc.num_vertices == 4
        assert lc.num_edges == 6

    def test_largest_component_empty(self):
        assert largest_component(Graph()).num_vertices == 0

    @settings(max_examples=40)
    @given(small_edge_lists())
    def test_partition_property(self, edges):
        g = Graph(edges)
        comps = connected_components(g)
        all_vertices = [v for c in comps for v in c]
        assert sorted(all_vertices) == g.sorted_vertices()
        # no edge crosses components
        index = {v: i for i, c in enumerate(comps) for v in c}
        for u, v in g.edges():
            assert index[u] == index[v]

    @settings(max_examples=25)
    @given(small_edge_lists())
    def test_matches_networkx(self, edges):
        import networkx as nx

        g = Graph(edges)
        ng = nx.Graph(list(g.edges()))
        ng.add_nodes_from(g.vertices())
        ours = {frozenset(c) for c in connected_components(g)}
        theirs = {frozenset(c) for c in nx.connected_components(ng)}
        assert ours == theirs
