"""Unit tests for repro.graph.csr.CSRGraph."""

import pytest
from hypothesis import given

from repro.errors import EdgeNotFoundError, VertexNotFoundError
from repro.graph import CSRGraph, Graph, complete_graph

from helpers import small_edge_lists


class TestCSRConstruction:
    def test_empty(self):
        c = CSRGraph.from_graph(Graph())
        assert c.num_vertices == 0
        assert c.num_edges == 0

    def test_counts_match(self):
        g = complete_graph(5)
        c = CSRGraph.from_graph(g)
        assert c.num_vertices == 5
        assert c.num_edges == 10

    def test_labels_ascend(self):
        g = Graph([(10, 3), (7, 3)])
        c = CSRGraph.from_graph(g)
        assert c.labels == [3, 7, 10]

    def test_compact_roundtrip(self):
        g = Graph([(10, 3), (7, 3)])
        c = CSRGraph.from_graph(g)
        for v in g.vertices():
            assert c.original_id(c.compact_id(v)) == v

    def test_compact_id_missing_raises(self):
        c = CSRGraph.from_graph(Graph([(0, 1)]))
        with pytest.raises(VertexNotFoundError):
            c.compact_id(42)


class TestCSRQueries:
    def test_neighbors_sorted(self):
        g = Graph([(0, 5), (0, 2), (0, 9)])
        c = CSRGraph.from_graph(g)
        i = c.compact_id(0)
        nbrs = [c.original_id(j) for j in c.neighbors(i)]
        assert nbrs == [2, 5, 9]

    def test_degrees_match_graph(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (2, 3)])
        c = CSRGraph.from_graph(g)
        for v in g.vertices():
            assert c.degree(c.compact_id(v)) == g.degree(v)

    def test_edges_original_roundtrip(self):
        g = Graph([(4, 1), (2, 8), (1, 2)])
        c = CSRGraph.from_graph(g)
        assert set(c.edges_original()) == set(g.edges())

    def test_edges_compact_each_once(self):
        g = complete_graph(4)
        c = CSRGraph.from_graph(g)
        compact = list(c.edges_compact())
        assert len(compact) == 6
        assert len(set(compact)) == 6
        assert all(i < j for i, j in compact)

    def test_degree_order_ascending(self):
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2)])  # deg: 0->3,1->2,2->2,3->1
        c = CSRGraph.from_graph(g)
        order = c.degree_order()
        degs = [c.degree(i) for i in order]
        assert degs == sorted(degs)

    @given(small_edge_lists())
    def test_structure_preserved(self, edges):
        g = Graph(edges)
        c = CSRGraph.from_graph(g)
        assert set(c.edges_original()) == set(g.edges())
        assert c.num_vertices == g.num_vertices
        assert c.num_edges == g.num_edges

    def test_isolated_vertices_kept(self):
        g = Graph([(0, 1)])
        g.add_vertex(5)
        c = CSRGraph.from_graph(g)
        assert c.num_vertices == 3
        assert c.degree(c.compact_id(5)) == 0


class TestEdgeIds:
    def test_ids_dense_and_canonical(self):
        c = CSRGraph.from_graph(complete_graph(4))
        ids = [c.edge_id(i, j) for i, j in c.edges_compact()]
        # dense 0..m-1, assigned in edges_compact() order
        assert ids == list(range(c.num_edges))

    def test_both_directions_share_one_id(self):
        c = CSRGraph.from_graph(Graph([(0, 1), (1, 2), (0, 2)]))
        for i, j in c.edges_compact():
            assert c.edge_id(i, j) == c.edge_id(j, i)

    def test_eids_parallel_to_indices(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (2, 3)])
        c = CSRGraph.from_graph(g)
        for i in range(c.num_vertices):
            for t in range(c.indptr[i], c.indptr[i + 1]):
                assert c.eids[t] == c.edge_id(i, c.indices[t])

    def test_missing_edge_raises(self):
        c = CSRGraph.from_graph(Graph([(0, 1), (1, 2)]))
        with pytest.raises(EdgeNotFoundError):
            c.edge_id(c.compact_id(0), c.compact_id(2))

    def test_endpoints_roundtrip(self):
        g = Graph([(4, 1), (2, 8), (1, 2)])
        c = CSRGraph.from_graph(g)
        eu, ev = c.edge_endpoints()
        assert len(eu) == len(ev) == c.num_edges
        for e in range(c.num_edges):
            assert eu[e] < ev[e]
            assert c.edge_id(eu[e], ev[e]) == e

    @given(small_edge_lists())
    def test_id_bijection(self, edges):
        g = Graph(edges)
        c = CSRGraph.from_graph(g)
        eu, ev = c.edge_endpoints()
        seen = {c.edge_id(i, j) for i, j in c.edges_compact()}
        assert seen == set(range(c.num_edges))
        labels = c.labels
        originals = {
            tuple(sorted((labels[eu[e]], labels[ev[e]])))
            for e in range(c.num_edges)
        }
        assert originals == set(g.edges())

    def test_python_and_numpy_builds_agree(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (2, 3), (1, 3), (0, 9)])
        c = CSRGraph.from_graph(g)
        assert list(c._build_eids_python()) == list(c.eids)
