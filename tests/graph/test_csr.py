"""Unit tests for repro.graph.csr.CSRGraph."""

import pytest
from hypothesis import given

from repro.errors import VertexNotFoundError
from repro.graph import CSRGraph, Graph, complete_graph

from conftest import small_edge_lists


class TestCSRConstruction:
    def test_empty(self):
        c = CSRGraph.from_graph(Graph())
        assert c.num_vertices == 0
        assert c.num_edges == 0

    def test_counts_match(self):
        g = complete_graph(5)
        c = CSRGraph.from_graph(g)
        assert c.num_vertices == 5
        assert c.num_edges == 10

    def test_labels_ascend(self):
        g = Graph([(10, 3), (7, 3)])
        c = CSRGraph.from_graph(g)
        assert c.labels == [3, 7, 10]

    def test_compact_roundtrip(self):
        g = Graph([(10, 3), (7, 3)])
        c = CSRGraph.from_graph(g)
        for v in g.vertices():
            assert c.original_id(c.compact_id(v)) == v

    def test_compact_id_missing_raises(self):
        c = CSRGraph.from_graph(Graph([(0, 1)]))
        with pytest.raises(VertexNotFoundError):
            c.compact_id(42)


class TestCSRQueries:
    def test_neighbors_sorted(self):
        g = Graph([(0, 5), (0, 2), (0, 9)])
        c = CSRGraph.from_graph(g)
        i = c.compact_id(0)
        nbrs = [c.original_id(j) for j in c.neighbors(i)]
        assert nbrs == [2, 5, 9]

    def test_degrees_match_graph(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (2, 3)])
        c = CSRGraph.from_graph(g)
        for v in g.vertices():
            assert c.degree(c.compact_id(v)) == g.degree(v)

    def test_edges_original_roundtrip(self):
        g = Graph([(4, 1), (2, 8), (1, 2)])
        c = CSRGraph.from_graph(g)
        assert set(c.edges_original()) == set(g.edges())

    def test_edges_compact_each_once(self):
        g = complete_graph(4)
        c = CSRGraph.from_graph(g)
        compact = list(c.edges_compact())
        assert len(compact) == 6
        assert len(set(compact)) == 6
        assert all(i < j for i, j in compact)

    def test_degree_order_ascending(self):
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2)])  # deg: 0->3,1->2,2->2,3->1
        c = CSRGraph.from_graph(g)
        order = c.degree_order()
        degs = [c.degree(i) for i in order]
        assert degs == sorted(degs)

    @given(small_edge_lists())
    def test_structure_preserved(self, edges):
        g = Graph(edges)
        c = CSRGraph.from_graph(g)
        assert set(c.edges_original()) == set(g.edges())
        assert c.num_vertices == g.num_vertices
        assert c.num_edges == g.num_edges
