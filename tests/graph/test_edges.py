"""Unit tests for repro.graph.edges."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EdgeNotFoundError, GraphError
from repro.graph import EdgeTable, dedup_edges, norm_edge, norm_edges


class TestNormEdge:
    def test_orders_endpoints(self):
        assert norm_edge(5, 2) == (2, 5)
        assert norm_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            norm_edge(4, 4)

    def test_negative_ids_allowed(self):
        assert norm_edge(3, -1) == (-1, 3)

    @given(st.integers(), st.integers())
    def test_canonical_and_symmetric(self, u, v):
        if u == v:
            with pytest.raises(GraphError):
                norm_edge(u, v)
        else:
            assert norm_edge(u, v) == norm_edge(v, u)
            lo, hi = norm_edge(u, v)
            assert lo < hi


class TestDedup:
    def test_removes_duplicates_and_sorts(self):
        assert dedup_edges([(2, 1), (1, 2), (0, 3)]) == [(0, 3), (1, 2)]

    def test_norm_edges_streams(self):
        assert list(norm_edges([(9, 1), (2, 4)])) == [(1, 9), (2, 4)]

    def test_empty(self):
        assert dedup_edges([]) == []


class TestEdgeTable:
    def test_dense_ids_in_insert_order(self):
        t = EdgeTable()
        assert t.add(3, 1) == 0
        assert t.add(2, 5) == 1
        assert t.add(1, 3) == 0  # duplicate (normalized)
        assert len(t) == 2

    def test_id_of_and_edge_of_roundtrip(self):
        t = EdgeTable([(1, 2), (3, 4)])
        for eid in range(len(t)):
            u, v = t.edge_of(eid)
            assert t.id_of(u, v) == eid
            assert t.id_of(v, u) == eid

    def test_id_of_missing_raises(self):
        t = EdgeTable()
        with pytest.raises(EdgeNotFoundError):
            t.id_of(1, 2)

    def test_get_with_default(self):
        t = EdgeTable([(1, 2)])
        assert t.get(1, 2) == 0
        assert t.get(7, 8) == -1
        assert t.get(7, 8, default=99) == 99

    def test_contains_checks_normalized(self):
        t = EdgeTable([(1, 2)])
        assert (2, 1) in t
        assert (1, 3) not in t

    def test_iteration_yields_canonical_edges(self):
        t = EdgeTable([(5, 2), (1, 9)])
        assert list(t) == [(2, 5), (1, 9)]
        assert t.edges == ((2, 5), (1, 9))

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30))))
    def test_ids_are_dense_and_stable(self, pairs):
        pairs = [(u, v) for u, v in pairs if u != v]
        t = EdgeTable()
        first_ids = [t.add(u, v) for u, v in pairs]
        second_ids = [t.add(u, v) for u, v in pairs]
        assert first_ids == second_ids
        assert sorted(set(first_ids)) == list(range(len(t)))
