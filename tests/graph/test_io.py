"""Unit tests for repro.graph.io serialization round-trips."""

import pytest
from hypothesis import given, settings

from repro.errors import FormatError
from repro.graph import (
    Graph,
    complete_graph,
    read_adjacency_list,
    read_binary_edges,
    read_edge_list,
    write_adjacency_list,
    write_binary_edges,
    write_edge_list,
)

from helpers import small_edge_lists


class TestEdgeListText:
    def test_roundtrip(self, tmp_path):
        g = complete_graph(4)
        p = tmp_path / "g.txt"
        write_edge_list(g, p)
        h = read_edge_list(p)
        assert set(h.edges()) == set(g.edges())

    def test_header_and_comments_skipped(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# comment\n\n1 2\n# another\n2 3\n")
        g = read_edge_list(p)
        assert g.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1\n")
        with pytest.raises(FormatError):
            read_edge_list(p)

    def test_non_integer_raises(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("a b\n")
        with pytest.raises(FormatError):
            read_edge_list(p)

    def test_duplicate_edges_cleaned(self, tmp_path):
        p = tmp_path / "dup.txt"
        p.write_text("1 2\n2 1\n1 1\n")
        g = read_edge_list(p)
        assert g.num_edges == 1


class TestAdjacencyListText:
    def test_roundtrip(self, tmp_path):
        g = Graph([(0, 1), (1, 2)])
        g.add_vertex(9)  # isolated vertices must survive
        p = tmp_path / "g.adj"
        write_adjacency_list(g, p)
        h = read_adjacency_list(p)
        assert set(h.edges()) == set(g.edges())
        assert h.has_vertex(9)

    def test_missing_colon_raises(self, tmp_path):
        p = tmp_path / "bad.adj"
        p.write_text("1 2 3\n")
        with pytest.raises(FormatError):
            read_adjacency_list(p)

    def test_non_integer_raises(self, tmp_path):
        p = tmp_path / "bad.adj"
        p.write_text("1: x\n")
        with pytest.raises(FormatError):
            read_adjacency_list(p)


class TestBinaryEdges:
    def test_roundtrip(self, tmp_path):
        g = complete_graph(5)
        p = tmp_path / "g.bin"
        n = write_binary_edges(g.sorted_edges(), p)
        assert n == 10
        h = read_binary_edges(p)
        assert set(h.edges()) == set(g.edges())

    def test_truncated_file_raises(self, tmp_path):
        p = tmp_path / "bad.bin"
        p.write_bytes(b"\x01\x02\x03")
        with pytest.raises(FormatError):
            read_binary_edges(p)

    def test_negative_and_large_ids(self, tmp_path):
        p = tmp_path / "g.bin"
        edges = [(-5, 3), (2**40, 2**41)]
        write_binary_edges(edges, p)
        h = read_binary_edges(p)
        assert set(h.edges()) == {(-5, 3), (2**40, 2**41)}


class TestPropertyRoundtrips:
    @settings(max_examples=25)
    @given(small_edge_lists())
    def test_all_formats_agree(self, tmp_path_factory_edges):
        edges = tmp_path_factory_edges
        import tempfile
        from pathlib import Path

        g = Graph(edges)
        with tempfile.TemporaryDirectory() as d:
            d = Path(d)
            write_edge_list(g, d / "a.txt")
            write_adjacency_list(g, d / "a.adj")
            write_binary_edges(g.sorted_edges(), d / "a.bin")
            assert set(read_edge_list(d / "a.txt").edges()) == set(g.edges())
            assert set(read_adjacency_list(d / "a.adj").edges()) == set(g.edges())
            assert set(read_binary_edges(d / "a.bin").edges()) == set(g.edges())
