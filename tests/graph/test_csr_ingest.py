"""Tests for the dict-free streaming CSR ingest.

``CSRGraph.from_edges`` / ``from_edge_list_file`` must build exactly
the snapshot that ``from_edges_cleaned`` -> ``CSRGraph.from_graph``
builds — same ``indptr``/``indices``/``labels`` *and* the same
canonical edge ids — while never materializing a ``Graph``: dup edges
(either orientation), self-loops, comments, blank lines and
non-contiguous vertex ids all normalize identically, through both the
numpy and the stdlib paths.
"""

import pytest
from hypothesis import given, settings

import repro.graph.csr as csr_mod
from repro.core import truss_decomposition_flat, truss_decomposition_improved
from repro.errors import FormatError
from repro.graph import (
    CSRGraph,
    Graph,
    from_edges_cleaned,
    read_edge_list,
    write_edge_list,
)

from helpers import fuzzed_edge_list, small_edge_lists

MESSY_PAIRS = [
    (1000, 7),
    (7, 52),
    (52, 1000),
    (3, 1000),
    (1000, 3),  # duplicate, reversed orientation
    (7, 1000),  # duplicate, reversed orientation
    (5, 5),  # self-loop (vertex 5 must vanish entirely)
    (52, 7),  # duplicate, reversed orientation
]

MESSY_FILE = """\
# SNAP-style header comment
# n=4 m=5
1000 7
7 52

52 1000
  # an indented mid-file comment
3 1000
1000 3
5 5
52 7
"""


def _reference(pairs) -> CSRGraph:
    g, _report = from_edges_cleaned(pairs)
    return CSRGraph.from_graph(g)


def _assert_same_snapshot(csr: CSRGraph, ref: CSRGraph) -> None:
    assert csr.labels == ref.labels
    assert list(csr.indptr) == list(ref.indptr)
    assert list(csr.indices) == list(ref.indices)
    assert list(csr.eids) == list(ref.eids)


@pytest.fixture(params=["accelerated", "stdlib"])
def ingest_mode(request, monkeypatch):
    """Run each test through both the numpy and the stdlib ingest."""
    if request.param == "stdlib":
        monkeypatch.setattr(csr_mod, "_np", None)
    return request.param


class TestFromEdges:
    def test_messy_pairs_roundtrip(self, ingest_mode):
        csr = CSRGraph.from_edges(MESSY_PAIRS)
        _assert_same_snapshot(csr, _reference(MESSY_PAIRS))
        assert csr.labels == [3, 7, 52, 1000]  # non-contiguous, 5 gone
        assert csr.num_edges == 4

    def test_empty(self, ingest_mode):
        csr = CSRGraph.from_edges([])
        assert csr.num_vertices == 0
        assert csr.num_edges == 0

    def test_only_self_loops(self, ingest_mode):
        csr = CSRGraph.from_edges([(1, 1), (2, 2)])
        assert csr.num_vertices == 0
        assert csr.num_edges == 0

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_matches_from_graph_property(self, edges):
        _assert_same_snapshot(CSRGraph.from_edges(edges), _reference(edges))

    def test_eids_prebuilt_no_lazy_pass(self, ingest_mode):
        csr = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert csr._eids is not None  # ingest assigns ids as a by-product
        assert sorted(csr.eids) == [0, 0, 1, 1, 2, 2]


class TestFromEdgeListFile:
    def test_messy_file_roundtrip(self, ingest_mode, tmp_path):
        path = tmp_path / "messy.txt"
        path.write_text(MESSY_FILE)
        csr = CSRGraph.from_edge_list_file(path)
        _assert_same_snapshot(csr, CSRGraph.from_graph(read_edge_list(path)))
        assert csr.labels == [3, 7, 52, 1000]

    def test_tiny_chunks_hit_carry_logic(self, tmp_path):
        path = tmp_path / "messy.txt"
        path.write_text(MESSY_FILE)
        ref = CSRGraph.from_edge_list_file(path)
        for chunk_bytes in (1, 7, 16):
            csr = CSRGraph.from_edge_list_file(path, chunk_bytes=chunk_bytes)
            _assert_same_snapshot(csr, ref)

    def test_no_trailing_newline(self, ingest_mode, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\n2 3")
        csr = CSRGraph.from_edge_list_file(path)
        assert sorted(csr.edges_original()) == [(1, 2), (2, 3)]

    def test_extra_columns_use_first_two(self, ingest_mode, tmp_path):
        path = tmp_path / "weighted.txt"
        path.write_text("1 2 0.5\n2 3 1.25\n")
        csr = CSRGraph.from_edge_list_file(path)
        assert sorted(csr.edges_original()) == [(1, 2), (2, 3)]

    def test_comment_only_file(self, ingest_mode, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n\n")
        csr = CSRGraph.from_edge_list_file(path)
        assert csr.num_vertices == 0
        assert csr.num_edges == 0

    def test_short_line_raises(self, ingest_mode, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n3\n")
        with pytest.raises(FormatError):
            CSRGraph.from_edge_list_file(path)

    def test_non_integer_raises(self, ingest_mode, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\nfoo bar\n")
        with pytest.raises(FormatError):
            CSRGraph.from_edge_list_file(path)

    def test_ragged_columns_never_repaired(self, ingest_mode, tmp_path):
        # token total divisible by the first line's width must NOT let
        # the bulk path re-pair rows: '3 4 5 6' is one edge (3, 4), and
        # a phantom (5, 6) would silently change the decomposed graph
        path = tmp_path / "ragged.txt"
        path.write_text("1 2\n3 4 5 6\n")
        csr = CSRGraph.from_edge_list_file(path)
        assert sorted(csr.edges_original()) == [(1, 2), (3, 4)]

    def test_mixed_width_valid_rows(self, ingest_mode, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text("1 2 3\n4 5\n6 7 8 9\n")  # first two columns each
        csr = CSRGraph.from_edge_list_file(path)
        assert sorted(csr.edges_original()) == [(1, 2), (4, 5), (6, 7)]

    def test_error_lineno_is_file_absolute(self, ingest_mode, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# header\n1 2\n2 3\nbroken\n")
        with pytest.raises(FormatError, match=r"bad\.txt:4"):
            CSRGraph.from_edge_list_file(path)

    def test_error_lineno_across_chunks(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n2 3\n3 4\n4 5\nbroken\n")
        with pytest.raises(FormatError, match=r"bad\.txt:5"):
            CSRGraph.from_edge_list_file(path, chunk_bytes=8)

    def test_matches_write_edge_list_roundtrip(self, ingest_mode, tmp_path):
        g = Graph([(0, 1), (1, 2), (0, 2), (2, 3), (9, 2)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)  # canonical sorted output + header
        _assert_same_snapshot(
            CSRGraph.from_edge_list_file(path), CSRGraph.from_graph(g)
        )


class TestIngestFuzz:
    """Seeded messy-file fuzzing of the chunked ingest's two contracts.

    For every fuzzed file (comments, blanks, duplicate/reversed/
    self-loop edges, ragged-but-valid rows, malformed rows — see
    :func:`helpers.fuzzed_edge_list`) the streaming ingest must either
    build the exact snapshot of the ``read_edge_list`` route or raise
    :class:`FormatError` naming the file-absolute line of the *first*
    malformed row; bulk chunk parsing may never mask, shift or reorder
    an error, at any chunk size.
    """

    def _check(self, tmp_path, seed, chunk_bytes=None):
        text, error_line = fuzzed_edge_list(seed)
        path = tmp_path / "fuzz.txt"
        path.write_text(text)
        kwargs = {} if chunk_bytes is None else {"chunk_bytes": chunk_bytes}
        if error_line is None:
            csr = CSRGraph.from_edge_list_file(path, **kwargs)
            _assert_same_snapshot(
                csr, CSRGraph.from_graph(read_edge_list(path))
            )
        else:
            with pytest.raises(FormatError, match=rf"fuzz\.txt:{error_line}:"):
                CSRGraph.from_edge_list_file(path, **kwargs)

    @pytest.mark.parametrize("seed", range(40))
    def test_roundtrip_or_absolute_lineno(self, ingest_mode, seed, tmp_path):
        self._check(tmp_path, seed)

    @pytest.mark.parametrize("seed", range(0, 40, 3))
    @pytest.mark.parametrize("chunk_bytes", [7, 23])
    def test_tiny_chunks_preserve_semantics(self, seed, chunk_bytes, tmp_path):
        # error lines near chunk boundaries (and inside the final
        # carry) must still report their file-absolute line number
        self._check(tmp_path, seed, chunk_bytes=chunk_bytes)


class TestEndToEnd:
    def test_file_to_trussness_matches_graph_route(self, tmp_path):
        from helpers import random_graph

        g = random_graph(40, 0.2, seed=33)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        td = truss_decomposition_flat(CSRGraph.from_edge_list_file(path))
        assert td == truss_decomposition_improved(read_edge_list(path))
