"""Unit tests for repro.graph.builders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    from_edges,
    from_edges_cleaned,
    path_graph,
    relabel_compact,
    star_graph,
)


class TestBasicBuilders:
    def test_from_edges(self):
        g = from_edges([(1, 2), (2, 3)])
        assert g.num_edges == 2

    def test_complete_graph_counts(self):
        g = complete_graph(6)
        assert g.num_vertices == 6
        assert g.num_edges == 15

    def test_complete_graph_offset(self):
        g = complete_graph(3, offset=10)
        assert sorted(g.vertices()) == [10, 11, 12]

    def test_complete_graph_trivial_sizes(self):
        assert complete_graph(0).num_vertices == 0
        assert complete_graph(1).num_edges == 0
        with pytest.raises(GraphError):
            complete_graph(-1)

    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.vertices())
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path_graph(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert path_graph(1).num_vertices == 1
        with pytest.raises(GraphError):
            path_graph(0)

    def test_star_graph(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert g.num_edges == 5
        with pytest.raises(GraphError):
            star_graph(-2)


class TestCleaning:
    def test_drops_self_loops_and_duplicates(self):
        g, report = from_edges_cleaned([(1, 1), (1, 2), (2, 1), (2, 3)])
        assert g.num_edges == 2
        assert report.num_self_loops == 1
        assert report.num_duplicates == 1
        assert report.num_input_pairs == 4
        assert report.num_edges == 2

    def test_clean_input_reports_zero(self):
        _g, report = from_edges_cleaned([(0, 1), (1, 2)])
        assert report.num_self_loops == 0
        assert report.num_duplicates == 0


class TestDisjointUnionAndRelabel:
    def test_disjoint_union_no_collisions(self):
        g = disjoint_union([complete_graph(3), complete_graph(4)])
        assert g.num_vertices == 7
        assert g.num_edges == 3 + 6

    def test_disjoint_union_skips_empty(self):
        g = disjoint_union([Graph(), complete_graph(3)])
        assert g.num_vertices == 3

    def test_relabel_compact(self):
        g = Graph([(100, 50), (50, 7)])
        h, labels = relabel_compact(g)
        assert sorted(h.vertices()) == [0, 1, 2]
        assert labels == [7, 50, 100]
        assert h.has_edge(0, 1)  # 7-50
        assert h.has_edge(1, 2)  # 50-100

    @given(st.lists(st.integers(2, 6), min_size=1, max_size=4))
    def test_union_preserves_component_sizes(self, sizes):
        g = disjoint_union([complete_graph(s) for s in sizes])
        assert g.num_vertices == sum(sizes)
        assert g.num_edges == sum(s * (s - 1) // 2 for s in sizes)
