"""Unit + property tests for repro.cores.metrics."""

import math

from hypothesis import given, settings

from repro.cores import (
    GraphStatistics,
    average_clustering,
    density,
    global_clustering,
    local_clustering,
    median_degree,
)
from repro.graph import Graph, complete_graph, cycle_graph, star_graph

from helpers import small_edge_lists
from oracles import brute_average_clustering, brute_local_clustering


class TestLocalClustering:
    def test_clique_vertex(self):
        assert local_clustering(complete_graph(4), 0) == 1.0

    def test_low_degree_zero(self):
        g = Graph([(0, 1)])
        assert local_clustering(g, 0) == 0.0

    def test_half_connected(self):
        # 0 adjacent to 1,2,3; only (1,2) among them
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2)])
        assert math.isclose(local_clustering(g, 0), 1 / 3)

    @settings(max_examples=40)
    @given(small_edge_lists())
    def test_matches_bruteforce(self, edges):
        g = Graph(edges)
        for v in g.vertices():
            assert math.isclose(local_clustering(g, v), brute_local_clustering(g, v))


class TestAverageClustering:
    def test_clique_is_one(self):
        assert math.isclose(average_clustering(complete_graph(5)), 1.0)

    def test_triangle_free_is_zero(self):
        assert average_clustering(cycle_graph(8)) == 0.0
        assert average_clustering(star_graph(5)) == 0.0

    def test_empty(self):
        assert average_clustering(Graph()) == 0.0

    @settings(max_examples=40)
    @given(small_edge_lists())
    def test_matches_bruteforce(self, edges):
        g = Graph(edges)
        assert math.isclose(
            average_clustering(g), brute_average_clustering(g), abs_tol=1e-12
        )

    @settings(max_examples=25)
    @given(small_edge_lists())
    def test_matches_networkx(self, edges):
        import networkx as nx

        g = Graph(edges)
        if g.num_vertices == 0:
            return
        ng = nx.Graph(list(g.edges()))
        ng.add_nodes_from(g.vertices())
        assert math.isclose(
            average_clustering(g), nx.average_clustering(ng), abs_tol=1e-12
        )


class TestOtherMetrics:
    def test_global_clustering_clique(self):
        assert math.isclose(global_clustering(complete_graph(6)), 1.0)

    def test_global_clustering_no_wedges(self):
        assert global_clustering(Graph([(0, 1)])) == 0.0

    def test_density(self):
        assert math.isclose(density(complete_graph(5)), 1.0)
        assert density(Graph()) == 0.0
        assert math.isclose(density(Graph([(0, 1), (2, 3)])), 2 * 2 / (4 * 3))

    def test_median_degree(self):
        g = star_graph(4)  # degrees 4,1,1,1,1
        assert median_degree(g) == 1.0
        assert median_degree(Graph()) == 0.0

    def test_graph_statistics(self):
        g = complete_graph(4)
        s = GraphStatistics.of(g)
        assert s.num_vertices == 4
        assert s.num_edges == 6
        assert s.max_degree == 3
        assert s.median_degree == 3.0
        assert s.size_bytes == (2 * 4 + 2 * 6) * 8
