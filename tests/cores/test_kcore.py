"""Unit + property tests for repro.cores.kcore."""

from hypothesis import given, settings

from repro.cores import core_numbers, degeneracy, k_core, max_core
from repro.graph import Graph, complete_graph, cycle_graph, disjoint_union, star_graph

from helpers import small_edge_lists
from oracles import brute_core_numbers


class TestCoreNumbers:
    def test_empty(self):
        assert core_numbers(Graph()) == {}

    def test_clique(self):
        core = core_numbers(complete_graph(5))
        assert all(c == 4 for c in core.values())

    def test_cycle_is_2core(self):
        core = core_numbers(cycle_graph(7))
        assert all(c == 2 for c in core.values())

    def test_star_is_1core(self):
        core = core_numbers(star_graph(5))
        assert all(c == 1 for c in core.values())

    def test_isolated_vertex_core_zero(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        assert core_numbers(g)[9] == 0

    def test_clique_with_tail(self):
        g = complete_graph(4)
        g.add_edge(0, 10)
        g.add_edge(10, 11)
        core = core_numbers(g)
        assert core[0] == 3
        assert core[10] == 1
        assert core[11] == 1

    @settings(max_examples=60)
    @given(small_edge_lists())
    def test_matches_bruteforce(self, edges):
        g = Graph(edges)
        assert core_numbers(g) == brute_core_numbers(g)

    @settings(max_examples=30)
    @given(small_edge_lists())
    def test_matches_networkx(self, edges):
        import networkx as nx

        g = Graph(edges)
        ng = nx.Graph(list(g.edges()))
        ng.add_nodes_from(g.vertices())
        assert core_numbers(g) == nx.core_number(ng)


class TestKCoreSubgraph:
    def test_k_core_extraction(self):
        g = disjoint_union([complete_graph(5), complete_graph(3)])
        h = k_core(g, 3)
        assert h.num_vertices == 5
        assert h.num_edges == 10

    def test_k_core_empty_when_k_too_large(self):
        assert k_core(complete_graph(4), 4).num_edges == 0

    def test_max_core(self):
        g = disjoint_union([complete_graph(5), cycle_graph(10)])
        cmax, c = max_core(g)
        assert cmax == 4
        assert c.num_vertices == 5

    def test_max_core_empty_graph(self):
        cmax, c = max_core(Graph())
        assert cmax == 0
        assert c.num_vertices == 0

    def test_degeneracy(self):
        assert degeneracy(complete_graph(6)) == 5
        assert degeneracy(Graph()) == 0

    @settings(max_examples=40)
    @given(small_edge_lists())
    def test_k_core_min_degree_invariant(self, edges):
        g = Graph(edges)
        cmax, _ = max_core(g)
        for k in range(1, cmax + 1):
            h = k_core(g, k)
            assert all(h.degree(v) >= k for v in h.vertices())
