"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.core.decomposition
import repro.graph.adjacency

MODULES = [
    repro.graph.adjacency,
    repro.core.decomposition,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
