"""Smoke tests: every shipped example runs end-to-end (small scales)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "kmax = 4" in out
        assert "Phi_5 (10 edges)" in out
        assert "(paper: 0.80)" in out

    def test_community_cores(self):
        out = run_example(
            "community_cores.py", "--n", "400", "--m", "1200",
            "--clique", "10", "--biclique", "12",
        )
        assert "kmax-truss" in out
        assert "100.0%" in out

    def test_external_memory_demo(self):
        out = run_example("external_memory_demo.py", "--dataset", "p2p", "--scale", "0.05")
        assert "M = |G|/8" in out
        assert "identical decomposition" in out

    def test_top_down_backbone(self):
        out = run_example("top_down_backbone.py", "--dataset", "web", "--scale", "0.04", "--t", "3")
        assert "TD-topdown" in out
        assert "innermost community" in out

    def test_mapreduce_demo(self):
        out = run_example("mapreduce_demo.py", "--dataset", "p2p", "--scale", "0.05")
        assert "TD-MR" in out
        assert "MR rounds" in out

    def test_clique_search(self):
        out = run_example(
            "clique_search.py", "--n", "400", "--m", "1200", "--clique", "8"
        )
        assert "truss filter" in out.replace("8-truss", "truss")
        assert "maximum clique (8 vertices)" in out

    def test_fingerprint_networks(self):
        out = run_example("fingerprint_networks.py", "--scale", "0.04")
        assert "=== p2p" in out
        assert "fingerprint" in out
