"""Cross-method integration tests: every implementation, one truth.

DESIGN.md §5 pins the contract: every method produces the identical
trussness map, on every graph family, under every memory budget and
partitioner.  These tests sweep that matrix on mid-sized inputs, and —
since the parallel engine grew worker counts and shard modes — promote
the "identical trussness map" claim from a handful of fixed examples
to a hypothesis property over randomized ER/powerlaw/star-heavy
graphs, pinned to the brute-force oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import truss_decomposition
from repro.cores import core_numbers
from repro.datasets import (
    collaboration_graph,
    community_graph,
    erdos_renyi,
    load_dataset,
    manager_graph,
    powerlaw_graph,
    running_example_graph,
    star_heavy_graph,
)
from repro.exio import MemoryBudget
from repro.graph import Graph

from helpers import DIST_SWEEP, peel_graphs, random_graph, small_edge_lists
from oracles import brute_trussness

FAMILIES = {
    "er": lambda: erdos_renyi(60, 180, seed=71),
    "powerlaw": lambda: powerlaw_graph(80, 200, seed=72),
    "collab": lambda: collaboration_graph(60, 50, seed=73, max_team=10),
    "community": lambda: community_graph(70, 40, seed=74),
    "stars": lambda: star_heavy_graph(80, 150, n_hubs=4, seed=75),
    "manager": manager_graph,
    "running": running_example_graph,
}


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=str)
class TestAllMethodsAgree:
    def test_six_way_agreement(self, family):
        g = FAMILIES[family]()
        ref = truss_decomposition(g, method="improved")
        assert truss_decomposition(g, method="flat") == ref
        assert truss_decomposition(g, method="baseline") == ref
        assert truss_decomposition(g, method="mapreduce") == ref
        assert (
            truss_decomposition(g, method="parallel", jobs=2, shards="static")
            == ref
        )
        assert (
            truss_decomposition(g, method="dist", ranks=2)
            == ref
        )
        for units in (24, 200):
            budget = MemoryBudget(units=units)
            assert (
                truss_decomposition(g, method="bottomup", memory_budget=budget)
                == ref
            ), f"bottomup units={units}"
            assert (
                truss_decomposition(g, method="topdown", memory_budget=budget)
                == ref
            ), f"topdown units={units}"


class TestRandomizedParityProperty:
    """The parity claim as a property, not an example.

    Every hypothesis-generated graph (three structural families with
    very different wave schedules) is decomposed by the flat engine and
    by the parallel engine at jobs 1/2/4 in both shard modes, and every
    map must equal the brute-force oracle bit for bit.  jobs>1 runs
    spawn real worker pools, so examples are few but each one sweeps
    the full engine matrix.
    """

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(peel_graphs())
    def test_flat_and_parallel_match_brute_oracle(self, g):
        oracle = brute_trussness(g)
        flat = truss_decomposition(g, method="flat")
        assert dict(flat.trussness) == oracle
        for jobs in (1, 2, 4):
            for shards in ("dynamic", "static"):
                td = truss_decomposition(
                    g, method="parallel", jobs=jobs, shards=shards
                )
                assert dict(td.trussness) == oracle, (jobs, shards)
                assert td == flat, (jobs, shards)

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(peel_graphs())
    def test_dist_matches_brute_oracle(self, g):
        """The distributed peel across :data:`helpers.DIST_SWEEP`.

        Every (ranks, transport) configuration the acceptance bar
        names must reproduce the brute oracle *and* equal the flat
        engine's map bit for bit.  TCP configurations spawn real rank
        processes per example, so examples are few but each sweeps the
        whole matrix.
        """
        oracle = brute_trussness(g)
        flat = truss_decomposition(g, method="flat")
        for ranks, transport in DIST_SWEEP:
            td = truss_decomposition(
                g, method="dist", ranks=ranks, transport=transport
            )
            assert dict(td.trussness) == oracle, (ranks, transport)
            assert td == flat, (ranks, transport)

    @settings(max_examples=10, deadline=None)
    @given(peel_graphs())
    def test_serial_methods_match_brute_oracle(self, g):
        """The paper's in-memory pair against the oracle, same sweep."""
        oracle = brute_trussness(g)
        for method in ("improved", "baseline"):
            td = truss_decomposition(g, method=method)
            assert dict(td.trussness) == oracle, method


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_truss_core_sandwich(self, edges):
        """k-truss ⊆ (k-1)-core and kmax <= cmax + 1."""
        g = Graph(edges)
        if g.num_edges == 0:
            return
        td = truss_decomposition(g)
        core = core_numbers(g)
        for (u, v), k in td.trussness.items():
            assert core[u] >= k - 1
            assert core[v] >= k - 1

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_classes_partition_edges(self, edges):
        g = Graph(edges)
        td = truss_decomposition(g)
        seen = set()
        for k, cls in td.k_classes().items():
            for e in cls:
                assert e not in seen
                seen.add(e)
        assert seen == set(g.edges())

    @settings(max_examples=15, deadline=None)
    @given(small_edge_lists())
    def test_verify_accepts_all_methods(self, edges):
        g = Graph(edges)
        for method in ("improved", "bottomup"):
            truss_decomposition(
                g,
                method=method,
                memory_budget=MemoryBudget(units=12) if method == "bottomup" else None,
            ).verify(g)

    def test_dataset_smoke(self):
        """A scaled-down registry dataset through three methods."""
        g = load_dataset("p2p", scale=0.03)
        ref = truss_decomposition(g)
        assert truss_decomposition(
            g, method="bottomup", memory_budget=MemoryBudget(units=g.size // 3)
        ) == ref
        assert truss_decomposition(
            g, method="topdown", memory_budget=MemoryBudget(units=g.size // 3)
        ) == ref
