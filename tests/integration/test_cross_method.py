"""Cross-method integration tests: all six implementations, one truth.

DESIGN.md §5 pins the contract: every method produces the identical
trussness map, on every graph family, under every memory budget and
partitioner.  These tests sweep that matrix on mid-sized inputs.
"""

import pytest
from hypothesis import given, settings

from repro.core import truss_decomposition
from repro.cores import core_numbers
from repro.datasets import (
    collaboration_graph,
    community_graph,
    erdos_renyi,
    load_dataset,
    manager_graph,
    powerlaw_graph,
    running_example_graph,
    star_heavy_graph,
)
from repro.exio import MemoryBudget
from repro.graph import Graph

from helpers import random_graph, small_edge_lists

FAMILIES = {
    "er": lambda: erdos_renyi(60, 180, seed=71),
    "powerlaw": lambda: powerlaw_graph(80, 200, seed=72),
    "collab": lambda: collaboration_graph(60, 50, seed=73, max_team=10),
    "community": lambda: community_graph(70, 40, seed=74),
    "stars": lambda: star_heavy_graph(80, 150, n_hubs=4, seed=75),
    "manager": manager_graph,
    "running": running_example_graph,
}


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=str)
class TestAllMethodsAgree:
    def test_six_way_agreement(self, family):
        g = FAMILIES[family]()
        ref = truss_decomposition(g, method="improved")
        assert truss_decomposition(g, method="flat") == ref
        assert truss_decomposition(g, method="baseline") == ref
        assert truss_decomposition(g, method="mapreduce") == ref
        for units in (24, 200):
            budget = MemoryBudget(units=units)
            assert (
                truss_decomposition(g, method="bottomup", memory_budget=budget)
                == ref
            ), f"bottomup units={units}"
            assert (
                truss_decomposition(g, method="topdown", memory_budget=budget)
                == ref
            ), f"topdown units={units}"


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_truss_core_sandwich(self, edges):
        """k-truss ⊆ (k-1)-core and kmax <= cmax + 1."""
        g = Graph(edges)
        if g.num_edges == 0:
            return
        td = truss_decomposition(g)
        core = core_numbers(g)
        for (u, v), k in td.trussness.items():
            assert core[u] >= k - 1
            assert core[v] >= k - 1

    @settings(max_examples=25, deadline=None)
    @given(small_edge_lists())
    def test_classes_partition_edges(self, edges):
        g = Graph(edges)
        td = truss_decomposition(g)
        seen = set()
        for k, cls in td.k_classes().items():
            for e in cls:
                assert e not in seen
                seen.add(e)
        assert seen == set(g.edges())

    @settings(max_examples=15, deadline=None)
    @given(small_edge_lists())
    def test_verify_accepts_all_methods(self, edges):
        g = Graph(edges)
        for method in ("improved", "bottomup"):
            truss_decomposition(
                g,
                method=method,
                memory_budget=MemoryBudget(units=12) if method == "bottomup" else None,
            ).verify(g)

    def test_dataset_smoke(self):
        """A scaled-down registry dataset through three methods."""
        g = load_dataset("p2p", scale=0.03)
        ref = truss_decomposition(g)
        assert truss_decomposition(
            g, method="bottomup", memory_budget=MemoryBudget(units=g.size // 3)
        ) == ref
        assert truss_decomposition(
            g, method="topdown", memory_budget=MemoryBudget(units=g.size // 3)
        ) == ref
