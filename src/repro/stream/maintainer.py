"""``TrussMaintainer`` — trussness kept fresh under edge updates.

Construction decomposes once with the flat engine (seeding trussness
from :func:`repro.core.flat.truss_decomposition_flat` and supports from
:func:`repro.core.flat.initial_supports` over the CSR snapshot); every
subsequent :meth:`insert_edge` / :meth:`delete_edge` /
:meth:`apply_batch` repairs only the bounded affected set computed by
:mod:`repro.stream.affected` and re-peeled by
:mod:`repro.stream.repeel`.

State lives in dicts keyed by canonical ``(u, v)`` edges rather than
flat eids on purpose: :class:`repro.graph.CSRGraph` eids are
*positional* in sorted edge order, so a single insert would shift every
eid after it — a dict survives updates without renumbering and the
local re-peel builds its own dense positional ids per repair.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from time import perf_counter as _perf
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.flat import _as_csr, initial_supports, truss_decomposition_flat
from repro.errors import DecompositionError
from repro.graph.csr import CSRGraph
from repro.obs import NULL_TRACER, warn_degraded
from repro.stream.affected import canon, common_neighbors, expand_region
from repro.stream.repeel import repeel_region

Edge = Tuple[int, int]
Update = Tuple[str, int, int]

_INSERT_OPS = frozenset(("insert", "+", "i", "add"))
_DELETE_OPS = frozenset(("delete", "-", "d", "remove"))

# info tuple per applied mutation: (kind, edge, seed triangles, old phi)
_Info = Tuple[str, Edge, Tuple[Tuple[Edge, Edge], ...], Optional[int]]


class TrussMaintainer:
    """Incrementally maintained truss decomposition of a mutable graph.

    >>> from repro.graph import complete_graph
    >>> tm = TrussMaintainer.from_graph(complete_graph(4))
    >>> tm.trussness[(0, 1)]
    4
    >>> tm.insert_edge(0, 4) and tm.insert_edge(1, 4)
    True
    >>> tm.trussness[(1, 4)]
    3
    """

    def __init__(
        self,
        adj: Dict[int, List[int]],
        phi: Dict[Edge, int],
        sup: Dict[Edge, int],
        kernel: Optional[str] = None,
        trace=None,
    ) -> None:
        self._adj = adj  # vertex -> sorted neighbor list
        self._phi = phi  # canonical edge -> trussness
        self._sup = sup  # canonical edge -> support (common-neighbor count)
        self._kernel = kernel
        self._tracer = trace if trace is not None else NULL_TRACER
        self._last_affected: Tuple[Edge, ...] = ()
        self.stats = DecompositionStats(method="stream")

    @classmethod
    def from_graph(
        cls, g, kernel: Optional[str] = None, trace=None
    ) -> "TrussMaintainer":
        """Decompose ``g`` (a :class:`Graph` or CSR snapshot) once.

        ``trace`` takes an enabled :class:`repro.obs.Tracer`: the
        seeding decomposition and every subsequent repair emit their
        spans (and degradation warnings) into it.
        """
        csr = _as_csr(g)
        adj: Dict[int, List[int]] = {}
        phi: Dict[Edge, int] = {}
        sup: Dict[Edge, int] = {}
        if csr.num_edges:
            td = truss_decomposition_flat(csr, kernel=kernel, trace=trace)
            phi.update(td.trussness)
            raw = initial_supports(csr)
            labels = csr.labels
            eu, ev = csr.edge_endpoints()
            for e in range(csr.num_edges):
                a, b = int(labels[int(eu[e])]), int(labels[int(ev[e])])
                sup[canon(a, b)] = int(raw[e])
            for a, b in phi:
                adj.setdefault(a, []).append(b)
                adj.setdefault(b, []).append(a)
            for lst in adj.values():
                lst.sort()
        return cls(adj, phi, sup, kernel=kernel, trace=trace)

    @classmethod
    def from_state(
        cls,
        phi: Mapping[Edge, int],
        sup: Mapping[Edge, int],
        kernel: Optional[str] = None,
        trace=None,
    ) -> "TrussMaintainer":
        """Rebuild a maintainer from snapshotted phi/support maps.

        The inverse of persisting :attr:`trussness`/:attr:`supports`
        (what :mod:`repro.serve.snapshot` generations hold): adjacency
        is exactly the canonical edge key set, so no decomposition runs
        — restart costs O(m) dict rebuilds, not a re-peel.  The two
        maps must cover the same edges (any consistent maintainer's
        do); the further-update behaviour is bit-identical to a
        maintainer that never round-tripped, pinned by the snapshot
        tests.
        """
        if set(phi) != set(sup):
            raise DecompositionError(
                "phi and sup must cover the same canonical edges "
                f"({len(phi)} vs {len(sup)})"
            )
        adj: Dict[int, List[int]] = {}
        for a, b in phi:
            if not (isinstance(a, int) and isinstance(b, int) and a < b):
                raise DecompositionError(
                    f"non-canonical edge key in snapshot state: {(a, b)!r}"
                )
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, []).append(a)
        for lst in adj.values():
            lst.sort()
        return cls(
            adj,
            {e: int(k) for e, k in phi.items()},
            {e: int(s) for e, s in sup.items()},
            kernel=kernel,
            trace=trace,
        )

    # ------------------------------------------------------------- views
    @property
    def trussness(self) -> Mapping[Edge, int]:
        """Live read-only view of the phi(e) map (canonical edges)."""
        return MappingProxyType(self._phi)

    @property
    def supports(self) -> Mapping[Edge, int]:
        """Live read-only view of the support map (canonical edges)."""
        return MappingProxyType(self._sup)

    @property
    def last_affected(self) -> Tuple[Edge, ...]:
        """The region re-peeled by the most recent update, sorted."""
        return self._last_affected

    @property
    def num_edges(self) -> int:
        return len(self._phi)

    def has_edge(self, u: int, v: int) -> bool:
        au = self._adj.get(u)
        if au is None:
            return False
        i = bisect_left(au, v)
        return i < len(au) and au[i] == v

    def as_decomposition(self) -> TrussDecomposition:
        """An immutable snapshot of the current trussness map."""
        return TrussDecomposition.from_canonical(dict(self._phi), self.stats)

    # ----------------------------------------------------------- updates
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert ``(u, v)`` and repair; False if present or a loop."""
        return self.apply_batch([("insert", u, v)]) == 1

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete ``(u, v)`` and repair; False if absent."""
        return self.apply_batch([("delete", u, v)]) == 1

    def apply_batch(self, updates: Iterable[Update]) -> int:
        """Apply a sequence of ``(op, u, v)`` updates, repair once.

        ``op`` is ``"insert"``/``"+"`` or ``"delete"``/``"-"``.
        Duplicate inserts, deletes of absent edges and self-loop
        inserts are no-ops; the return value counts the updates that
        actually changed the graph.  Trussness afterwards is
        bit-identical to applying the effective updates one at a time
        (and to a from-scratch decomposition of the final graph).
        """
        infos: List[_Info] = []
        for op, u, v in updates:
            if op in _INSERT_OPS:
                info = self._do_insert(int(u), int(v))
            elif op in _DELETE_OPS:
                info = self._do_delete(int(u), int(v))
            else:
                raise DecompositionError(f"unknown update op: {op!r}")
            if info is not None:
                infos.append(info)
        applied = len(infos)
        # one effective update moves any trussness by <= 1; a batch of
        # B compounds to a drift of <= B per endpoint of a chain step,
        # so the traversal slack 2*B keeps the region a sound superset
        self._repair(infos, slack=0 if applied <= 1 else 2 * applied)
        return applied

    # ---------------------------------------------------------- mutation
    def _do_insert(self, u: int, v: int) -> Optional[_Info]:
        if u == v or self.has_edge(u, v):
            return None  # self-loops are dropped, like ingest cleaning
        e = canon(u, v)
        insort(self._adj.setdefault(u, []), v)
        insort(self._adj.setdefault(v, []), u)
        ws = common_neighbors(self._adj, u, v)
        self._sup[e] = len(ws)
        for w in ws:
            self._sup[canon(u, w)] += 1
            self._sup[canon(v, w)] += 1
        return ("insert", e, (), None)

    def _do_delete(self, u: int, v: int) -> Optional[_Info]:
        if not self.has_edge(u, v):
            return None
        e = canon(u, v)
        ws = common_neighbors(self._adj, u, v)
        for a, b in ((u, v), (v, u)):
            lst = self._adj[a]
            lst.pop(bisect_left(lst, b))
            if not lst:
                del self._adj[a]
        le = self._phi.pop(e, None)  # None: inserted earlier this batch
        del self._sup[e]
        tris = []
        for w in ws:
            g, h = canon(u, w), canon(v, w)
            self._sup[g] -= 1
            self._sup[h] -= 1
            tris.append((g, h))
        return ("delete", e, tuple(tris), le)

    # ------------------------------------------------------------ repair
    def _full_repeel(self) -> None:
        """Recompute phi from scratch (supports are already exact)."""
        csr = CSRGraph.from_edges(iter(self._sup))
        td = truss_decomposition_flat(csr, kernel=self._kernel)
        self._phi = dict(td.trussness)

    def _seed_delete(
        self,
        tris: Tuple[Tuple[Edge, Edge], ...],
        le: Optional[int],
        slack: int,
        region: Set[Edge],
        queue: List[Edge],
    ) -> None:
        # a delete's cascade starts in the triangles it destroyed and
        # only reaches levels k <= phi_old(deleted edge): admit a
        # surviving partner when its level clears neither the other
        # partner's nor the deleted edge's level by more than slack
        for g, h in tris:
            for x, y in ((g, h), (h, g)):
                if x in region:
                    continue
                lx = self._phi.get(x)
                if lx is None:
                    continue  # wildcard (in region) or since deleted
                ly = self._phi.get(y)
                cap = ly if le is None else (le if ly is None else min(ly, le))
                if cap is None or lx <= cap + slack:
                    region.add(x)
                    queue.append(x)

    def _repair(self, infos: List[_Info], slack: int) -> None:
        tr = self._tracer
        t0 = _perf() if tr.enabled else 0.0
        region: Set[Edge] = set()
        queue: List[Edge] = []
        for kind, e, tris, le in infos:
            if kind == "insert":
                # inserted edges have no prior phi: wildcard seeds
                if e in self._sup and e not in region:
                    region.add(e)
                    queue.append(e)
            else:
                self._seed_delete(tris, le, slack, region, queue)
        # past this cap a frozen-boundary peel costs more than the flat
        # engine over everything (typical for large batches, whose
        # slack widens the chain rule): stop expanding and repair
        # exactly, but globally
        cap = max(64, len(self._sup) // 10)
        truncated = expand_region(
            self._adj, self._phi, region, queue, slack, cap=cap
        )
        region_edges = sorted(e for e in region if e in self._sup)
        self._last_affected = tuple(region_edges)
        self.stats.bump("repairs")
        self.stats.bump("affected_edges", len(region_edges))
        if truncated:
            warn_degraded(
                tr, self.stats.metrics, "stream_full_repeel",
                region=len(region_edges), cap=cap,
                updates=len(infos),
            )
            self._full_repeel()
            self._last_affected = tuple(sorted(self._sup))
            self.stats.bump("full_repeels")
            if tr.enabled:
                tr.complete_span(
                    "repair", _perf() - t0, updates=len(infos),
                    region=len(region_edges), frozen=0, triangles=0,
                    truncated=True,
                )
            return
        if not region_edges:
            if tr.enabled:
                tr.complete_span(
                    "repair", _perf() - t0, updates=len(infos),
                    region=0, frozen=0, triangles=0, truncated=False,
                )
            return
        # local problem: region edges get dense ids 0..n-1, frozen
        # boundary edges (old phi kept, by containment) follow
        eindex = {e: i for i, e in enumerate(region_edges)}
        fro_index: Dict[Edge, int] = {}
        frozen_phi: List[int] = []
        tris_local: List[Tuple[int, int, int]] = []
        seen: Set[Tuple[int, int, int]] = set()
        nloc = len(region_edges)
        for a, b in region_edges:
            for w in common_neighbors(self._adj, a, b):
                key = (a, b, w) if w > b else (
                    (a, w, b) if w > a else (w, a, b)
                )
                if key in seen:
                    continue
                seen.add(key)
                ids = []
                for x in ((a, b), canon(a, w), canon(b, w)):
                    i = eindex.get(x)
                    if i is None:
                        i = fro_index.get(x)
                        if i is None:
                            i = nloc + len(frozen_phi)
                            fro_index[x] = i
                            frozen_phi.append(self._phi[x])
                    ids.append(i)
                tris_local.append((ids[0], ids[1], ids[2]))
        self.stats.bump("frozen_edges", len(frozen_phi))
        self.stats.bump("local_triangles", len(tris_local))
        phi_new = repeel_region(
            nloc, frozen_phi, tris_local, kernel=self._kernel
        )
        for i, e in enumerate(region_edges):
            self._phi[e] = int(phi_new[i])
        if tr.enabled:
            tr.complete_span(
                "repair", _perf() - t0, updates=len(infos),
                region=len(region_edges), frozen=len(frozen_phi),
                triangles=len(tris_local), truncated=False,
            )
