"""Frozen-boundary local re-peel over the pluggable wave kernel.

The maintainer hands this module a *region* — the affected edges whose
trussness must be recomputed — plus the frozen boundary: every other
edge that shares a triangle with the region keeps its old trussness by
the containment argument, so it participates in the local peel as a
fixed-level spectator instead of a peelable edge.

Local edge ids are positional: region edges are ``0..nloc-1`` (in the
caller's order), frozen boundary edges are ``nloc..nloc+nfro-1``.  The
peel mirrors :func:`repro.core.flat.run_wave_peel` — alive-support
histogram with a floor-jumping level scan, level-synchronous waves of
the five :class:`repro.kernels.PeelKernel` ops — with one twist: a
frozen edge is never *peeled* (its local support is an undercount and
is never consulted); it *expires* when the level reaches its old
trussness, at which point its still-alive triangles die and decrement
the region supports exactly as a real level-``phi`` pop would.  Expiry
at the first wave of the level is sound because pop order within a
level does not affect the result (the same argument that makes the
sharded engines bit-identical).

Everything runs on plain buffers (``array('q')``/``bytearray``/list
histogram) when numpy is unavailable — the python kernel indexes
generic sequences — and on int64 ndarrays otherwise, so any installed
kernel backend can drive the waves.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Tuple

from repro.kernels import get_kernel, resolve_kernel

try:  # optional accelerator
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free CI
    _np = None

Triple = Tuple[int, int, int]


def repeel_region(
    nloc: int,
    frozen_phi: Sequence[int],
    triangles: Sequence[Triple],
    kernel: str = None,
) -> Sequence[int]:
    """Recompute trussness for ``nloc`` region edges.

    ``triangles`` lists every triangle containing at least one region
    edge, as triples of local edge ids (region first, then frozen);
    ``frozen_phi[i]`` is the old trussness of frozen edge ``nloc + i``.
    Returns the new trussness per region edge, same order as the ids.
    """
    if nloc == 0:
        return array("q")
    kern = get_kernel(resolve_kernel(kernel))
    nfro = len(frozen_phi)
    nall = nloc + nfro
    nt = len(triangles)

    if _np is not None:
        tri = _np.asarray(triangles, dtype=_np.int64).reshape(nt, 3)
        e1c = _np.ascontiguousarray(tri[:, 0])
        e2c = _np.ascontiguousarray(tri[:, 1])
        e3c = _np.ascontiguousarray(tri[:, 2])
        flat = tri.ravel()
        cnt = _np.bincount(flat, minlength=nall) if nt else _np.zeros(
            nall, dtype=_np.int64
        )
        tptr = _np.zeros(nall + 1, dtype=_np.int64)
        _np.cumsum(cnt, out=tptr[1:])
        # stable sort of the flattened incidence: slot p of ``flat``
        # belongs to triangle p // 3, so the argsort *is* the index
        order = _np.argsort(flat, kind="stable")
        tinc = order // 3
        sup = cnt[:nloc].astype(_np.int64)
        hist = _np.bincount(sup, minlength=1)
        alive = _np.ones(nall, dtype=bool)
        tdead = _np.zeros(nt, dtype=bool)
        phi = _np.zeros(nloc, dtype=_np.int64)
        fphi = _np.asarray(frozen_phi, dtype=_np.int64)
        forder = _np.argsort(fphi, kind="stable")
    else:
        e1c = array("q", (t[0] for t in triangles))
        e2c = array("q", (t[1] for t in triangles))
        e3c = array("q", (t[2] for t in triangles))
        cnt = [0] * nall
        for a, b, c in triangles:
            cnt[a] += 1
            cnt[b] += 1
            cnt[c] += 1
        tptr = array("q", [0] * (nall + 1))
        for i in range(nall):
            tptr[i + 1] = tptr[i] + cnt[i]
        fill = list(tptr[:nall])
        tinc = array("q", bytes(8 * 3 * nt))
        for tid, t in enumerate(triangles):
            for e in t:
                tinc[fill[e]] = tid
                fill[e] += 1
        sup = array("q", cnt[:nloc])
        hist = [0] * (max(sup) + 1)
        for s in sup:
            hist[s] += 1
        alive = bytearray(b"\x01" * nall)
        tdead = bytearray(nt)
        phi = array("q", bytes(8 * nloc))
        fphi = list(frozen_phi)
        forder = sorted(range(nfro), key=fphi.__getitem__)

    fptr = 0  # next frozen edge to expire, in ascending-phi order
    rem = nloc
    floor = 0
    hist_len = len(hist)
    k = 2
    while rem:
        while floor < hist_len and not hist[floor]:
            floor += 1
        nxt = floor + 2
        if fptr < nfro:
            nxt = min(nxt, int(fphi[int(forder[fptr])]))
        if nxt > k:
            k = nxt
        expiring: List[int] = []
        while fptr < nfro and int(fphi[int(forder[fptr])]) <= k:
            expiring.append(nloc + int(forder[fptr]))
            fptr += 1
        if _np is not None:
            frontier = _np.flatnonzero(alive[:nloc] & (sup <= k - 2))
        else:
            frontier = array(
                "q",
                (e for e in range(nloc) if alive[e] and sup[e] <= k - 2),
            )
        while len(frontier) or expiring:
            if len(frontier):
                kern.pop_frontier(sup, alive, phi, hist, frontier, k)
                rem -= len(frontier)
            for f in expiring:
                alive[f] = False
            popped = array("q", (int(e) for e in frontier))
            popped.extend(expiring)
            hit = kern.gather_incident(tptr, tinc, popped, tdead)
            if _np is not None:
                tdead[hit] = True
            else:
                for t in hit:
                    tdead[t] = 1
            touched, dec = kern.count_decrements(
                e1c, e2c, e3c, hit, alive, lo=0, hi=nloc, base=0
            )
            frontier = kern.apply_decrements(sup, hist, touched, dec, k)
            expiring = []
    return phi
