"""Incremental truss maintenance for streaming edge updates.

One-shot decomposition cannot keep trussness fresh under the write
traffic the query-server north star targets: any insert/delete would
force a full re-peel.  This package maintains the decomposition
*incrementally* — the write path of truss-as-a-service.

Contract
--------

:class:`TrussMaintainer` (see :mod:`repro.stream.maintainer`) owns a
mutable graph plus its trussness and support maps, seeded by one run
of the flat engine.  ``insert_edge``/``delete_edge``/``apply_batch``
then repair in three steps:

1. **Enumerate** only the triangles through the updated edges (sorted
   adjacency-list intersection — the same wedge walk the CSR builder
   streams).
2. **Bound** the affected set (:mod:`repro.stream.affected`): by the
   Jakkula–Karypis containment argument (arXiv 1908.10550), a single
   update moves any trussness by at most 1, and only edges reachable
   through same-level triangle chains from the update can move at all.
   The traversal closure of that rule is a *sound superset* of the
   changed edges: everything outside the region provably keeps its
   trussness.  For a batch of B effective updates the chain rule is
   relaxed by a slack of 2·B (levels drift at most one per update).
3. **Re-peel** just the region (:mod:`repro.stream.repeel`) with the
   pluggable :class:`repro.kernels.PeelKernel` wave ops against a
   *frozen boundary*: non-region triangle partners keep their old
   trussness and expire at it, reproducing exactly the support
   pressure the global peel would have applied.

Guarantees and complexity
-------------------------

* **Exactness** — after every update (and every batch), the maintained
  map is bit-identical to a from-scratch decomposition of the current
  graph; ``apply_batch(U)`` is bit-identical to applying ``U`` one at
  a time.  This is pinned by the hypothesis parity suite in
  ``tests/stream/``.
* **Bounded work** — a repair costs
  O(Σ_{e ∈ R∪∂R} deg(e) + peel(R)) where ``R`` is the affected region
  and ``∂R`` its frozen boundary: triangle enumeration touches only
  region edges' neighborhoods, and the local peel's histogram scan is
  linear in the region's support mass — independent of |E| for
  updates whose cascades stay local (the common case).  A worst-case
  update (or a large batch, whose slack widens the chain rule) can
  still cascade to O(|E|); when the bounded region covers more than a
  tenth of the graph the maintainer degrades to one flat re-peel
  instead of a frozen-boundary peel, so a repair never costs
  materially more than a single full decomposition.
* **Failure semantics** — duplicate inserts, deletes of absent edges
  and self-loop inserts are clean no-ops returning ``False`` (the
  mutators return whether the graph changed); unknown batch ops raise
  :class:`repro.errors.DecompositionError` *before* any mutation of
  the batch is rolled in.  ``last_affected`` exposes the region of
  the most recent repair for observability, and ``stats`` counts
  repairs, affected/frozen edges and local triangles.
"""

from repro.stream.affected import canon, common_neighbors, expand_region
from repro.stream.maintainer import TrussMaintainer
from repro.stream.repeel import repeel_region
from repro.stream.updates import (
    Update,
    format_update,
    parse_update_line,
    read_update_lines,
    read_update_stream,
)

__all__ = [
    "TrussMaintainer",
    "Update",
    "canon",
    "common_neighbors",
    "expand_region",
    "format_update",
    "parse_update_line",
    "read_update_lines",
    "read_update_stream",
    "repeel_region",
]
