"""One parser for the ``'+ u v'`` / ``'- u v'`` update-stream format.

Three surfaces speak this format — the ``repro update`` CLI's updates
file (or stdin via ``-``), the server's bulk ``POST /updates`` request
body, and the payload of every write-ahead-log record
(:mod:`repro.serve.wal`) — so the parser lives here, once, and all of
them share a single code path.  A line is::

    + u v        insert edge (u, v)
    - u v        delete edge (u, v)
    # ...        comment (skipped)
                 blank (skipped)

:func:`parse_update_line` maps a line to the maintainer's
``(op, u, v)`` vocabulary (``"insert"``/``"delete"``);
:func:`format_update` is its exact inverse, producing the canonical
text an update is logged and transported as.
"""

from __future__ import annotations

import sys
from typing import IO, List, Optional, Tuple

Update = Tuple[str, int, int]

#: line opcode -> maintainer op (the vocabulary ``apply_batch`` takes)
OPS = {"+": "insert", "-": "delete"}

#: maintainer op (or line opcode) -> line opcode
_SYMBOL = {"insert": "+", "delete": "-", "+": "+", "-": "-"}


def parse_update_line(
    line: str, *, where: str = "<updates>"
) -> Optional[Update]:
    """Parse one update line into ``(op, u, v)``.

    Returns ``None`` for blank lines and ``#`` comments.  Raises
    ``ValueError`` — prefixed with ``where`` (conventionally
    ``file:lineno``) — on anything else that is not a well-formed
    ``'+ u v'`` / ``'- u v'`` line.
    """
    parts = line.split()
    if not parts or parts[0].startswith("#"):
        return None
    if len(parts) < 3 or parts[0] not in OPS:
        raise ValueError(
            f"{where}: expected '+ u v' or '- u v', got {line.strip()!r}"
        )
    try:
        u, v = int(parts[1]), int(parts[2])
    except ValueError:
        raise ValueError(
            f"{where}: non-integer vertex id in {line.strip()!r}"
        ) from None
    return (OPS[parts[0]], u, v)


def read_update_lines(fh: IO[str], source: str = "<updates>") -> List[Update]:
    """Parse every update line of an open text stream, in order."""
    updates: List[Update] = []
    for lineno, line in enumerate(fh, 1):
        parsed = parse_update_line(line, where=f"{source}:{lineno}")
        if parsed is not None:
            updates.append(parsed)
    return updates


def read_update_stream(path) -> List[Update]:
    """Read an update-stream file; ``'-'`` reads standard input."""
    if str(path) == "-":
        return read_update_lines(sys.stdin, source="<stdin>")
    with open(path, encoding="utf-8") as fh:
        return read_update_lines(fh, source=str(path))


def format_update(op: str, u: int, v: int) -> str:
    """The canonical ``'+ u v'`` text of one update (parse's inverse)."""
    try:
        sym = _SYMBOL[op]
    except KeyError:
        raise ValueError(f"unknown update op: {op!r}") from None
    return f"{sym} {int(u)} {int(v)}"
