"""Bounded affected-set computation for incremental maintenance.

The containment argument (Jakkula & Karypis, arXiv 1908.10550; Huang
et al. SIGMOD'14): a single edge update changes any trussness by at
most one, and an edge ``f`` at level ``k`` can only change if it is
reachable from the updated edge through a chain of triangles in which
every traversed edge sits at level exactly ``k`` and every third edge
sits at level ``>= k`` — a support cascade cannot jump levels or pass
through an edge whose trussness it cannot move.  The closure of that
rule from the update's own triangles is therefore a sound superset of
the changed edges; everything outside keeps its trussness verbatim and
may be frozen during the local re-peel.

For a batch of ``B`` updates the per-update chains compose: levels can
drift by up to one per effective update, so the traversal runs with a
``slack`` of ``2 * B`` — admit a neighbor when its level is within
``slack`` of the current edge's and the third edge is no more than
``slack`` below their minimum.  Edges inserted by the batch have no
prior trussness and act as wildcards: they are always in the region
and pass every level comparison.

Adjacency here is the maintainer's dict of *sorted* neighbor lists;
triangle enumeration is a two-pointer merge over them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

Edge = Tuple[int, int]


def canon(u: int, v: int) -> Edge:
    """The canonical (min, max) form of an undirected edge."""
    return (u, v) if u < v else (v, u)


def common_neighbors(
    adj: Dict[int, List[int]], u: int, v: int
) -> List[int]:
    """Sorted common neighbors of ``u`` and ``v`` (two-pointer merge)."""
    au = adj.get(u)
    av = adj.get(v)
    if not au or not av:
        return []
    out: List[int] = []
    i = j = 0
    nu, nv = len(au), len(av)
    while i < nu and j < nv:
        a, b = au[i], av[j]
        if a == b:
            out.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return out


def admit(
    lf: Optional[int],
    lg: Optional[int],
    lh: Optional[int],
    slack: int,
) -> bool:
    """Whether edge ``g`` joins the region via triangle ``(f, g, h)``.

    ``lf``/``lg``/``lh`` are prior trussness levels; ``None`` marks a
    wildcard (an edge inserted by the batch, or — for ``lh`` — any
    edge already known to pass the third-edge floor).
    """
    if lg is None:
        return False  # wildcards are seeded into the region up front
    if lf is not None and abs(lg - lf) > slack:
        return False
    need = lg if lf is None else min(lf, lg)
    return lh is None or lh >= need - slack


def expand_region(
    adj: Dict[int, List[int]],
    phi: Dict[Edge, int],
    region: Set[Edge],
    queue: List[Edge],
    slack: int,
    cap: Optional[int] = None,
) -> bool:
    """Grow ``region`` in place to the triangle-chain closure.

    ``queue`` holds the seed edges (already members of ``region``);
    traversal enumerates triangles in ``adj`` — the *post-update*
    adjacency — and admits neighbors per :func:`admit`.  Edges missing
    from ``phi`` are wildcards.

    ``cap`` short-circuits the traversal once the region reaches that
    many edges; returns True when truncated this way — the region is
    then *not* a sound bound and the caller must repair globally.
    """
    while queue:
        if cap is not None and len(region) >= cap:
            return True
        a, b = queue.pop()
        lf = phi.get((a, b))
        for w in common_neighbors(adj, a, b):
            g = canon(a, w)
            h = canon(b, w)
            for x, y in ((g, h), (h, g)):
                if x in region:
                    continue
                if admit(lf, phi.get(x), phi.get(y), slack):
                    region.add(x)
                    queue.append(x)
    return False
