"""The central in-memory graph type: an undirected simple graph.

The representation is a dict of adjacency *sets* — the Python analogue of
the paper's adjacency-list representation (Section 2) with O(1) expected
membership tests, which Algorithm 2 needs for its Step 8 edge lookups.

Vertices are arbitrary integers.  The class enforces simplicity: no
self-loops, no parallel edges.  Mutation is cheap and local so that the
peeling algorithms can remove edges one at a time; bulk analytics convert
to :class:`repro.graph.csr.CSRGraph` first.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph.edges import Edge, norm_edge


class Graph:
    """Mutable undirected simple graph backed by adjacency sets.

    >>> g = Graph([(1, 2), (2, 3)])
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.num_vertices, g.num_edges
    (3, 2)
    """

    __slots__ = ("_adj", "_m")

    def __init__(self, edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        self._adj: Dict[int, Set[int]] = {}
        self._m = 0
        if edges is not None:
            self.add_edges(edges)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        """Ensure ``v`` exists (possibly isolated)."""
        if v not in self._adj:
            self._adj[v] = set()

    def add_edge(self, u: int, v: int) -> bool:
        """Insert the undirected edge; return ``True`` if it was new."""
        u, v = norm_edge(u, v)
        nu = self._adj.setdefault(u, set())
        if v in nu:
            return False
        nu.add(v)
        self._adj.setdefault(v, set()).add(u)
        self._m += 1
        return True

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Insert every edge of an iterable of pairs."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the edge; raise :class:`EdgeNotFoundError` if absent.

        Endpoints are kept even if they become isolated — the peeling
        algorithms reason about a fixed vertex universe.
        """
        u, v = norm_edge(u, v)
        nu = self._adj.get(u)
        if nu is None or v not in nu:
            raise EdgeNotFoundError(u, v)
        nu.discard(v)
        self._adj[v].discard(u)
        self._m -= 1

    def discard_edge(self, u: int, v: int) -> bool:
        """Delete the edge if present; return whether it existed."""
        try:
            self.remove_edge(u, v)
        except EdgeNotFoundError:
            return False
        return True

    def remove_vertex(self, v: int) -> None:
        """Delete ``v`` and all incident edges."""
        nbrs = self._adj.pop(v, None)
        if nbrs is None:
            raise VertexNotFoundError(v)
        for w in nbrs:
            self._adj[w].discard(v)
        self._m -= len(nbrs)

    def drop_isolated_vertices(self) -> int:
        """Remove degree-0 vertices; return how many were removed."""
        isolated = [v for v, nbrs in self._adj.items() if not nbrs]
        for v in isolated:
            del self._adj[v]
        return len(isolated)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def has_vertex(self, v: int) -> bool:
        """Whether ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        if u == v:
            return False
        nu = self._adj.get(u)
        return nu is not None and v in nu

    def neighbors(self, v: int) -> Set[int]:
        """The adjacency set ``nb(v)``.  The returned set is live; callers
        that mutate the graph while iterating must copy it first."""
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: int) -> int:
        """``deg(v) = |nb(v)|``."""
        return len(self.neighbors(v))

    def common_neighbors(self, u: int, v: int) -> Set[int]:
        """``nb(u) ∩ nb(v)`` — the triangle partners of edge ``(u, v)``.

        Intersects starting from the smaller set, which is exactly the
        optimization that separates Algorithm 2 from Algorithm 1.
        """
        nu, nv = self.neighbors(u), self.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return nu & nv

    @property
    def num_vertices(self) -> int:
        """``n = |V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """``m = |E|``."""
        return self._m

    @property
    def size(self) -> int:
        """The paper's ``|G| = m + n``."""
        return self._m + len(self._adj)

    def vertices(self) -> Iterator[int]:
        """Iterate over the vertex set."""
        return iter(self._adj)

    def sorted_vertices(self) -> List[int]:
        """Vertices in ascending id order (the paper's vertex order)."""
        return sorted(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over canonical edges ``(u, v)`` with ``u < v``."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def sorted_edges(self) -> List[Edge]:
        """All edges in deterministic lexicographic order."""
        return sorted(self.edges())

    def max_degree(self) -> int:
        """``dmax``; 0 for an empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def degree_sequence(self) -> List[int]:
        """All vertex degrees, unsorted."""
        return [len(nbrs) for nbrs in self._adj.values()]

    # ------------------------------------------------------------------
    # copies / derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """A deep structural copy."""
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._m = self._m
        return g

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """The induced subgraph ``G[U]`` (only vertices present in G)."""
        keep = {v for v in vertices if v in self._adj}
        g = Graph()
        for v in keep:
            g.add_vertex(v)
        for v in keep:
            for w in self._adj[v]:
                if v < w and w in keep:
                    g.add_edge(v, w)
        return g

    def edge_subgraph(self, edges: Iterable[Tuple[int, int]]) -> "Graph":
        """The subgraph formed by the given edges of ``G``.

        Edges absent from ``G`` raise :class:`EdgeNotFoundError` — asking
        for a subgraph of edges that do not exist is always a bug.
        """
        g = Graph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            g.add_edge(u, v)
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
