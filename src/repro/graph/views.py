"""Subgraph views used by the external-memory algorithms.

The key concept is the *neighborhood subgraph* of Definition 4:

    NS(U) = (V', E') with V' = U ∪ nb(U) and E' = {(u, v) ∈ E : u ∈ U}

i.e. every edge with at least one endpoint in ``U``.  Edges with *both*
endpoints in ``U`` are *internal*; the rest are *external*.  The crucial
property (used by Lemma 1 and Theorems 2/4) is that for an internal edge
``(u, v)`` every triangle of ``G`` through it is present in ``NS(U)``, so
supports of internal edges computed locally are globally exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge


@dataclass(frozen=True)
class NeighborhoodSubgraph:
    """An ``NS(U)`` instance: the subgraph plus the internal vertex set."""

    graph: Graph
    internal_vertices: FrozenSet[int]

    def is_internal_vertex(self, v: int) -> bool:
        """Whether ``v ∈ U``."""
        return v in self.internal_vertices

    def is_internal_edge(self, u: int, v: int) -> bool:
        """Whether both endpoints lie in ``U`` (support is then exact)."""
        return u in self.internal_vertices and v in self.internal_vertices

    def internal_edges(self) -> Iterator[Edge]:
        """Iterate the canonical internal edges (``E_{G[U]}``)."""
        internal = self.internal_vertices
        for u, v in self.graph.edges():
            if u in internal and v in internal:
                yield (u, v)

    def external_edges(self) -> Iterator[Edge]:
        """Iterate edges with exactly one endpoint in ``U``."""
        internal = self.internal_vertices
        for u, v in self.graph.edges():
            if (u in internal) != (v in internal):
                yield (u, v)

    @property
    def size(self) -> int:
        """``|NS(U)| = m + n`` of the subgraph."""
        return self.graph.size


def neighborhood_subgraph(g: Graph, internal: Iterable[int]) -> NeighborhoodSubgraph:
    """Materialize ``NS(U)`` of an in-memory graph.

    Vertices of ``internal`` not present in ``g`` are ignored so callers
    can pass partition blocks computed on an earlier snapshot of a
    shrinking graph.
    """
    u_set: Set[int] = {v for v in internal if g.has_vertex(v)}
    h = Graph()
    for u in u_set:
        h.add_vertex(u)
        for w in g.neighbors(u):
            h.add_edge(u, w)
    return NeighborhoodSubgraph(graph=h, internal_vertices=frozenset(u_set))


def neighborhood_subgraph_from_edges(
    edges: Iterable[Tuple[int, int]], internal: Iterable[int]
) -> NeighborhoodSubgraph:
    """Materialize ``NS(U)`` from an edge stream (one disk scan).

    This is the access pattern of Algorithm 4 Step 5 / Algorithm 7 Step 6:
    ``Gnew`` lives on disk as an edge file, and the candidate subgraph is
    built from every edge incident to ``U`` during a single sequential
    scan.
    """
    u_set = set(internal)
    h = Graph()
    for u, v in edges:
        if u in u_set or v in u_set:
            h.add_edge(u, v)
    present_internal = frozenset(v for v in u_set if h.has_vertex(v))
    return NeighborhoodSubgraph(graph=h, internal_vertices=present_internal)


def union_edge_subgraph(edge_sets: Iterable[Iterable[Edge]]) -> Graph:
    """Build the subgraph formed by the union of several edge sets.

    Used to assemble ``T_k`` from the classes ``Φ_j`` for ``j >= k``
    (Section 2: ``E_{T_k} = ∪_{j>=k} Φ_j``).
    """
    g = Graph()
    for edges in edge_sets:
        for u, v in edges:
            g.add_edge(u, v)
    return g
