"""Connected components (iterative BFS — no recursion limits)."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Set

from repro.graph.adjacency import Graph


def connected_components(g: Graph) -> List[Set[int]]:
    """All connected components as vertex sets, largest first.

    Isolated vertices form singleton components.  Deterministic: ties in
    size break by smallest contained vertex.
    """
    seen: Set[int] = set()
    components: List[Set[int]] = []
    for start in g.sorted_vertices():
        if start in seen:
            continue
        comp: Set[int] = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for w in g.neighbors(v):
                if w not in comp:
                    comp.add(w)
                    queue.append(w)
        seen |= comp
        components.append(comp)
    components.sort(key=lambda c: (-len(c), min(c)))
    return components


def num_connected_components(g: Graph) -> int:
    """The number of connected components."""
    return len(connected_components(g))


def largest_component(g: Graph) -> Graph:
    """The induced subgraph of the largest component (empty graph in)."""
    comps = connected_components(g)
    if not comps:
        return Graph()
    return g.subgraph(comps[0])
