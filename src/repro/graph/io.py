"""Text and binary serialization of graphs.

Three formats, mirroring what the paper's pipeline needs:

* **edge-list text** — one ``u v`` pair per line, ``#`` comments (the
  SNAP interchange format the paper's datasets ship in);
* **adjacency-list text** — ``v: n1 n2 ...`` per line, ascending ids
  (the paper's stated storage representation);
* **binary edge-list** — fixed-width little-endian ``<qq`` records, the
  format the external-memory substrate scans block by block.

These readers build the mutable dict-of-set :class:`Graph`.  For
decompose-from-file workloads that only need the immutable snapshot,
:meth:`repro.graph.csr.CSRGraph.from_edge_list_file` parses the same
text format straight into CSR arrays (chunked, dict-free) — the fast
path behind ``repro decompose --method flat|parallel``.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, Tuple, Union

from repro.errors import FormatError
from repro.graph.adjacency import Graph
from repro.graph.builders import from_edges_cleaned

PathLike = Union[str, Path]

_EDGE_STRUCT = struct.Struct("<qq")


def write_edge_list(g: Graph, path: PathLike, header: bool = True) -> None:
    """Write a SNAP-style text edge list (canonical orientation, sorted)."""
    with open(path, "w", encoding="ascii") as f:
        if header:
            f.write(f"# repro edge list: n={g.num_vertices} m={g.num_edges}\n")
        for u, v in g.sorted_edges():
            f.write(f"{u} {v}\n")


def iter_edge_list(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Stream ``(u, v)`` pairs from a text edge list, skipping comments."""
    with open(path, "r", encoding="ascii") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise FormatError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                yield int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise FormatError(f"{path}:{lineno}: non-integer vertex id") from exc


def read_edge_list(path: PathLike) -> Graph:
    """Load a text edge list into a cleaned simple graph."""
    g, _report = from_edges_cleaned(iter_edge_list(path))
    return g


def write_adjacency_list(g: Graph, path: PathLike) -> None:
    """Write the paper's adjacency-list representation as text."""
    with open(path, "w", encoding="ascii") as f:
        for v in g.sorted_vertices():
            nbrs = " ".join(str(w) for w in sorted(g.neighbors(v)))
            f.write(f"{v}: {nbrs}\n")


def read_adjacency_list(path: PathLike) -> Graph:
    """Load an adjacency-list text file (isolated vertices preserved)."""
    g = Graph()
    with open(path, "r", encoding="ascii") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            head, _, tail = line.partition(":")
            if not _:
                raise FormatError(f"{path}:{lineno}: missing ':' separator")
            try:
                v = int(head)
                g.add_vertex(v)
                for tok in tail.split():
                    g.add_edge(v, int(tok))
            except ValueError as exc:
                raise FormatError(f"{path}:{lineno}: non-integer vertex id") from exc
    return g


def write_binary_edges(
    edges: Iterable[Tuple[int, int]], path: PathLike
) -> int:
    """Write fixed-width binary edge records; return the record count."""
    count = 0
    with open(path, "wb") as f:
        for u, v in edges:
            f.write(_EDGE_STRUCT.pack(u, v))
            count += 1
    return count


def iter_binary_edges(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Stream ``(u, v)`` pairs from a binary edge file."""
    size = _EDGE_STRUCT.size
    with open(path, "rb") as f:
        while True:
            chunk = f.read(size * 4096)
            if not chunk:
                return
            if len(chunk) % size:
                raise FormatError(f"{path}: truncated edge record at EOF")
            for off in range(0, len(chunk), size):
                yield _EDGE_STRUCT.unpack_from(chunk, off)


def read_binary_edges(path: PathLike) -> Graph:
    """Load a binary edge file into a cleaned simple graph."""
    g, _report = from_edges_cleaned(iter_binary_edges(path))
    return g
