"""Edge primitives: normalization, validation and dense edge-id tables.

Throughout the library an undirected edge between vertices ``u`` and ``v``
is represented canonically as the tuple ``(min(u, v), max(u, v))``.  The
paper (Section 2) assumes vertices carry integer IDs and that ``u < v``
orders vertices; we follow that convention everywhere so that edge sets,
hash tables and on-disk records all agree on a single key per edge.

:class:`EdgeTable` assigns each canonical edge a dense integer id.  The
improved in-memory algorithm (Algorithm 2) and the external algorithms
index per-edge state (support, bounds, class) by these ids, mirroring the
"sorted edge array" of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import EdgeNotFoundError, GraphError

Edge = Tuple[int, int]


def norm_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(low, high)`` form of the undirected edge.

    Raises :class:`GraphError` for self-loops: the paper's graphs are
    simple, and a self-loop has no well-defined support.
    """
    if u == v:
        raise GraphError(f"self-loop ({u}, {v}) not allowed in a simple graph")
    return (u, v) if u < v else (v, u)


def norm_edges(pairs: Iterable[Tuple[int, int]]) -> Iterator[Edge]:
    """Yield the canonical form of each ``(u, v)`` pair."""
    for u, v in pairs:
        yield norm_edge(u, v)


def dedup_edges(pairs: Iterable[Tuple[int, int]]) -> List[Edge]:
    """Normalize, drop duplicates, and return edges sorted lexicographically.

    Self-loops raise; parallel edges collapse to one.  Sorting makes the
    output deterministic, which every seeded experiment in the benchmark
    harness relies on.
    """
    return sorted(set(norm_edges(pairs)))


class EdgeTable:
    """A bijection between canonical edges and dense ids ``0..m-1``.

    The table is append-only: ids are stable once assigned, matching how
    the sorted edge array of Algorithm 2 keeps a fixed slot per edge even
    as edges are logically removed.
    """

    __slots__ = ("_ids", "_edges")

    def __init__(self, edges: Iterable[Edge] = ()) -> None:
        self._ids: Dict[Edge, int] = {}
        self._edges: List[Edge] = []
        for u, v in edges:
            self.add(u, v)

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: Edge) -> bool:
        return norm_edge(*edge) in self._ids

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def add(self, u: int, v: int) -> int:
        """Insert the edge if absent and return its id."""
        e = norm_edge(u, v)
        eid = self._ids.get(e)
        if eid is None:
            eid = len(self._edges)
            self._ids[e] = eid
            self._edges.append(e)
        return eid

    def id_of(self, u: int, v: int) -> int:
        """Return the id of an existing edge, raising if absent."""
        e = norm_edge(u, v)
        try:
            return self._ids[e]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def get(self, u: int, v: int, default: int = -1) -> int:
        """Return the id of the edge, or ``default`` if absent."""
        return self._ids.get(norm_edge(u, v), default)

    def edge_of(self, eid: int) -> Edge:
        """Return the canonical edge for a dense id."""
        return self._edges[eid]

    @property
    def edges(self) -> Sequence[Edge]:
        """All edges, indexed by id (read-only view)."""
        return tuple(self._edges)
