"""In-memory graph substrate: simple undirected graphs and views.

Public surface::

    Graph                     mutable adjacency-set graph
    CSRGraph                  immutable CSR snapshot
    EdgeTable, norm_edge      edge canonicalization and dense ids
    neighborhood_subgraph     Definition 4's NS(U)
    from_edges, read_edge_list, ...   constructors and (de)serialization
"""

from repro.graph.adjacency import Graph
from repro.graph.components import (
    connected_components,
    largest_component,
    num_connected_components,
)
from repro.graph.builders import (
    CleaningReport,
    complete_graph,
    cycle_graph,
    disjoint_union,
    from_edges,
    from_edges_cleaned,
    path_graph,
    relabel_compact,
    star_graph,
)
from repro.graph.csr import CSRGraph
from repro.graph.edges import Edge, EdgeTable, dedup_edges, norm_edge, norm_edges
from repro.graph.io import (
    iter_binary_edges,
    iter_edge_list,
    read_adjacency_list,
    read_binary_edges,
    read_edge_list,
    write_adjacency_list,
    write_binary_edges,
    write_edge_list,
)
from repro.graph.views import (
    NeighborhoodSubgraph,
    neighborhood_subgraph,
    neighborhood_subgraph_from_edges,
    union_edge_subgraph,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "connected_components",
    "num_connected_components",
    "largest_component",
    "Edge",
    "EdgeTable",
    "norm_edge",
    "norm_edges",
    "dedup_edges",
    "NeighborhoodSubgraph",
    "neighborhood_subgraph",
    "neighborhood_subgraph_from_edges",
    "union_edge_subgraph",
    "CleaningReport",
    "from_edges",
    "from_edges_cleaned",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "disjoint_union",
    "relabel_compact",
    "read_edge_list",
    "write_edge_list",
    "iter_edge_list",
    "read_adjacency_list",
    "write_adjacency_list",
    "read_binary_edges",
    "write_binary_edges",
    "iter_binary_edges",
]
