"""Convenience constructors for :class:`repro.graph.adjacency.Graph`.

These are the entry points a library user reaches first, so they accept
sloppy input (duplicate edges, reversed orientation, iterables of any
kind) and produce a clean simple graph, reporting what was dropped when
asked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge


@dataclass(frozen=True)
class CleaningReport:
    """What :func:`from_edges_cleaned` removed while building the graph."""

    num_input_pairs: int
    num_self_loops: int
    num_duplicates: int
    num_edges: int


def from_edges(pairs: Iterable[Tuple[int, int]]) -> Graph:
    """Build a graph from ``(u, v)`` pairs; self-loops raise."""
    return Graph(pairs)


def from_edges_cleaned(
    pairs: Iterable[Tuple[int, int]],
) -> Tuple[Graph, CleaningReport]:
    """Build a graph, silently dropping self-loops and duplicates.

    Real edge lists (SNAP exports, RDF dumps such as the paper's BTC
    dataset) are full of both; this mirrors the preprocessing every graph
    system performs before decomposition.
    """
    g = Graph()
    total = loops = dupes = 0
    for u, v in pairs:
        total += 1
        if u == v:
            loops += 1
            continue
        if not g.add_edge(u, v):
            dupes += 1
    report = CleaningReport(
        num_input_pairs=total,
        num_self_loops=loops,
        num_duplicates=dupes,
        num_edges=g.num_edges,
    )
    return g, report


def complete_graph(n: int, offset: int = 0) -> Graph:
    """The clique ``K_n`` on vertices ``offset..offset+n-1``.

    Cliques are the canonical truss fixture: every edge of ``K_n`` has
    trussness exactly ``n``.
    """
    if n < 0:
        raise GraphError("clique size must be non-negative")
    g = Graph()
    for i in range(n):
        g.add_vertex(offset + i)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(offset + i, offset + j)
    return g


def cycle_graph(n: int, offset: int = 0) -> Graph:
    """The cycle ``C_n`` — triangle-free for ``n > 3``, so all-Φ2."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    g = Graph()
    for i in range(n):
        g.add_edge(offset + i, offset + (i + 1) % n)
    return g


def path_graph(n: int, offset: int = 0) -> Graph:
    """The path ``P_n`` on ``n`` vertices (``n-1`` edges, no triangles)."""
    if n < 1:
        raise GraphError("a path needs at least 1 vertex")
    g = Graph()
    g.add_vertex(offset)
    for i in range(n - 1):
        g.add_edge(offset + i, offset + i + 1)
    return g


def star_graph(n_leaves: int, center: int = 0) -> Graph:
    """A star: one hub and ``n_leaves`` spokes.  Triangle-free."""
    if n_leaves < 0:
        raise GraphError("number of leaves must be non-negative")
    g = Graph()
    g.add_vertex(center)
    for i in range(1, n_leaves + 1):
        g.add_edge(center, center + i)
    return g


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """Disjoint union with automatic vertex relabeling.

    Each input graph's vertices are shifted past the previous maximum so
    components never collide; useful for building multi-community
    fixtures with known per-component trussness.
    """
    g = Graph()
    shift = 0
    for comp in graphs:
        if comp.num_vertices == 0:
            continue
        lo = min(comp.vertices())
        hi = max(comp.vertices())
        for v in comp.vertices():
            g.add_vertex(v - lo + shift)
        for u, v in comp.edges():
            g.add_edge(u - lo + shift, v - lo + shift)
        shift += hi - lo + 1
    return g


def relabel_compact(g: Graph) -> Tuple[Graph, List[int]]:
    """Relabel vertices to ``0..n-1`` preserving ascending-id order.

    Returns the relabeled graph and ``labels`` where ``labels[i]`` is the
    original id of new vertex ``i``.
    """
    labels = g.sorted_vertices()
    index = {v: i for i, v in enumerate(labels)}
    h = Graph()
    for v in labels:
        h.add_vertex(index[v])
    for u, v in g.edges():
        h.add_edge(index[u], index[v])
    return h, labels
