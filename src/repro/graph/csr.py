"""Immutable CSR (compressed sparse row) snapshot of a graph.

Triangle counting and support initialization touch every adjacency list
many times; doing that over ``dict``-of-``set`` costs a hash probe per
element.  :class:`CSRGraph` lays the adjacency out in two flat arrays
(``indptr``/``indices``), relabels vertices to ``0..n-1``, and sorts each
adjacency run, enabling merge-style intersections and cache-friendly
scans.  It is the in-memory analogue of the on-disk adjacency format in
:mod:`repro.exio.diskgraph`.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EdgeNotFoundError, VertexNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge

try:  # optional accelerator; every code path has a stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class CSRGraph:
    """Read-only CSR view with original-id round-tripping.

    ``labels[i]`` is the original vertex id of compact vertex ``i``;
    compact ids follow ascending original-id order, so the paper's
    "vertices sorted in ascending order of their IDs" invariant holds.
    """

    __slots__ = ("indptr", "indices", "labels", "_index_of", "_eids")

    def __init__(self, indptr: array, indices: array, labels: List[int]) -> None:
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        self._index_of: Dict[int, int] = {v: i for i, v in enumerate(labels)}
        self._eids: Optional[array] = None

    @classmethod
    def from_graph(cls, g: Graph) -> "CSRGraph":
        """Snapshot a mutable :class:`Graph` into CSR form."""
        labels = g.sorted_vertices()
        if _np is not None and g.num_edges:
            return cls._from_graph_numpy(g, labels)
        index_of = {v: i for i, v in enumerate(labels)}
        indptr = array("q", [0])
        indices = array("q")
        for v in labels:
            row = sorted(index_of[w] for w in g.neighbors(v))
            indices.extend(row)
            indptr.append(len(indices))
        return cls(indptr, indices, labels)

    @classmethod
    def _from_graph_numpy(cls, g: Graph, labels: List[int]) -> "CSRGraph":
        from itertools import chain

        n, m = len(labels), g.num_edges
        flat = _np.fromiter(
            chain.from_iterable(g.edges()), dtype=_np.int64, count=2 * m
        )
        lab = _np.asarray(labels, dtype=_np.int64)
        # labels are sorted, so searchsorted IS the original->compact map
        u = _np.searchsorted(lab, flat[0::2])
        v = _np.searchsorted(lab, flat[1::2])
        src = _np.concatenate((u, v))
        dst = _np.concatenate((v, u))
        by_row = _np.lexsort((dst, src))
        indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(_np.bincount(src, minlength=n), out=indptr[1:])
        return cls(
            array("q", indptr.tobytes()),
            array("q", dst[by_row].tobytes()),
            labels,
        )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def compact_id(self, v: int) -> int:
        """Map an original vertex id to its compact ``0..n-1`` id."""
        try:
            return self._index_of[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def original_id(self, i: int) -> int:
        """Map a compact id back to the original vertex id."""
        return self.labels[i]

    def degree(self, i: int) -> int:
        """Degree of compact vertex ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors(self, i: int) -> Sequence[int]:
        """Sorted adjacency run of compact vertex ``i`` (zero-copy slice)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def edges_compact(self) -> Iterator[Tuple[int, int]]:
        """Iterate compact edges ``(i, j)`` with ``i < j``."""
        for i in range(self.num_vertices):
            for j in self.neighbors(i):
                if i < j:
                    yield (i, j)

    def edges_original(self) -> Iterator[Edge]:
        """Iterate edges in original ids, canonical orientation."""
        labels = self.labels
        for i, j in self.edges_compact():
            u, v = labels[i], labels[j]
            yield (u, v) if u < v else (v, u)

    # ------------------------------------------------------------------
    # canonical edge ids
    #
    # Both directed slots of an undirected edge carry the same id, dense
    # in 0..m-1 and assigned in ascending ``(i, j)`` (compact, i < j)
    # order — i.e. in ``edges_compact()`` iteration order.  This is the
    # integer substrate the flat peeling engine indexes its support,
    # position and alive arrays by.
    @property
    def eids(self) -> array:
        """Edge id of each directed slot, parallel to ``indices``.

        Built lazily on first access (one ``O(m log dmax)`` pass, or a
        vectorized ``np.unique`` when numpy is available), so CSR users
        that never touch edge ids pay nothing.
        """
        if self._eids is None:
            if _np is not None and len(self.indices):
                self._eids = self._build_eids_numpy()
            else:
                self._eids = self._build_eids_python()
        return self._eids

    def _build_eids_numpy(self) -> array:
        n = self.num_vertices
        indptr = _np.frombuffer(self.indptr, dtype=_np.int64)
        dst = _np.frombuffer(self.indices, dtype=_np.int64)
        src = _np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(indptr))
        # both directions of an edge share one canonical (min, max) key;
        # keys ascend exactly in edges_compact() order, so np.unique's
        # inverse IS the dense canonical id
        key = _np.minimum(src, dst) * n + _np.maximum(src, dst)
        _, eids = _np.unique(key, return_inverse=True)
        return array("q", eids.astype(_np.int64).tobytes())

    def _build_eids_python(self) -> array:
        indptr, indices = self.indptr, self.indices
        eids = array("q", [0]) * len(indices)
        next_id = 0
        for i in range(self.num_vertices):
            for t in range(indptr[i], indptr[i + 1]):
                j = indices[t]
                if i < j:
                    eids[t] = next_id
                    next_id += 1
                else:
                    # row j < i was already numbered: copy the id
                    # from the mirror slot (j, i).
                    s = bisect_left(indices, i, indptr[j], indptr[j + 1])
                    eids[t] = eids[s]
        return eids

    def edge_id(self, i: int, j: int) -> int:
        """Canonical edge id of compact edge ``(i, j)``.

        Binary-searches the shorter endpoint's sorted adjacency run;
        raises :class:`EdgeNotFoundError` if the edge is absent.
        """
        if self.degree(j) < self.degree(i):
            i, j = j, i
        lo, hi = self.indptr[i], self.indptr[i + 1]
        t = bisect_left(self.indices, j, lo, hi)
        if t == hi or self.indices[t] != j:
            raise EdgeNotFoundError(self.original_id(i), self.original_id(j))
        return self.eids[t]

    def edge_endpoints(self) -> Tuple[array, array]:
        """Compact endpoint arrays ``(eu, ev)`` indexed by edge id.

        ``eu[e] < ev[e]`` for every id ``e``; together with :attr:`eids`
        this is the full edge<->id bijection.
        """
        if _np is not None and len(self.indices):
            n = self.num_vertices
            indptr = _np.frombuffer(self.indptr, dtype=_np.int64)
            dst = _np.frombuffer(self.indices, dtype=_np.int64)
            src = _np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(indptr))
            eids = _np.frombuffer(self.eids, dtype=_np.int64)
            fwd = src < dst
            eu = _np.empty(self.num_edges, dtype=_np.int64)
            ev = _np.empty(self.num_edges, dtype=_np.int64)
            eu[eids[fwd]] = src[fwd]
            ev[eids[fwd]] = dst[fwd]
            return array("q", eu.tobytes()), array("q", ev.tobytes())
        eu, ev = array("q"), array("q")
        for i, j in self.edges_compact():
            eu.append(i)
            ev.append(j)
        return eu, ev

    def degree_order(self) -> List[int]:
        """Compact ids ordered by (degree, id) ascending.

        This is the total order used by compact-forward triangle listing:
        orienting each edge from lower- to higher-ranked endpoint makes
        every triangle counted exactly once.
        """
        return sorted(range(self.num_vertices), key=lambda i: (self.degree(i), i))
