"""Immutable CSR (compressed sparse row) snapshot of a graph.

Triangle counting and support initialization touch every adjacency list
many times; doing that over ``dict``-of-``set`` costs a hash probe per
element.  :class:`CSRGraph` lays the adjacency out in two flat arrays
(``indptr``/``indices``), relabels vertices to ``0..n-1``, and sorts each
adjacency run, enabling merge-style intersections and cache-friendly
scans.  It is the in-memory analogue of the on-disk adjacency format in
:mod:`repro.exio.diskgraph`.

Two construction routes:

* :meth:`CSRGraph.from_graph` snapshots a mutable dict-of-set
  :class:`~repro.graph.adjacency.Graph`;
* :meth:`CSRGraph.from_edges` / :meth:`CSRGraph.from_edge_list_file`
  are the **dict-free streaming ingest**: raw ``(u, v)`` pairs (or a
  SNAP-style text file, parsed in bounded chunks) go straight to the
  flat arrays — self-loops dropped, duplicates collapsed, vertex ids
  canonicalized — without ever materializing a ``Graph``.  This is the
  fast path the decompose-from-file workloads ride
  (``repro decompose --method flat|parallel``), and it assigns the
  canonical edge ids as a by-product, so :attr:`eids` is free.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import EdgeNotFoundError, FormatError, VertexNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge

try:  # optional accelerator; every code path has a stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: bytes per read of the chunked edge-list file parser (~16 MB; the
#: uniformity scan allocates a few boolean arrays of this length)
_INGEST_CHUNK_BYTES = 1 << 24


class CSRGraph:
    """Read-only CSR view with original-id round-tripping.

    ``labels[i]`` is the original vertex id of compact vertex ``i``;
    compact ids follow ascending original-id order, so the paper's
    "vertices sorted in ascending order of their IDs" invariant holds.
    """

    __slots__ = ("indptr", "indices", "labels", "_index_of", "_eids")

    def __init__(self, indptr: array, indices: array, labels: List[int]) -> None:
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        self._index_of: Dict[int, int] = {v: i for i, v in enumerate(labels)}
        self._eids: Optional[array] = None

    @classmethod
    def from_graph(cls, g: Graph) -> "CSRGraph":
        """Snapshot a mutable :class:`Graph` into CSR form."""
        labels = g.sorted_vertices()
        if _np is not None and g.num_edges:
            return cls._from_graph_numpy(g, labels)
        index_of = {v: i for i, v in enumerate(labels)}
        indptr = array("q", [0])
        indices = array("q")
        for v in labels:
            row = sorted(index_of[w] for w in g.neighbors(v))
            indices.extend(row)
            indptr.append(len(indices))
        return cls(indptr, indices, labels)

    @classmethod
    def _from_graph_numpy(cls, g: Graph, labels: List[int]) -> "CSRGraph":
        from itertools import chain

        n, m = len(labels), g.num_edges
        flat = _np.fromiter(
            chain.from_iterable(g.edges()), dtype=_np.int64, count=2 * m
        )
        lab = _np.asarray(labels, dtype=_np.int64)
        # labels are sorted, so searchsorted IS the original->compact map
        u = _np.searchsorted(lab, flat[0::2])
        v = _np.searchsorted(lab, flat[1::2])
        src = _np.concatenate((u, v))
        dst = _np.concatenate((v, u))
        by_row = _np.lexsort((dst, src))
        indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(_np.bincount(src, minlength=n), out=indptr[1:])
        return cls(
            array("q", indptr.tobytes()),
            array("q", dst[by_row].tobytes()),
            labels,
        )

    # ------------------------------------------------------------------
    # dict-free streaming ingest
    @classmethod
    def from_edges(cls, pairs: Iterable[Tuple[int, int]]) -> "CSRGraph":
        """Build a CSR graph straight from raw ``(u, v)`` pairs.

        The streaming analogue of ``from_edges_cleaned`` + ``from_graph``
        with the dict-of-set intermediate cut out: self-loops are
        dropped, duplicates (in either orientation) collapse to one
        undirected edge, and vertex ids may be arbitrary non-contiguous
        integers.  Canonical edge ids are assigned during the build, so
        :attr:`eids` costs nothing afterwards.

        Vertices that appear only in self-loops are dropped along with
        the loop, matching ``from_edges_cleaned`` semantics.
        """
        if _np is not None:
            flat = _np.fromiter(
                (x for uv in pairs for x in uv), dtype=_np.int64
            )
            return cls._from_flat_pairs_numpy(flat)
        return cls._from_pairs_python(pairs)

    @classmethod
    def from_edge_list_file(
        cls, path, chunk_bytes: int = _INGEST_CHUNK_BYTES
    ) -> "CSRGraph":
        """Parse a SNAP-style text edge list directly into CSR form.

        The file is read in ``chunk_bytes``-sized blocks aligned to line
        boundaries; with numpy available each block's integer tokens are
        bulk-converted (``#`` comment lines and blank lines skipped, the
        first two columns of each row used), so peak memory stays a few
        multiples of the chunk size plus the output arrays and no
        per-line Python object churn happens on the hot path.  Without
        numpy it degrades to the streaming line parser feeding
        :meth:`from_edges`.

        This is the ingest fast path of ``repro decompose``: on
        decompose-from-file workloads it replaces the
        ``read_edge_list`` -> ``from_graph`` route (which pays a full
        mutable-graph build just to snapshot it) and feeds the flat and
        parallel engines directly.
        """
        from repro.graph.io import iter_edge_list

        if _np is None:
            return cls.from_edges(iter_edge_list(path))
        parts: List["_np.ndarray"] = []
        with open(path, "rb") as f:
            carry = b""
            lineno = 0  # newlines consumed, for file-absolute errors
            while True:
                blob = f.read(chunk_bytes)
                if not blob:
                    break
                blob = carry + blob
                cut = blob.rfind(b"\n")
                if cut < 0:
                    carry = blob
                    continue
                carry = blob[cut + 1 :]
                block = blob[: cut + 1]
                chunk = _parse_edge_chunk(block, path, base_lineno=lineno)
                lineno += block.count(b"\n")
                if chunk is not None:
                    parts.append(chunk)
            if carry:
                chunk = _parse_edge_chunk(carry, path, base_lineno=lineno)
                if chunk is not None:
                    parts.append(chunk)
        if not parts:
            return cls(array("q", [0]), array("q"), [])
        flat = parts[0] if len(parts) == 1 else _np.concatenate(parts)
        return cls._from_flat_pairs_numpy(flat)

    @classmethod
    def _from_flat_pairs_numpy(cls, flat: "_np.ndarray") -> "CSRGraph":
        """Canonicalize/dedupe interleaved ``u0 v0 u1 v1 ...`` pairs."""
        u, v = flat[0::2], flat[1::2]
        keep = u != v  # drop self-loops
        u, v = u[keep], v[keep]
        if not len(u):
            return cls(array("q", [0]), array("q"), [])
        lo = _np.minimum(u, v)
        hi = _np.maximum(u, v)
        verts = _np.unique(_np.concatenate((lo, hi)))  # sorted labels
        n = len(verts)
        # labels are sorted, so searchsorted IS the original->compact map
        comp = _np.searchsorted(verts, _np.concatenate((lo, hi)))
        cl, ch = comp[: len(lo)], comp[len(lo) :]
        key = cl * n + ch
        if len(key) > 1 and bool(_np.all(key[1:] > key[:-1])):
            # already canonical, sorted, duplicate-free (the repo's own
            # write_edge_list emits exactly this): skip the dedupe sort
            ukey = key
        else:
            ukey = _np.unique(key)  # dedupe; ascending == canonical
        cu = ukey // n
        cv = ukey - cu * n
        src = _np.concatenate((cu, cv))
        dst = _np.concatenate((cv, cu))
        by_row = _np.lexsort((dst, src))
        indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(_np.bincount(src, minlength=n), out=indptr[1:])
        # the slot's canonical id is its edge's position among the
        # sorted unique keys — eids come free with the dedupe
        m = len(ukey)
        eids = _np.concatenate(
            (_np.arange(m, dtype=_np.int64), _np.arange(m, dtype=_np.int64))
        )[by_row]
        out = cls(
            array("q", indptr.tobytes()),
            array("q", dst[by_row].tobytes()),
            verts.tolist(),
        )
        out._eids = array("q", eids.tobytes())
        return out

    @classmethod
    def _from_pairs_python(
        cls, pairs: Iterable[Tuple[int, int]]
    ) -> "CSRGraph":
        """Stdlib ingest: sort-dedupe the pair list, then counting-sort."""
        raw = [(u, v) if u < v else (v, u) for u, v in pairs if u != v]
        raw.sort()
        edges: List[Tuple[int, int]] = []
        prev = None
        for e in raw:
            if e != prev:
                edges.append(e)
                prev = e
        labels = sorted({x for e in edges for x in e})
        index = {x: i for i, x in enumerate(labels)}
        n, m = len(labels), len(edges)
        indptr = array("q", [0]) * (n + 1)
        for a, b in edges:
            indptr[index[a] + 1] += 1
            indptr[index[b] + 1] += 1
        for i in range(1, n + 1):
            indptr[i] += indptr[i - 1]
        fill = array("q", indptr[:-1])
        indices = array("q", [0]) * (2 * m)
        eids = array("q", [0]) * (2 * m)
        # edges ascend in canonical (i, j) order, so each row's slots are
        # appended already sorted: neighbors below i arrive first (from
        # edges (x, i), x ascending), then neighbors above (j ascending)
        for e, (a, b) in enumerate(edges):
            i, j = index[a], index[b]
            t = fill[i]
            indices[t] = j
            eids[t] = e
            fill[i] = t + 1
            t = fill[j]
            indices[t] = i
            eids[t] = e
            fill[j] = t + 1
        out = cls(indptr, indices, labels)
        out._eids = eids
        return out

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    @property
    def size(self) -> int:
        """The paper's ``|G| = n + m`` in units (same as ``Graph.size``)."""
        return self.num_vertices + self.num_edges

    def compact_id(self, v: int) -> int:
        """Map an original vertex id to its compact ``0..n-1`` id."""
        try:
            return self._index_of[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def original_id(self, i: int) -> int:
        """Map a compact id back to the original vertex id."""
        return self.labels[i]

    def degree(self, i: int) -> int:
        """Degree of compact vertex ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors(self, i: int) -> Sequence[int]:
        """Sorted adjacency run of compact vertex ``i`` (zero-copy slice)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def edges_compact(self) -> Iterator[Tuple[int, int]]:
        """Iterate compact edges ``(i, j)`` with ``i < j``."""
        for i in range(self.num_vertices):
            for j in self.neighbors(i):
                if i < j:
                    yield (i, j)

    def edges_original(self) -> Iterator[Edge]:
        """Iterate edges in original ids, canonical orientation."""
        labels = self.labels
        for i, j in self.edges_compact():
            u, v = labels[i], labels[j]
            yield (u, v) if u < v else (v, u)

    # ------------------------------------------------------------------
    # canonical edge ids
    #
    # Both directed slots of an undirected edge carry the same id, dense
    # in 0..m-1 and assigned in ascending ``(i, j)`` (compact, i < j)
    # order — i.e. in ``edges_compact()`` iteration order.  This is the
    # integer substrate the flat peeling engine indexes its support,
    # position and alive arrays by.
    @property
    def eids(self) -> array:
        """Edge id of each directed slot, parallel to ``indices``.

        Built lazily on first access (one ``O(m log dmax)`` pass, or a
        vectorized ``np.unique`` when numpy is available), so CSR users
        that never touch edge ids pay nothing.
        """
        if self._eids is None:
            if _np is not None and len(self.indices):
                self._eids = self._build_eids_numpy()
            else:
                self._eids = self._build_eids_python()
        return self._eids

    def _build_eids_numpy(self) -> array:
        n = self.num_vertices
        indptr = _np.frombuffer(self.indptr, dtype=_np.int64)
        dst = _np.frombuffer(self.indices, dtype=_np.int64)
        src = _np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(indptr))
        # both directions of an edge share one canonical (min, max) key;
        # keys ascend exactly in edges_compact() order, so np.unique's
        # inverse IS the dense canonical id
        key = _np.minimum(src, dst) * n + _np.maximum(src, dst)
        _, eids = _np.unique(key, return_inverse=True)
        return array("q", eids.astype(_np.int64).tobytes())

    def _build_eids_python(self) -> array:
        indptr, indices = self.indptr, self.indices
        eids = array("q", [0]) * len(indices)
        next_id = 0
        for i in range(self.num_vertices):
            for t in range(indptr[i], indptr[i + 1]):
                j = indices[t]
                if i < j:
                    eids[t] = next_id
                    next_id += 1
                else:
                    # row j < i was already numbered: copy the id
                    # from the mirror slot (j, i).
                    s = bisect_left(indices, i, indptr[j], indptr[j + 1])
                    eids[t] = eids[s]
        return eids

    def edge_id(self, i: int, j: int) -> int:
        """Canonical edge id of compact edge ``(i, j)``.

        Binary-searches the shorter endpoint's sorted adjacency run;
        raises :class:`EdgeNotFoundError` if the edge is absent.
        """
        if self.degree(j) < self.degree(i):
            i, j = j, i
        lo, hi = self.indptr[i], self.indptr[i + 1]
        t = bisect_left(self.indices, j, lo, hi)
        if t == hi or self.indices[t] != j:
            raise EdgeNotFoundError(self.original_id(i), self.original_id(j))
        return self.eids[t]

    def edge_endpoints(self) -> Tuple[array, array]:
        """Compact endpoint arrays ``(eu, ev)`` indexed by edge id.

        ``eu[e] < ev[e]`` for every id ``e``; together with :attr:`eids`
        this is the full edge<->id bijection.
        """
        if _np is not None and len(self.indices):
            n = self.num_vertices
            indptr = _np.frombuffer(self.indptr, dtype=_np.int64)
            dst = _np.frombuffer(self.indices, dtype=_np.int64)
            src = _np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(indptr))
            eids = _np.frombuffer(self.eids, dtype=_np.int64)
            fwd = src < dst
            eu = _np.empty(self.num_edges, dtype=_np.int64)
            ev = _np.empty(self.num_edges, dtype=_np.int64)
            eu[eids[fwd]] = src[fwd]
            ev[eids[fwd]] = dst[fwd]
            return array("q", eu.tobytes()), array("q", ev.tobytes())
        eu, ev = array("q"), array("q")
        for i, j in self.edges_compact():
            eu.append(i)
            ev.append(j)
        return eu, ev

    # ------------------------------------------------------------------
    def degree_order(self) -> List[int]:
        """Compact ids ordered by (degree, id) ascending.

        This is the total order used by compact-forward triangle listing:
        orienting each edge from lower- to higher-ranked endpoint makes
        every triangle counted exactly once.
        """
        return sorted(range(self.num_vertices), key=lambda i: (self.degree(i), i))


def _line_token_counts(chunk: bytes):
    """Tokens per line of ``chunk``, fully vectorized.

    One pass over the raw bytes: a token starts wherever a
    non-whitespace byte follows whitespace (or the chunk start), and a
    cumulative-sum sampled at the newline positions yields every line's
    token count at C speed — no per-line Python objects.
    """
    arr = _np.frombuffer(chunk, dtype=_np.uint8)
    is_nl = arr == 0x0A
    is_ws = is_nl | (arr == 0x20) | (arr == 0x09) | (arr == 0x0D)
    tok_start = ~is_ws
    tok_start[1:] &= is_ws[:-1]
    csum = _np.cumsum(tok_start)
    ends = _np.flatnonzero(is_nl)
    at_ends = csum[ends]
    if not chunk.endswith(b"\n"):
        at_ends = _np.append(at_ends, csum[-1])
    return _np.diff(at_ends, prepend=0)


def _parse_edge_chunk(
    chunk: bytes, path, base_lineno: int = 0
) -> Optional["_np.ndarray"]:
    """Bulk-parse one line-aligned block of a text edge list (numpy).

    Comment (``#``) and blank lines are skipped.  When every data line
    provably has the same column count (checked with a vectorized
    per-line token-count scan, so mixed-width rows can never be
    silently re-paired) the whole block's tokens are converted in one
    ``fromiter`` sweep, taking the first two columns; anything ragged
    falls back to a per-line parse with the same semantics and error
    reporting as :func:`repro.graph.io.iter_edge_list`
    (``base_lineno`` keeps reported line numbers file-absolute across
    chunks).  Returns the interleaved ``u0 v0 u1 v1 ...`` int64 array,
    or ``None`` for a block with no data lines.
    """
    original = chunk
    # peel the leading comment/blank block without touching the body —
    # SNAP-style files carry their comments as a header, so the common
    # case never pays a per-line scan
    while chunk:
        first = chunk.split(b"\n", 1)[0]
        if first.strip() and not first.lstrip().startswith(b"#"):
            break
        nl = chunk.find(b"\n")
        if nl < 0:
            return None
        chunk = chunk[nl + 1 :]
    if not chunk.strip():
        return None
    has_mid_comments = b"#" in chunk
    if has_mid_comments:  # rare: full per-line filter
        lines = [
            ln
            for ln in chunk.split(b"\n")
            if ln.strip() and not ln.lstrip().startswith(b"#")
        ]
        if not lines:
            return None
        chunk = b"\n".join(lines)
    per_line = _line_token_counts(chunk)
    per_line = per_line[per_line > 0]  # blank lines carry no tokens
    ncols = int(per_line[0]) if per_line.size else 0
    if ncols >= 2 and bool(_np.all(per_line == ncols)):
        tokens = chunk.split()
        try:
            flat = _np.fromiter(
                map(int, tokens), dtype=_np.int64, count=len(tokens)
            )
        except ValueError:
            flat = None  # non-integer token: per-line path reports it
        if flat is not None:
            if ncols == 2:
                return flat
            return flat.reshape(-1, ncols)[:, :2].reshape(-1)
    # ragged or non-integer block: per-line slow path, exact errors
    out = array("q")
    for lineno, ln in enumerate(original.split(b"\n"), start=base_lineno + 1):
        ln = ln.strip()
        if not ln or ln.startswith(b"#"):
            continue
        parts = ln.split()
        if len(parts) < 2:
            raise FormatError(
                f"{path}:{lineno}: expected 'u v', got {ln.decode(errors='replace')!r}"
            )
        try:
            out.append(int(parts[0]))
            out.append(int(parts[1]))
        except ValueError as exc:
            raise FormatError(f"{path}:{lineno}: non-integer vertex id") from exc
    if not out:
        return None
    return _np.frombuffer(out, dtype=_np.int64).copy()
