"""Immutable CSR (compressed sparse row) snapshot of a graph.

Triangle counting and support initialization touch every adjacency list
many times; doing that over ``dict``-of-``set`` costs a hash probe per
element.  :class:`CSRGraph` lays the adjacency out in two flat arrays
(``indptr``/``indices``), relabels vertices to ``0..n-1``, and sorts each
adjacency run, enabling merge-style intersections and cache-friendly
scans.  It is the in-memory analogue of the on-disk adjacency format in
:mod:`repro.exio.diskgraph`.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import VertexNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge


class CSRGraph:
    """Read-only CSR view with original-id round-tripping.

    ``labels[i]`` is the original vertex id of compact vertex ``i``;
    compact ids follow ascending original-id order, so the paper's
    "vertices sorted in ascending order of their IDs" invariant holds.
    """

    __slots__ = ("indptr", "indices", "labels", "_index_of")

    def __init__(self, indptr: array, indices: array, labels: List[int]) -> None:
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        self._index_of: Dict[int, int] = {v: i for i, v in enumerate(labels)}

    @classmethod
    def from_graph(cls, g: Graph) -> "CSRGraph":
        """Snapshot a mutable :class:`Graph` into CSR form."""
        labels = g.sorted_vertices()
        index_of = {v: i for i, v in enumerate(labels)}
        indptr = array("q", [0])
        indices = array("q")
        for v in labels:
            row = sorted(index_of[w] for w in g.neighbors(v))
            indices.extend(row)
            indptr.append(len(indices))
        return cls(indptr, indices, labels)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def compact_id(self, v: int) -> int:
        """Map an original vertex id to its compact ``0..n-1`` id."""
        try:
            return self._index_of[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def original_id(self, i: int) -> int:
        """Map a compact id back to the original vertex id."""
        return self.labels[i]

    def degree(self, i: int) -> int:
        """Degree of compact vertex ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors(self, i: int) -> Sequence[int]:
        """Sorted adjacency run of compact vertex ``i`` (zero-copy slice)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def edges_compact(self) -> Iterator[Tuple[int, int]]:
        """Iterate compact edges ``(i, j)`` with ``i < j``."""
        for i in range(self.num_vertices):
            for j in self.neighbors(i):
                if i < j:
                    yield (i, j)

    def edges_original(self) -> Iterator[Edge]:
        """Iterate edges in original ids, canonical orientation."""
        labels = self.labels
        for i, j in self.edges_compact():
            u, v = labels[i], labels[j]
            yield (u, v) if u < v else (v, u)

    def degree_order(self) -> List[int]:
        """Compact ids ordered by (degree, id) ascending.

        This is the total order used by compact-forward triangle listing:
        orienting each edge from lower- to higher-ranked endpoint makes
        every triangle counted exactly once.
        """
        return sorted(range(self.num_vertices), key=lambda i: (self.degree(i), i))
