"""Clique substrate: Bron-Kerbosch enumeration + truss/core pruning.

Public surface::

    iter_maximal_cliques, maximal_cliques, maximum_clique
    cliques_of_size_at_least, maximum_clique_truss_pruned
    clique_search_report                 Section 7.4's claim, measured
"""

from repro.cliques.bron_kerbosch import (
    iter_maximal_cliques,
    maximal_cliques,
    maximum_clique,
)
from repro.cliques.truss_pruned import (
    CliqueSearchReport,
    clique_search_report,
    cliques_of_size_at_least,
    maximum_clique_truss_pruned,
)

__all__ = [
    "iter_maximal_cliques",
    "maximal_cliques",
    "maximum_clique",
    "cliques_of_size_at_least",
    "maximum_clique_truss_pruned",
    "clique_search_report",
    "CliqueSearchReport",
]
