"""Maximal clique enumeration: Bron–Kerbosch with pivoting.

Section 7.4 of the paper argues that the k-truss is a sharper pruning
device for clique problems than the k-core: a clique on ``c`` vertices
lies inside the ``c``-truss (every edge of a ``K_c`` closes ``c-2``
triangles within it), and ``kmax`` upper-bounds the maximum clique size
more tightly than ``cmax + 1``.  This module provides the enumeration
substrate those claims are tested and benchmarked against.

The implementation is the classic Bron–Kerbosch [7] with Tomita-style
pivoting, plus an optional degeneracy outer order, which is the
near-optimal variant of Eppstein–Löffler–Strash [17] the paper cites.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro.cores.kcore import core_numbers
from repro.graph.adjacency import Graph


def iter_maximal_cliques(g: Graph, use_degeneracy_order: bool = True) -> Iterator[List[int]]:
    """Yield every maximal clique of ``g`` (as a sorted vertex list).

    Isolated vertices form singleton maximal cliques.  With
    ``use_degeneracy_order`` the outer level follows a degeneracy
    ordering, bounding the work by ``O(d * n * 3^(d/3))`` for
    degeneracy ``d``.
    """
    if g.num_vertices == 0:
        return
    adj = {v: g.neighbors(v) for v in g.vertices()}

    def expand(r: Set[int], p: Set[int], x: Set[int]) -> Iterator[List[int]]:
        if not p and not x:
            yield sorted(r)
            return
        # Tomita pivot: the vertex of P ∪ X covering most of P
        pivot = max(p | x, key=lambda u: len(p & adj[u]))
        for v in list(p - adj[pivot]):
            yield from expand(r | {v}, p & adj[v], x & adj[v])
            p.discard(v)
            x.add(v)

    if not use_degeneracy_order:
        yield from expand(set(), set(g.vertices()), set())
        return

    core = core_numbers(g)
    order = sorted(g.vertices(), key=lambda v: (core[v], v))
    position = {v: i for i, v in enumerate(order)}
    for v in order:
        later = {w for w in adj[v] if position[w] > position[v]}
        earlier = {w for w in adj[v] if position[w] < position[v]}
        yield from expand({v}, later, earlier)


def maximal_cliques(g: Graph, use_degeneracy_order: bool = True) -> List[List[int]]:
    """All maximal cliques, sorted for determinism."""
    return sorted(iter_maximal_cliques(g, use_degeneracy_order))


def maximum_clique(g: Graph) -> List[int]:
    """One maximum clique (empty list for an empty graph)."""
    best: List[int] = []
    for clique in iter_maximal_cliques(g):
        if len(clique) > len(best):
            best = clique
    return best
