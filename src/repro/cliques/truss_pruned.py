"""Truss- and core-pruned clique search (Section 7.4, made executable).

Two facts drive the pruning:

* a clique on ``c`` vertices is a subgraph of the ``c``-truss (each of
  its edges closes ``c-2`` triangles inside the clique), so searching
  for cliques of size ``>= c`` may restrict to ``T_c``;
* similarly it lies in the ``(c-1)``-core — the weaker, classical
  filter [17].

The paper's Section 7.4 claims the truss filter is the stronger
heuristic because ``T_k`` is generally much smaller than the
``(k-1)``-core; :func:`clique_search_report` measures exactly that on a
given graph, and the ablation benchmark asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cliques.bron_kerbosch import iter_maximal_cliques, maximum_clique
from repro.core.decomposition import TrussDecomposition
from repro.core.truss_improved import truss_decomposition_improved
from repro.cores.kcore import k_core, max_core
from repro.graph.adjacency import Graph


def cliques_of_size_at_least(
    g: Graph, c: int, decomposition: Optional[TrussDecomposition] = None
) -> List[List[int]]:
    """All maximal cliques with ``>= c`` vertices, searched inside T_c.

    ``decomposition`` may be supplied to amortize the truss computation
    across queries (the intended usage pattern for clique services).
    """
    if c < 2:
        raise ValueError(f"clique size threshold must be >= 2, got {c}")
    td = decomposition if decomposition is not None else truss_decomposition_improved(g)
    truss = td.k_truss(c)
    return [
        clique
        for clique in iter_maximal_cliques(truss)
        if len(clique) >= c
    ]


def maximum_clique_truss_pruned(
    g: Graph, decomposition: Optional[TrussDecomposition] = None
) -> List[int]:
    """A maximum clique, searched only inside the kmax-truss first.

    ``kmax`` upper-bounds the maximum clique size; search descends from
    ``T_kmax`` and stops at the first level whose truss contains a
    clique of size ``>= k`` — by the bound, no lower level can beat it.
    """
    td = decomposition if decomposition is not None else truss_decomposition_improved(g)
    if td.num_edges == 0:
        return sorted(g.vertices())[:1]
    for k in range(td.kmax, 2, -1):
        truss = td.k_truss(k)
        best = maximum_clique(truss)
        if len(best) >= k:
            return best
    return maximum_clique(g)


@dataclass(frozen=True)
class CliqueSearchReport:
    """Size of the search space under no / core / truss pruning."""

    clique_size: int
    graph_edges: int
    core_edges: int
    truss_edges: int
    max_clique_bound_core: int
    max_clique_bound_truss: int

    @property
    def truss_vs_core_reduction(self) -> float:
        """How much smaller the truss filter's search space is."""
        if self.core_edges == 0:
            return 1.0
        return self.truss_edges / self.core_edges


def clique_search_report(
    g: Graph, c: int, decomposition: Optional[TrussDecomposition] = None
) -> CliqueSearchReport:
    """Measure Section 7.4's claim for cliques of size ``c`` on ``g``."""
    td = decomposition if decomposition is not None else truss_decomposition_improved(g)
    core = k_core(g, c - 1)
    truss = td.k_truss(c)
    cmax, _ = max_core(g)
    return CliqueSearchReport(
        clique_size=c,
        graph_edges=g.num_edges,
        core_edges=core.num_edges,
        truss_edges=truss.num_edges,
        max_clique_bound_core=cmax + 1,
        max_clique_bound_truss=td.kmax,
    )
