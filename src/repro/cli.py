"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``decompose`` — truss-decompose an edge-list file with any method,
  writing ``u v phi`` lines (or a summary);
* ``update``    — decompose once, then stream ``+ u v``/``- u v``
  edge updates through the incremental maintainer (:mod:`repro.stream`),
  repairing only the bounded affected region per batch (pass ``-`` as
  the updates file to read the stream from stdin);
* ``serve``     — run the long-lived truss query server
  (:mod:`repro.serve`);
* ``ktruss``    — extract one k-truss as an edge list;
* ``stats``     — graph statistics (the Table 2 row for your file);
* ``hierarchy`` — the truss fingerprint profile;
* ``generate``  — emit one of the registry's synthetic datasets.

Every command reads/writes the SNAP-style text edge-list format.

``decompose --method flat|parallel|dist`` takes the ingest fast path:
the file is streamed straight into CSR arrays (no dict-of-set graph
build) and handed to the flat, parallel or distributed engine;
``--jobs N`` sets the parallel engine's worker-process count and
``--shards dynamic|static`` picks between the per-wave frontier split
and the static owner-computes edge-id shards.  For ``--method dist``,
``--ranks N`` sets the rank count (one owned static edge shard per
rank), ``--transport loopback|tcp`` picks the message fabric —
in-process queues or rank processes over framed localhost sockets —
``--timeout SECONDS`` bounds every blocking transport step, and
``--on-failure raise|retry|fallback_flat`` picks the supervisor's
policy when a rank dies mid-run (respawn + checkpoint rewind, or
degrade to the flat engine).
``--index-storage ram|mmap`` selects where the streamed triangle-index
builder puts the O(|△G|) incidence index (default: auto by size;
``mmap`` holds driver memory at O(m) however many triangles), and
``--kernel auto|python|numpy|numba`` picks the pluggable wave-step
backend from :mod:`repro.kernels` that every engine's inner loop runs.

Profiling a decomposition
-------------------------

``decompose`` and ``update`` take ``--trace FILE`` (write the run's
span/event stream as JSON-lines, schema in :mod:`repro.obs`) and
``--metrics FILE`` (dump the run's counters/gauges/histograms —
Prometheus text format, or a JSON object when FILE ends in ``.json``).
``trace-report FILE`` renders a recorded trace as a human-readable
per-phase / per-level / per-rank timeline::

    repro decompose graph.txt --method dist --ranks 4 \\
        --trace run.jsonl --metrics run.prom -o phi.txt
    repro trace-report run.jsonl

Tracing is off by default and the engines pay only a boolean check
per wave when it stays off.

Running the server
------------------

``serve`` turns the decomposition into a long-running service::

    repro serve graph.txt --data /var/lib/truss --port 8080 --workers 4

On first start it decomposes ``GRAPH`` once; afterwards the data
directory alone is enough (``repro serve --data /var/lib/truss``) —
recovery loads the newest valid snapshot generation and replays the
write-ahead-log tail, reconverging bit-identically to the state every
acknowledged write promised.  Reads (``GET /edge/{u}/{v}/trussness``,
``GET /community/{v}?k=K``, ``GET /dump``) are answered from immutable
published views — and keep being answered, marked ``X-Repro-Stale``,
while a repair is in flight.  Writes (``POST /edges``, ``DELETE
/edges``, bulk ``POST /updates`` in the ``'+ u v'`` stream format) are
fsynced into the WAL *before* they are acknowledged, applied through
the incremental maintainer, and published as a new snapshot
generation.  ``--deadline-ms`` bounds every request (504 past the
deadline), ``--queue-depth``/``--max-inflight`` bound admission (503 +
``Retry-After`` under flood), ``--snapshot-every`` trades publish
frequency against write throughput, and ``--workers N`` forks N HTTP
worker processes sharing one listening socket.  ``GET /healthz``,
``/readyz`` and ``/metrics`` (Prometheus text) are always admitted;
``--trace FILE`` records one ``request`` span per request, rendered by
``repro trace-report`` as a server latency timeline.  Ctrl-C tears the
whole topology down: workers reaped, WAL fsynced and closed, scratch
directories removed.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core import (
    CSR_METHODS,
    METHODS,
    truss_decomposition,
    truss_hierarchy,
)
from repro.cores import GraphStatistics, average_clustering, max_core
from repro.datasets import dataset_names, load_dataset
from repro.exio import IOStats, MemoryBudget
from repro.graph import CSRGraph, Graph, read_edge_list, write_edge_list


def _load(path: str) -> Graph:
    g = read_edge_list(path)
    print(
        f"loaded {path}: n={g.num_vertices:,} m={g.num_edges:,}",
        file=sys.stderr,
    )
    return g


def _budget(g: Graph, fraction: Optional[int]) -> Optional[MemoryBudget]:
    if fraction is None:
        return None
    return MemoryBudget(units=max(16, g.size // fraction))


def _write_metrics(path: str, stats) -> None:
    """Dump a run's metrics registry: JSON for ``*.json``, else Prometheus."""
    import json

    reg = stats.metrics
    if path.endswith(".json"):
        text = json.dumps(reg.to_json(), indent=2, sort_keys=True) + "\n"
    else:
        text = reg.to_prometheus()
    with open(path, "w") as fh:
        fh.write(text)
    print(f"metrics -> {path}", file=sys.stderr)


def cmd_decompose(args: argparse.Namespace) -> int:
    for flag, value, owner in (
        ("--jobs", args.jobs, "parallel"),
        ("--shards", args.shards, "parallel"),
        ("--ranks", args.ranks, "dist"),
        ("--transport", args.transport, "dist"),
        ("--timeout", args.timeout, "dist"),
        ("--on-failure", args.on_failure, "dist"),
    ):
        if value is not None and args.method != owner:
            print(
                f"error: {flag} only applies to --method {owner} "
                f"(got --method {args.method})",
                file=sys.stderr,
            )
            return 2
    for flag, value in (
        ("--index-storage", args.index_storage),
        ("--kernel", args.kernel),
    ):
        if value is not None and args.method not in CSR_METHODS:
            print(
                f"error: {flag} only applies to --method "
                f"{'|'.join(CSR_METHODS)} (got --method {args.method})",
                file=sys.stderr,
            )
            return 2
    if args.method in CSR_METHODS and (
        args.top is not None or args.memory_fraction is not None
    ):
        print(
            f"error: --top/--memory-fraction do not apply to "
            f"--method {args.method}",
            file=sys.stderr,
        )
        return 2
    stats = IOStats()
    if args.method in CSR_METHODS:
        # ingest fast path: file -> CSR -> engine, no dict-of-set build;
        # like the legacy branch, time= covers only the decomposition
        # (the load line reports the ingest seconds separately)
        t0 = time.perf_counter()
        csr = CSRGraph.from_edge_list_file(args.input)
        print(
            f"loaded {args.input}: n={csr.num_vertices:,} "
            f"m={csr.num_edges:,} (streaming CSR ingest, "
            f"{time.perf_counter() - t0:.2f}s)",
            file=sys.stderr,
        )
        start = time.perf_counter()
        td = truss_decomposition(
            csr, method=args.method, jobs=args.jobs, shards=args.shards,
            ranks=args.ranks, transport=args.transport,
            timeout=args.timeout, on_failure=args.on_failure,
            index_storage=args.index_storage, kernel=args.kernel,
            trace_path=args.trace,
        )
        elapsed = time.perf_counter() - start
    else:
        g = _load(args.input)
        start = time.perf_counter()
        td = truss_decomposition(
            g,
            method=args.method,
            memory_budget=_budget(g, args.memory_fraction),
            io_stats=stats if args.method in ("bottomup", "topdown") else None,
            top_t=args.top,
            trace_path=args.trace,
        )
        elapsed = time.perf_counter() - start
    if args.metrics:
        _write_metrics(args.metrics, td.stats)
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        for (u, v), k in sorted(td.trussness.items()):
            print(f"{u} {v} {k}", file=out)
    finally:
        if args.output:
            out.close()
    print(
        f"method={args.method} kmax={td.kmax} classes="
        f"{len(td.k_classes())} time={elapsed:.2f}s "
        + (f"blocks={stats.total_blocks}" if stats.total_blocks else ""),
        file=sys.stderr,
    )
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    from repro.obs import open_tracer
    from repro.stream import TrussMaintainer
    from repro.stream.updates import read_update_stream

    if args.batch < 1:
        print(f"error: --batch must be >= 1 (got {args.batch})", file=sys.stderr)
        return 2
    try:
        # one parser for the CLI, the server's bulk endpoint and the
        # WAL (repro.stream.updates); '-' reads the stream from stdin
        updates = read_update_stream(args.updates)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    csr = CSRGraph.from_edge_list_file(args.input)
    tracer, owned = open_tracer(trace_path=args.trace)
    try:
        tm = TrussMaintainer.from_graph(
            csr, kernel=args.kernel, trace=tracer
        )
        print(
            f"loaded {args.input}: n={csr.num_vertices:,} m={csr.num_edges:,} "
            f"(decomposed once, {time.perf_counter() - t0:.2f}s)",
            file=sys.stderr,
        )
        start = time.perf_counter()
        applied = 0
        for i in range(0, len(updates), args.batch):
            applied += tm.apply_batch(updates[i : i + args.batch])
        elapsed = time.perf_counter() - start
    finally:
        if owned:
            tracer.close()
    td = tm.as_decomposition()
    if args.metrics:
        _write_metrics(args.metrics, tm.stats)
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        for (u, v), k in sorted(td.trussness.items()):
            print(f"{u} {v} {k}", file=out)
    finally:
        if args.output:
            out.close()
    extra = tm.stats.extra
    print(
        f"updates={len(updates)} applied={applied} batch={args.batch} "
        f"repairs={int(extra.get('repairs', 0))} "
        f"affected={int(extra.get('affected_edges', 0))} "
        f"kmax={td.kmax} time={elapsed:.2f}s",
        file=sys.stderr,
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import ServeConfig, run_server
    from repro.serve.service import ServeError

    cfg = ServeConfig(
        data_dir=args.data,
        graph=args.graph,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        snapshot_every=args.snapshot_every,
        deadline_ms=args.deadline_ms,
        max_inflight=args.max_inflight,
        client_timeout=args.client_timeout,
        refresh_ms=args.refresh_ms,
        kernel=args.kernel,
        fsync=not args.no_fsync,
        trace=args.trace,
    )
    try:
        run_server(cfg)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.report import render_trace_report

    try:
        print(render_trace_report(args.trace))
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_ktruss(args: argparse.Namespace) -> int:
    from repro.core import k_truss

    g = _load(args.input)
    t = k_truss(g, args.k)
    write_edge_list(t, args.output)
    print(
        f"T_{args.k}: n={t.num_vertices:,} m={t.num_edges:,} -> {args.output}",
        file=sys.stderr,
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    g = _load(args.input)
    s = GraphStatistics.of(g)
    td = truss_decomposition(g)
    cmax, _ = max_core(g)
    print(f"vertices        {s.num_vertices:,}")
    print(f"edges           {s.num_edges:,}")
    print(f"size (bytes)    {s.size_bytes:,}")
    print(f"max degree      {s.max_degree:,}")
    print(f"median degree   {s.median_degree}")
    print(f"kmax (truss)    {td.kmax}")
    print(f"cmax (core)     {cmax}")
    print(f"clustering      {average_clustering(g):.4f}")
    return 0


def cmd_hierarchy(args: argparse.Namespace) -> int:
    g = _load(args.input)
    h = truss_hierarchy(g)
    print(f"{'k':>5} {'|V|':>10} {'|E|':>10} {'comps':>7} {'density':>9} {'CC':>7}")
    for row in h.levels:
        print(
            f"{row.k:>5} {row.num_vertices:>10,} {row.num_edges:>10,} "
            f"{row.num_components:>7} {row.density:>9.4f} {row.clustering:>7.3f}"
        )
    print(f"collapse level: {h.collapse_level()}", file=sys.stderr)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    g = load_dataset(args.name, scale=args.scale)
    write_edge_list(g, args.output)
    print(
        f"{args.name}@{args.scale}: n={g.num_vertices:,} m={g.num_edges:,} "
        f"-> {args.output}",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Truss decomposition in massive networks (VLDB 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "decompose",
        help="truss-decompose an edge list",
        description=(
            "Truss-decompose an edge-list file.  Methods 'flat' and "
            "'parallel' stream the file straight into CSR arrays (the "
            "dict-free ingest fast path) instead of building a mutable "
            "graph first."
        ),
    )
    p.add_argument("input", help="edge-list file (u v per line)")
    p.add_argument("-o", "--output", help="write 'u v phi' lines here")
    p.add_argument(
        "--method",
        default="improved",
        choices=list(METHODS),
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for --method parallel (default: auto — "
            "serial on small graphs, one per core otherwise)"
        ),
    )
    p.add_argument(
        "--shards",
        default=None,
        choices=["dynamic", "static"],
        help=(
            "frontier partitioning for --method parallel: 'dynamic' "
            "re-splits each wave, 'static' fixes incidence-balanced "
            "edge-id shards owned by one worker for the whole peel "
            "(default: dynamic)"
        ),
    )
    p.add_argument(
        "--ranks",
        type=int,
        default=None,
        metavar="N",
        help=(
            "rank count for --method dist: one owned static edge "
            "shard per rank (default: auto — a single rank on small "
            "graphs, one per core otherwise)"
        ),
    )
    p.add_argument(
        "--transport",
        default=None,
        choices=["loopback", "tcp"],
        help=(
            "message fabric for --method dist: 'loopback' runs the "
            "ranks as in-process queue-connected threads, 'tcp' as "
            "processes meshed over length-prefixed localhost sockets "
            "(default: loopback)"
        ),
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "deadline for any single blocking transport step under "
            "--method dist — socket/queue receives, mesh dial, the "
            "driver's gather loops (default: the built-in 120s, "
            "overridable via REPRO_DIST_TIMEOUT)"
        ),
    )
    p.add_argument(
        "--on-failure",
        default=None,
        choices=["raise", "retry", "fallback_flat"],
        help=(
            "supervisor policy for --method dist when a rank dies "
            "mid-run: 'raise' fails fast, 'retry' respawns the mesh "
            "and rewinds to the newest common checkpoint barrier "
            "(bounded retries), 'fallback_flat' retries then degrades "
            "to the in-process flat engine (default: raise)"
        ),
    )
    p.add_argument(
        "--index-storage",
        default=None,
        choices=["ram", "mmap"],
        help=(
            "triangle-index destination for the CSR methods: 'ram' "
            "keeps it in memory (shared-memory blocks under --method "
            "parallel), 'mmap' streams it to disk and maps it "
            "read-only — O(m) driver memory however many triangles "
            "(default: auto by size; --method dist always reads it "
            "from disk)"
        ),
    )
    p.add_argument(
        "--kernel",
        default=None,
        choices=["auto", "python", "numpy", "numba"],
        help=(
            "wave-step backend for the CSR methods: 'python' "
            "(interpreted stdlib loops), 'numpy' (the vectorized "
            "reference), 'numba' (JIT-compiled, needs the optional "
            "numba package), or 'auto' to pick the best available "
            "(default: auto)"
        ),
    )
    p.add_argument(
        "--memory-fraction",
        type=int,
        default=None,
        metavar="F",
        help="simulate memory M = |G|/F (external methods)",
    )
    p.add_argument("--top", type=int, default=None, help="top-t classes (topdown)")
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "record the run's span/event stream as JSON-lines here "
            "(schema in repro.obs; render with 'repro trace-report')"
        ),
    )
    p.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help=(
            "dump the run's counters/gauges/histograms here — "
            "Prometheus text exposition, or JSON when FILE ends .json"
        ),
    )
    p.set_defaults(func=cmd_decompose)

    p = sub.add_parser(
        "update",
        help="incrementally maintain trussness under edge updates",
        description=(
            "Decompose an edge-list file once, then stream '+ u v' / "
            "'- u v' updates through the incremental maintainer "
            "(repro.stream), repairing only the bounded affected "
            "region per update batch.  Output is the same sorted "
            "'u v phi' lines as 'decompose' — byte-identical to a "
            "from-scratch recompute of the mutated graph."
        ),
    )
    p.add_argument("input", help="edge-list file (u v per line)")
    p.add_argument(
        "updates",
        help=(
            "update-stream file: '+ u v' inserts, '- u v' deletes "
            "('-' reads the stream from stdin)"
        ),
    )
    p.add_argument("-o", "--output", help="write final 'u v phi' lines here")
    p.add_argument(
        "--batch",
        type=int,
        default=1,
        metavar="B",
        help="apply updates in batches of B, one repair per batch (default 1)",
    )
    p.add_argument(
        "--kernel",
        default=None,
        choices=["auto", "python", "numpy", "numba"],
        help="wave-step backend for the repair peels (default: auto)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "record the seeding decomposition's and every repair's "
            "spans as JSON-lines here (render with 'repro trace-report')"
        ),
    )
    p.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help=(
            "dump the maintainer's repair counters here — Prometheus "
            "text exposition, or JSON when FILE ends .json"
        ),
    )
    p.set_defaults(func=cmd_update)

    p = sub.add_parser(
        "serve",
        help="run the long-lived truss query server",
        description=(
            "Serve trussness and community queries over HTTP while "
            "accepting edge updates, with a survivability contract: "
            "writes are WAL-logged (fsync) before they are "
            "acknowledged, state is published as immutable CRC-"
            "manifested snapshot generations, and a restart after any "
            "crash replays the WAL tail back to the exact acked state. "
            "On first start GRAPH seeds the decomposition; later "
            "restarts need only --data."
        ),
    )
    p.add_argument(
        "graph",
        nargs="?",
        default=None,
        help=(
            "edge-list file to seed from (optional once the data "
            "directory holds a valid snapshot)"
        ),
    )
    p.add_argument(
        "--data",
        required=True,
        metavar="DIR",
        help="data directory: snapshot generations + write-ahead log",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="listening port (default 0: pick a free one, recorded "
        "in DIR/endpoint.json)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="W",
        help=(
            "HTTP worker processes sharing one listening socket "
            "(default 0: serve in-process); the master stays the "
            "single writer"
        ),
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="N",
        help="bounded write admission queue; beyond it writes shed "
        "with 503 (default 16)",
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=1,
        metavar="B",
        help="publish a snapshot generation every B write batches "
        "(default 1: every batch)",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=2000.0,
        metavar="MS",
        help="default per-request deadline, overridable per request "
        "via X-Deadline-Ms (default 2000)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="per-process concurrent request bound; beyond it "
        "requests shed with 503 (default 64)",
    )
    p.add_argument(
        "--client-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="per-connection socket timeout — slow clients are "
        "dropped, not accumulated (default 10)",
    )
    p.add_argument(
        "--refresh-ms",
        type=float,
        default=50.0,
        metavar="MS",
        help="worker read-view refresh throttle under --workers N "
        "(default 50)",
    )
    p.add_argument(
        "--kernel",
        default=None,
        choices=["auto", "python", "numpy", "numba"],
        help="wave-step backend for the repair peels (default: auto)",
    )
    p.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip per-append WAL fsync (benchmarking the durability "
        "tax only — voids the recovery contract)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "record recovery/publish/request spans as JSON-lines here "
            "(workers append .wN; render with 'repro trace-report')"
        ),
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "trace-report",
        help="render a recorded --trace file as a timeline report",
        description=(
            "Render a JSON-lines trace recorded by 'decompose --trace' "
            "or 'update --trace' as a human-readable report: per-phase "
            "wall-clock split (index build vs peel vs repairs), the "
            "per-level frontier-decay timeline, per-rank skew for "
            "distributed runs, and any degradation warnings the run "
            "emitted."
        ),
    )
    p.add_argument("trace", help="JSON-lines trace file (from --trace)")
    p.set_defaults(func=cmd_trace_report)

    p = sub.add_parser("ktruss", help="extract one k-truss")
    p.add_argument("input")
    p.add_argument("k", type=int)
    p.add_argument("output")
    p.set_defaults(func=cmd_ktruss)

    p = sub.add_parser("stats", help="graph statistics (Table 2 row)")
    p.add_argument("input")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("hierarchy", help="truss fingerprint profile")
    p.add_argument("input")
    p.set_defaults(func=cmd_hierarchy)

    p = sub.add_parser("generate", help="emit a registry dataset")
    p.add_argument("name", choices=dataset_names())
    p.add_argument("output")
    p.add_argument("--scale", type=float, default=0.1)
    p.set_defaults(func=cmd_generate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
