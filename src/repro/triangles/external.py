"""I/O-efficient exact support counting over partitioned subgraphs.

This is the Chu–Cheng external triangle-counting pattern [13, 14] the
paper builds on: repeatedly partition the *not-yet-counted* part of the
graph into blocks whose neighborhood subgraphs fit in memory, extract
each ``NS(P_i)`` **from the full graph**, and read off exact supports of
the block's internal edges (internal edges see all their triangles —
the Definition 4 property).

Extracting from the full graph (rather than a shrinking one) is what
makes the reported supports exact in ``G``: a triangle's edges may be
counted in different rounds, and a shrunken graph would have already
lost earlier rounds' edges.  Exactness is required by the top-down
algorithm, whose upper bound ``psi(e) = min(sup(e), x_u, x_v) + 2``
(Lemma 2) is only an upper bound when the supports are not undercounts.

The number of rounds is bounded the same way as the paper's
LowerBounding: each round retires every within-block edge; if a round
makes no progress (possible with adversarial block boundaries), the
block capacity is doubled — a documented engineering safeguard that
keeps the worst case at ``O(log)`` extra rounds.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, Set, Tuple

from repro.exio.edgefile import DiskEdgeFile
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge
from repro.partition.base import (
    Partitioner,
    PartitionSource,
    partition_with_escape,
)
from repro.triangles.support import supports_within


def external_edge_supports(
    g_file: DiskEdgeFile,
    budget: MemoryBudget,
    partitioner: Partitioner,
    workdir: Path,
    stats: IOStats,
) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(u, v, sup(e, G))`` for every edge of ``g_file`` exactly once.

    ``g_file`` is left untouched (it is the full-graph reference).  The
    shrinking "remaining" edge set is spilled to a scratch file inside
    ``workdir``; memory use per round is one block's neighborhood
    subgraph plus O(n) partitioner state.
    """
    from repro.partition.distribute import distribute_edges

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    remaining = DiskEdgeFile.from_records(
        workdir / "support-remaining.bin", g_file.scan(), stats
    )
    capacity_boost = 1
    round_no = 0
    try:
        while not remaining.is_empty:
            round_no += 1
            source = PartitionSource.from_edge_file(remaining)
            blocks = partition_with_escape(
                partitioner, source, budget, boost=capacity_boost
            )
            block_of = {v: i for i, blk in enumerate(blocks) for v in blk}
            # one scan of the FULL graph routes every NS(P_i) edge to its
            # bucket(s); exactness needs the full graph, not `remaining`
            buckets = distribute_edges(
                g_file.scan(), block_of, len(blocks), workdir, stats,
                tag=f"sup{round_no}",
            )
            # a parallel scan of `remaining` routes each still-uncounted
            # edge to the (single) block where it is internal this round
            targets = distribute_edges(
                (
                    rec
                    for rec in remaining.scan()
                    if block_of.get(rec[0]) == block_of.get(rec[1])
                ),
                {v: b for v, b in block_of.items()},
                len(blocks),
                workdir,
                stats,
                tag=f"tgt{round_no}",
            )
            done_this_round: Set[Edge] = set()
            for index, block in enumerate(blocks):
                wanted = {(u, v) for u, v, _a in targets.read(index)}
                if not wanted:
                    continue
                block_set = set(block)
                h = Graph()
                for u, v, _attr in buckets.read(index):
                    h.add_edge(u, v)
                sup = supports_within(h, block_set)
                for u, v in wanted:
                    yield (u, v, sup[(u, v)])
                    done_this_round.add((u, v))
            buckets.delete()
            targets.delete()
            if done_this_round:
                remaining.rewrite(
                    lambda rec: None if (rec[0], rec[1]) in done_this_round else rec
                )
                capacity_boost = 1
            else:
                capacity_boost *= 2
    finally:
        remaining.delete()


def external_supports_to_file(
    g_file: DiskEdgeFile,
    out_path: Path,
    budget: MemoryBudget,
    partitioner: Partitioner,
    workdir: Path,
    stats: IOStats,
) -> DiskEdgeFile:
    """Materialize :func:`external_edge_supports` as an attributed file."""
    return DiskEdgeFile.from_records(
        out_path,
        external_edge_supports(g_file, budget, partitioner, workdir, stats),
        stats,
    )


def external_triangle_count(
    g_file: DiskEdgeFile,
    budget: MemoryBudget,
    partitioner: Partitioner,
    workdir: Path,
    stats: IOStats,
) -> int:
    """``|△G|`` without holding G in memory (sum of supports / 3)."""
    total = 0
    for _u, _v, s in external_edge_supports(
        g_file, budget, partitioner, workdir, stats
    ):
        total += s
    return total // 3
