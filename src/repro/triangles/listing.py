"""In-memory triangle listing: the compact-forward algorithm.

This is the ``O(m^1.5)`` triangle listing of Schank [27] and Latapy
[20] that the paper uses for support initialization (Algorithm 2,
Step 2).  Vertices are ranked by ``(degree, id)``; each edge is oriented
from lower to higher rank; a triangle ``{a, b, c}`` with rank
``a < b < c`` is found exactly once, at its lowest-ranked edge, by
intersecting the out-neighborhoods of ``a`` and ``b``.

The rank trick is also the proof device of the paper's Theorem 1: a
vertex has at most ``2·sqrt(m)`` neighbors of equal-or-higher degree,
which bounds the total intersection work by ``O(m^1.5)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.graph.adjacency import Graph
from repro.graph.edges import Edge

Triangle = Tuple[int, int, int]


def degree_ranks(g: Graph) -> Dict[int, int]:
    """Rank vertices by ``(degree, id)`` ascending; rank is dense 0..n-1."""
    order = sorted(g.vertices(), key=lambda v: (g.degree(v), v))
    return {v: i for i, v in enumerate(order)}


def oriented_adjacency(g: Graph) -> Dict[int, Set[int]]:
    """Out-neighborhoods under the degree-rank orientation.

    ``out[v]`` holds exactly the neighbors of ``v`` with higher rank, so
    ``sum(len(out[v]))`` is ``m`` and each ``|out[v]|`` is ``O(sqrt(m))``.
    """
    rank = degree_ranks(g)
    out: Dict[int, Set[int]] = {v: set() for v in g.vertices()}
    for v in g.vertices():
        rv = rank[v]
        row = out[v]
        for w in g.neighbors(v):
            if rank[w] > rv:
                row.add(w)
    return out


def iter_triangles(g: Graph) -> Iterator[Triangle]:
    """Yield every triangle of ``g`` exactly once.

    The tuple is ordered by rank: ``(a, b, c)`` with
    ``rank(a) < rank(b) < rank(c)``; no vertex repeats across positions
    of one triangle, and the set of frozensets is the paper's ``△G``.
    """
    out = oriented_adjacency(g)
    for a in g.vertices():
        out_a = out[a]
        for b in out_a:
            # out[b] only holds ranks above b, so every common member c
            # satisfies rank(a) < rank(b) < rank(c): each triangle is
            # produced exactly once, at its lowest-ranked edge.
            for c in out_a & out[b]:
                yield (a, b, c)


def triangle_count(g: Graph) -> int:
    """``|△G|``: the number of triangles in ``g``."""
    count = 0
    out = oriented_adjacency(g)
    for a in g.vertices():
        out_a = out[a]
        for b in out_a:
            count += len(out_a & out[b])
    return count
