"""Triangle engine: listing, counting and per-edge support.

Public surface::

    iter_triangles, triangle_count      compact-forward O(m^1.5) listing
    edge_supports, supports_within      Definition 1's sup(e)
    external_edge_supports              partitioned, I/O-accounted variant
"""

from repro.triangles.listing import (
    degree_ranks,
    iter_triangles,
    oriented_adjacency,
    triangle_count,
)
from repro.triangles.external import (
    external_edge_supports,
    external_supports_to_file,
    external_triangle_count,
)
from repro.triangles.support import (
    edge_supports,
    max_support,
    support_of_edges,
    supports_within,
)

__all__ = [
    "external_edge_supports",
    "external_supports_to_file",
    "external_triangle_count",
    "iter_triangles",
    "triangle_count",
    "degree_ranks",
    "oriented_adjacency",
    "edge_supports",
    "support_of_edges",
    "supports_within",
    "max_support",
]
