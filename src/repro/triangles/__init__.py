"""Triangle engine: listing, counting, support, and the incidence index.

Public surface::

    iter_triangles, triangle_count      compact-forward O(m^1.5) listing
    edge_supports, supports_within      Definition 1's sup(e)
    external_edge_supports              partitioned, I/O-accounted variant
    build_triangle_index                streaming two-pass counting build
    count_edge_incidence                its counting pass (supports only)
    TriangleIndex                       the index bundle + on-disk format

The triangle index (``e1``/``e2``/``e3`` per-triangle edge columns,
``tptr``/``tinc`` edge->triangle incidence with ascending windows) is
the structure every CSR peel engine — ``flat``, ``parallel``, ``dist``
— runs over; :mod:`repro.triangles.index_builder` documents the build
contract and the on-disk ``.npy`` layout that
:meth:`TriangleIndex.open` memory-maps.
"""

from repro.triangles.listing import (
    degree_ranks,
    iter_triangles,
    oriented_adjacency,
    triangle_count,
)
from repro.triangles.external import (
    external_edge_supports,
    external_supports_to_file,
    external_triangle_count,
)
from repro.triangles.index_builder import (
    INDEX_STORAGES,
    TriangleIndex,
    build_triangle_index,
    count_edge_incidence,
)
from repro.triangles.support import (
    edge_supports,
    max_support,
    support_of_edges,
    supports_within,
)

__all__ = [
    "INDEX_STORAGES",
    "TriangleIndex",
    "build_triangle_index",
    "count_edge_incidence",
    "external_edge_supports",
    "external_supports_to_file",
    "external_triangle_count",
    "iter_triangles",
    "triangle_count",
    "degree_ranks",
    "oriented_adjacency",
    "edge_supports",
    "support_of_edges",
    "supports_within",
    "max_support",
]
