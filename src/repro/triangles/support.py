"""Per-edge support computation (Definition 1).

``sup(e)`` is the number of triangles containing ``e``.  Initializing
supports for all edges is Step 2 of Algorithm 2 and Step 1 of
Procedures 5/8; it costs one compact-forward triangle listing, i.e.
``O(m^1.5)`` time — the paper's stated bound.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge
from repro.triangles.listing import iter_triangles, oriented_adjacency


def edge_supports(g: Graph) -> Dict[Edge, int]:
    """Support of every edge of ``g``, keyed by canonical edge.

    Every edge appears in the result, including support-0 edges (they
    are exactly the 2-class when peeling starts).
    """
    sup: Dict[Edge, int] = {e: 0 for e in g.edges()}
    for a, b, c in iter_triangles(g):
        sup[norm_edge(a, b)] += 1
        sup[norm_edge(a, c)] += 1
        sup[norm_edge(b, c)] += 1
    return sup


def support_of_edges(g: Graph, edges: Iterable[Edge]) -> Dict[Edge, int]:
    """Support of selected edges only, by direct neighbor intersection.

    Cheaper than a full listing when only a few edges are needed (the
    upper-bounding step queries supports of internal edges only).
    """
    out: Dict[Edge, int] = {}
    for u, v in edges:
        e = norm_edge(u, v)
        out[e] = len(g.common_neighbors(u, v))
    return out


def max_support(g: Graph) -> int:
    """The maximum edge support (0 for triangle-free graphs)."""
    sup = edge_supports(g)
    return max(sup.values(), default=0)


def supports_within(g: Graph, internal: "frozenset[int] | set[int]") -> Dict[Edge, int]:
    """Supports of *internal* edges of a neighborhood subgraph.

    ``g`` must be ``NS(U)`` for ``U = internal``; supports of edges with
    both endpoints in ``U`` are then exact in the parent graph (the
    observation behind Algorithm 3, Steps 8-9).  Triangles are still
    counted in all of ``g`` — external edges contribute to internal
    edges' supports — but only internal edges are reported.
    """
    sup: Dict[Edge, int] = {}
    for u, v in g.edges():
        if u in internal and v in internal:
            sup[(u, v)] = 0
    for a, b, c in iter_triangles(g):
        for x, y in ((a, b), (a, c), (b, c)):
            e = norm_edge(x, y)
            if e in sup:
                sup[e] += 1
    return sup
