"""Streaming two-pass triangle-index construction (numpy substrate).

Every CSR peel engine (``flat`` serial waves, ``parallel`` shared
memory, ``dist`` rank processes) runs over the same materialized
edge->triangle incidence index: the per-triangle edge columns
``e1``/``e2``/``e3`` and the CSR-style incidence ``tptr``/``tinc``
(``tinc[tptr[e]:tptr[e+1]]`` are the ids of the triangles containing
edge ``e``, ascending).  Building that index used to be the slow,
memory-hungry prefix shared by all of them: list every triangle into
RAM, concatenate all three columns (3·|△G| slots), and derive ``tinc``
with one global ``np.argsort`` — O(T log T) time and ~5 simultaneous
int64 arrays of triangle length.

This module replaces that with a **two-pass counting build** over the
chunked wedge enumerator:

1. **count** — a pass over the triangle stream keeping only a per-edge
   incidence count: this is ``sup`` (Definition 1's initial supports),
   and its exclusive prefix sum is ``tptr``;
2. **scatter** — place each chunk's incidence entries directly into
   their final ``tinc`` slots through per-edge fill cursors
   (``fill = tptr[:-1]``).  Grouping a chunk's entries by edge uses
   numpy's *stable integer sort* — a radix/counting sort, O(chunk) —
   so no triangle-scale sort or concatenation ever exists; the entries
   are interleaved by triangle first, which makes every edge's window
   come out ascending in triangle id regardless of the chunk size (the
   layout is chunk-invariant, bit for bit).

The destination is pluggable, and it decides how the triangle stream
feeds the two passes.  ``storage="ram"`` enumerates wedges **once**:
the edge-column chunks are kept (they are the index's own
``e1``/``e2``/``e3``, concatenated once at the end), and the count +
scatter passes then run over those stored columns chunk by chunk
(peak: the index plus one transient column copy and O(m + chunk)
scratch — never the legacy build's ~15·|△G| slots).
``storage="mmap"`` holds *nothing* triangle-length in RAM: the counting
pass consumes one enumeration, preallocates the five on-disk arrays of
the :class:`TriangleIndex` ``.npy`` layout through
``np.lib.format.open_memmap``, and a second enumeration scatters into
them — O(m + chunk) peak however large |△G| gets, which is what drops
the ``dist`` driver's build memory from O(|△G|) to O(m + chunk).
``storage="auto"`` picks between them up front using the DAG's total
wedge count — a free upper bound on |△G|.

On-disk format (``TriangleIndex.FIELDS``, written by the mmap storage
and by :meth:`TriangleIndex.write`, read by :meth:`TriangleIndex.open`):
one directory with five little-endian int64 ``.npy`` files —
``e1.npy``/``e2.npy``/``e3.npy`` (length |△G|), ``tptr.npy`` (length
m+1), ``tinc.npy`` (length 3·|△G|).  Readers mmap them read-only, so
rank/worker processes on one host share the page cache instead of each
holding a private copy.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Iterator, Optional, Tuple

from repro.errors import DecompositionError
from repro.graph.csr import CSRGraph

try:  # the index substrate is numpy-only (callers gate on this too)
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: wedge-buffer cap for the chunked enumerator (~16 MB/array); the
#: builder's peak scratch memory is a few multiples of this
_WEDGE_CHUNK = 2_000_000

#: ``storage="auto"`` spills to mmap once the index's 6·|△G| int64
#: slots (e1+e2+e3+tinc) *could* exceed this — judged by the DAG's
#: total wedge count, a free upper bound on |△G|
_AUTO_MMAP_INDEX_BYTES = 1 << 30

#: the selectable index destinations (``truss_decomposition``'s
#: ``index_storage`` / the CLI's ``--index-storage``)
INDEX_STORAGES = ("ram", "mmap")


class TriangleIndex:
    """The materialized triangle index, in RAM or mmapped from disk.

    Five int64 arrays: the per-triangle edge columns ``e1``/``e2``/
    ``e3`` and the edge->triangle incidence ``tptr``/``tinc``.  Built
    by :func:`build_triangle_index`; persisted as one ``.npy`` file per
    field (:meth:`write`, or streamed directly by the builder's mmap
    storage); reopened memory-mapped by :meth:`open` — the read side
    every :class:`repro.dist.rank.Rank` and mmap-mode pool worker uses,
    so processes share the page cache instead of private copies.
    """

    FIELDS = ("e1", "e2", "e3", "tptr", "tinc")

    def __init__(
        self, e1, e2, e3, tptr, tinc, storage: str = "ram",
        dirpath: Optional[Path] = None, owns_dirpath: bool = False,
    ) -> None:
        self.e1 = e1
        self.e2 = e2
        self.e3 = e3
        self.tptr = tptr
        self.tinc = tinc
        self.storage = storage
        self.dirpath = Path(dirpath) if dirpath is not None else None
        self.owns_dirpath = owns_dirpath

    def cleanup(self) -> None:
        """Delete the on-disk files when this index owns its directory.

        Only meaningful for an index the builder spilled into a
        directory it created itself (``storage="auto"`` resolving to
        mmap with no caller-supplied ``dirpath``); indexes written into
        a caller-owned directory are left untouched — the caller's
        tempdir (or deliberate persistence) governs their lifetime.
        Idempotent.
        """
        if self.owns_dirpath and self.dirpath is not None:
            import shutil

            shutil.rmtree(self.dirpath, ignore_errors=True)
            self.owns_dirpath = False

    @property
    def num_triangles(self) -> int:
        return len(self.e1)

    @property
    def num_edges(self) -> int:
        return len(self.tptr) - 1

    def initial_supports(self):
        """A fresh mutable support array: each edge's incidence count."""
        return _np.diff(_np.asarray(self.tptr, dtype=_np.int64))

    @staticmethod
    def write(dirpath, e1, e2, e3, tptr, tinc) -> None:
        """Persist the five arrays as ``.npy`` files under ``dirpath``."""
        dirpath = Path(dirpath)
        for name, arr in zip(TriangleIndex.FIELDS, (e1, e2, e3, tptr, tinc)):
            _np.save(
                dirpath / f"{name}.npy",
                _np.ascontiguousarray(arr, dtype=_np.int64),
            )

    @classmethod
    def open(cls, dirpath) -> "TriangleIndex":
        """Map the five arrays read-only from ``dirpath``."""
        dirpath = Path(dirpath)
        arrays = []
        for name in cls.FIELDS:
            path = dirpath / f"{name}.npy"
            try:
                arrays.append(_np.load(path, mmap_mode="r"))
            except (ValueError, OSError):
                # zero-length arrays on platforms that refuse empty maps
                arrays.append(_np.load(path))
        return cls(*arrays, storage="mmap", dirpath=dirpath)


# ---------------------------------------------------------------------------
# the chunked wedge enumerator, shared by both passes
# ---------------------------------------------------------------------------
class _WedgeDAG:
    """The rank-oriented wedge DAG of a CSR snapshot, built once.

    Vectorized compact-forward listing state: orient each edge from
    lower to higher ``(degree, id)`` rank, sort the oriented edges by
    key ``ra*n + rb``, and a triangle ``ra < rb < rc`` is closed
    exactly once, at its wedge ``(a->b, b->c)``, by locating key
    ``ra*n + rc`` among the sorted keys.  All state is O(m) (the one
    sort here is over *edges*, never triangles); the enumeration
    itself streams in bounded chunks and is re-runnable, which is what
    lets the index builder count on pass 1 and scatter on pass 2
    without ever materializing the full triangle list.
    """

    __slots__ = ("n", "total", "key", "e_of", "ra", "rb", "fptr", "wc", "cum")

    def __init__(self, csr: CSRGraph) -> None:
        n = csr.num_vertices
        self.n = n
        indptr = _np.frombuffer(csr.indptr, dtype=_np.int64)
        dst = _np.frombuffer(csr.indices, dtype=_np.int64)
        eids = _np.frombuffer(csr.eids, dtype=_np.int64)
        deg = _np.diff(indptr)
        src = _np.repeat(_np.arange(n, dtype=_np.int64), deg)
        order = _np.lexsort((_np.arange(n), deg))
        rank = _np.empty(n, dtype=_np.int64)
        rank[order] = _np.arange(n)
        ra_all, rb_all = rank[src], rank[dst]
        fwd = rb_all > ra_all
        key = ra_all[fwd] * n + rb_all[fwd]
        srt = _np.argsort(key)  # m oriented edges — edge-scale, not 3T
        self.key = key[srt]
        self.ra = self.key // n  # == sorted oriented sources, rank space
        self.rb = self.key - self.ra * n
        self.e_of = eids[fwd][srt]
        self.total = len(self.key)
        if self.total:
            outdeg = _np.bincount(self.ra, minlength=n)
            self.fptr = _np.concatenate(
                (_np.zeros(1, dtype=_np.int64), _np.cumsum(outdeg))
            )
            self.wc = outdeg[self.rb]  # wedges per edge: tips are out(b)
            self.cum = _np.concatenate(
                (_np.zeros(1, dtype=_np.int64), _np.cumsum(self.wc))
            )
        else:
            self.fptr = self.wc = self.cum = None

    def iter_triangle_chunks(
        self, chunk: Optional[int] = None
    ) -> Iterator[Tuple["_np.ndarray", "_np.ndarray", "_np.ndarray"]]:
        """Yield ``(e_ab, e_bc, e_ac)`` edge-id triples, chunk by chunk.

        Triangle order is deterministic and chunk-size independent:
        ascending oriented-edge key, then wedge offset — so triangle
        ids (positions in this stream) are stable across passes and
        chunk settings.  Each yielded array holds at most ``chunk``
        slots (plus the overshoot of a single oversized wedge run).
        """
        if not self.total:
            return
        chunk = chunk or _WEDGE_CHUNK
        key, ra, rb = self.key, self.ra, self.rb
        e_of, fptr, wc, cum = self.e_of, self.fptr, self.wc, self.cum
        n, total = self.n, self.total
        t0 = 0
        while t0 < total:
            t1 = int(_np.searchsorted(cum, cum[t0] + chunk, "right")) - 1
            if t1 <= t0:
                t1 = t0 + 1
            w = wc[t0:t1]
            n_wedges = int(cum[t1] - cum[t0])
            if n_wedges == 0:
                t0 = t1
                continue
            ab = _np.repeat(_np.arange(t0, t1, dtype=_np.int64), w)
            offs = _np.arange(n_wedges, dtype=_np.int64) - _np.repeat(
                cum[t0:t1] - cum[t0], w
            )
            bc = _np.repeat(fptr[rb[t0:t1]], w) + offs
            want = ra[ab] * n + rb[bc]
            at = _np.minimum(_np.searchsorted(key, want), total - 1)
            hit = key[at] == want
            if hit.any():
                yield e_of[ab[hit]], e_of[bc[hit]], e_of[at[hit]]
            t0 = t1


def count_edge_incidence(
    csr: CSRGraph, chunk: Optional[int] = None, dag: Optional[_WedgeDAG] = None
) -> Tuple["_np.ndarray", int]:
    """Pass 1: ``(sup, n_triangles)`` in O(m + chunk) peak memory.

    ``sup[e]`` is edge ``e``'s triangle count (the initial support);
    this is also the incidence run length, so ``cumsum`` of it is the
    index's ``tptr``.  Exposed standalone because support-only callers
    (:func:`repro.core.flat.initial_supports`) need exactly this pass
    and nothing else.
    """
    m = csr.num_edges
    sup = _np.zeros(m, dtype=_np.int64)
    n_tri = 0
    dag = dag if dag is not None else _WedgeDAG(csr)
    for e_ab, e_bc, e_ac in dag.iter_triangle_chunks(chunk):
        n_tri += len(e_ab)
        sup += _np.bincount(
            _np.concatenate((e_ab, e_bc, e_ac)), minlength=m
        )
    return sup, n_tri


# ---------------------------------------------------------------------------
# the on-disk destination (the ram route fills plain ndarrays inline)
# ---------------------------------------------------------------------------
class _MmapSlots:
    """Pass-2 destination: the on-disk ``TriangleIndex`` layout.

    Triangle-length arrays are created as writable ``.npy`` memmaps
    (``np.lib.format.open_memmap``) and filled in place — the pages
    stream through the page cache, never pinned in the process heap.
    ``tptr`` is O(m) and saved whole.
    """

    storage = "mmap"

    def __init__(self, dirpath) -> None:
        self.dirpath = Path(dirpath)

    def alloc(self, name: str, length: int):
        path = self.dirpath / f"{name}.npy"
        if length == 0:
            # mmap cannot map zero bytes; the read side falls back to a
            # plain load for these (see TriangleIndex.open)
            empty = _np.zeros(0, dtype=_np.int64)
            _np.save(path, empty)
            return empty
        return _np.lib.format.open_memmap(
            path, mode="w+", dtype=_np.int64, shape=(length,)
        )

    def put_tptr(self, tptr):
        _np.save(self.dirpath / "tptr.npy", tptr)
        return tptr


# ---------------------------------------------------------------------------
# the builder
# ---------------------------------------------------------------------------
def _scatter_chunk(tinc, fill, e_ab, e_bc, e_ac, t0: int) -> None:
    """Counting-scatter one chunk's incidence entries into ``tinc``.

    The chunk's entries are interleaved by triangle, then grouped by
    edge with a stable (radix) sort: within every edge group, slot
    order == triangle order, so the windows end up ascending in
    triangle id at any chunk size.  Each entry lands at its edge's
    fill cursor plus its within-chunk occurrence rank.
    """
    c = len(e_ab)
    inc = _np.empty(3 * c, dtype=_np.int64)
    inc[0::3] = e_ab
    inc[1::3] = e_bc
    inc[2::3] = e_ac
    order = _np.argsort(inc, kind="stable")
    inc_s = inc[order]
    is_start = _np.empty(3 * c, dtype=bool)
    is_start[0] = True
    _np.not_equal(inc_s[1:], inc_s[:-1], out=is_start[1:])
    start_pos = _np.flatnonzero(is_start)
    # within-group offsets: position minus the group's first position
    offs = (
        _np.arange(3 * c, dtype=_np.int64)
        - start_pos[_np.cumsum(is_start) - 1]
    )
    tinc[fill[inc_s] + offs] = t0 + order // 3
    fill[inc_s[start_pos]] += _np.diff(_np.append(start_pos, 3 * c))


def _tptr_from_counts(sup) -> "_np.ndarray":
    """The incidence pointers: an exclusive prefix sum of the counts."""
    tptr = _np.zeros(len(sup) + 1, dtype=_np.int64)
    _np.cumsum(sup, out=tptr[1:])
    return tptr


def _build_ram(dag: _WedgeDAG, m: int, chunk: Optional[int]) -> TriangleIndex:
    """The in-RAM route: one wedge enumeration, columns stored in place.

    The edge columns are the index's own ``e1``/``e2``/``e3``, so
    keeping the enumerated chunks costs little beyond the result (one
    transient column copy during the final concatenation); the count
    and scatter passes then re-chunk those stored columns (cheap
    slicing — no second wedge enumeration, which is what keeps the
    serial flat engine's build as fast as the legacy argsort one).
    """
    parts = []
    cuts = [0]
    for triple in dag.iter_triangle_chunks(chunk):
        parts.append(triple)
        cuts.append(cuts[-1] + len(triple[0]))
    empty = _np.zeros(0, dtype=_np.int64)
    if parts:
        e1, e2, e3 = (_np.concatenate(cols) for cols in zip(*parts))
    else:
        e1 = e2 = e3 = empty
    del parts
    sup = _np.zeros(m, dtype=_np.int64)
    for col in (e1, e2, e3):
        sup += _np.bincount(col, minlength=m)
    tptr = _tptr_from_counts(sup)
    tinc = _np.empty(3 * len(e1), dtype=_np.int64)
    fill = tptr[:-1].copy()  # per-edge incidence cursors
    for t0, t1 in zip(cuts, cuts[1:]):
        _scatter_chunk(
            tinc, fill, e1[t0:t1], e2[t0:t1], e3[t0:t1], t0
        )
    return TriangleIndex(e1, e2, e3, tptr, tinc, storage="ram")


def _build_mmap(
    dag: _WedgeDAG, csr: CSRGraph, m: int, chunk: Optional[int], dirpath
) -> TriangleIndex:
    """The bounded-memory route: count, preallocate on disk, scatter.

    Two wedge enumerations bracket the ``open_memmap`` preallocation,
    so no triangle-length array ever enters the heap — peak memory is
    O(m + chunk) however large |△G| gets.
    """
    sup, n_tri = count_edge_incidence(csr, chunk, dag=dag)
    slots = _MmapSlots(dirpath)
    e1 = slots.alloc("e1", n_tri)
    e2 = slots.alloc("e2", n_tri)
    e3 = slots.alloc("e3", n_tri)
    tinc = slots.alloc("tinc", 3 * n_tri)
    tptr = slots.put_tptr(_tptr_from_counts(sup))
    fill = tptr[:-1].copy()  # per-edge incidence cursors
    t0 = 0
    for e_ab, e_bc, e_ac in dag.iter_triangle_chunks(chunk):
        c = len(e_ab)
        e1[t0:t0 + c] = e_ab
        e2[t0:t0 + c] = e_bc
        e3[t0:t0 + c] = e_ac
        _scatter_chunk(tinc, fill, e_ab, e_bc, e_ac, t0)
        t0 += c
    return TriangleIndex(
        e1, e2, e3, tptr, tinc, storage="mmap", dirpath=slots.dirpath
    )


def build_triangle_index(
    csr: CSRGraph,
    storage: str = "ram",
    dirpath=None,
    chunk: Optional[int] = None,
) -> TriangleIndex:
    """Build the edge->triangle incidence index by two-pass counting.

    Args:
        csr: the CSR snapshot (canonical edge ids index everything).
        storage: ``"ram"`` (ndarrays, one wedge enumeration),
            ``"mmap"`` (count + scatter enumerations streaming into
            the on-disk ``.npy`` layout under ``dirpath``, O(m +
            chunk) peak), or ``"auto"`` (mmap once the DAG's wedge
            count — an upper bound on |△G| — says the index could
            exceed :data:`_AUTO_MMAP_INDEX_BYTES`, ram below).
        dirpath: destination directory for ``"mmap"``/``"auto"``
            (required for ``"mmap"``; with ``"auto"`` a temporary
            directory is created on demand — the returned index then
            owns it, and :meth:`TriangleIndex.cleanup` deletes it).
        chunk: wedge-buffer cap override (default
            :data:`_WEDGE_CHUNK`); tests shrink it to force many
            chunks, the layout is identical at any value.

    Returns a :class:`TriangleIndex` whose ``storage`` attribute names
    the destination actually used.  Both routes emit bit-identical
    bundles: ``tinc`` windows are ascending in triangle id, and
    ``e1``/``e2``/``e3`` follow the deterministic enumeration order of
    :meth:`_WedgeDAG.iter_triangle_chunks`.
    """
    if _np is None:
        raise DecompositionError(
            "the triangle-index builder needs numpy; the stdlib engines "
            "peel without a materialized index"
        )
    if storage not in INDEX_STORAGES + ("auto",):
        raise DecompositionError(
            f"unknown index storage {storage!r}; expected one of "
            f"{INDEX_STORAGES + ('auto',)}"
        )
    if storage == "mmap" and dirpath is None:
        raise DecompositionError("index storage 'mmap' needs a dirpath")
    m = csr.num_edges
    dag = _WedgeDAG(csr)
    owns_dirpath = False
    if storage == "auto":
        wedges = int(dag.cum[-1]) if dag.total else 0
        storage = (
            "mmap" if 6 * wedges * 8 > _AUTO_MMAP_INDEX_BYTES else "ram"
        )
        if storage == "mmap" and dirpath is None:
            dirpath = tempfile.mkdtemp(prefix="repro-triidx-")
            owns_dirpath = True
    if storage == "ram":
        return _build_ram(dag, m, chunk)
    tri = _build_mmap(dag, csr, m, chunk, dirpath)
    tri.owns_dirpath = owns_dirpath
    return tri
