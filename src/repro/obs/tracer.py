"""Structured tracing: spans and events onto a JSONL sink.

Two implementations of one interface:

* :class:`Tracer` — monotonic-clock timestamps relative to tracer
  construction, buffered line-at-a-time JSONL writes (or an in-memory
  recording mode used by the dist ranks, whose events travel back to
  the driver inside the result-gathering stats dict and are absorbed
  into the driver's file tracer);
* :class:`NullTracer` — the zero-allocation default.  Engines guard
  every hot-path emission with ``if tracer.enabled:``, so a run without
  ``--trace`` pays exactly one attribute check per guard and never
  builds an event dict.

The event schema both emit is defined and validated in
:mod:`repro.obs.schema`; the catalogue of event names lives in the
:mod:`repro.obs` package docstring.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional


class NullTracer:
    """The do-nothing tracer: one attribute check, no allocation."""

    __slots__ = ()
    enabled = False

    def now(self) -> float:
        return 0.0

    def event(self, name: str, **attrs) -> None:
        pass

    def warn(self, name: str, **attrs) -> None:
        pass

    def complete_span(self, name: str, seconds: float, **attrs) -> None:
        pass

    def absorb(self, events, rank: Optional[int] = None) -> None:
        pass

    def drain(self) -> List[dict]:
        return []

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: the shared default — engines use it whenever no tracer is passed
NULL_TRACER = NullTracer()


class _Span:
    """Context manager emitted by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.complete_span(
            self._name, time.perf_counter() - self._t0, **self._attrs
        )


class Tracer:
    """Span/event emitter over a JSONL sink.

    ``sink`` is a path (``str``/``Path``: opened and owned, closed by
    :meth:`close`), an open text file object (borrowed, flushed but
    never closed), or ``None`` for the in-memory recording mode whose
    events are retrieved with :meth:`drain` — how dist ranks trace
    without a filesystem rendezvous.

    Timestamps (``ts``) are seconds since tracer construction on
    ``time.perf_counter``; events absorbed from another process keep
    *that process's* clock base (documented in the schema: ``ts`` is
    comparable within one ``rank`` stream, not across streams).
    """

    enabled = True

    def __init__(self, sink=None, *, flush_every: int = 256) -> None:
        self._t0 = time.perf_counter()
        self._flush_every = max(1, int(flush_every))
        self._buffer: List[str] = []
        self._events: Optional[List[dict]] = None
        self._fh = None
        self._owns_fh = False
        if sink is None:
            self._events = []
        elif hasattr(sink, "write"):
            self._fh = sink
        else:
            self._fh = open(sink, "w", encoding="utf-8")
            self._owns_fh = True

    # ------------------------------------------------------------- emission
    def now(self) -> float:
        """Seconds since tracer construction (monotonic)."""
        return time.perf_counter() - self._t0

    def _emit(self, record: dict) -> None:
        if self._events is not None:
            self._events.append(record)
            return
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def event(self, name: str, **attrs) -> None:
        """Emit a point-in-time event (``kind="event"``)."""
        record: Dict[str, object] = {
            "ts": round(self.now(), 6), "kind": "event", "name": name,
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def warn(self, name: str, **attrs) -> None:
        """Emit a warning-level event (degradation paths use this)."""
        record: Dict[str, object] = {
            "ts": round(self.now(), 6), "kind": "event", "name": name,
            "level": "warning",
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def complete_span(self, name: str, seconds: float, **attrs) -> None:
        """Emit an already-timed span ending now, ``seconds`` long.

        The hot-path form: engines time phases with their own
        ``perf_counter`` deltas and report the duration in one call
        instead of holding a context manager open across the loop.
        """
        end = self.now()
        record: Dict[str, object] = {
            "ts": round(max(end - seconds, 0.0), 6),
            "kind": "span",
            "name": name,
            "dur": round(max(seconds, 0.0), 6),
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def span(self, name: str, **attrs) -> _Span:
        """Context manager timing its body into a span event."""
        return _Span(self, name, attrs)

    def absorb(
        self, events: Iterable[dict], rank: Optional[int] = None
    ) -> None:
        """Append pre-built event records, tagging each with ``rank``.

        The driver-side merge of per-rank recording tracers: events are
        written in the order given, so absorbing rank 0's stream before
        rank 1's yields the documented driver-ordered trace.
        """
        for record in events:
            if rank is not None:
                record = {**record, "rank": rank}
            self._emit(record)

    # ------------------------------------------------------------ lifecycle
    def drain(self) -> List[dict]:
        """Return and clear the recorded events (in-memory mode only)."""
        if self._events is None:
            return []
        out = self._events
        self._events = []
        return out

    def flush(self) -> None:
        if self._fh is not None and self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns_fh and self._fh is not None:
            self._fh.close()
            self._fh = None
            self._owns_fh = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_tracer(trace=None, trace_path=None):
    """Resolve the ``trace=`` / ``trace_path=`` API knobs.

    Returns ``(tracer, owned)`` — ``owned`` means the caller must
    :meth:`~Tracer.close` it when done.  ``trace`` (a ready
    :class:`Tracer`) and ``trace_path`` (a file path this function
    opens) are mutually exclusive; with neither, the shared
    :data:`NULL_TRACER` is returned.
    """
    if trace is not None and trace_path is not None:
        raise ValueError("pass either trace= or trace_path=, not both")
    if trace is not None:
        return trace, False
    if trace_path is not None:
        return Tracer(trace_path), True
    return NULL_TRACER, False
