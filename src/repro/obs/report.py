"""Render a trace file as a wave-timeline report.

:func:`load_trace` parses and schema-validates a JSONL trace;
:func:`render_report` turns the events into the tables ``repro
trace-report`` prints:

* a **phase breakdown** (index build vs peel vs repair wall time, from
  the phase spans);
* a **per-level timeline** aggregated from the ``wave`` spans — time
  per level, frontier decay (edges popped, largest wave), bytes moved
  per level (IPC or transport, whichever the engine reports);
* a **per-rank skew table** when the trace carries dist rank streams —
  per-rank busy time, popped edges and exchanged bytes, plus each
  rank's share of the slowest rank's busy time;
* a **server latency table** when the trace carries ``request`` spans
  (``repro serve --trace``) — per-route request counts, error and
  stale-read shares, and p50/p99 latency;
* every **warning-level event** (the degradation paths), verbatim.

The renderer only assumes the schema of :mod:`repro.obs.schema`; traces
from any engine — or merged from many ranks — render with the same
code path.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.schema import validate_event

#: phase spans summed into the breakdown line, in display order
PHASES = ("index_build", "peel", "repair", "decompose", "recover",
          "publish")


def load_trace(path) -> List[dict]:
    """Parse a JSONL trace file, validating every event.

    Raises ``ValueError`` naming the offending line on malformed JSON
    or a schema violation.
    """
    events: List[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            try:
                validate_event(obj)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            events.append(obj)
    return events


def phase_durations(events: Sequence[dict]) -> Dict[str, float]:
    """Total seconds per phase span name, for names in :data:`PHASES`."""
    out: Dict[str, float] = {}
    for e in events:
        if e["kind"] == "span" and e["name"] in PHASES:
            out[e["name"]] = out.get(e["name"], 0.0) + float(e["dur"])
    return out


def _wave_spans(events: Sequence[dict]) -> List[dict]:
    return [e for e in events if e["kind"] == "span" and e["name"] == "wave"]


def level_rows(events: Sequence[dict]) -> List[Tuple]:
    """Aggregate wave spans by level ``k``.

    Returns rows ``(k, waves, popped, max_wave, seconds, bytes)``.
    With per-rank streams, a level's waves run concurrently across
    ranks, so its wall time is the *maximum* per-rank busy time at that
    level (popped/bytes still sum — work and traffic are additive).
    """
    per_k: Dict[int, Dict] = {}
    for e in _wave_spans(events):
        attrs = e.get("attrs", {})
        k = int(attrs.get("k", 0))
        row = per_k.setdefault(
            k, {"waves": 0, "popped": 0, "max": 0, "bytes": 0, "busy": {}}
        )
        rank = e.get("rank", 0)
        frontier = int(attrs.get("frontier", 0))
        row["waves"] += 1
        row["popped"] += frontier
        row["max"] = max(row["max"], frontier)
        row["bytes"] += int(attrs.get("bytes", attrs.get("ipc_bytes", 0)))
        row["busy"][rank] = row["busy"].get(rank, 0.0) + float(e["dur"])
    return [
        (
            k,
            row["waves"],
            row["popped"],
            row["max"],
            max(row["busy"].values(), default=0.0),
            row["bytes"],
        )
        for k, row in sorted(per_k.items())
    ]


def rank_rows(events: Sequence[dict]) -> List[Tuple]:
    """Per-rank skew rows ``(rank, waves, popped, seconds, bytes, share)``.

    Empty when no event carries a ``rank`` field (non-dist traces).
    ``share`` is this rank's busy time over the slowest rank's — the
    straggler diagnostic.
    """
    per_rank: Dict[int, Dict] = {}
    for e in _wave_spans(events):
        if "rank" not in e:
            continue
        attrs = e.get("attrs", {})
        row = per_rank.setdefault(
            e["rank"], {"waves": 0, "popped": 0, "busy": 0.0, "bytes": 0}
        )
        row["waves"] += 1
        row["popped"] += int(attrs.get("frontier", 0))
        row["busy"] += float(e["dur"])
        row["bytes"] += int(attrs.get("bytes", attrs.get("ipc_bytes", 0)))
    if not per_rank:
        return []
    slowest = max(row["busy"] for row in per_rank.values()) or 1.0
    return [
        (
            rank,
            row["waves"],
            row["popped"],
            row["busy"],
            row["bytes"],
            row["busy"] / slowest,
        )
        for rank, row in sorted(per_rank.items())
    ]


def request_rows(events: Sequence[dict]) -> List[Tuple]:
    """Per-route rows from server ``request`` spans.

    Returns ``(route, requests, errors, stale, p50_ms, p99_ms,
    total_s)`` — errors are responses with status >= 400, stale the
    reads answered from a view behind the applied WAL seq.  Empty for
    traces without a server stream.
    """
    per_route: Dict[str, Dict] = {}
    for e in events:
        if e["kind"] != "span" or e["name"] != "request":
            continue
        attrs = e.get("attrs", {})
        route = str(attrs.get("route", "?"))
        row = per_route.setdefault(
            route, {"n": 0, "errors": 0, "stale": 0, "durs": []}
        )
        row["n"] += 1
        if int(attrs.get("status", 0)) >= 400:
            row["errors"] += 1
        if attrs.get("stale"):
            row["stale"] += 1
        row["durs"].append(float(e["dur"]))
    out = []
    for route, row in sorted(per_route.items()):
        durs = sorted(row["durs"])
        p50 = durs[len(durs) // 2]
        p99 = durs[min(len(durs) - 1, int(len(durs) * 0.99))]
        out.append((
            route, row["n"], row["errors"], row["stale"],
            p50 * 1000.0, p99 * 1000.0, sum(durs),
        ))
    return out


def warnings_of(events: Sequence[dict]) -> List[dict]:
    """Every warning-level event, in trace order."""
    return [e for e in events if e.get("level") == "warning"]


def _table(headers: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.4f}" if isinstance(v, float) else f"{v:,}"
            if isinstance(v, int) else str(v)
            for v in row
        ])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


def render_report(events: Sequence[dict], source: Optional[str] = None) -> str:
    """The full human-readable report for a validated event list."""
    lines: List[str] = []
    runs = [e for e in events if e["name"] == "run_start"]
    engines = sorted({e.get("attrs", {}).get("engine", "?") for e in runs})
    head = f"trace: {len(events):,} events"
    if source:
        head += f" from {source}"
    if engines:
        head += f" (engine: {', '.join(str(x) for x in engines)})"
    lines.append(head)
    phases = phase_durations(events)
    if phases:
        lines.append("phases: " + "  ".join(
            f"{name} {phases[name]:.4f}s"
            for name in PHASES if name in phases
        ))
    warns = warnings_of(events)
    if warns:
        lines.append("")
        lines.append(f"warnings ({len(warns)}):")
        for e in warns:
            attrs = e.get("attrs", {})
            detail = " ".join(f"{k}={v}" for k, v in attrs.items())
            rank = f" rank={e['rank']}" if "rank" in e else ""
            lines.append(f"  [{e['ts']:.4f}s]{rank} {e['name']}: {detail}")
    levels = level_rows(events)
    if levels:
        lines.append("")
        lines.append("per-level timeline (frontier decay):")
        lines.extend(_table(
            ("k", "waves", "popped", "max wave", "time (s)", "bytes"),
            levels,
        ))
    ranks = rank_rows(events)
    if ranks:
        lines.append("")
        lines.append("per-rank skew:")
        lines.extend(_table(
            ("rank", "waves", "popped", "busy (s)", "bytes", "share"),
            [(r, w, p, b, by, f"{s:.2f}") for r, w, p, b, by, s in ranks],
        ))
    requests = request_rows(events)
    if requests:
        lines.append("")
        lines.append("server requests (latency by route):")
        lines.extend(_table(
            ("route", "reqs", "errors", "stale", "p50 (ms)", "p99 (ms)",
             "total (s)"),
            requests,
        ))
    repairs = [
        e for e in events if e["kind"] == "span" and e["name"] == "repair"
    ]
    if repairs:
        lines.append("")
        lines.append("repairs (stream):")
        lines.extend(_table(
            ("#", "updates", "region", "frozen", "time (s)", "truncated"),
            [
                (
                    i + 1,
                    int(e.get("attrs", {}).get("updates", 0)),
                    int(e.get("attrs", {}).get("region", 0)),
                    int(e.get("attrs", {}).get("frozen", 0)),
                    float(e["dur"]),
                    str(bool(e.get("attrs", {}).get("truncated", False))),
                )
                for i, e in enumerate(repairs)
            ],
        ))
    return "\n".join(lines) + "\n"


def render_trace_report(path) -> str:
    """Load, validate and render ``path`` in one call (the CLI's body)."""
    return render_report(load_trace(path), source=str(path))
