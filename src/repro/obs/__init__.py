"""``repro.obs`` — the telemetry spine under every engine.

One tracing + metrics subsystem threaded through the flat, parallel,
distributed and streaming engines, so a run can be profiled and a
degraded run diagnosed from its trace alone.  Thread it through the
API as ``truss_decomposition(..., trace_path="run.jsonl")`` /
``apply_updates(..., trace_path=...)`` or the CLI's ``--trace FILE`` /
``--metrics FILE``, and render it with ``repro trace-report FILE``.
When no tracer is passed, engines hold the shared
:data:`~repro.obs.tracer.NULL_TRACER` and the hot path pays exactly
one ``tracer.enabled`` attribute check per guard.

Trace event schema
------------------
A trace is JSONL — one event object per line, validated by
:func:`repro.obs.schema.validate_event` (see that module for the field
table: ``ts``/``kind``/``name``/``dur``/``level``/``rank``/``attrs``).
Every engine emits the same catalogue:

**Spans** (``kind="span"``, carry ``dur`` seconds):

``index_build``
    the triangle-index build — attrs ``storage``, ``triangles``.
``peel``
    the whole peel loop — attrs ``engine`` and the engine's knobs
    (``jobs``/``shards`` for parallel, ``ranks``/``transport`` for
    dist).
``wave``
    one wave of the level-synchronous peel — attrs ``k`` (level),
    ``frontier`` (edges popped), ``killed`` (triangles destroyed);
    parallel adds ``ipc_bytes``, dist ranks add ``bytes``/``frames``
    (transport traffic this wave).  In dist traces each rank emits its
    own ``wave`` stream (tagged ``rank``).
``level``
    one support level — attrs ``k``, ``waves``, ``popped``, ``floor``.
``repair``
    one incremental repair (stream) — attrs ``updates``, ``region``,
    ``frozen``, ``triangles``, ``truncated``.
``decompose``
    whole-run span for the non-CSR legacy methods — attrs ``method``.
``recover`` / ``publish``
    the truss server's startup recovery (attrs ``gen``, ``replayed``,
    ``from_snapshot``) and snapshot publication (attrs ``gen``,
    ``edges``, ``wal_seq``) — see :mod:`repro.serve`.
``request``
    one server HTTP request — attrs ``route``, ``status``, ``stale``,
    ``method``; ``repro trace-report`` aggregates these into the
    per-route latency table.

**Events** (``kind="event"``, instantaneous):

``run_start``
    emitted once per engine run — attrs ``engine``, ``m`` (edges) and
    the resolved knobs (``kernel``, ...).
``checkpoint``
    a dist rank wrote a wave checkpoint — attrs ``epoch``, ``waves``.
``degraded``
    **warning level**: a silent degradation path triggered — attrs
    ``path`` naming it (``stdlib_fallback``, ``kernel_auto_python``,
    ``stream_full_repeel``, ``dist_retry``, ``dist_fallback_flat``,
    ``serve_torn_snapshot``, ``serve_wal_torn``)
    plus context.  Every ``degraded`` event also bumps the
    ``repro_degraded_total{path=...}`` counter, so degraded runs are
    visible in both expositions.

Dist traces are merged driver-side: each rank records in memory
(:class:`~repro.obs.tracer.Tracer` with ``sink=None``), ships its
events back inside the existing result-gathering stats dict, and the
driver absorbs the streams in rank order 0..R-1 — one file, per-rank
``ts`` monotone within each rank's stream.

Metric names
------------
:class:`~repro.obs.metrics.MetricsRegistry` backs every
``DecompositionStats``, so all legacy stats keys (``waves``,
``levels``, ``max_wave``, ``ipc_bytes``, ``msg_bytes``,
``msg_frames``, ``triangles``, ``repairs``, ``affected_edges``, ...)
are registry series — ``stats.extra`` is now a derived snapshot of it.
On top of those, the instrumentation adds:

``repro_kernel_ops_total{op=...}``
    counter of :class:`~repro.kernels.PeelKernel` op calls
    (``pop_frontier``/``gather_incident``/``count_decrements``/
    ``apply_decrements``/``merge_decrements``), counted only while
    tracing (the wrapper is never installed otherwise).
``repro_degraded_total{path=...}``
    counter of degradation-path activations (always counted — it is
    cheap and rare).
``repro_wave_frontier_edges``
    histogram of per-wave frontier sizes (traced runs only).
``index_build_s`` / ``peel_s``
    gauges: the per-phase wall-clock breakdown (always recorded; the
    ablation benchmarks put them in their ``BENCH_*.json`` rows).

Exposition formats
------------------
``MetricsRegistry.to_prometheus()`` renders Prometheus text format
0.0.4 (legacy short names are sanitized and prefixed ``repro_``;
string-valued stats become info gauges ``name_info{value="..."} 1``);
``to_json()`` a structured JSON document; ``as_dict()`` the flat
legacy view.  The CLI's ``--metrics FILE`` writes JSON when the path
ends in ``.json`` and Prometheus text otherwise.
"""

from __future__ import annotations

from repro.obs.metrics import CountingKernel, MetricsRegistry
from repro.obs.schema import TRACE_SCHEMA_VERSION, validate_event
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, open_tracer


def warn_degraded(tracer, metrics, path: str, **attrs) -> None:
    """Record one degradation-path activation in both surfaces.

    Bumps ``repro_degraded_total{path=...}`` unconditionally and emits
    the warning-level ``degraded`` trace event when tracing is on —
    the single call every silent fallback site makes.
    """
    if metrics is not None:
        metrics.inc("repro_degraded_total", path=path)
    if tracer is not None and tracer.enabled:
        tracer.warn("degraded", path=path, **attrs)


__all__ = [
    "CountingKernel",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "open_tracer",
    "validate_event",
    "warn_degraded",
]
