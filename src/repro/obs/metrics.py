"""``MetricsRegistry``: counters, gauges and histograms, two expositions.

One registry instance backs every
:class:`repro.core.decomposition.DecompositionStats` — the legacy
``stats.extra`` dict is a *derived view* over it (see
:meth:`MetricsRegistry.as_dict`), so engines keep their existing
``record``/``bump`` call sites while the same numbers become scrapeable
through :meth:`to_prometheus` / :meth:`to_json`.

Series model
------------
A series is ``(name, labels)`` where ``labels`` is a (possibly empty)
``str -> str`` mapping.  Three instrument kinds:

* **counter** — monotone float, :meth:`inc`;
* **gauge** — set-to-value float via :meth:`set`.  A *string* value
  turns the series into an info gauge (Prometheus "info" idiom:
  ``name_info{value="..."} 1``) — how enum-ish stats like
  ``index_storage="mmap"`` survive exposition;
* **histogram** — :meth:`observe` into cumulative buckets plus
  ``_sum``/``_count``, rendered with ``le`` labels like the Prometheus
  client.

Prometheus text exposition sanitizes names (invalid chars -> ``_``)
and prefixes legacy short names with ``repro_`` (``waves`` ->
``repro_waves``); names already starting with ``repro_`` pass through.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

Labels = Tuple[Tuple[str, str], ...]
Scalar = Union[int, float, str]

#: default histogram buckets: powers of ten over the frontier/byte sizes
#: the wave peel actually produces
DEFAULT_BUCKETS = (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000)


def _key(labels: Dict[str, Scalar]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _sanitize(name: str) -> str:
    out = [c if c.isalnum() or c in "_:" else "_" for c in name]
    if out and out[0].isdigit():
        out.insert(0, "_")
    text = "".join(out) or "_"
    return text if text.startswith("repro_") else f"repro_{text}"


def _fmt(value: float) -> str:
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _labelstr(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class _Histogram:
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "buckets": [
                [edge, n] for edge, n in zip(self.buckets, self.counts)
            ],
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Counters, gauges and histograms with two exposition formats."""

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[Labels, float]] = {}
        self._gauges: Dict[str, Dict[Labels, float]] = {}
        self._infos: Dict[str, Dict[Labels, str]] = {}
        self._hists: Dict[str, Dict[Labels, _Histogram]] = {}

    # -------------------------------------------------------- instruments
    def inc(self, name: str, value: float = 1, **labels: Scalar) -> None:
        """Add ``value`` to the counter series ``(name, labels)``."""
        series = self._counters.setdefault(name, {})
        key = _key(labels)
        series[key] = series.get(key, 0) + value

    def set(self, name: str, value: Scalar, **labels: Scalar) -> None:
        """Set the gauge series; a ``str`` value makes it an info gauge."""
        key = _key(labels)
        give, take = (
            (self._gauges, self._infos)
            if isinstance(value, str)
            else (self._infos, self._gauges)
        )
        old = give.get(name)
        if old is not None:
            old.pop(key, None)
            if not old:  # no empty series left to emit TYPE lines for
                del give[name]
        take.setdefault(name, {})[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Scalar,
    ) -> None:
        """Record ``value`` into the histogram series ``(name, labels)``."""
        series = self._hists.setdefault(name, {})
        key = _key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = _Histogram(buckets)
        hist.observe(value)

    # --------------------------------------------------------------- reads
    def value(self, name: str, **labels: Scalar) -> Optional[Scalar]:
        """Current value of a counter/gauge/info series (``None``: unset)."""
        key = _key(labels)
        for store in (self._counters, self._gauges, self._infos):
            series = store.get(name)
            if series is not None and key in series:
                return series[key]
        return None

    def counter_items(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        """Every counter series as ``(name, labels, value)`` — merge feed."""
        for name, series in self._counters.items():
            for key, value in series.items():
                yield name, dict(key), value

    def as_dict(self) -> Dict[str, Scalar]:
        """Flat ``name -> value`` snapshot — the legacy ``extra`` view.

        Unlabeled series keep their bare name; labeled series render as
        ``name{k=v,...}``.  Histograms contribute ``name_count`` /
        ``name_sum``.  The dict is freshly built each call: mutating it
        does not touch the registry.
        """
        out: Dict[str, Scalar] = {}
        for store in (self._counters, self._gauges, self._infos):
            for name, series in store.items():
                for key, value in series.items():
                    label = ",".join(f"{k}={v}" for k, v in key)
                    out[f"{name}{{{label}}}" if label else name] = value
        for name, series in self._hists.items():
            for key, hist in series.items():
                label = ",".join(f"{k}={v}" for k, v in key)
                suffix = f"{{{label}}}" if label else ""
                out[f"{name}_count{suffix}"] = hist.count
                out[f"{name}_sum{suffix}"] = hist.total
        return out

    # --------------------------------------------------------- expositions
    def to_json(self) -> Dict[str, object]:
        """Structured JSON exposition: one object per instrument kind."""

        def flat(store):
            return {
                name: {_labelstr(key) or "": value
                       for key, value in series.items()}
                for name, series in store.items()
            }

        return {
            "counters": flat(self._counters),
            "gauges": flat(self._gauges),
            "info": flat(self._infos),
            "histograms": {
                name: {_labelstr(key) or "": hist.snapshot()
                       for key, hist in series.items()}
                for name, series in self._hists.items()
            },
        }

    def to_prometheus(self) -> str:
        """Prometheus text-format exposition (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._counters):
            metric = _sanitize(name)
            if not metric.endswith("_total"):
                metric += "_total"
            lines.append(f"# TYPE {metric} counter")
            for key, value in sorted(self._counters[name].items()):
                lines.append(f"{metric}{_labelstr(key)} {_fmt(value)}")
        for name in sorted(self._gauges):
            metric = _sanitize(name)
            lines.append(f"# TYPE {metric} gauge")
            for key, value in sorted(self._gauges[name].items()):
                lines.append(f"{metric}{_labelstr(key)} {_fmt(value)}")
        for name in sorted(self._infos):
            metric = _sanitize(name) + "_info"
            lines.append(f"# TYPE {metric} gauge")
            for key, value in sorted(self._infos[name].items()):
                labels = key + (("value", value),)
                lines.append(f"{metric}{_labelstr(labels)} 1")
        for name in sorted(self._hists):
            metric = _sanitize(name)
            lines.append(f"# TYPE {metric} histogram")
            for key, hist in sorted(self._hists[name].items()):
                for edge, n in zip(hist.buckets, hist.counts):
                    labels = key + (("le", _fmt(edge)),)
                    lines.append(
                        f"{metric}_bucket{_labelstr(labels)} {n}"
                    )
                inf = key + (("le", "+Inf"),)
                lines.append(
                    f"{metric}_bucket{_labelstr(inf)} {hist.count}"
                )
                lines.append(
                    f"{metric}_sum{_labelstr(key)} {_fmt(hist.total)}"
                )
                lines.append(f"{metric}_count{_labelstr(key)} {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


class CountingKernel:
    """A :class:`~repro.kernels.PeelKernel` wrapper counting op calls.

    Applied by the engines only when tracing is enabled, so the
    tracing-off hot path never pays the indirection.  ``ops`` holds the
    per-op call counts; engines fold it into
    ``repro_kernel_ops_total{op=...}`` after the peel (ranks ship it
    back to the driver inside their stats dict first).
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = inner.name
        self.ops: Dict[str, int] = {}

    def _count(self, op: str) -> None:
        self.ops[op] = self.ops.get(op, 0) + 1

    def pop_frontier(self, *args, **kwargs):
        self._count("pop_frontier")
        return self._inner.pop_frontier(*args, **kwargs)

    def gather_incident(self, *args, **kwargs):
        self._count("gather_incident")
        return self._inner.gather_incident(*args, **kwargs)

    def count_decrements(self, *args, **kwargs):
        self._count("count_decrements")
        return self._inner.count_decrements(*args, **kwargs)

    def apply_decrements(self, *args, **kwargs):
        self._count("apply_decrements")
        return self._inner.apply_decrements(*args, **kwargs)

    def merge_decrements(self, *args, **kwargs):
        self._count("merge_decrements")
        return self._inner.merge_decrements(*args, **kwargs)

    def flush_into(self, metrics: MetricsRegistry) -> None:
        """Fold the collected counts into ``repro_kernel_ops_total``."""
        for op, n in self.ops.items():
            metrics.inc("repro_kernel_ops_total", n, op=op)
