"""The one trace-event schema every engine emits.

A trace is JSONL: one JSON object per line, every object validated by
:func:`validate_event`.  Top-level keys (no others are allowed):

========  ========  ====================================================
key       type      meaning
========  ========  ====================================================
``ts``    number    seconds since the emitting tracer's construction
                    (``perf_counter``-based; comparable within one
                    ``rank`` stream, not across streams)
``kind``  str       ``"span"`` (timed phase) or ``"event"`` (instant)
``name``  str       event name from the catalogue in :mod:`repro.obs`
``dur``   number    span duration in seconds — required for spans,
                    forbidden for events
``level`` str       ``"info"`` (default, may be omitted) or
                    ``"warning"`` (degradation paths)
``rank``  int       producing dist rank; added by the driver-side merge
``attrs`` object    flat ``str -> str|int|float|bool|null`` payload
========  ========  ====================================================

The schema is deliberately engine-agnostic: ``repro decompose --method
flat|parallel|dist --trace`` and ``repro update --trace`` all emit
records this module validates, which is what the round-trip tests and
``repro trace-report`` rely on.
"""

from __future__ import annotations

from typing import Tuple

#: bumped when the event layout changes incompatibly
TRACE_SCHEMA_VERSION = 1

KINDS: Tuple[str, ...] = ("span", "event")
LEVELS: Tuple[str, ...] = ("info", "warning")

_ALLOWED_KEYS = frozenset(("ts", "kind", "name", "dur", "level", "rank",
                           "attrs"))
_SCALARS = (str, int, float, bool, type(None))


def validate_event(obj) -> None:
    """Raise ``ValueError`` unless ``obj`` is a schema-valid event."""
    if not isinstance(obj, dict):
        raise ValueError(f"event must be an object, got {type(obj).__name__}")
    unknown = set(obj) - _ALLOWED_KEYS
    if unknown:
        raise ValueError(f"unknown event keys: {sorted(unknown)}")
    ts = obj.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        raise ValueError(f"ts must be a non-negative number, got {ts!r}")
    kind = obj.get("kind")
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"name must be a non-empty string, got {name!r}")
    dur = obj.get("dur")
    if kind == "span":
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                or dur < 0:
            raise ValueError(
                f"span {name!r} needs a non-negative dur, got {dur!r}"
            )
    elif dur is not None:
        raise ValueError(f"event {name!r} must not carry dur")
    level = obj.get("level", "info")
    if level not in LEVELS:
        raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
    rank = obj.get("rank")
    if rank is not None and (not isinstance(rank, int)
                             or isinstance(rank, bool) or rank < 0):
        raise ValueError(f"rank must be a non-negative int, got {rank!r}")
    attrs = obj.get("attrs")
    if attrs is None:
        return
    if not isinstance(attrs, dict):
        raise ValueError(f"attrs must be an object, got {type(attrs).__name__}")
    for key, value in attrs.items():
        if not isinstance(key, str):
            raise ValueError(f"attr keys must be strings, got {key!r}")
        if not isinstance(value, _SCALARS):
            raise ValueError(
                f"attr {key!r} must be a scalar, got {type(value).__name__}"
            )
