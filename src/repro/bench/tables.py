"""ASCII table rendering for the benchmark harness.

The experiment functions in :mod:`repro.bench.harness` return plain
lists of dict rows; this module turns them into the fixed-width tables
the benchmark runs print and EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_number(value: object) -> str:
    """Human formatting: thousands separators for ints, 3 significant
    decimals for floats, '-' for None (the paper's 'did not finish')."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: List[Dict[str, object]],
    note: Optional[str] = None,
) -> str:
    """Render rows (dicts keyed by header) as a boxed ASCII table."""
    cells = [[format_number(row.get(h)) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]

    def line(sep: str = "-") -> str:
        return "+" + "+".join(sep * (w + 2) for w in widths) + "+"

    def fmt(values: Sequence[str]) -> str:
        return "| " + " | ".join(v.ljust(w) for v, w in zip(values, widths)) + " |"

    out = [title, line("="), fmt(headers), line("=")]
    for r in cells:
        out.append(fmt(r))
    out.append(line())
    if note:
        out.append(note)
    return "\n".join(out)


def render_markdown(
    headers: Sequence[str], rows: List[Dict[str, object]]
) -> str:
    """The same rows as a GitHub-flavoured markdown table."""
    head = "| " + " | ".join(headers) + " |"
    rule = "|" + "|".join("---" for _ in headers) + "|"
    body = [
        "| " + " | ".join(format_number(row.get(h)) for h in headers) + " |"
        for row in rows
    ]
    return "\n".join([head, rule] + body)
