"""Benchmark harness: the paper's tables and figures as experiments.

Public surface::

    table2_rows .. table6_rows, figure1_rows, figure2_rows
    flat_engine_rows (ablation: flat engine vs TD-inmem/TD-inmem+)
    measure, external_budget
    render_table, render_markdown, print_table
"""

from repro.bench.harness import (
    Measured,
    external_budget,
    figure1_rows,
    figure2_rows,
    flat_engine_rows,
    kernel_ablation_rows,
    measure,
    print_table,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    table6_rows,
    TABLE_HEADERS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)
from repro.bench.tables import format_number, render_markdown, render_table

__all__ = [
    "Measured",
    "measure",
    "external_budget",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
    "flat_engine_rows",
    "kernel_ablation_rows",
    "figure1_rows",
    "figure2_rows",
    "print_table",
    "TABLE_HEADERS",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "render_table",
    "render_markdown",
    "format_number",
]
