"""Experiment harness: one function per table/figure of the paper.

Each ``table*_rows`` function runs the experiment and returns rows
shaped like the paper's table, with the paper's reported values
alongside the measured ones so the "shape" claims (who wins, by what
factor, where crossovers fall) can be eyeballed — and asserted by the
benchmark suite.

All experiments take a ``scale`` so CI-speed runs and fuller runs share
one code path.  Determinism: datasets are seeded, and memory budgets
derive from graph size, so rows only vary in the timing columns.
"""

from __future__ import annotations

import random
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.tables import render_table
from repro.core import (
    truss_decomposition_baseline,
    truss_decomposition_bottomup,
    truss_decomposition_dist,
    truss_decomposition_flat,
    truss_decomposition_improved,
    truss_decomposition_mapreduce,
    truss_decomposition_parallel,
    truss_decomposition_topdown,
)
from repro.graph.csr import CSRGraph
from repro.graph.io import read_edge_list
from repro.cores import GraphStatistics, average_clustering, max_core, median_degree
from repro.datasets import (
    IN_MEMORY_DATASETS,
    MASSIVE_DATASETS,
    SMALL_DATASETS,
    TRUSS_VS_CORE_DATASETS,
    dataset_spec,
    load_dataset,
    manager_graph,
    running_example_graph,
    RUNNING_EXAMPLE_CLASSES,
    PAPER_CLUSTERING,
)
from repro.exio import IOStats, MemoryBudget
from repro.graph.adjacency import Graph


@dataclass
class Measured:
    """A run's result plus wall-clock seconds and peak heap bytes."""

    result: object
    seconds: float
    peak_bytes: int


def measure(fn: Callable[[], object], track_memory: bool = True) -> Measured:
    """Time a callable; optionally record tracemalloc peak."""
    if track_memory:
        tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    peak = 0
    if track_memory:
        _cur, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return Measured(result=result, seconds=seconds, peak_bytes=peak)


def external_budget(g: Graph, fraction: int = 4) -> MemoryBudget:
    """The 'does not fit in memory' budget: |G|/fraction units."""
    return MemoryBudget(units=max(16, g.size // fraction))


# ---------------------------------------------------------------------------
# Table 2 — dataset statistics
# ---------------------------------------------------------------------------
def table2_rows(scale: float = 1.0, names: Optional[Sequence[str]] = None) -> List[Dict]:
    """n, m, size, dmax, dmed, kmax for every dataset stand-in."""
    rows = []
    for name in names or (SMALL_DATASETS + IN_MEMORY_DATASETS + MASSIVE_DATASETS):
        g = load_dataset(name, scale=scale)
        spec = dataset_spec(name)
        stats = GraphStatistics.of(g)
        td = truss_decomposition_improved(g)
        rows.append(
            {
                "dataset": name,
                "|V|": stats.num_vertices,
                "|E|": stats.num_edges,
                "size(B)": stats.size_bytes,
                "dmax": stats.max_degree,
                "dmed": stats.median_degree,
                "kmax": td.kmax,
                "paper |V|": int(spec.paper.num_vertices),
                "paper |E|": int(spec.paper.num_edges),
                "paper kmax": spec.paper.kmax,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 3 — TD-inmem vs TD-inmem+
# ---------------------------------------------------------------------------
PAPER_TABLE3 = {
    "wiki": (8856.0, 121.0),
    "amazon": (68.0, 31.0),
    "skitter": (9204.0, 281.0),
    "blog": (1261.0, 361.0),
}


def table3_rows(scale: float = 1.0, names: Optional[Sequence[str]] = None) -> List[Dict]:
    """Running time and peak memory of Algorithm 1 vs Algorithm 2."""
    rows = []
    for name in names or IN_MEMORY_DATASETS:
        g = load_dataset(name, scale=scale)
        improved = measure(lambda: truss_decomposition_improved(g))
        baseline = measure(lambda: truss_decomposition_baseline(g))
        assert baseline.result == improved.result, name
        paper_base, paper_impr = PAPER_TABLE3.get(name, (None, None))
        rows.append(
            {
                "dataset": name,
                "TD-inmem (s)": baseline.seconds,
                "TD-inmem+ (s)": improved.seconds,
                "speedup": baseline.seconds / max(improved.seconds, 1e-9),
                "mem inmem (MB)": baseline.peak_bytes / 1e6,
                "mem inmem+ (MB)": improved.peak_bytes / 1e6,
                "paper speedup": (
                    paper_base / paper_impr if paper_base else None
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Ablation — flat edge-indexed engine vs the paper's in-memory pair
# ---------------------------------------------------------------------------
def flat_engine_rows(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
    include_baseline: bool = True,
    repeats: int = 2,
) -> List[Dict]:
    """The flat engine against TD-inmem+ and TD-inmem, same trussness.

    Timing is best-of-``repeats`` *without* tracemalloc (its allocation
    hooks would distort the comparison: the dict-based engines allocate
    many more small objects than the array-based one).  Every run is
    checked for equality against the improved result before its time is
    reported.
    """
    def timed(fn, reference=None):
        seconds = None
        result = None
        for _ in range(max(1, repeats)):
            run = measure(fn, track_memory=False)
            result = run.result
            seconds = run.seconds if seconds is None else min(seconds, run.seconds)
            if reference is not None:
                assert result == reference
        return seconds, result

    rows = []
    for name in names or (IN_MEMORY_DATASETS + MASSIVE_DATASETS):
        g = load_dataset(name, scale=scale)
        t_impr, ref = timed(lambda: truss_decomposition_improved(g))
        t_flat, flat_run = timed(
            lambda: truss_decomposition_flat(g), reference=ref
        )
        t_base = None
        if include_baseline:
            t_base, _ = timed(
                lambda: truss_decomposition_baseline(g), reference=ref
            )
        phases = flat_run.stats.extra
        rows.append(
            {
                "dataset": name,
                "|E|": g.num_edges,
                "kmax": ref.kmax,
                "TD-inmem (s)": t_base,
                "TD-inmem+ (s)": t_impr,
                "flat (s)": t_flat,
                "flat index (s)": phases.get("index_build_s", 0.0),
                "flat peel (s)": phases.get("peel_s", 0.0),
                "speedup vs inmem+": t_impr / max(t_flat, 1e-9),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Ablation — pluggable wave-step kernels: python vs numpy vs numba
# ---------------------------------------------------------------------------
def kernel_ablation_rows(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
    kernels: Optional[Sequence[str]] = None,
    repeats: int = 2,
) -> List[Dict]:
    """The :mod:`repro.kernels` backends on the flat engine, same truth.

    Every backend's run is asserted equal to the first backend's result
    before its time is reported — the kernel contract says the wave
    schedule (and therefore the map) is backend-invariant.  Timing is
    best-of-``repeats`` without tracemalloc.  ``kernels`` defaults to
    every backend constructible in this process (the numba column only
    appears where the optional package is installed); datasets default
    to the small registry pair because the interpreted python backend
    sets the floor of this comparison.
    """
    from repro.kernels import available_kernels

    backends = list(kernels) if kernels else list(available_kernels())
    rows = []
    for name in names or SMALL_DATASETS:
        g = load_dataset(name, scale=scale)
        ref = None
        row: Dict = {"dataset": name, "|E|": g.num_edges}
        for backend in backends:
            seconds = None
            for _ in range(max(1, repeats)):
                run = measure(
                    lambda: truss_decomposition_flat(g, kernel=backend),
                    track_memory=False,
                )
                if ref is None:
                    ref = run.result
                else:
                    assert run.result == ref, (name, backend)
                seconds = (
                    run.seconds
                    if seconds is None
                    else min(seconds, run.seconds)
                )
            row[f"{backend} (s)"] = seconds
            # the engine-recorded phase split: the index build is
            # backend-invariant, the peel is where backends differ
            phases = run.result.stats.extra
            row[f"{backend} peel (s)"] = phases.get("peel_s", 0.0)
            row["index_build (s)"] = phases.get("index_build_s", 0.0)
        row["kmax"] = ref.kmax
        extra = ref.stats.extra
        row["waves"] = extra.get("waves", 0)
        row["triangles"] = extra.get("triangles", 0)
        if "python (s)" in row and "numpy (s)" in row:
            row["numpy speedup vs python"] = row["python (s)"] / max(
                row["numpy (s)"], 1e-9
            )
        if "numba (s)" in row and "numpy (s)" in row:
            row["numba speedup vs numpy"] = row["numpy (s)"] / max(
                row["numba (s)"], 1e-9
            )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Ablation — parallel wave peel: worker-count sweep
# ---------------------------------------------------------------------------
def parallel_scaling_rows(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
    jobs_list: Sequence[int] = (1, 2, 4, 8),
    repeats: int = 2,
    shards: Optional[str] = None,
) -> List[Dict]:
    """``method="parallel"`` across worker counts, parity-checked.

    Every run is asserted equal to the flat engine's result before its
    time is reported (the wave schedule is worker-count-invariant, so
    the maps must be identical).  Timing is best-of-``repeats`` without
    tracemalloc.  Wave statistics from the ``jobs_list[0]`` run ride
    along so the scaling (or non-scaling) can be explained: a graph
    peeled in a handful of huge waves amortizes the per-wave IPC
    barriers; thousands of tiny waves cannot.  ``shards`` picks the
    frontier-partitioning mode (``None``: the dynamic default).
    """
    rows = []
    for name in names or MASSIVE_DATASETS:
        g = load_dataset(name, scale=scale)
        ref = measure(
            lambda: truss_decomposition_flat(g), track_memory=False
        )
        row: Dict = {
            "dataset": name,
            "|E|": g.num_edges,
            "kmax": ref.result.kmax,
            "flat (s)": ref.seconds,
        }
        wave_stats: Dict = {}
        for jobs in jobs_list:
            seconds = None
            for _ in range(max(1, repeats)):
                run = measure(
                    lambda: truss_decomposition_parallel(
                        g, jobs=jobs, shards=shards
                    ),
                    track_memory=False,
                )
                assert run.result == ref.result, (name, jobs)
                seconds = (
                    run.seconds
                    if seconds is None
                    else min(seconds, run.seconds)
                )
            row[f"jobs={jobs} (s)"] = seconds
            if not wave_stats:
                extra = run.result.stats.extra
                wave_stats = {
                    k: extra[k]
                    for k in (
                        "waves", "levels", "max_wave", "triangles",
                        "index_build_s", "peel_s",
                    )
                    if k in extra
                }
        first, last = jobs_list[0], jobs_list[-1]
        row["speedup max-jobs"] = (
            row[f"jobs={first} (s)"] / max(row[f"jobs={last} (s)"], 1e-9)
        )
        row.update(wave_stats)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Ablation — static edge-id shards vs the per-wave dynamic split
# ---------------------------------------------------------------------------
def static_shard_rows(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
    jobs: int = 2,
    repeats: int = 2,
) -> List[Dict]:
    """Owner-computes static shards against the dynamic per-wave split.

    Both modes are parity-checked against the flat engine before any
    time is reported (the shard mode never changes the wave schedule).
    Alongside best-of-``repeats`` wall time, each mode's message volume
    is reported: ``ipc_bytes`` totals every array that crossed the
    worker pool's channel (frontier/triangle slices out, candidate
    lists and decrement buffers or sub-frontiers back), and
    ``B/wave`` divides it by the wave count — the per-wave exchange
    size a distributed peel would put on the wire.
    """
    rows = []
    for name in names or MASSIVE_DATASETS:
        g = load_dataset(name, scale=scale)
        ref = measure(
            lambda: truss_decomposition_flat(g), track_memory=False
        )
        row: Dict = {
            "dataset": name,
            "|E|": g.num_edges,
            "kmax": ref.result.kmax,
            "flat (s)": ref.seconds,
            "jobs": jobs,
        }
        for mode in ("dynamic", "static"):
            seconds = None
            extra: Dict = {}
            for _ in range(max(1, repeats)):
                run = measure(
                    lambda: truss_decomposition_parallel(
                        g, jobs=jobs, shards=mode
                    ),
                    track_memory=False,
                )
                assert run.result == ref.result, (name, mode)
                extra = run.result.stats.extra
                seconds = (
                    run.seconds
                    if seconds is None
                    else min(seconds, run.seconds)
                )
            waves = max(int(extra.get("waves", 0)), 1)
            row[f"{mode} (s)"] = seconds
            row[f"{mode} peel (s)"] = extra.get("peel_s", 0.0)
            row[f"{mode} IPC (B)"] = extra.get("ipc_bytes", 0)
            row[f"{mode} B/wave"] = extra.get("ipc_bytes", 0) / waves
        # the wave schedule is mode-invariant, so one column suffices
        row["waves"] = extra.get("waves", 0)
        row["static speedup"] = row["dynamic (s)"] / max(
            row["static (s)"], 1e-9
        )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Ablation — distributed peel: transports, rank counts, dedupe footprint
# ---------------------------------------------------------------------------
def dist_transport_rows(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
    ranks_list: Sequence[int] = (1, 2, 4),
    transports: Sequence[str] = ("loopback", "tcp"),
    repeats: int = 2,
) -> List[Dict]:
    """``method="dist"`` across transports and rank counts, parity-checked.

    Every run is asserted bit-identical to the flat engine before its
    time is reported (the rank count and transport never change the
    wave schedule).  Alongside best-of-``repeats`` wall time, each
    configuration reports the transport's own accounting:
    ``B/wave`` is the total on-the-wire message volume (frame headers
    included, summed over all ranks) divided by the wave count, and
    ``dedupe (B)`` is the *peak per-rank* dedupe-state size — the
    hash-partitioned dead-triangle bitmap, which must shrink as ranks
    grow because no rank holds the global triangle set.
    """
    rows = []
    for name in names or MASSIVE_DATASETS:
        g = load_dataset(name, scale=scale)
        ref = measure(
            lambda: truss_decomposition_flat(g), track_memory=False
        )
        row: Dict = {
            "dataset": name,
            "|E|": g.num_edges,
            "kmax": ref.result.kmax,
            "flat (s)": ref.seconds,
        }
        extra: Dict = {}
        for transport in transports:
            for ranks in ranks_list:
                seconds = None
                for _ in range(max(1, repeats)):
                    run = measure(
                        lambda: truss_decomposition_dist(
                            g, ranks=ranks, transport=transport
                        ),
                        track_memory=False,
                    )
                    assert run.result == ref.result, (
                        name, transport, ranks,
                    )
                    extra = run.result.stats.extra
                    seconds = (
                        run.seconds
                        if seconds is None
                        else min(seconds, run.seconds)
                    )
                key = f"{transport} r={ranks}"
                row[f"{key} (s)"] = seconds
                row[f"{key} peel (s)"] = extra.get("peel_s", 0.0)
                row[f"{key} B/wave"] = extra.get("bytes_per_wave", 0)
                row[f"{key} dedupe (B)"] = extra.get(
                    "dedupe_peak_bytes", 0
                )
        # the schedule is config-invariant, so one column each suffices
        row["waves"] = extra.get("waves", 0)
        row["triangles"] = extra.get("triangles", 0)
        row["index_build (s)"] = extra.get("index_build_s", 0.0)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Ablation — survivability: checkpoint overhead and crash recovery
# ---------------------------------------------------------------------------
def fault_recovery_rows(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
    intervals: Sequence[int] = (4, 8, 16),
    ranks: int = 2,
    repeats: int = 2,
    kill_round: int = 8,
) -> List[Dict]:
    """Checkpoint cost and crash-recovery time for ``method="dist"``.

    Three measurements per dataset, all parity-checked against the
    flat engine before any time is reported:

    * ``ckpt off (s)`` — the recovering supervisor with snapshots
      disabled (``checkpoint_interval=0``), the overhead baseline;
    * ``ckpt@I …`` — wall time, snapshot count and fractional overhead
      vs that baseline at each barrier interval ``I`` (smaller
      interval = more barriers = more insurance and more cost);
    * ``recovery …`` — a scripted mid-run crash under
      ``on_failure="retry"``: end-to-end wall time including the
      respawn and the rewind, plus the epoch the mesh resumed from
      (``-1`` means no barrier had passed yet and it restarted).  The
      kill round is ``max(kill_round, waves)`` — roughly mid-peel,
      since a rank sends about three frames per wave — so runs long
      enough to have passed a barrier demonstrate a real rewind.
    """
    from repro.dist.faults import FaultPlan

    rows = []
    for name in names or MASSIVE_DATASETS:
        g = load_dataset(name, scale=scale)
        ref = measure(
            lambda: truss_decomposition_flat(g), track_memory=False
        )
        row: Dict = {
            "dataset": name,
            "|E|": g.num_edges,
            "kmax": ref.result.kmax,
            "flat (s)": ref.seconds,
            "ranks": ranks,
        }

        def best_of(**kwargs) -> Tuple[float, Dict]:
            seconds, extra = None, {}
            for _ in range(max(1, repeats)):
                run = measure(
                    lambda: truss_decomposition_dist(
                        g, ranks=ranks, on_failure="retry", **kwargs
                    ),
                    track_memory=False,
                )
                assert run.result == ref.result, (name, kwargs)
                extra = run.result.stats.extra
                seconds = (
                    run.seconds
                    if seconds is None
                    else min(seconds, run.seconds)
                )
            return seconds, extra

        base, extra = best_of(checkpoint_interval=0)
        row["ckpt off (s)"] = base
        row["waves"] = extra.get("waves", 0)
        for interval in intervals:
            seconds, extra = best_of(checkpoint_interval=interval)
            row[f"ckpt@{interval} (s)"] = seconds
            row[f"ckpt@{interval} snaps"] = extra.get("checkpoints", 0)
            row[f"ckpt@{interval} ovh"] = seconds / max(base, 1e-9) - 1
        seconds, extra = best_of(
            checkpoint_interval=intervals[len(intervals) // 2],
            fault_plan=FaultPlan.kill(
                1, round=max(kill_round, int(row["waves"]))
            ),
        )
        assert extra.get("retries") == 1, (name, extra)
        row["recovery (s)"] = seconds
        row["resumed epoch"] = extra.get("resumed_from_epoch", -1)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Ablation — observability: tracing-on vs tracing-off, per engine
# ---------------------------------------------------------------------------
def obs_overhead_rows(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
    engines: Sequence[str] = ("flat", "parallel", "dist"),
    repeats: int = 2,
) -> List[Dict]:
    """What :mod:`repro.obs` tracing costs each engine, same truth.

    Per dataset and engine the peel runs best-of-``repeats`` with
    tracing off (the ``NULL_TRACER`` fast path every untraced caller
    takes) and again with an enabled in-memory :class:`repro.obs.Tracer`
    attached; the two trussness maps are asserted identical before any
    time is reported.  Each traced run's event stream is
    schema-validated and its trace-derived phase split (index build vs
    peel wall clock) rides along in the row, so the JSON artifact
    documents both the overhead ratio *and* where the traced run spent
    its time.  The ratio is recorded, not hard-gated: at CI scale the
    runs are milliseconds and the quotient is noisy — the suite's
    deterministic <5%% pin on the off path lives in the test tier.
    """
    from repro.obs import Tracer, validate_event
    from repro.obs.report import phase_durations

    runners = {
        "flat": lambda g, tr: truss_decomposition_flat(g, trace=tr),
        "parallel": lambda g, tr: truss_decomposition_parallel(
            g, jobs=2, trace=tr
        ),
        "dist": lambda g, tr: truss_decomposition_dist(
            g, ranks=2, trace=tr
        ),
    }
    rows = []
    for name in names or MASSIVE_DATASETS:
        g = load_dataset(name, scale=scale)
        for engine in engines:
            run_one = runners[engine]
            t_off, ref = None, None
            for _ in range(max(1, repeats)):
                run = measure(lambda: run_one(g, None), track_memory=False)
                ref = run.result
                t_off = (
                    run.seconds
                    if t_off is None
                    else min(t_off, run.seconds)
                )
            t_on, events = None, []
            for _ in range(max(1, repeats)):
                tracer = Tracer(sink=None)
                run = measure(
                    lambda: run_one(g, tracer), track_memory=False
                )
                assert run.result == ref, (name, engine)
                events = tracer.drain()
                t_on = (
                    run.seconds if t_on is None else min(t_on, run.seconds)
                )
            for event in events:
                validate_event(event)
            phases = phase_durations(events)
            rows.append({
                "dataset": name,
                "|E|": g.num_edges,
                "engine": engine,
                "off (s)": t_off,
                "on (s)": t_on,
                "overhead": t_on / max(t_off, 1e-9) - 1,
                "events": len(events),
                "trace index (s)": phases.get("index_build", 0.0),
                "trace peel (s)": phases.get("peel", 0.0),
            })
    return rows


# ---------------------------------------------------------------------------
# Ablation — dict-free streaming ingest vs the Graph round trip
# ---------------------------------------------------------------------------
def incremental_rows(
    scale: float = 1.0,
    batch_sizes: Sequence[int] = (1, 16, 256),
    n_updates: int = 256,
    seed: int = 2012,
) -> List[Dict]:
    """Incremental repair vs from-scratch recompute, per batch size.

    Picks the largest massive-registry dataset (by edge count at this
    scale), generates a seeded update stream over its vertex range
    (alternating fresh inserts and deletes of original edges, so most
    updates are effective and triangle-touching), and replays it in
    chunks of each batch size through (a) the incremental maintainer's
    ``apply_batch`` and (b) what a server without a write path would
    pay — mutate a mirror, full flat recompute per chunk.  The two end
    states are asserted bit-identical before any time is reported.

    The from-scratch side makes long streams unaffordable at small
    batch sizes, so each row replays ``min(n_updates, max(24, B))``
    updates and reports *per-update* milliseconds alongside the raw
    walls — the per-update columns are the comparable ones.
    """
    from repro.stream import TrussMaintainer

    graphs = {
        name: load_dataset(name, scale=scale) for name in MASSIVE_DATASETS
    }
    name, g = max(graphs.items(), key=lambda kv: kv[1].num_edges)
    rng = random.Random(seed)
    verts = sorted(g.vertices())
    originals = sorted(g.edges())
    rng.shuffle(originals)
    updates = []
    for i in range(n_updates):
        if i % 2 and i // 2 < len(originals):
            updates.append(("delete", *originals[i // 2]))
        else:
            u, v = rng.sample(verts, 2)
            updates.append(("insert", u, v))
    rows: List[Dict] = []
    for batch in batch_sizes:
        ups = updates[: min(n_updates, max(24, batch))]
        tm = TrussMaintainer.from_graph(g)
        inc = measure(
            lambda: [
                tm.apply_batch(ups[i : i + batch])
                for i in range(0, len(ups), batch)
            ],
            track_memory=False,
        )
        mirror = g.copy()
        last = {}

        def replay_scratch():
            td = None
            for i in range(0, len(ups), batch):
                for op, u, v in ups[i : i + batch]:
                    if op == "insert":
                        mirror.add_edge(u, v)
                    else:
                        mirror.discard_edge(u, v)
                td = truss_decomposition_flat(mirror)
            last["td"] = td

        scratch = measure(replay_scratch, track_memory=False)
        assert dict(tm.trussness) == dict(last["td"].trussness), (
            name, batch,
        )
        extra = tm.stats.extra
        repairs = max(1, int(extra.get("repairs", 1)))
        rows.append({
            "dataset": name,
            "|E|": g.num_edges,
            "batch": batch,
            "updates": len(ups),
            "incremental (s)": inc.seconds,
            "scratch (s)": scratch.seconds,
            "incremental/update (ms)": 1e3 * inc.seconds / len(ups),
            "scratch/update (ms)": 1e3 * scratch.seconds / len(ups),
            "speedup": scratch.seconds / max(inc.seconds, 1e-9),
            "affected/repair": extra.get("affected_edges", 0) / repairs,
        })
    return rows


def ingest_fastpath_rows(
    path,
    method: str = "flat",
    jobs: Optional[int] = None,
    repeats: int = 2,
) -> Dict:
    """File->trussness through both ingest routes, end to end.

    Fast path: ``CSRGraph.from_edge_list_file`` -> flat/parallel engine.
    Legacy path: ``read_edge_list`` (dict-of-set build) -> the same
    engine (which snapshots the graph to CSR internally).  Results are
    asserted identical; both the parse-only and end-to-end timings are
    reported, best-of-``repeats``.
    """
    engine = (
        (lambda g: truss_decomposition_parallel(g, jobs=jobs))
        if method == "parallel"
        else truss_decomposition_flat
    )

    def fast():
        return engine(CSRGraph.from_edge_list_file(path))

    def legacy():
        return engine(read_edge_list(path))

    row: Dict = {"file": str(path), "method": method}
    fast_total = legacy_total = None
    reference = None
    for _ in range(max(1, repeats)):
        parse = measure(
            lambda: CSRGraph.from_edge_list_file(path), track_memory=False
        )
        row["fast parse (s)"] = min(
            row.get("fast parse (s)", parse.seconds), parse.seconds
        )
        run = measure(fast, track_memory=False)
        reference = run.result
        fast_total = (
            run.seconds if fast_total is None else min(fast_total, run.seconds)
        )
        parse = measure(lambda: read_edge_list(path), track_memory=False)
        row["legacy parse (s)"] = min(
            row.get("legacy parse (s)", parse.seconds), parse.seconds
        )
        run = measure(legacy, track_memory=False)
        assert run.result == reference
        legacy_total = (
            run.seconds
            if legacy_total is None
            else min(legacy_total, run.seconds)
        )
    row["|E|"] = reference.num_edges
    row["fast total (s)"] = fast_total
    row["legacy total (s)"] = legacy_total
    row["parse speedup"] = row["legacy parse (s)"] / max(
        row["fast parse (s)"], 1e-9
    )
    row["end-to-end speedup"] = legacy_total / max(fast_total, 1e-9)
    return row


# ---------------------------------------------------------------------------
# Table 4 — TD-bottomup vs TD-MR
# ---------------------------------------------------------------------------
PAPER_TABLE4 = {
    "p2p": (1.0, 4200.0),
    "hep": (1.0, 14760.0),
    "lj": (664.0, None),
    "btc": (1768.0, None),
    "web": (6314.0, None),
}


def table4_rows(
    scale_small: float = 0.25,
    scale_massive: float = 0.35,
    run_mapreduce: bool = True,
) -> List[Dict]:
    """TD-bottomup everywhere; TD-MR only where it can finish.

    The paper could only run TD-MR on P2P and HEP (3+ orders of
    magnitude slower); we mirror that: MR runs on the two small
    datasets (with Hadoop-style per-round materialization through the
    accounted block layer), the massive three get '-' in the MR column.
    """
    import tempfile

    from repro.mapreduce import LocalMRRuntime

    rows = []
    for name in SMALL_DATASETS + MASSIVE_DATASETS:
        small = name in SMALL_DATASETS
        g = load_dataset(name, scale=scale_small if small else scale_massive)
        stats = IOStats()
        bottomup = measure(
            lambda: truss_decomposition_bottomup(
                g, budget=external_budget(g), stats=stats
            ),
            track_memory=False,
        )
        mr_seconds = None
        mr_blocks = None
        if run_mapreduce and small:
            with tempfile.TemporaryDirectory() as spill:
                mr_io = IOStats()
                runtime = LocalMRRuntime(
                    num_reducers=8, spill_dir=Path(spill), io_stats=mr_io
                )
                mr = measure(
                    lambda: truss_decomposition_mapreduce(g, runtime=runtime),
                    track_memory=False,
                )
            assert mr.result == bottomup.result, name
            mr_seconds = mr.seconds
            mr_blocks = mr_io.total_blocks
        paper_bu, paper_mr = PAPER_TABLE4.get(name, (None, None))
        rows.append(
            {
                "dataset": name,
                "|E|": g.num_edges,
                "TD-bottomup (s)": bottomup.seconds,
                "TD-MR (s)": mr_seconds,
                "block I/Os": stats.total_blocks,
                "MR block I/Os": mr_blocks,
                "paper bottomup (s)": paper_bu,
                "paper MR (s)": paper_mr,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 5 — TD-topdown top-20 vs all, vs TD-bottomup
# ---------------------------------------------------------------------------
PAPER_TABLE5 = {
    "lj": (149.0, 941.0, 664.0),
    "btc": (1744.0, 1744.0, 1768.0),
    "web": (2354.0, None, 6314.0),
}


def table5_rows(scale: float = 0.25, t: int = 20) -> List[Dict]:
    """Top-t vs full top-down vs bottom-up on the massive datasets.

    Reports wall time and block I/O; the paper's ordering claims live in
    the I/O columns (its testbed was disk-bound; our scaled files are
    page-cached).  The "all" column disables the kinit fast-forward to
    match the regime the paper measured (on their graphs the first
    fitting candidate is at ``k ~ k1st`` anyway).
    """
    rows = []
    for name in MASSIVE_DATASETS:
        g = load_dataset(name, scale=scale)
        budget = external_budget(g)
        io_top, io_all, io_bu = IOStats(), IOStats(), IOStats()
        topt = measure(
            lambda: truss_decomposition_topdown(
                g, t=t, budget=budget, stats=io_top
            ),
            track_memory=False,
        )
        full = measure(
            lambda: truss_decomposition_topdown(
                g, budget=budget, stats=io_all, use_kinit=False
            ),
            track_memory=False,
        )
        bottomup = measure(
            lambda: truss_decomposition_bottomup(g, budget=budget, stats=io_bu),
            track_memory=False,
        )
        assert full.result == bottomup.result, name
        paper = PAPER_TABLE5.get(name, (None, None, None))
        rows.append(
            {
                "dataset": name,
                f"top-{t} (s)": topt.seconds,
                "all (s)": full.seconds,
                "bottomup (s)": bottomup.seconds,
                f"top-{t} I/O": io_top.total_blocks,
                "all I/O": io_all.total_blocks,
                "bottomup I/O": io_bu.total_blocks,
                "paper top-20 (s)": paper[0],
                "paper all (s)": paper[1],
                "paper bottomup (s)": paper[2],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 6 — kmax-truss vs cmax-core
# ---------------------------------------------------------------------------
PAPER_TABLE6 = {
    "amazon": (5000, 33000, 55000, 442000, 11, 10, 0.99, 0.72),
    "wiki": (237, 700, 32000, 147000, 53, 131, 0.64, 0.42),
    "skitter": (185, 222, 16000, 33000, 68, 111, 0.95, 0.71),
    "blog": (49, 387, 2000, 54000, 49, 86, 1.00, 0.52),
    "lj": (383, 395, 146000, 155000, 362, 372, 1.00, 0.99),
    "btc": (653, 1295, 10000, 838000, 7, 641, 0.45, 0.00002),
    "web": (498, 862, 82000, 148000, 166, 165, 1.00, 0.59),
}


def table6_rows(scale: float = 0.5, names: Optional[Sequence[str]] = None) -> List[Dict]:
    """Size, density and clustering of the kmax-truss vs the cmax-core."""
    rows = []
    for name in names or TRUSS_VS_CORE_DATASETS:
        g = load_dataset(name, scale=scale)
        td = truss_decomposition_improved(g)
        kmax, t = td.max_truss()
        cmax, c = max_core(g)
        paper = PAPER_TABLE6.get(name)
        rows.append(
            {
                "dataset": name,
                "|V_T|": t.num_vertices,
                "|V_C|": c.num_vertices,
                "|E_T|": t.num_edges,
                "|E_C|": c.num_edges,
                "kmax": kmax,
                "cmax": cmax,
                "CC_T": average_clustering(t),
                "CC_C": average_clustering(c),
                "paper kmax/cmax": f"{paper[4]}/{paper[5]}" if paper else None,
                "paper CC_T/CC_C": f"{paper[6]}/{paper[7]}" if paper else None,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 1 and 2
# ---------------------------------------------------------------------------
def figure1_rows() -> List[Dict]:
    """Example 1's comparison of G, its 3-core and its 4-truss."""
    from repro.cores import k_core

    g = manager_graph()
    td = truss_decomposition_improved(g)
    c3 = k_core(g, 3)
    t4 = td.k_truss(4)
    rows = []
    for label, sub, paper_cc in (
        ("G", g, PAPER_CLUSTERING[0]),
        ("3-core", c3, PAPER_CLUSTERING[1]),
        ("4-truss", t4, PAPER_CLUSTERING[2]),
    ):
        rows.append(
            {
                "subgraph": label,
                "|V|": sub.num_vertices,
                "|E|": sub.num_edges,
                "CC": average_clustering(sub),
                "paper CC": paper_cc,
            }
        )
    return rows


def figure2_rows() -> List[Dict]:
    """Example 2's k-classes of the running example, ours vs paper."""
    g = running_example_graph()
    td = truss_decomposition_improved(g)
    rows = []
    for k in sorted(RUNNING_EXAMPLE_CLASSES):
        rows.append(
            {
                "k": k,
                "|Phi_k| measured": len(td.k_class(k)),
                "|Phi_k| paper": len(RUNNING_EXAMPLE_CLASSES[k]),
                "match": sorted(td.k_class(k))
                == sorted(RUNNING_EXAMPLE_CLASSES[k]),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# report assembly
# ---------------------------------------------------------------------------
TABLE_HEADERS = {
    "table2": [
        "dataset", "|V|", "|E|", "size(B)", "dmax", "dmed", "kmax",
        "paper |V|", "paper |E|", "paper kmax",
    ],
    "table3": [
        "dataset", "TD-inmem (s)", "TD-inmem+ (s)", "speedup",
        "mem inmem (MB)", "mem inmem+ (MB)", "paper speedup",
    ],
    "table4": [
        "dataset", "|E|", "TD-bottomup (s)", "TD-MR (s)", "block I/Os",
        "MR block I/Os", "paper bottomup (s)", "paper MR (s)",
    ],
    "table5": [
        "dataset", "top-20 (s)", "all (s)", "bottomup (s)",
        "top-20 I/O", "all I/O", "bottomup I/O",
        "paper top-20 (s)", "paper all (s)", "paper bottomup (s)",
    ],
    "table6": [
        "dataset", "|V_T|", "|V_C|", "|E_T|", "|E_C|", "kmax", "cmax",
        "CC_T", "CC_C", "paper kmax/cmax", "paper CC_T/CC_C",
    ],
    "flat_engine": [
        "dataset", "|E|", "kmax", "TD-inmem (s)", "TD-inmem+ (s)",
        "flat (s)", "speedup vs inmem+",
    ],
    "figure1": ["subgraph", "|V|", "|E|", "CC", "paper CC"],
    "figure2": ["k", "|Phi_k| measured", "|Phi_k| paper", "match"],
}


def print_table(name: str, rows: List[Dict], title: str) -> str:
    """Render one experiment's rows with its canonical headers."""
    headers = TABLE_HEADERS.get(name) or list(rows[0]) if rows else []
    text = render_table(title, headers, rows)
    print(text)
    return text
