"""Randomized partitioner: hash vertices into ~2|G|/M buckets.

The third Chu–Cheng partitioner: assign each vertex to one of ``p``
buckets uniformly at random.  No extra memory beyond the bucket id per
vertex, and the number of LowerBounding iterations is ``O(m/M)`` with
high probability because each bucket's expected NS weight is ``|G|·2/p
<= M``.  We keep the assignment *seeded* so experiments replay exactly.

Buckets that still overflow (heavy-tailed degrees make this possible)
are re-packed greedily, preserving the random grouping otherwise.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.exio.memory import MemoryBudget
from repro.partition.base import Partitioner, PartitionSource, vertex_weight


class RandomizedPartitioner(Partitioner):
    """Seeded uniform bucketing with overflow re-packing."""

    name = "randomized"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed

    def partition(
        self, source: PartitionSource, budget: MemoryBudget
    ) -> List[List[int]]:
        capacity = budget.partition_capacity()
        total_weight = sum(
            vertex_weight(d) for d in source.degrees.values()
        )
        p = max(1, -(-total_weight // capacity))
        # reseed per call: iterative callers need fresh boundaries each
        # round or straddling edges would never become internal
        rng = random.Random(self.seed * 1_000_003 + self._calls)
        self._calls += 1
        buckets: Dict[int, List[int]] = {i: [] for i in range(p)}
        # iterate in sorted order so the rng consumption is deterministic
        for v in sorted(source.degrees):
            buckets[rng.randrange(p)].append(v)
        blocks: List[List[int]] = []
        for i in range(p):
            bucket = buckets[i]
            if not bucket:
                continue
            blocks.extend(self.pack_by_weight(bucket, source.degrees, capacity))
        return blocks
