"""Extraction of neighborhood subgraphs for partition blocks.

Given a block ``P_i`` and a sequential edge source, ``NS(P_i)`` is
materialized in one scan: keep every edge with at least one endpoint in
``P_i``.  This is Step 5 of Algorithm 3 and Steps 4-5 of Algorithm 4 —
the only way the external algorithms ever move graph data into memory.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Tuple

from repro.exio.memory import MemoryBudget
from repro.graph.edges import Edge
from repro.graph.views import NeighborhoodSubgraph, neighborhood_subgraph_from_edges
from repro.partition.base import PartitionSource


def extract_block(
    source: PartitionSource, block: Iterable[int]
) -> NeighborhoodSubgraph:
    """One scan of the edge source → ``NS(block)`` in memory."""
    return neighborhood_subgraph_from_edges(source.iter_edges(), block)


def iter_block_subgraphs(
    source: PartitionSource, blocks: List[List[int]]
) -> Iterator[Tuple[List[int], NeighborhoodSubgraph]]:
    """Yield ``(block, NS(block))`` pairs, one extraction scan per block.

    Scanning once per block (rather than splitting one scan p ways)
    keeps the memory footprint at a single subgraph, which is the whole
    point; total cost is ``p · scan(|G|)``, the paper's
    ``O((m/M) · scan(|G|))`` when ``p = O(m/M)``.
    """
    for block in blocks:
        yield block, extract_block(source, block)
