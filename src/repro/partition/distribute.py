"""One-scan distribution of edges into per-block bucket files.

The external-memory way to extract all ``NS(P_i)`` in one pass
(Chu–Cheng [13]): scan the edge file once and append each record to the
bucket file of each endpoint's block.  Block ``i``'s bucket then holds
exactly the edges with an endpoint in ``P_i`` — the edge set of
``NS(P_i)`` — at a total cost of ``O(scan(|G|))`` reads plus
``O(scan(2|G|))`` writes per round, instead of one full scan per block.

The ``p`` concurrently open writers each hold one partial block of
buffer, the standard ``p <= M/B`` fan-out assumption of the I/O model.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exio.blockfile import BlockReader, BlockWriter, remove_if_exists
from repro.exio.iostats import IOStats
from repro.exio.records import ATTR_EDGE

AttrEdge = Tuple[int, int, int]


class BucketSet:
    """A round's per-block bucket files; always ``close``d or used via
    context manager so buffers flush before reading."""

    def __init__(self, num_blocks: int, workdir: Path, stats: IOStats, tag: str) -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.stats = stats
        self.paths: List[Path] = [
            self.workdir / f"bucket-{tag}-{i}.bin" for i in range(num_blocks)
        ]
        self._writers: Optional[List[BlockWriter]] = [
            BlockWriter(p, stats) for p in self.paths
        ]

    def append(self, block: int, record: AttrEdge) -> None:
        """Append one record to a block's bucket."""
        assert self._writers is not None, "bucket set already sealed"
        self._writers[block].write(ATTR_EDGE.pack(*record))

    def seal(self) -> None:
        """Flush and close all writers (idempotent)."""
        if self._writers is not None:
            for w in self._writers:
                w.close()
            self._writers = None

    def read(self, block: int) -> Iterator[AttrEdge]:
        """Sequentially read one bucket (after sealing)."""
        assert self._writers is None, "seal() before reading"
        with BlockReader(self.paths[block], self.stats) as r:
            yield from ATTR_EDGE.read_stream(r)

    def delete(self) -> None:
        """Remove every bucket file."""
        self.seal()
        for p in self.paths:
            remove_if_exists(p)

    def __enter__(self) -> "BucketSet":
        return self

    def __exit__(self, *exc) -> None:
        self.delete()


def distribute_edges(
    records: Iterable[AttrEdge],
    block_of: Dict[int, int],
    num_blocks: int,
    workdir: Path,
    stats: IOStats,
    tag: str = "ns",
) -> BucketSet:
    """Route each record to its endpoint blocks' buckets (one scan).

    A record goes to ``block_of[u]`` and, if different, ``block_of[v]``;
    endpoints absent from ``block_of`` contribute no routing (their
    block needs no copy).  Records with neither endpoint mapped are
    dropped — no neighborhood subgraph can want them this round.
    """
    buckets = BucketSet(num_blocks, workdir, stats, tag)
    for u, v, attr in records:
        bu = block_of.get(u)
        bv = block_of.get(v)
        if bu is not None:
            buckets.append(bu, (u, v, attr))
        if bv is not None and bv != bu:
            buckets.append(bv, (u, v, attr))
    buckets.seal()
    return buckets
