"""Graph partitioning for memory-bounded neighborhood subgraphs.

Public surface::

    PartitionSource         sequential-access view (degrees + edge scans)
    SequentialPartitioner   greedy in-order packing
    DominatingSetPartitioner  seed-clustered packing
    RandomizedPartitioner   seeded uniform bucketing
    EdgeShardPartitioner    static contiguous edge-id shards (parallel peel)
    EdgeShardPlan, plan_edge_shards   the native edge-shard API
    extract_block, iter_block_subgraphs   NS(P_i) materialization
    default_partitioner     the library default (sequential)
"""

from repro.partition.base import (
    Partitioner,
    PartitionSource,
    check_partition,
    partition_with_escape,
    vertex_weight,
)
from repro.partition.dominating import DominatingSetPartitioner
from repro.partition.edge_shards import (
    EdgeShardError,
    EdgeShardPartitioner,
    EdgeShardPlan,
    balanced_prefix_cuts,
    edge_shard_source,
    incidence_weights,
    plan_edge_shards,
)
from repro.partition.extract import extract_block, iter_block_subgraphs
from repro.partition.randomized import RandomizedPartitioner
from repro.partition.sequential import SequentialPartitioner


def default_partitioner() -> Partitioner:
    """The partitioner used when callers do not choose one.

    The dominating-set-seeded strategy: its clusters pack vertices next
    to their neighbors, so each LowerBounding round retires a large
    fraction of edges — this is the variant Chu–Cheng give the
    ``O(m/M)``-iterations guarantee for, and the ablation benchmark
    shows it beating id-order sequential packing by >10x on graphs with
    no id locality.
    """
    return DominatingSetPartitioner()


def partitioner_by_name(name: str, seed: int = 0) -> Partitioner:
    """Look up a partitioner by its registry name."""
    if name == "sequential":
        return SequentialPartitioner()
    if name == "dominating":
        return DominatingSetPartitioner()
    if name == "randomized":
        return RandomizedPartitioner(seed=seed)
    if name == "edge_shards":
        return EdgeShardPartitioner()
    raise ValueError(
        f"unknown partitioner {name!r}; expected one of "
        "'sequential', 'dominating', 'randomized', 'edge_shards'"
    )


__all__ = [
    "Partitioner",
    "PartitionSource",
    "check_partition",
    "partition_with_escape",
    "vertex_weight",
    "SequentialPartitioner",
    "DominatingSetPartitioner",
    "RandomizedPartitioner",
    "EdgeShardError",
    "EdgeShardPartitioner",
    "EdgeShardPlan",
    "balanced_prefix_cuts",
    "edge_shard_source",
    "incidence_weights",
    "plan_edge_shards",
    "extract_block",
    "iter_block_subgraphs",
    "default_partitioner",
    "partitioner_by_name",
]
