"""Partitioner interface for memory-bounded neighborhood subgraphs.

Algorithm 3 (and Procedures 6/9/10) repeatedly "partition V_G into
P = {P_1 ... P_p} such that each P_i fits in memory", citing the three
linear-time partitioners of Chu and Cheng [13].  A partitioner here maps
a vertex set with degrees to blocks whose *estimated* ``NS(P_i)`` size
stays within the memory budget's partition capacity.

The size estimate is the conservative upper bound

    |NS(U)| = |V_NS| + |E_NS|  <=  |U| + 2 · Σ_{v∈U} deg(v)

(every incident edge contributes at most one external vertex and one
edge unit).  Vertices whose own weight exceeds the capacity get a
singleton block: the downstream procedures (9/10) already handle
subgraphs that overflow memory, so the partitioner must not fail.

Partitioners read the graph only through :class:`PartitionSource`, which
offers O(n) degree state plus restartable sequential edge scans — the
same access pattern the paper's external setting permits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional

from repro.exio.edgefile import DiskEdgeFile
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge


@dataclass(frozen=True)
class PartitionSource:
    """Sequential-access view of a (possibly on-disk) graph.

    ``degrees`` is an in-memory vertex→degree map (O(n) state, the
    amount the paper's partitioners are allowed); ``iter_edges`` starts
    a fresh sequential scan each call.
    """

    degrees: Mapping[int, int]
    iter_edges: Callable[[], Iterator[Edge]]

    @property
    def num_vertices(self) -> int:
        return len(self.degrees)

    @property
    def size_units(self) -> int:
        """``|G| = n + m`` computed from the degree map."""
        return len(self.degrees) + sum(self.degrees.values()) // 2

    @classmethod
    def from_graph(cls, g: Graph) -> "PartitionSource":
        degrees = {v: g.degree(v) for v in g.vertices()}
        return cls(degrees=degrees, iter_edges=lambda: iter(sorted(g.edges())))

    @classmethod
    def from_edge_file(cls, f: DiskEdgeFile) -> "PartitionSource":
        """Derive degrees with one scan; later scans stream on demand."""
        degrees: Dict[int, int] = {}
        for u, v in f.scan_edges():
            degrees[u] = degrees.get(u, 0) + 1
            degrees[v] = degrees.get(v, 0) + 1
        return cls(degrees=degrees, iter_edges=f.scan_edges)


def vertex_weight(degree: int) -> int:
    """Estimated contribution of one vertex to |NS(P)| in units.

    ``1 + deg``: the vertex itself plus its incident edges.  External
    endpoints are not charged — over a block they are bounded by the
    edge count already charged, so the estimate stays within 2x of the
    true ``|NS(P)| = n + m`` while keeping partitions coarse (fewer
    blocks means fewer extraction scans per iteration; the (M, B) model
    tolerates the slack exactly the way the paper's own ``p >= 2|G|/M``
    sizing does).
    """
    return 1 + degree


class Partitioner(ABC):
    """Strategy object producing memory-bounded vertex blocks.

    Partitioners are *stateful across calls*: the iterative external
    algorithms re-partition a shrinking graph every round, and an edge
    that straddles a block boundary contributes nothing that round.  If
    the boundaries never move, the same edges straddle forever and the
    iteration count explodes; rotating the packing phase between calls
    (each round the first block is deliberately under-filled by a
    varying fraction) shifts every boundary so a straddler soon lands
    inside a block.  Results remain deterministic for a fixed
    construction + call sequence.
    """

    name: str = "abstract"

    #: capacity fractions for the first block, cycled per partition() call
    _PHASES = (1.0, 0.5, 0.75, 0.25)

    def __init__(self) -> None:
        self._calls = 0

    @abstractmethod
    def partition(
        self, source: PartitionSource, budget: MemoryBudget
    ) -> List[List[int]]:
        """Split the vertices into blocks; every vertex appears exactly
        once across all blocks, and each block's estimated NS size fits
        in ``budget.partition_capacity()`` (except unavoidable singleton
        overflow blocks)."""

    # ------------------------------------------------------------------
    def _next_phase(self) -> float:
        phase = self._PHASES[self._calls % len(self._PHASES)]
        self._calls += 1
        return phase

    def pack_by_weight(
        self,
        vertices: List[int],
        degrees: Mapping[int, int],
        capacity: int,
        phase: Optional[float] = None,
    ) -> List[List[int]]:
        """Greedy first-fit packing preserving the given vertex order.

        ``phase`` under-fills the first block to ``phase * capacity``
        (see the class docstring); ``None`` keeps classic packing.
        """
        blocks: List[List[int]] = []
        current: List[int] = []
        current_weight = 0
        limit = int(capacity * phase) if phase is not None else capacity
        for v in vertices:
            w = vertex_weight(degrees[v])
            if current and current_weight + w > limit:
                blocks.append(current)
                current = []
                current_weight = 0
                limit = capacity
            current.append(v)
            current_weight += w
        if current:
            blocks.append(current)
        return blocks


def partition_with_escape(
    partitioner: "Partitioner",
    source: PartitionSource,
    budget: MemoryBudget,
    boost: int = 1,
) -> List[List[int]]:
    """Partition with a guaranteed collapse to one block at high boost.

    The iterative external loops (LowerBounding, Procedures 9/10, the
    external support counter) widen blocks when a round makes no
    progress; their termination requires that a *sufficiently large*
    boosted budget yields a single block.  Individual partitioners need
    not promise that, so this wrapper checks the total weight itself.
    """
    if source.num_vertices == 0:
        return []
    boosted = MemoryBudget(units=budget.units * boost)
    total = sum(vertex_weight(d) for d in source.degrees.values())
    if boosted.partition_capacity() >= total:
        return [sorted(source.degrees)]
    return partitioner.partition(source, boosted)


def check_partition(blocks: List[List[int]], source: PartitionSource) -> None:
    """Validate the partition contract (used by tests and debug builds)."""
    seen: Dict[int, int] = {}
    for i, block in enumerate(blocks):
        for v in block:
            if v in seen:
                raise AssertionError(
                    f"vertex {v} appears in blocks {seen[v]} and {i}"
                )
            seen[v] = i
    missing = set(source.degrees) - set(seen)
    if missing:
        raise AssertionError(f"vertices missing from partition: {sorted(missing)[:5]}")
