"""Dominating-set-seeded partitioner.

The second Chu–Cheng partitioner uses a dominating vertex set as seeds
so each block is a cluster of topologically close vertices — a
neighborhood subgraph over such a block shares many internal edges,
which tightens the local truss lower bounds of Algorithm 3.  It uses
O(n) memory and bounds LowerBounding's iterations by ``O(m/M)``.

Our construction uses two sequential edge scans:

1. *Seeding* — stream edges; when both endpoints are still undominated,
   take the higher-degree endpoint as a seed and mark both dominated
   (endpoints of a maximal matching, biased to hubs, dominate every
   non-isolated vertex).
2. *Assignment* — stream edges again; attach each non-seed vertex to
   the first seed it is seen adjacent to.  Unattached vertices (isolated
   or only adjacent to non-seeds later dominated) fall back to their own
   cluster.

Clusters are then packed into capacity-bounded blocks, splitting
clusters that are individually too heavy.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exio.memory import MemoryBudget
from repro.partition.base import Partitioner, PartitionSource


class DominatingSetPartitioner(Partitioner):
    """Cluster-by-seed partitioning (locality-aware)."""

    name = "dominating"

    def partition(
        self, source: PartitionSource, budget: MemoryBudget
    ) -> List[List[int]]:
        degrees = source.degrees
        capacity = budget.partition_capacity()

        # pass 1: greedy seeding
        dominated: set = set()
        seeds: List[int] = []
        for u, v in source.iter_edges():
            if u not in dominated and v not in dominated:
                seed = u if degrees[u] >= degrees[v] else v
                seeds.append(seed)
                dominated.add(u)
                dominated.add(v)
        seed_set = set(seeds)

        # pass 2: attach vertices to the first adjacent seed
        cluster_of: Dict[int, int] = {s: s for s in seed_set}
        for u, v in source.iter_edges():
            if u in seed_set and v not in cluster_of:
                cluster_of[v] = u
            elif v in seed_set and u not in cluster_of:
                cluster_of[u] = v

        clusters: Dict[int, List[int]] = {s: [] for s in seeds}
        stragglers: List[int] = []
        for v in sorted(degrees):
            s = cluster_of.get(v)
            if s is None:
                stragglers.append(v)
            else:
                clusters[s].append(v)

        # pack whole clusters together so blocks merge freely up to the
        # capacity (one block per cluster would never coarsen, and the
        # iterative callers rely on large budgets yielding few blocks)
        ordered: List[int] = []
        for s in seeds:
            ordered.extend(clusters[s])
        ordered.extend(stragglers)
        return self.pack_by_weight(
            ordered, degrees, capacity, phase=self._next_phase()
        )
