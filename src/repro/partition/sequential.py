"""Sequential partitioner: greedy fill in ascending vertex-id order.

The first of Chu–Cheng's three partitioners: walk the vertices in
storage order (ascending id, the adjacency file order) and close a
block whenever adding the next vertex would overflow the capacity.
Fast — one pass, no extra scans — but with no theoretical bound on the
number of LowerBounding iterations (the paper, Section 5.1).
"""

from __future__ import annotations

from typing import List

from repro.exio.memory import MemoryBudget
from repro.partition.base import Partitioner, PartitionSource


class SequentialPartitioner(Partitioner):
    """Greedy in-order packing (the paper's "first" partitioner)."""

    name = "sequential"

    def partition(
        self, source: PartitionSource, budget: MemoryBudget
    ) -> List[List[int]]:
        vertices = sorted(source.degrees)
        return self.pack_by_weight(
            vertices,
            source.degrees,
            budget.partition_capacity(),
            phase=self._next_phase(),
        )
