"""Static edge-id shard partitioner for owner-computes peeling.

The vertex-cut partitioners in this package slice *vertices* into
memory-bounded blocks for the paper's external algorithms.  This module
slices the **canonical edge-id space** ``0..m-1`` into contiguous
shards balanced by *triangle-incidence weight* — the unit of work a
peel spends on an edge — so that a worker can own its shard's support/
alive/histogram slices for an entire decomposition instead of being
handed a fresh range every wave (see :mod:`repro.core.parallel`,
``shards="static"``).

Contiguity is deliberate: ownership of a sorted edge-id array is then
a single ``searchsorted`` against the shard bounds, per-shard routing
is ``np.split``, and a shard's state is a dense slice of the flat
arrays, not a gather.  This is the same owner-computes layout PKT-style
shared-memory truss codes use, and the stepping stone to distributed
peeling where the routed per-wave buffers become message exchanges.

Two entry points:

* :func:`plan_edge_shards` — the native API: incidence weights in, an
  immutable :class:`EdgeShardPlan` (the bounds + routing helpers) out;
* :class:`EdgeShardPartitioner` — the same split exposed through the
  package's :class:`~repro.partition.base.Partitioner` protocol (items
  are edge ids, the "degree" of an edge is its triangle incidence), so
  ``check_partition`` and the budget-driven call sites treat edge
  shards exactly like vertex blocks.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.exio.memory import MemoryBudget
from repro.partition.base import Partitioner, PartitionSource

try:  # optional accelerator; every code path has a stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class EdgeShardError(ReproError):
    """An edge-shard plan was requested with invalid parameters."""


class EdgeShardPlan:
    """An immutable contiguous partition of the edge-id space.

    ``bounds`` has ``num_shards + 1`` monotone entries with
    ``bounds[0] == 0`` and ``bounds[-1] == num_edges``; shard ``s``
    owns exactly the edge ids ``bounds[s] <= e < bounds[s + 1]``.
    Every edge id is owned by exactly one shard by construction (shards
    may be empty when there are more shards than edges).
    """

    __slots__ = ("bounds",)

    def __init__(self, bounds: Sequence[int]) -> None:
        if len(bounds) < 2 or bounds[0] != 0:
            raise EdgeShardError(f"malformed shard bounds: {list(bounds)!r}")
        for a, b in zip(bounds, list(bounds)[1:]):
            if b < a:
                raise EdgeShardError(
                    f"shard bounds must be monotone, got {list(bounds)!r}"
                )
        self.bounds = array("q", bounds)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    @property
    def num_edges(self) -> int:
        return self.bounds[-1]

    def range_of(self, s: int) -> Tuple[int, int]:
        """The half-open edge-id range ``[lo, hi)`` shard ``s`` owns."""
        return self.bounds[s], self.bounds[s + 1]

    def owner_of(self, eid: int) -> int:
        """The shard owning edge id ``eid``."""
        if not 0 <= eid < self.num_edges:
            raise EdgeShardError(
                f"edge id {eid} outside 0..{self.num_edges - 1}"
            )
        return bisect_right(self.bounds, eid) - 1

    def iter_shards(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(shard, lo, hi)`` for every shard, empties included."""
        for s in range(self.num_shards):
            yield (s, self.bounds[s], self.bounds[s + 1])

    def split_sorted(self, eids):
        """Route a sorted edge-id array into per-shard pieces.

        Returns a list of ``num_shards`` sub-arrays (numpy views when
        ``eids`` is an ndarray, lists otherwise); piece ``s`` holds the
        ids shard ``s`` owns, in order.  Input order is preserved, so a
        globally sorted input yields globally sorted concatenation.
        """
        inner = list(self.bounds)[1:-1]
        if _np is not None and isinstance(eids, _np.ndarray):
            return _np.split(eids, _np.searchsorted(eids, inner))
        out: List[List[int]] = []
        lo = 0
        seq = list(eids)
        for b in inner + [self.num_edges]:
            hi = lo
            while hi < len(seq) and seq[hi] < b:
                hi += 1
            out.append(seq[lo:hi])
            lo = hi
        return out

    def shard_loads(self, weights: Sequence[int]) -> List[int]:
        """Total per-shard weight under ``weights`` (one entry per edge)."""
        if len(weights) != self.num_edges:
            raise EdgeShardError(
                f"{len(weights)} weights for {self.num_edges} edges"
            )
        return [
            sum(weights[lo:hi]) for _s, lo, hi in self.iter_shards()
        ]

    def blocks(self) -> List[List[int]]:
        """The plan as base-protocol blocks (lists of owned edge ids).

        Empty shards are dropped, matching the vertex partitioners'
        output shape; use :meth:`iter_shards` when the shard index
        matters.
        """
        return [
            list(range(lo, hi))
            for _s, lo, hi in self.iter_shards()
            if hi > lo
        ]


def balanced_prefix_cuts(weights, parts: int):
    """Cut positions splitting ``weights`` into ``parts`` balanced runs.

    The one cost convention both splitters share: item ``i`` is charged
    ``weights[i] + 1`` (its triangle incidence plus the pop itself), and
    the cuts are the balanced-prefix positions of the charged cumulative
    sum, so every run's load is within one max charge of the ideal
    ``total / parts``.  Used by :func:`plan_edge_shards` for the static
    shard bounds and by :func:`repro.core.parallel._split_weighted` for
    the dynamic per-wave frontier split — change the cost model here
    and both modes stay in lockstep.  Returns the ``parts - 1`` cut
    indices (an ndarray with numpy, a list without; both paths use the
    identical first-index-with-cum>=target rule, so a mixed deployment
    cannot disagree about ownership).
    """
    if _np is not None:
        charged = _np.asarray(weights, dtype=_np.int64) + 1
        cum = _np.cumsum(charged)
        targets = cum[-1] * _np.arange(1, parts, dtype=_np.float64) / parts
        return _np.searchsorted(cum, targets)
    cum_list: List[int] = []
    acc = 0
    for w in weights:
        acc += int(w) + 1
        cum_list.append(acc)
    return [
        bisect_left(cum_list, acc * s / parts) for s in range(1, parts)
    ]


def incidence_weights(tptr) -> Sequence[int]:
    """Per-edge triangle-incidence counts from the ``tptr`` pointers.

    ``tptr`` is the CSR-style edge->triangle incidence index built by
    :func:`repro.triangles.index_builder.build_triangle_index`; the
    weight of edge ``e``
    is its incidence window length — the number of triangle slots a
    peel touches when ``e`` pops.
    """
    if _np is not None and not isinstance(tptr, (list, array)):
        return _np.diff(_np.asarray(tptr))
    return [tptr[e + 1] - tptr[e] for e in range(len(tptr) - 1)]


def plan_edge_shards(
    m: int, shards: int, weights: Optional[Sequence[int]] = None
) -> EdgeShardPlan:
    """Cut ``0..m-1`` into ``shards`` contiguous weight-balanced ranges.

    ``weights`` are per-edge work estimates (triangle-incidence counts
    in the peel; ``None`` means uniform) and the cuts come from
    :func:`balanced_prefix_cuts` — the identical charge and cut rule
    the dynamic per-wave splitter uses — so every shard's load is
    within one max-edge-charge of the ideal ``total / shards``.  The
    plan is a pure function of ``(m, shards, weights)`` — every worker
    of a distributed peel could compute it independently and agree.
    """
    if shards < 1:
        raise EdgeShardError(f"need at least 1 shard, got {shards}")
    if m < 0:
        raise EdgeShardError(f"negative edge count {m}")
    if weights is not None and len(weights) != m:
        raise EdgeShardError(f"{len(weights)} weights for {m} edges")
    if m == 0 or shards == 1:
        return EdgeShardPlan([0] * shards + [m])
    raw = [0] * m if weights is None else weights
    cuts = balanced_prefix_cuts(raw, shards)
    return EdgeShardPlan([0] + [int(c) for c in cuts] + [m])


def route_dead_triangles(bounds, stride: int, tris, e1, e2, e3):
    """Route dead triangles to the owner shard(s) of their partner edges.

    The exactly-once convention both peels share (numpy-only, like the
    peels themselves): each triangle in ``tris`` goes to every shard
    owning at least one of its partner edges, *once per shard*, via a
    ``np.unique`` over ``owner * stride + triangle`` keys — change the
    key scheme here and the shared-memory owner-computes peel
    (:func:`repro.core.parallel.run_static_wave_peel`) and the
    distributed rank peel (:meth:`repro.dist.rank.Rank.run`) stay in
    lockstep.  ``bounds`` is the plan's ``num_shards + 1`` int64 bound
    array, ``stride`` any value ``> max(tris)`` (the triangle count),
    ``e1``/``e2``/``e3`` the triangle index's edge columns (arrays or
    mmaps).  Returns ``num_shards`` sorted arrays; piece ``s`` holds
    the triangle ids with a partner edge in shard ``s``.
    """
    partners = _np.concatenate((e1[tris], e2[tris], e3[tris]))
    owner = _np.searchsorted(bounds, partners, side="right") - 1
    key = _np.unique(owner * stride + _np.tile(tris, 3))
    owners = key // stride
    shard_ids = _np.arange(1, len(bounds) - 1, dtype=_np.int64)
    return _np.split(
        key - owners * stride, _np.searchsorted(owners, shard_ids)
    )


def edge_shard_source(tptr) -> PartitionSource:
    """A :class:`PartitionSource` over edge ids with incidence degrees.

    The adapter that lets edge shards ride the package's base protocol:
    the "vertices" are the canonical edge ids and a vertex's "degree"
    is its triangle incidence, so ``check_partition`` and budget-driven
    sizing apply unchanged.  Edge-id space has no edge relation of its
    own, hence the empty scan.
    """
    degrees = {
        e: int(w) for e, w in enumerate(incidence_weights(tptr))
    }
    return PartitionSource(degrees=degrees, iter_edges=lambda: iter(()))


class EdgeShardPartitioner(Partitioner):
    """The static edge-id splitter behind the base ``Partitioner`` face.

    ``partition(source, budget)`` treats the source's id space as edge
    ids (see :func:`edge_shard_source`) and returns the contiguous
    weight-balanced ranges as blocks.  The shard count is fixed at
    construction, or — like the vertex partitioners — derived from the
    budget's partition capacity when left ``None``.  Unlike the vertex
    partitioners the split is *static by design*: repeated calls return
    identical bounds (no phase rotation), because ownership must not
    move between waves.
    """

    name = "edge_shards"

    def __init__(self, shards: Optional[int] = None) -> None:
        super().__init__()
        if shards is not None and shards < 1:
            raise EdgeShardError(f"need at least 1 shard, got {shards}")
        self.shards = shards

    def partition(
        self, source: PartitionSource, budget: MemoryBudget
    ) -> List[List[int]]:
        m = source.num_vertices
        ids = sorted(source.degrees)
        if ids != list(range(m)):
            raise EdgeShardError(
                "edge-shard sources must cover a dense 0..m-1 id space"
            )
        weights = [source.degrees[e] for e in ids]
        if self.shards is not None:
            n_shards = self.shards
        else:
            total = m + sum(weights)
            n_shards = max(1, -(-total // budget.partition_capacity()))
        return self.plan(m, n_shards, weights).blocks()

    def plan(
        self,
        m: int,
        shards: Optional[int] = None,
        weights: Optional[Sequence[int]] = None,
    ) -> EdgeShardPlan:
        """The native entry point: a full :class:`EdgeShardPlan`."""
        n_shards = shards if shards is not None else (self.shards or 1)
        return plan_edge_shards(m, n_shards, weights)
