"""The memory budget ``M`` of the external-memory model.

The paper measures graphs and memory in the same unit: ``|G| = m + n``
(one unit per vertex or edge, Table 1).  Partitioning then targets
``p >= 2|G|/M`` parts so every neighborhood subgraph ``NS(P_i)`` fits in
memory.  :class:`MemoryBudget` keeps that arithmetic in one place and is
the single switch experiments use to simulate "graph does not fit in
main memory" on machines with plenty of physical RAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryBudgetError
from repro.graph.adjacency import Graph


@dataclass(frozen=True)
class MemoryBudget:
    """An ``M``-unit memory budget (1 unit = one vertex or one edge)."""

    units: int

    def __post_init__(self) -> None:
        if self.units < 4:
            raise MemoryBudgetError(
                f"memory budget of {self.units} units is too small to hold "
                "even a single edge with its endpoints"
            )

    # ------------------------------------------------------------------
    def fits(self, size_units: int) -> bool:
        """Whether a structure of ``size_units`` (= n + m) fits."""
        return size_units <= self.units

    def fits_graph(self, g: Graph) -> bool:
        """Whether an in-memory graph fits (``|G| = n + m <= M``)."""
        return self.fits(g.size)

    def num_partitions(self, size_units: int) -> int:
        """The paper's ``p >= 2|G|/M`` partition count (at least 1)."""
        if size_units <= 0:
            return 1
        return max(1, -(-2 * size_units // self.units))

    def partition_capacity(self) -> int:
        """Target size of one partition's neighborhood subgraph: M/2.

        Algorithm 3 partitions into ``p >= 2|G|/M`` parts precisely so
        each part's subgraph occupies about half of memory, leaving the
        other half for working state (supports, bins, hash table).
        """
        return max(2, self.units // 2)

    def require_fits(self, size_units: int, what: str) -> None:
        """Raise :class:`MemoryBudgetError` if a structure cannot fit."""
        if not self.fits(size_units):
            raise MemoryBudgetError(
                f"{what} needs {size_units} units but the budget is "
                f"{self.units} units"
            )


UNBOUNDED = MemoryBudget(units=2**62)
"""A budget so large everything fits — the in-memory special case."""
