"""Fixed-width binary record codecs for on-disk graph data.

Everything the external algorithms spill to disk is a stream of
fixed-width little-endian records, so sequential scans never parse —
they slice.  Three record shapes cover the whole paper:

* ``EDGE``       — ``(u, v)``: raw graph edges;
* ``ATTR_EDGE``  — ``(u, v, attr)``: edges of ``Gnew`` carrying the
  lower bound φ(e) (bottom-up), the support sup(e) / upper bound ψ(e)
  (top-down), or a class label;
* ``DIRECTED``   — ``(src, dst)``: the doubled, oriented pairs external
  sort groups into adjacency lists.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, Tuple

from repro.errors import FormatError
from repro.exio.blockfile import BlockReader, BlockWriter


class RecordCodec:
    """A named fixed-width struct format with stream helpers."""

    __slots__ = ("name", "_struct", "arity")

    def __init__(self, name: str, fmt: str) -> None:
        self.name = name
        self._struct = struct.Struct(fmt)
        self.arity = len(self._struct.unpack(b"\x00" * self._struct.size))

    @property
    def size(self) -> int:
        """Record width in bytes."""
        return self._struct.size

    def pack(self, *values: int) -> bytes:
        """Encode one record."""
        return self._struct.pack(*values)

    def unpack(self, data: bytes) -> Tuple[int, ...]:
        """Decode one record."""
        return self._struct.unpack(data)

    def write_stream(self, writer: BlockWriter, records: Iterable[Tuple[int, ...]]) -> int:
        """Encode and append every record; return the count written.

        Records are packed in batches and handed to the writer as a
        single buffer per batch — the per-call overhead matters when a
        scan-heavy algorithm rewrites files every iteration.
        """
        pack = self._struct.pack
        count = 0
        batch: list = []
        for rec in records:
            batch.append(pack(*rec))
            count += 1
            if len(batch) >= 2048:
                writer.write(b"".join(batch))
                batch.clear()
        if batch:
            writer.write(b"".join(batch))
        return count

    def read_stream(self, reader: BlockReader) -> Iterator[Tuple[int, ...]]:
        """Decode records until clean EOF; truncated tails raise.

        Decodes whole blocks at a time with ``struct.iter_unpack``; a
        record spanning a block boundary is carried into the next block.
        """
        size = self._struct.size
        iter_unpack = self._struct.iter_unpack
        carry = b""
        while True:
            chunk = reader.read_block()
            if not chunk:
                if carry:
                    raise EOFError(
                        f"{self.name}: truncated record at EOF "
                        f"({len(carry)} trailing bytes)"
                    )
                return
            if carry:
                chunk = carry + chunk
            usable = len(chunk) - (len(chunk) % size)
            if usable:
                yield from iter_unpack(chunk[:usable])
            carry = chunk[usable:]

    def count_in(self, nbytes: int) -> int:
        """How many records a byte length holds; reject misalignment."""
        if nbytes % self.size:
            raise FormatError(
                f"{self.name}: file length {nbytes} not a multiple of "
                f"record size {self.size}"
            )
        return nbytes // self.size


EDGE = RecordCodec("edge", "<qq")
ATTR_EDGE = RecordCodec("attr_edge", "<qqq")
DIRECTED = RecordCodec("directed", "<qq")
