"""External merge sort over fixed-width records.

Building the adjacency-list representation of a graph that does not fit
in memory is a sort: double every edge into directed ``(src, dst)``
pairs, sort by source, group.  This module provides the classic
two-phase external sort — bounded-memory run generation followed by
multi-pass ``fan_in``-way merging — with every byte accounted through
:class:`repro.exio.iostats.IOStats`.  Sorting ``N`` records with memory
for ``R`` of them costs ``O(scan(N) · log_fan_in(N/R))`` I/Os, the
textbook bound.
"""

from __future__ import annotations

import heapq
import itertools
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import MemoryBudgetError
from repro.exio.blockfile import BlockReader, BlockWriter, remove_if_exists
from repro.exio.iostats import IOStats
from repro.exio.records import RecordCodec

Record = Tuple[int, ...]
KeyFunc = Callable[[Record], object]


class ExternalSorter:
    """Sorts record streams using bounded memory and temp run files.

    ``memory_records`` caps how many records are held in memory at once
    during run generation; ``fan_in`` caps simultaneously open runs
    during merging (a second knob real database sorters expose because
    each open run needs a block-sized input buffer).
    """

    def __init__(
        self,
        codec: RecordCodec,
        workdir: Path,
        stats: IOStats,
        memory_records: int,
        fan_in: int = 64,
        key: Optional[KeyFunc] = None,
    ) -> None:
        if memory_records < 1:
            raise MemoryBudgetError("external sort needs memory for >= 1 record")
        if fan_in < 2:
            raise ValueError("merge fan-in must be at least 2")
        self._codec = codec
        self._workdir = Path(workdir)
        self._stats = stats
        self._memory_records = memory_records
        self._fan_in = fan_in
        self._key = key
        self._tmp_counter = itertools.count()
        self._workdir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _tmp_path(self, tag: str) -> Path:
        return self._workdir / f"extsort-{tag}-{next(self._tmp_counter)}.run"

    def _write_run(self, records: List[Record]) -> Path:
        records.sort(key=self._key)
        path = self._tmp_path("run")
        with BlockWriter(path, self._stats) as w:
            self._codec.write_stream(w, records)
        return path

    def _generate_runs(self, records: Iterable[Record]) -> List[Path]:
        runs: List[Path] = []
        buf: List[Record] = []
        for rec in records:
            buf.append(rec)
            if len(buf) >= self._memory_records:
                runs.append(self._write_run(buf))
                buf = []
        if buf:
            runs.append(self._write_run(buf))
        return runs

    def _stream_run(self, path: Path) -> Iterator[Record]:
        with BlockReader(path, self._stats) as r:
            yield from self._codec.read_stream(r)

    def _merge_group(self, group: List[Path]) -> Path:
        out = self._tmp_path("merge")
        streams = [self._stream_run(p) for p in group]
        with BlockWriter(out, self._stats) as w:
            merged = heapq.merge(*streams, key=self._key)
            self._codec.write_stream(w, merged)
        for p in group:
            remove_if_exists(p)
        return out

    # ------------------------------------------------------------------
    def sort_to_file(self, records: Iterable[Record], out_path: Path) -> int:
        """Sort a record stream into ``out_path``; return the count.

        Always produces a file (possibly empty) so downstream scans need
        no special cases.
        """
        runs = self._generate_runs(records)
        while len(runs) > self._fan_in:
            runs = [
                self._merge_group(runs[i : i + self._fan_in])
                for i in range(0, len(runs), self._fan_in)
            ]
        count = 0
        with BlockWriter(out_path, self._stats) as w:
            if runs:
                streams = [self._stream_run(p) for p in runs]
                merged = heapq.merge(*streams, key=self._key)
                count = self._codec.write_stream(w, merged)
        for p in runs:
            remove_if_exists(p)
        return count

    def sort_iter(self, records: Iterable[Record]) -> Iterator[Record]:
        """Sort and stream back the result, cleaning the temp file up
        when the iterator is exhausted or closed."""
        out = self._tmp_path("result")
        self.sort_to_file(records, out)
        try:
            yield from self._stream_run(out)
        finally:
            remove_if_exists(out)
