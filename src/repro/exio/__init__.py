"""External-memory substrate: the (M, B) I/O model made executable.

Components::

    IOStats           block-granular I/O counters (scan(N) accounting)
    MemoryBudget      the paper's M, in |G| = n + m units
    BlockReader/BlockWriter   sequential block-buffered file access
    RecordCodec       fixed-width record encode/decode (EDGE, ATTR_EDGE)
    ExternalSorter    bounded-memory multi-pass merge sort
    DiskEdgeFile      attributed edge file (the on-disk Gnew)
    DiskAdjacencyGraph  adjacency-list graph file in ascending-id order
"""

from repro.exio.blockfile import BlockReader, BlockWriter, file_size, remove_if_exists
from repro.exio.bufferpool import BufferPool
from repro.exio.diskgraph import DiskAdjacencyGraph
from repro.exio.edgefile import AttrEdge, DiskEdgeFile
from repro.exio.extsort import ExternalSorter
from repro.exio.iostats import DEFAULT_BLOCK_SIZE, IOStats
from repro.exio.memory import UNBOUNDED, MemoryBudget
from repro.exio.records import ATTR_EDGE, DIRECTED, EDGE, RecordCodec

__all__ = [
    "IOStats",
    "DEFAULT_BLOCK_SIZE",
    "MemoryBudget",
    "UNBOUNDED",
    "BlockReader",
    "BlockWriter",
    "BufferPool",
    "file_size",
    "remove_if_exists",
    "RecordCodec",
    "EDGE",
    "ATTR_EDGE",
    "DIRECTED",
    "ExternalSorter",
    "DiskEdgeFile",
    "AttrEdge",
    "DiskAdjacencyGraph",
]
