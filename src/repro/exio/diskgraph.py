"""On-disk adjacency-list graphs built by external sort.

The paper assumes the input graph is stored on disk in adjacency-list
representation with vertices in ascending id order (Section 2).  This
module materializes that representation for graphs that never fit in
memory: edges are doubled into directed pairs, externally sorted by
``(src, dst)``, and grouped into variable-length vertex records::

    [vid: i64][deg: i64][nbr_0: i64]...[nbr_{deg-1}: i64]

Scans stream vertices in ascending id order with their full adjacency —
the access pattern every partitioner in :mod:`repro.partition` consumes.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple

from repro.errors import FormatError
from repro.exio.blockfile import BlockReader, BlockWriter, remove_if_exists
from repro.exio.extsort import ExternalSorter
from repro.exio.iostats import IOStats
from repro.exio.records import DIRECTED
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge

_HEADER = struct.Struct("<qq")
_ID = struct.Struct("<q")


class DiskAdjacencyGraph:
    """A read-only adjacency-list graph file with I/O accounting."""

    def __init__(self, path: Path, stats: IOStats, n: int, m: int) -> None:
        self.path = Path(path)
        self.stats = stats
        self.num_vertices = n
        self.num_edges = m

    @property
    def size(self) -> int:
        """The paper's ``|G| = n + m`` in units."""
        return self.num_vertices + self.num_edges

    # ------------------------------------------------------------------
    @classmethod
    def build_from_edges(
        cls,
        edges: Iterable[Edge],
        path: Path,
        stats: IOStats,
        workdir: Path,
        memory_records: int = 1 << 16,
    ) -> "DiskAdjacencyGraph":
        """Construct the adjacency file from an edge stream.

        Uses one external sort of ``2m`` directed records under the given
        record budget, then a single grouping scan.  Duplicate edges
        collapse; self-loops raise.
        """
        sorter = ExternalSorter(
            DIRECTED, Path(workdir), stats, memory_records=memory_records
        )

        def directed_pairs() -> Iterator[Tuple[int, int]]:
            for u, v in edges:
                u, v = norm_edge(u, v)
                yield (u, v)
                yield (v, u)

        path = Path(path)
        remove_if_exists(path)
        n = 0
        m2 = 0  # directed (doubled) edge count after dedup
        with BlockWriter(path, stats) as w:
            cur_src: int = 0
            cur_nbrs: List[int] = []
            have_cur = False

            def flush() -> None:
                nonlocal n, m2
                w.write(_HEADER.pack(cur_src, len(cur_nbrs)))
                for x in cur_nbrs:
                    w.write(_ID.pack(x))
                n += 1
                m2 += len(cur_nbrs)

            for src, dst in sorter.sort_iter(directed_pairs()):
                if have_cur and src != cur_src:
                    flush()
                    cur_nbrs = []
                if not have_cur or src != cur_src:
                    cur_src = src
                    have_cur = True
                if not cur_nbrs or cur_nbrs[-1] != dst:  # dedup sorted run
                    cur_nbrs.append(dst)
            if have_cur:
                flush()
        if m2 % 2:
            raise FormatError("directed degree sum is odd; input was not symmetric")
        return cls(path, stats, n=n, m=m2 // 2)

    @classmethod
    def build_from_graph(
        cls,
        g: Graph,
        path: Path,
        stats: IOStats,
        workdir: Path,
        memory_records: int = 1 << 16,
    ) -> "DiskAdjacencyGraph":
        """Spill an in-memory graph to its on-disk representation."""
        return cls.build_from_edges(
            g.edges(), path, stats, workdir, memory_records=memory_records
        )

    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[int, List[int]]]:
        """Stream ``(vertex, sorted neighbor list)`` in ascending order."""
        with BlockReader(self.path, self.stats) as r:
            while True:
                head = r.read_exactly(_HEADER.size)
                if not head:
                    return
                vid, deg = _HEADER.unpack(head)
                if deg < 0:
                    raise FormatError(f"{self.path}: negative degree for {vid}")
                nbrs = [
                    _ID.unpack(r.read_exactly(_ID.size))[0] for i in range(deg)
                ]
                yield vid, nbrs

    def scan_edges(self) -> Iterator[Edge]:
        """Stream canonical edges (each once) in one scan."""
        for v, nbrs in self.scan():
            for w in nbrs:
                if v < w:
                    yield (v, w)

    def scan_vertices(self) -> Iterator[Tuple[int, int]]:
        """Stream ``(vertex, degree)`` pairs in one scan."""
        for v, nbrs in self.scan():
            yield v, len(nbrs)

    def to_graph(self) -> Graph:
        """Load the whole graph into memory (for small graphs/tests)."""
        g = Graph()
        for v, nbrs in self.scan():
            g.add_vertex(v)
            for w in nbrs:
                g.add_edge(v, w)
        return g

    def delete(self) -> None:
        """Remove the backing file."""
        remove_if_exists(self.path)
