"""Attributed edge files: the on-disk form of the shrinking graph Gnew.

Both external algorithms keep the working graph as "a list of edges on
disk" (Section 5.1), each edge carrying one integer attribute:

* bottom-up — the lower bound φ(e) produced by LowerBounding;
* top-down  — the support sup(e), later replaced by the upper bound ψ(e).

The file only ever experiences three access patterns, all sequential:
full scans, appends, and filtered rewrites (e.g. "delete everything in
Φ_k").  Random access is deliberately *not* offered; that restriction is
what makes the measured I/O match the paper's scan-based analysis.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Set, Tuple

from repro.exio.blockfile import BlockReader, BlockWriter, file_size, remove_if_exists
from repro.exio.iostats import IOStats
from repro.exio.records import ATTR_EDGE
from repro.graph.edges import Edge, norm_edge

AttrEdge = Tuple[int, int, int]


class DiskEdgeFile:
    """A sequential file of ``(u, v, attr)`` records with I/O accounting.

    Edges are stored in canonical orientation (``u < v``).  The record
    count is tracked in memory and re-derivable from the file length.
    """

    def __init__(self, path: Path, stats: IOStats) -> None:
        self.path = Path(path)
        self.stats = stats
        if not self.path.exists():
            self.path.touch()
        self._count = ATTR_EDGE.count_in(file_size(self.path))

    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, path: Path, records: Iterable[AttrEdge], stats: IOStats
    ) -> "DiskEdgeFile":
        """Create a fresh file from ``(u, v, attr)`` triples."""
        path = Path(path)
        remove_if_exists(path)
        f = cls(path, stats)
        f.append(records)
        return f

    @classmethod
    def from_edges(
        cls, path: Path, edges: Iterable[Edge], stats: IOStats, attr: int = 0
    ) -> "DiskEdgeFile":
        """Create a file from plain edges with a constant attribute."""
        return cls.from_records(
            path, ((u, v, attr) for u, v in edges), stats
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        """Whether the file holds no edges."""
        return self._count == 0

    @property
    def size_bytes(self) -> int:
        """Current file length in bytes."""
        return self._count * ATTR_EDGE.size

    def scan(self) -> Iterator[AttrEdge]:
        """One sequential pass over all records (charged as a scan)."""
        with BlockReader(self.path, self.stats) as r:
            yield from ATTR_EDGE.read_stream(r)

    def scan_edges(self) -> Iterator[Edge]:
        """Sequential pass yielding only the ``(u, v)`` pairs."""
        for u, v, _attr in self.scan():
            yield (u, v)

    def append(self, records: Iterable[AttrEdge]) -> int:
        """Append triples (normalizing orientation); return the count."""
        with BlockWriter(self.path, self.stats, append=True) as w:
            added = ATTR_EDGE.write_stream(
                w, ((*norm_edge(u, v), attr) for u, v, attr in records)
            )
        self._count += added
        return added

    # ------------------------------------------------------------------
    def rewrite(
        self, transform: Callable[[AttrEdge], Optional[AttrEdge]]
    ) -> int:
        """Stream every record through ``transform`` into a new file.

        ``transform`` returns the (possibly modified) record, or ``None``
        to drop it.  The rewrite costs one read scan plus one write scan,
        exactly like the paper's "reading Gnew and re-writing the reduced
        Gnew back to disk".  Returns the number of surviving records.
        """
        tmp = self.path.with_suffix(self.path.suffix + ".rewrite")
        kept = 0
        with BlockWriter(tmp, self.stats) as w:
            for rec in self.scan():
                out = transform(rec)
                if out is not None:
                    w.write(ATTR_EDGE.pack(*out))
                    kept += 1
        os.replace(tmp, self.path)
        self._count = kept
        return kept

    def remove_edges(
        self, edges: Iterable[Edge], chunk_size: Optional[int] = None
    ) -> int:
        """Delete a set of edges, chunking if it exceeds memory.

        When ``chunk_size`` is given and the edge set is larger, the file
        is rewritten once per chunk — the paper's ``|Φk|/M`` scans of
        ``Gnew`` (Section 5.2).  Returns the number of edges removed.
        """
        normalized = [norm_edge(u, v) for u, v in edges]
        if not normalized:
            return 0
        before = self._count
        if chunk_size is None or chunk_size >= len(normalized):
            chunks = [set(normalized)]
        else:
            chunks = [
                set(normalized[i : i + chunk_size])
                for i in range(0, len(normalized), chunk_size)
            ]
        for chunk in chunks:
            self.rewrite(
                lambda rec, dead=chunk: None if (rec[0], rec[1]) in dead else rec
            )
        return before - self._count

    def update_attrs(self, new_attrs: "dict[Edge, int]") -> int:
        """Rewrite attributes for the given edges (others unchanged)."""
        updated = 0

        def transform(rec: AttrEdge) -> AttrEdge:
            nonlocal updated
            key = (rec[0], rec[1])
            if key in new_attrs:
                updated += 1
                return (rec[0], rec[1], new_attrs[key])
            return rec

        self.rewrite(transform)
        return updated

    def delete(self) -> None:
        """Remove the backing file."""
        remove_if_exists(self.path)
        self._count = 0
