"""I/O accounting in the Aggarwal–Vitter external-memory model.

The paper analyses its algorithms in the standard ``(M, B)`` model
(Section 2, Table 1): data moves between disk and memory in blocks of
``B`` items, and reading or writing ``N`` items costs ``scan(N) =
Θ(N/B)`` I/Os.  Every disk-touching component in :mod:`repro.exio`
threads an :class:`IOStats` through its reads and writes so experiments
can report *measured* I/O counts next to wall-clock time — this is how
the benchmark harness demonstrates the paper's I/O-complexity claims
(e.g. Theorem 3's ``O((m/M + kmax) · scan(|G|))``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_BLOCK_SIZE = 4096
"""Default block size in bytes (a common filesystem page)."""


@dataclass
class IOStats:
    """Mutable I/O counters for one experiment or one component.

    ``block_size`` is ``B`` in bytes.  Byte counts are exact; block
    counts charge ceil(bytes/B) per sequential transfer, matching the
    model's convention that a partial block still costs one I/O.
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    blocks_read: int = 0
    blocks_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    scans_started: int = 0
    seeks: int = 0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    # ------------------------------------------------------------------
    def blocks_for(self, nbytes: int) -> int:
        """ceil(nbytes / B): the I/O cost of one sequential transfer."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.block_size)

    def account_read(self, nbytes: int) -> None:
        """Charge a sequential read of ``nbytes``."""
        self.bytes_read += nbytes
        self.blocks_read += self.blocks_for(nbytes)

    def account_write(self, nbytes: int) -> None:
        """Charge a sequential write of ``nbytes``."""
        self.bytes_written += nbytes
        self.blocks_written += self.blocks_for(nbytes)

    def account_seek(self) -> None:
        """Charge a random repositioning (the thing the paper avoids)."""
        self.seeks += 1

    def begin_scan(self) -> None:
        """Record that a full sequential scan of some file started."""
        self.scans_started += 1

    # ------------------------------------------------------------------
    @property
    def total_blocks(self) -> int:
        """Total block I/Os (reads + writes)."""
        return self.blocks_read + self.blocks_written

    @property
    def total_bytes(self) -> int:
        """Total bytes moved (read + written)."""
        return self.bytes_read + self.bytes_written

    def merge(self, other: "IOStats") -> None:
        """Fold another counter into this one (block sizes must agree)."""
        if other.block_size != self.block_size:
            raise ValueError(
                f"cannot merge IOStats with different block sizes "
                f"({self.block_size} vs {other.block_size})"
            )
        self.blocks_read += other.blocks_read
        self.blocks_written += other.blocks_written
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.scans_started += other.scans_started
        self.seeks += other.seeks

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(
            block_size=self.block_size,
            blocks_read=self.blocks_read,
            blocks_written=self.blocks_written,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            scans_started=self.scans_started,
            seeks=self.seeks,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return IOStats(
            block_size=self.block_size,
            blocks_read=self.blocks_read - earlier.blocks_read,
            blocks_written=self.blocks_written - earlier.blocks_written,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            scans_started=self.scans_started - earlier.scans_started,
            seeks=self.seeks - earlier.seeks,
        )

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"I/O: {self.blocks_read} blk read, {self.blocks_written} blk written "
            f"({self.bytes_read}B / {self.bytes_written}B), "
            f"{self.scans_started} scans, {self.seeks} seeks, B={self.block_size}"
        )
