"""Page-granular random access with an LRU buffer pool.

The external algorithms never use this — that is the point.  Section
3.3 of the paper argues that running an in-memory peeling algorithm
against a disk-resident graph forces *random* access: each removal
touches the adjacency of two arbitrary vertices, cascades touch more,
and the working set follows no scan order.  The buffer pool makes that
cost measurable: page misses are charged as block reads, and every
non-contiguous fetch is charged as a seek, so the "naive disk" baseline
(:mod:`repro.core.semi_external`) can be compared I/O-for-I/O with the
scan-only TD-bottomup.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

from repro.errors import MemoryBudgetError
from repro.exio.iostats import IOStats


class BufferPool:
    """An LRU cache of fixed-size pages over one file.

    ``capacity_pages`` is the simulated memory; reads outside the cache
    are charged to ``stats`` (one block per page, plus a seek when the
    page is not the successor of the previously fetched one).
    """

    def __init__(self, path: Path, stats: IOStats, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise MemoryBudgetError("buffer pool needs at least one page")
        self.path = Path(path)
        self.stats = stats
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[int, bytes]" = OrderedDict()
        self._file = open(self.path, "rb")
        self._last_fetched: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def read_page(self, page_no: int) -> bytes:
        """Return one page's bytes (shorter at EOF), LRU-cached."""
        cached = self._pages.get(page_no)
        if cached is not None:
            self.hits += 1
            self._pages.move_to_end(page_no)
            return cached
        self.misses += 1
        if self._last_fetched is None or page_no != self._last_fetched + 1:
            self.stats.account_seek()
        self._last_fetched = page_no
        size = self.stats.block_size
        self._file.seek(page_no * size)
        data = self._file.read(size)
        self.stats.account_read(len(data))
        self._pages[page_no] = data
        if len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
            self.evictions += 1
        return data

    def read_range(self, offset: int, length: int) -> bytes:
        """Read an arbitrary byte range through the page cache."""
        if length <= 0:
            return b""
        size = self.stats.block_size
        first = offset // size
        last = (offset + length - 1) // size
        chunks = [self.read_page(p) for p in range(first, last + 1)]
        blob = b"".join(chunks)
        start = offset - first * size
        out = blob[start : start + length]
        if len(out) < length:
            raise EOFError(
                f"{self.path}: range {offset}+{length} reaches past EOF"
            )
        return out

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def close(self) -> None:
        self._file.close()
        self._pages.clear()

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
