"""Block-granular sequential file access with I/O accounting.

These are the only code paths in the library that touch the filesystem
for algorithmic data.  Reads and writes go through block-sized buffers
and charge :class:`repro.exio.iostats.IOStats` per block, so measured
I/O counts line up with the paper's ``scan(N)`` analysis regardless of
what the OS page cache does underneath.
"""

from __future__ import annotations

import os
from pathlib import Path
from types import TracebackType
from typing import Iterator, Optional, Type, Union

from repro.exio.iostats import IOStats

PathLike = Union[str, Path]


class BlockWriter:
    """Append-only writer that flushes in whole blocks.

    Use as a context manager::

        with BlockWriter(path, stats) as w:
            w.write(record_bytes)
    """

    def __init__(self, path: PathLike, stats: IOStats, append: bool = False) -> None:
        self._path = Path(path)
        self._stats = stats
        self._buf = bytearray()
        self._file = open(self._path, "ab" if append else "wb")
        self._closed = False
        self.bytes_written = 0

    def write(self, data: bytes) -> None:
        """Buffer ``data``; flush full blocks as they fill."""
        if self._closed:
            raise ValueError("write to closed BlockWriter")
        self._buf.extend(data)
        self.bytes_written += len(data)
        bs = self._stats.block_size
        while len(self._buf) >= bs:
            self._file.write(self._buf[:bs])
            self._stats.account_write(bs)
            del self._buf[:bs]

    def close(self) -> None:
        """Flush the final partial block and close the file."""
        if self._closed:
            return
        if self._buf:
            self._file.write(bytes(self._buf))
            self._stats.account_write(len(self._buf))
            self._buf.clear()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class BlockReader:
    """Sequential reader that fetches one block per underlying read.

    Iterating yields raw byte chunks (at most one block each); most
    callers use :meth:`read_exactly` through a codec instead.
    """

    def __init__(self, path: PathLike, stats: IOStats) -> None:
        self._path = Path(path)
        self._stats = stats
        self._file = open(self._path, "rb")
        self._pending = b""
        self._closed = False
        stats.begin_scan()

    def _fill(self) -> bool:
        """Fetch the next block; return False at EOF."""
        chunk = self._file.read(self._stats.block_size)
        if not chunk:
            return False
        self._stats.account_read(len(chunk))
        self._pending += chunk
        return True

    def read_block(self) -> bytes:
        """Return the next block (or final partial block); b'' at EOF.

        Consumes any bytes already buffered by :meth:`read_exactly`
        first, so the two access styles can be mixed safely.
        """
        if self._pending:
            out, self._pending = self._pending, b""
            return out
        chunk = self._file.read(self._stats.block_size)
        if chunk:
            self._stats.account_read(len(chunk))
        return chunk

    def read_exactly(self, n: int) -> bytes:
        """Return exactly ``n`` bytes, or ``b''`` at clean EOF.

        Raises ``EOFError`` if the file ends mid-record.
        """
        while len(self._pending) < n:
            if not self._fill():
                if not self._pending:
                    return b""
                raise EOFError(
                    f"{self._path}: truncated record "
                    f"(wanted {n} bytes, got {len(self._pending)})"
                )
        out, self._pending = self._pending[:n], self._pending[n:]
        return out

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def __enter__(self) -> "BlockReader":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def file_size(path: PathLike) -> int:
    """Size of a file in bytes (0 if it does not exist)."""
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def remove_if_exists(path: PathLike) -> None:
    """Best-effort unlink used for temp run files."""
    try:
        os.unlink(path)
    except OSError:
        pass
