"""Datasets: seeded generators, SNAP-like registry and paper figures.

Public surface::

    load_dataset, dataset_names, dataset_spec      Table 2 stand-ins
    IN_MEMORY_DATASETS / MASSIVE_DATASETS / ...    evaluation groupings
    running_example_graph, RUNNING_EXAMPLE_CLASSES Figure 2 + ground truth
    manager_graph, MANAGER_CLIQUES                 Figure 1 reconstruction
    erdos_renyi, powerlaw_graph, ...               raw generators
"""

from repro.datasets.generators import (
    barabasi_albert,
    collaboration_graph,
    community_graph,
    erdos_renyi,
    plant_biclique,
    plant_clique,
    powerlaw_graph,
    star_heavy_graph,
)
from repro.datasets.krackhardt import (
    MANAGER_CLIQUES,
    PAPER_CLUSTERING,
    PERIPHERY_EDGES,
    clique_union_edges,
    manager_graph,
)
from repro.datasets.registry import (
    IN_MEMORY_DATASETS,
    MASSIVE_DATASETS,
    SMALL_DATASETS,
    TRUSS_VS_CORE_DATASETS,
    DatasetSpec,
    PaperStats,
    dataset_names,
    dataset_spec,
    load_dataset,
)
from repro.datasets.running_example import (
    EXAMPLE3_PARTITION,
    RUNNING_EXAMPLE_CLASSES,
    running_example_graph,
    running_example_trussness,
    vid,
    vname,
)

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_graph",
    "collaboration_graph",
    "community_graph",
    "star_heavy_graph",
    "plant_clique",
    "plant_biclique",
    "manager_graph",
    "clique_union_edges",
    "MANAGER_CLIQUES",
    "PERIPHERY_EDGES",
    "PAPER_CLUSTERING",
    "running_example_graph",
    "running_example_trussness",
    "RUNNING_EXAMPLE_CLASSES",
    "EXAMPLE3_PARTITION",
    "vid",
    "vname",
    "DatasetSpec",
    "PaperStats",
    "dataset_names",
    "dataset_spec",
    "load_dataset",
    "IN_MEMORY_DATASETS",
    "MASSIVE_DATASETS",
    "SMALL_DATASETS",
    "TRUSS_VS_CORE_DATASETS",
]
