"""Reconstruction of Figure 1: the 21-manager "seek-advice-from" graph.

The paper's Example 1 uses Krackhardt's high-tech managers network
[19, 32, 15] but does not print its edge list, so we ship a
deterministic 21-vertex reconstruction that reproduces **every property
Example 1 asserts**:

* the five 4-cliques named in the paper — ``{4,8,10,18}``,
  ``{4,8,18,21}``, ``{5,10,18,19}``, ``{7,14,18,21}``, ``{10,15,18,19}``
  — exist, and the 4-truss is *exactly* their union;
* no 5-truss exists (``kmax = 4``) and no 4-core exists (``cmax = 3``);
* the 3-core is non-empty but a proper subgraph of ``G``;
* clustering coefficients are ordered ``CC(G) < CC(3-core) <
  CC(4-truss)`` and numerically close to the paper's 0.51 / 0.65 / 0.80
  (this reconstruction measures 0.50 / 0.64 / 0.80).

The periphery edge set was found by seeded search against those
constraints; it is frozen here as data so the figure regenerates
byte-identically.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.adjacency import Graph

#: The five 4-cliques the paper lists as surviving in the 4-truss.
MANAGER_CLIQUES: List[Tuple[int, int, int, int]] = [
    (4, 8, 10, 18),
    (4, 8, 18, 21),
    (5, 10, 18, 19),
    (7, 14, 18, 21),
    (10, 15, 18, 19),
]

#: Periphery edges (found by constraint search; see module docstring).
PERIPHERY_EDGES: List[Tuple[int, int]] = [
    (1, 4), (1, 17), (1, 20),
    (2, 7), (2, 12),
    (3, 9), (3, 19),
    (5, 13),
    (6, 10), (6, 12),
    (7, 11), (7, 16),
    (8, 12),
    (9, 11), (9, 19),
    (10, 12), (10, 20),
    (11, 19),
    (16, 18),
    (17, 20), (17, 21),
]

#: The paper's reported clustering coefficients for G / 3-core / 4-truss.
PAPER_CLUSTERING = (0.51, 0.65, 0.80)


def manager_graph() -> Graph:
    """The reconstructed Figure 1(a) graph (21 vertices, 43 edges)."""
    g = Graph()
    for clique in MANAGER_CLIQUES:
        for i in range(4):
            for j in range(i + 1, 4):
                g.add_edge(clique[i], clique[j])
    for u, v in PERIPHERY_EDGES:
        g.add_edge(u, v)
    return g


def clique_union_edges() -> List[Tuple[int, int]]:
    """The edges of the five cliques' union — the ground-truth 4-truss."""
    g = Graph()
    for clique in MANAGER_CLIQUES:
        for i in range(4):
            for j in range(i + 1, 4):
                g.add_edge(clique[i], clique[j])
    return g.sorted_edges()
