"""The nine-dataset registry: SNAP-like stand-ins for Table 2.

Each entry scales the corresponding real dataset down to laptop size
while matching the *structure* that drives the paper's experiments
(degree-distribution family, clustering level, and planted dense cores
that pin ``kmax`` — and, where Table 6 needs it, a dense triangle-poor
biclique that pins ``cmax`` far above ``kmax``).  The paper's reported
statistics ride along in :class:`PaperStats` so the benchmark tables can
print paper-vs-measured side by side.

Datasets are grouped the way the evaluation uses them:

* ``IN_MEMORY_DATASETS`` — Table 3 (Wiki, Amazon, Skitter, Blog);
* ``MASSIVE_DATASETS``   — Tables 4/5 (LJ, BTC, Web);
* ``SMALL_DATASETS``     — the TD-MR-feasible pair (P2P, HEP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.datasets.generators import (
    collaboration_graph,
    community_graph,
    erdos_renyi,
    plant_biclique,
    plant_clique,
    powerlaw_graph,
    star_heavy_graph,
)
from repro.errors import GraphError
from repro.graph.adjacency import Graph


@dataclass(frozen=True)
class PaperStats:
    """The row the paper's Table 2 reports for the real dataset."""

    num_vertices: float
    num_edges: float
    max_degree: int
    median_degree: int
    kmax: int


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic stand-in and its generator."""

    name: str
    description: str
    build: Callable[[float], Graph]
    paper: PaperStats
    expected_kmax: Optional[int] = None  # pinned by a planted clique


def _scaled(value: int, scale: float, minimum: int = 16) -> int:
    return max(minimum, int(value * scale))


def _build_p2p(scale: float) -> Graph:
    n, m = _scaled(6300, scale), _scaled(41600, scale)
    g = erdos_renyi(n, min(m, n * (n - 1) // 2), seed=101)
    plant_clique(g, 5, seed=102)
    return g


def _build_hep(scale: float) -> Graph:
    n = _scaled(9900, scale)
    papers = _scaled(15500, scale)
    g = collaboration_graph(n, papers, seed=201, max_team=24)
    plant_clique(g, 32, seed=202)
    return g


def _build_amazon(scale: float) -> Graph:
    n = _scaled(25000, scale)
    g = community_graph(
        n,
        n_communities=_scaled(14000, scale),
        community_size=6,
        noise_edges=_scaled(20000, scale),
        seed=301,
    )
    plant_clique(g, 11, seed=302)
    return g


def _build_wiki(scale: float) -> Graph:
    n, m = _scaled(24000, scale), _scaled(48000, scale)
    g = star_heavy_graph(n, m, n_hubs=12, seed=401)
    plant_clique(g, 53, seed=402)
    plant_biclique(g, 65, seed=403)
    return g


def _build_skitter(scale: float) -> Graph:
    n, m = _scaled(17000, scale), _scaled(95000, scale)
    g = powerlaw_graph(n, m, exponent=2.1, seed=501)
    plant_clique(g, 68, seed=502)
    plant_biclique(g, 80, seed=503)
    return g


def _build_blog(scale: float) -> Graph:
    n, m = _scaled(10000, scale), _scaled(100000, scale)
    g = powerlaw_graph(n, m, exponent=2.4, seed=601)
    plant_clique(g, 49, seed=602)
    plant_biclique(g, 55, seed=603)
    return g


def _build_lj(scale: float) -> Graph:
    n, m = _scaled(20000, scale), _scaled(110000, scale)
    g = powerlaw_graph(n, m, exponent=2.5, seed=701)
    plant_clique(g, 120, seed=702)
    return g


def _build_btc(scale: float) -> Graph:
    n, m = _scaled(40000, scale), _scaled(80000, scale)
    g = star_heavy_graph(n, m, n_hubs=25, seed=801)
    plant_clique(g, 7, seed=802)
    plant_biclique(g, 40, seed=803)
    return g


def _build_web(scale: float) -> Graph:
    n, m = _scaled(30000, scale), _scaled(120000, scale)
    g = powerlaw_graph(n, m, exponent=2.2, seed=901)
    plant_clique(g, 100, seed=902)
    return g


_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "p2p",
            "Gnutella peer-to-peer: flat degrees, nearly triangle-free",
            _build_p2p,
            PaperStats(6.3e3, 41.6e3, 97, 3, 5),
            expected_kmax=5,
        ),
        DatasetSpec(
            "hep",
            "High-energy-physics collaboration: union of author cliques",
            _build_hep,
            PaperStats(9.9e3, 52.0e3, 65, 3, 32),
            expected_kmax=32,
        ),
        DatasetSpec(
            "amazon",
            "Product co-purchase: many small overlapping communities",
            _build_amazon,
            PaperStats(0.4e6, 3.4e6, 2752, 10, 11),
            expected_kmax=11,
        ),
        DatasetSpec(
            "wiki",
            "Wikipedia talk: extreme hubs, median degree 1",
            _build_wiki,
            PaperStats(2.4e6, 5.0e6, 100029, 1, 53),
            expected_kmax=53,
        ),
        DatasetSpec(
            "skitter",
            "Internet topology: power-law with a dense backbone",
            _build_skitter,
            PaperStats(1.7e6, 11.0e6, 35455, 5, 68),
            expected_kmax=68,
        ),
        DatasetSpec(
            "blog",
            "Blog co-occurrence: dense power-law",
            _build_blog,
            PaperStats(1.0e6, 12.8e6, 6154, 2, 49),
            expected_kmax=49,
        ),
        DatasetSpec(
            "lj",
            "LiveJournal friendship: large communities, huge kmax",
            _build_lj,
            PaperStats(4.8e6, 69e6, 20333, 5, 362),
            expected_kmax=120,
        ),
        DatasetSpec(
            "btc",
            "Billion Triple Challenge RDF: star-heavy, tiny kmax",
            _build_btc,
            PaperStats(165e6, 773e6, 1637619, 1, 7),
            expected_kmax=7,
        ),
        DatasetSpec(
            "web",
            "UK web crawl: power-law with a massive dense core",
            _build_web,
            PaperStats(106e6, 1092e6, 36484, 2, 166),
            expected_kmax=100,
        ),
    ]
}

#: Table 3's datasets (fit in memory in the paper).
IN_MEMORY_DATASETS: Tuple[str, ...] = ("wiki", "amazon", "skitter", "blog")
#: Tables 4/5's "massive" datasets.
MASSIVE_DATASETS: Tuple[str, ...] = ("lj", "btc", "web")
#: The only datasets TD-MR finished on in the paper.
SMALL_DATASETS: Tuple[str, ...] = ("p2p", "hep")
#: Table 6's datasets.
TRUSS_VS_CORE_DATASETS: Tuple[str, ...] = (
    "amazon", "wiki", "skitter", "blog", "lj", "btc", "web",
)


def dataset_names() -> List[str]:
    """All registered dataset names, in Table 2 order."""
    return list(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise GraphError(
            f"unknown dataset {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None


def load_dataset(name: str, scale: float = 1.0) -> Graph:
    """Generate the stand-in for ``name`` at the given scale.

    ``scale=1.0`` is the default benchmark size (laptop-friendly);
    smaller scales shrink the background graph but keep the planted
    cores, so ``kmax`` stays pinned.
    """
    if scale <= 0:
        raise GraphError(f"scale must be positive, got {scale}")
    return dataset_spec(name).build(scale)
