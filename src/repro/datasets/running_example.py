"""The paper's running example: the graph of Figure 2 / Example 2.

The 12-vertex graph ``a..l`` whose k-classes the paper states exactly:

* ``Phi_2 = {(i,k)}``
* ``Phi_3 = {(d,g), (d,k), (d,l), (e,f), (e,g), (f,g), (g,h), (g,k), (g,l)}``
* ``Phi_4`` = the 6 edges of the clique ``{f, h, i, j}``
* ``Phi_5`` = the 10 edges of the clique ``{a, b, c, d, e}``
* ``kmax = 5``

Example 3 also fixes the partition ``P1 = {a,b,c,l}``, ``P2 = {d,e,f,g}``,
``P3 = {h,i,j,k}`` used to walk through the bottom-up stages; Example 5
walks the top-down stages on the same graph.  Tests replay both traces.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge

VERTEX_NAMES = "abcdefghijkl"
"""Vertex i of the graph corresponds to letter VERTEX_NAMES[i]."""

_ID = {name: i for i, name in enumerate(VERTEX_NAMES)}


def vid(name: str) -> int:
    """Vertex id of a letter name (``'a'`` → 0)."""
    return _ID[name]


def vname(v: int) -> str:
    """Letter name of a vertex id (0 → ``'a'``)."""
    return VERTEX_NAMES[v]


def _edges(spec: str) -> List[Edge]:
    """Parse 'ab cd ef' into canonical integer edges."""
    return [norm_edge(_ID[s[0]], _ID[s[1]]) for s in spec.split()]


#: Ground-truth k-classes exactly as printed in Example 2.
RUNNING_EXAMPLE_CLASSES: Dict[int, List[Edge]] = {
    2: _edges("ik"),
    3: _edges("dg dk dl ef eg fg gh gk gl"),
    4: _edges("fh fi fj hi hj ij"),
    5: _edges("ab ac ad ae bc bd be cd ce de"),
}

#: Example 3's partition of the vertex set (bottom-up walkthrough).
EXAMPLE3_PARTITION: List[List[int]] = [
    [_ID[c] for c in "abcl"],
    [_ID[c] for c in "defg"],
    [_ID[c] for c in "hijk"],
]


def running_example_graph() -> Graph:
    """The Figure 2 graph (26 edges, 12 vertices, kmax = 5)."""
    g = Graph()
    for edges in RUNNING_EXAMPLE_CLASSES.values():
        g.add_edges(edges)
    return g


def running_example_trussness() -> Dict[Edge, int]:
    """Ground-truth phi(e) for every edge of the running example."""
    return {
        e: k for k, edges in RUNNING_EXAMPLE_CLASSES.items() for e in edges
    }
