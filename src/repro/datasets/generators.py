"""Seeded synthetic graph generators.

These stand in for the paper's nine real datasets (no network access in
this environment — see DESIGN.md §3).  Each family reproduces the
structural property that drives truss-decomposition behaviour:

* :func:`erdos_renyi` — flat degrees, few triangles (P2P-like);
* :func:`powerlaw_graph` — heavy-tailed degrees via a Chung-Lu style
  model (web/social-like; hubs are what break Algorithm 1);
* :func:`barabasi_albert` — preferential attachment (moderate hubs);
* :func:`collaboration_graph` — a union of author cliques
  (HEP-like; naturally large ``kmax``);
* :func:`community_graph` — many small overlapping cliques plus noise
  (Amazon co-purchase-like; high clustering, small ``kmax``);
* :func:`plant_clique` / :func:`plant_biclique` — surgical insertion of
  a ``K_c`` (pins ``kmax = c``) or a triangle-free ``K_{c,c}`` (pins a
  high core number with trussness 2 — the k-core vs k-truss wedge of
  Table 6).

All generators take an explicit ``seed`` and are deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from repro.errors import GraphError
from repro.graph.adjacency import Graph


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise GraphError(message)


def erdos_renyi(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m): ``m`` distinct uniform edges over ``n`` vertices."""
    _require(n >= 2, "erdos_renyi needs n >= 2")
    max_m = n * (n - 1) // 2
    _require(0 <= m <= max_m, f"m={m} out of range for n={n}")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def barabasi_albert(n: int, attach: int, seed: int = 0) -> Graph:
    """Preferential attachment: each new vertex links to ``attach``
    existing vertices chosen proportionally to degree."""
    _require(attach >= 1, "attach must be >= 1")
    _require(n > attach, "need n > attach")
    rng = random.Random(seed)
    g = Graph()
    targets: List[int] = list(range(attach + 1))  # initial clique seed
    for i in range(attach + 1):
        for j in range(i + 1, attach + 1):
            g.add_edge(i, j)
    # repeated-endpoint list implements degree-proportional sampling
    endpoint_pool: List[int] = []
    for u, v in g.edges():
        endpoint_pool.extend((u, v))
    for v in range(attach + 1, n):
        chosen: set = set()
        while len(chosen) < attach:
            chosen.add(endpoint_pool[rng.randrange(len(endpoint_pool))])
        for u in chosen:
            g.add_edge(v, u)
            endpoint_pool.extend((u, v))
    return g


def powerlaw_graph(
    n: int,
    m: int,
    exponent: float = 2.3,
    seed: int = 0,
    min_weight: float = 1.0,
) -> Graph:
    """Chung-Lu style: edge endpoints sampled by power-law weights.

    Produces heavy-tailed degrees with median 1-5 depending on density —
    the shape of the paper's Wiki/Skitter/Web datasets.
    """
    _require(n >= 2, "powerlaw_graph needs n >= 2")
    _require(exponent > 1.0, "exponent must exceed 1")
    rng = random.Random(seed)
    weights = [min_weight * (i + 1) ** (-1.0 / (exponent - 1.0)) for i in range(n)]
    # cumulative table for O(log n) sampling
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    total = cumulative[-1]

    def sample() -> int:
        import bisect

        return bisect.bisect_left(cumulative, rng.random() * total)

    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    added = 0
    attempts = 0
    limit = 50 * m + 1000
    while added < m and attempts < limit:
        attempts += 1
        u, v = sample(), sample()
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def collaboration_graph(
    n_authors: int,
    n_papers: int,
    seed: int = 0,
    max_team: int = 30,
) -> Graph:
    """Union of author cliques: each paper's team forms a clique.

    Team sizes follow a heavy-tailed distribution capped at
    ``max_team``; a few large teams give collaboration networks their
    naturally high ``kmax`` (the paper's HEP has ``kmax = 32``).
    """
    _require(n_authors >= 2, "need at least two authors")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n_authors):
        g.add_vertex(v)
    for _paper in range(n_papers):
        # Zipf-ish team size >= 2
        size = 2
        while size < max_team and rng.random() < 0.42:
            size += 1
        team = rng.sample(range(n_authors), min(size, n_authors))
        for i in range(len(team)):
            for j in range(i + 1, len(team)):
                g.add_edge(team[i], team[j])
    return g


def community_graph(
    n: int,
    n_communities: int,
    community_size: int = 6,
    noise_edges: int = 0,
    seed: int = 0,
) -> Graph:
    """Overlapping small cliques plus uniform noise (Amazon-like)."""
    _require(community_size >= 2, "community_size must be >= 2")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for _c in range(n_communities):
        size = rng.randint(2, community_size)
        members = rng.sample(range(n), size)
        for i in range(size):
            for j in range(i + 1, size):
                g.add_edge(members[i], members[j])
    added = 0
    while added < noise_edges:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def star_heavy_graph(
    n: int, m: int, n_hubs: int = 20, seed: int = 0
) -> Graph:
    """A few huge hubs plus a sparse tail — median degree 1 (BTC/Wiki)."""
    _require(n_hubs >= 1, "need at least one hub")
    _require(n > n_hubs, "need more vertices than hubs")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    added = 0
    attempts = 0
    while added < m and attempts < 50 * m + 1000:
        attempts += 1
        if rng.random() < 0.7:
            u = rng.randrange(n_hubs)  # hub endpoint
        else:
            u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def plant_clique(g: Graph, size: int, seed: int = 0) -> List[int]:
    """Embed ``K_size`` on random existing vertices; returns its members.

    Pins ``kmax >= size`` (every clique edge has trussness >= size) and
    ``cmax >= size - 1``.
    """
    _require(size >= 2, "clique size must be >= 2")
    vertices = sorted(g.vertices())
    _require(len(vertices) >= size, "graph too small for the clique")
    rng = random.Random(seed)
    members = rng.sample(vertices, size)
    for i in range(size):
        for j in range(i + 1, size):
            g.add_edge(members[i], members[j])
    return members


def plant_biclique(g: Graph, side: int, seed: int = 0) -> List[int]:
    """Embed a triangle-free ``K_{side,side}`` on random vertices.

    Pins ``cmax >= side`` while contributing nothing to any k-truss
    (bicliques have no triangles) — the Table 6 separator between cores
    and trusses.
    """
    _require(side >= 1, "biclique side must be >= 1")
    vertices = sorted(g.vertices())
    _require(len(vertices) >= 2 * side, "graph too small for the biclique")
    rng = random.Random(seed)
    members = rng.sample(vertices, 2 * side)
    left, right = members[:side], members[side:]
    for u in left:
        for v in right:
            g.add_edge(u, v)
    return members
