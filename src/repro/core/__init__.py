"""The paper's contribution: truss decomposition algorithms.

Public surface (see :mod:`repro.core.api` for the uniform front door)::

    truss_decomposition(g, method=...)   dispatching entry point
    decompose_file(path, method=...)     file -> trussness fast path
    apply_updates(g, updates, ...)       incremental write path (repro.stream)
    k_truss(g, k), trussness(g)          conveniences
    TrussDecomposition                   result model
    truss_decomposition_baseline         Algorithm 1  (TD-inmem)
    truss_decomposition_improved         Algorithm 2  (TD-inmem+)
    truss_decomposition_flat             Algorithm 2 over flat edge ids
    truss_decomposition_parallel         shared-memory parallel waves
    truss_decomposition_dist             rank-distributed wave peel
    truss_decomposition_bottomup         Algorithms 3+4 (TD-bottomup)
    truss_decomposition_topdown          Algorithm 7  (TD-topdown)
    truss_decomposition_mapreduce        Cohen's TD-MR baseline
    lower_bounding / upper_bounding      the bound stages, standalone

``truss_decomposition_flat``, ``truss_decomposition_parallel`` and
``truss_decomposition_dist`` are this repo's additions, not the
paper's: the same peel semantics as TD-inmem+, run over the CSR
snapshot's canonical edge-id arrays (see :mod:`repro.core.flat`),
serially, fanned out over a worker pool through
``multiprocessing.shared_memory`` (:mod:`repro.core.parallel` with a
``jobs`` knob), or distributed across rank processes over a real
message transport with per-rank state only (:mod:`repro.core.dist`
with ``ranks``/``transport`` knobs).  ``decompose_file`` feeds any of
them straight from a text edge list via the dict-free streaming CSR
ingest.
"""

from repro.core.api import (
    CSR_METHODS,
    METHODS,
    apply_updates,
    decompose_file,
    k_truss,
    top_t_classes,
    truss_decomposition,
    trussness,
)
from repro.core.bottomup import ample_budget, peel_level, truss_decomposition_bottomup
from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.dist import TRANSPORTS, truss_decomposition_dist
from repro.core.flat import truss_decomposition_flat
from repro.core.hierarchy import HierarchyLevel, TrussHierarchy, truss_hierarchy
from repro.core.lowerbound import LowerBoundResult, lower_bounding, prepare_input
from repro.core.mapreduce_truss import k_truss_mr, truss_decomposition_mapreduce
from repro.core.parallel import truss_decomposition_parallel
from repro.core.semi_external import truss_decomposition_semi_external
from repro.core.topdown import truss_decomposition_topdown
from repro.core.truss_baseline import truss_decomposition_baseline
from repro.core.truss_improved import truss_decomposition_improved
from repro.core.upperbound import h_index, upper_bounding, x_excluding

__all__ = [
    "METHODS",
    "CSR_METHODS",
    "TRANSPORTS",
    "decompose_file",
    "truss_decomposition",
    "apply_updates",
    "k_truss",
    "trussness",
    "top_t_classes",
    "TrussDecomposition",
    "DecompositionStats",
    "truss_hierarchy",
    "TrussHierarchy",
    "HierarchyLevel",
    "truss_decomposition_baseline",
    "truss_decomposition_improved",
    "truss_decomposition_flat",
    "truss_decomposition_parallel",
    "truss_decomposition_dist",
    "truss_decomposition_bottomup",
    "truss_decomposition_topdown",
    "truss_decomposition_mapreduce",
    "truss_decomposition_semi_external",
    "k_truss_mr",
    "lower_bounding",
    "LowerBoundResult",
    "prepare_input",
    "upper_bounding",
    "h_index",
    "x_excluding",
    "ample_budget",
    "peel_level",
]
