"""Algorithm 4 + Procedures 5/9: bottom-up I/O-efficient decomposition.

**TD-bottomup** runs in two stages:

1. :func:`repro.core.lowerbound.lower_bounding` retires ``Phi_2`` and
   writes ``Gnew`` — every surviving edge with a lower bound
   ``lb(e) <= phi(e)`` — to disk.
2. For ``k = 3, 4, ...`` until ``Gnew`` drains:

   * ``U_k``  = endpoints of edges with ``lb(e) <= k`` (one scan);
   * ``H``    = ``NS(U_k)`` (second scan).  Because ``lb <= phi``, every
     ``Phi_k`` edge has both endpoints in ``U_k`` and is *internal* to
     ``H``, and at this point ``Gnew`` holds exactly ``T_k``'s edges, so
     supports of internal edges measured in ``H`` are supports in
     ``T_k`` — precisely what peeling at level ``k`` needs;
   * Procedure 5 peels internal edges with support ``<= k-2`` (the
     cascade stays internal: every trussness-k edge is internal, and
     external edges all have ``phi > k``), emitting ``Phi_k``;
   * ``Phi_k`` is deleted from ``Gnew`` (a rewrite scan, chunked as
     ``|Phi_k|/M`` scans if the class itself overflows memory).

If ``H`` overflows the memory budget, Procedure 9 peels it by
partitioning ``H`` itself and iterating block-local peels to a fixed
point — each pass can only remove edges whose support already dropped,
so the fixed point equals the in-memory peel.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.lowerbound import lower_bounding, prepare_input
from repro.exio.edgefile import DiskEdgeFile
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge
from repro.graph.views import NeighborhoodSubgraph
from repro.partition.base import (
    Partitioner,
    PartitionSource,
    partition_with_escape,
)
from repro.partition.dominating import DominatingSetPartitioner


def ample_budget(g: Graph) -> MemoryBudget:
    """A budget under which the whole graph forms a single partition
    block (the 'fits in memory' degenerate case of the external
    algorithms)."""
    return MemoryBudget(
        units=2 * (g.num_vertices + 4 * g.num_edges) + 8
    )


def peel_level(
    h: Graph, targets: Set[Edge], k: int, *, strict: bool
) -> List[Edge]:
    """Procedure 5/8's inner loop: cascade-remove under-supported edges.

    Only edges in ``targets`` are ever removed (bottom-up: the internal
    edges; top-down: the unclassified candidates — classified edges must
    survive to provide support).  ``strict=False`` removes edges with
    ``sup <= k-2`` (bottom-up emits them as ``Phi_k``); ``strict=True``
    removes ``sup < k-2`` (top-down keeps the survivors).  ``h`` is
    peeled in place; removed edges are returned in removal order.
    """
    sup: Dict[Edge, int] = {
        e: len(h.common_neighbors(*e)) for e in targets if h.has_edge(*e)
    }
    limit = (k - 2) if strict else (k - 1)
    queue: List[Edge] = [e for e, s in sup.items() if s < limit]
    removed: List[Edge] = []
    dead: Set[Edge] = set(queue)
    while queue:
        u, v = queue.pop()
        for w in list(h.common_neighbors(u, v)):
            for a, b in ((u, w), (v, w)):
                f = (a, b) if a < b else (b, a)
                if f in sup and f not in dead:
                    sup[f] -= 1
                    if sup[f] < limit:
                        dead.add(f)
                        queue.append(f)
        h.remove_edge(u, v)
        removed.append((u, v))
    return removed


def _peel_level_partitioned(
    ns: NeighborhoodSubgraph,
    k: int,
    budget: MemoryBudget,
    partitioner: Partitioner,
    *,
    strict: bool,
) -> List[Edge]:
    """Procedure 9: peel a candidate subgraph that overflows memory.

    Repeatedly partitions the current ``H`` and runs the block-local
    peel; every block-local removal is globally valid (the block's
    internal supports are exact in ``H``), and the loop ends when a full
    round removes nothing, i.e. the in-memory fixed point is reached.
    """
    h = ns.graph
    internal_vertices = set(ns.internal_vertices)
    removed_all: List[Edge] = []
    capacity_boost = 1
    while True:
        source = PartitionSource.from_graph(h)
        blocks = partition_with_escape(
            partitioner, source, budget, boost=capacity_boost
        )
        removed_round: List[Edge] = []
        for block in blocks:
            f_internal = set(block) & internal_vertices
            if not f_internal:
                continue
            sub = Graph()
            for u in block:
                if not h.has_vertex(u):
                    continue
                for w in h.neighbors(u):
                    sub.add_edge(u, w)
            targets = {
                (u, v)
                for u, v in sub.edges()
                if u in f_internal and v in f_internal
            }
            removed = peel_level(sub, targets, k, strict=strict)
            for u, v in removed:
                h.remove_edge(u, v)
            removed_round.extend(removed)
        if removed_round:
            removed_all.extend(removed_round)
            capacity_boost = 1
        elif len(blocks) <= 1:
            # a single block sees every edge as internal, so an empty
            # round here is a genuine fixed point
            break
        else:
            # edges straddling blocks can hide from block-local peels;
            # widen the blocks until everything is seen together once
            capacity_boost *= 2
    return removed_all


def truss_decomposition_bottomup(
    g: Graph,
    budget: Optional[MemoryBudget] = None,
    partitioner: Optional[Partitioner] = None,
    workdir: Optional[Path] = None,
    stats: Optional[IOStats] = None,
    use_lower_bounds: bool = True,
) -> TrussDecomposition:
    """Run TD-bottomup over an in-memory graph spilled to disk.

    ``budget`` simulates available memory (default: everything fits —
    degenerating to a single-partition run); ``stats`` collects block
    I/O so callers can report the paper's scan counts.

    ``use_lower_bounds=False`` is the ablation switch: LowerBounding
    still runs (it must, to emit ``Phi_2``), but the recorded bounds are
    flattened to the trivial value 3, so every ``U_k`` covers the whole
    remaining graph — quantifying how much candidate-subgraph shrinkage
    the bounds buy (Section 5's design rationale).
    """
    stats = stats if stats is not None else IOStats()
    partitioner = partitioner if partitioner is not None else DominatingSetPartitioner()
    budget = budget if budget is not None else ample_budget(g)
    dstats = DecompositionStats(method="bottomup", io=stats)

    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        tmp = Path(tmp)
        g_file = prepare_input(g, tmp / "input.bin", stats)
        lb = lower_bounding(g_file, tmp / "gnew.bin", budget, partitioner, stats)
        dstats.record("lowerbound_iterations", lb.iterations)
        dstats.record("lowerbound_blocks", lb.blocks_processed)
        dstats.record("phi2_size", len(lb.phi2))

        phi: Dict[Edge, int] = {e: 2 for e in lb.phi2}
        gnew = lb.gnew
        if not use_lower_bounds:
            gnew.rewrite(lambda rec: (rec[0], rec[1], 3))
        k = 3
        while not gnew.is_empty:
            # Step 3: one scan for U_k
            u_k: Set[int] = set()
            min_lb_seen = None
            for u, v, bound in gnew.scan():
                if bound <= k:
                    u_k.add(u)
                    u_k.add(v)
                if min_lb_seen is None or bound < min_lb_seen:
                    min_lb_seen = bound
            if not u_k:
                # no candidate at this level: jump to the next bound
                k = max(k + 1, int(min_lb_seen))
                continue
            # Steps 4-5: one more scan extracts H = NS(U_k)
            h = Graph()
            for u, v in gnew.scan_edges():
                if u in u_k or v in u_k:
                    h.add_edge(u, v)
            ns = NeighborhoodSubgraph(graph=h, internal_vertices=frozenset(u_k))
            dstats.bump("candidate_rounds")
            dstats.bump("total_candidate_units", ns.size)
            dstats.record(
                "max_candidate_size",
                max(dstats.extra.get("max_candidate_size", 0), ns.size),
            )
            # Step 6: peel Phi_k out of H (Procedure 5 or 9)
            if budget.fits(ns.size):
                targets = set(ns.internal_edges())
                phi_k = peel_level(h, targets, k, strict=False)
            else:
                dstats.bump("procedure9_rounds")
                phi_k = _peel_level_partitioned(
                    ns, k, budget, partitioner, strict=False
                )
            for e in phi_k:
                phi[e] = k
            if phi_k:
                chunk = budget.units if len(phi_k) > budget.units else None
                gnew.remove_edges(phi_k, chunk_size=chunk)
            if not gnew.is_empty:
                k += 1
        gnew.delete()

    dstats.record("kmax", max(phi.values(), default=2))
    return TrussDecomposition(phi, stats=dstats)
