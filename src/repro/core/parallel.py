"""Parallel level-synchronous wave peeling over shared-memory flat arrays.

``truss_decomposition_parallel`` runs the same wave peel as
:func:`repro.core.flat._peel_waves` — identical trussness map, bit for
bit — but fans each wave's frontier out over a persistent pool of
worker processes, in the shared-memory style of Kabir & Madduri's PKT
(arXiv:1707.02000); the level-synchronous frontier structure also
matches Jakkula & Karypis's batch formulation (arXiv:1908.10550).

Layout
------
The O(|△G|) triangle index (``e1``/``e2``/``e3`` edge columns, the
``tptr``/``tinc`` edge->triangle incidence), the support array and the
``alive``/``tdead`` bitmaps live in :mod:`multiprocessing.shared_memory`
blocks wrapped as numpy views, so workers attach once (pool
initializer) and never receive more than their slice of the current
frontier over the IPC channel.

Wave protocol
-------------
Each wave is two synchronous phases over the pool:

1. **collect** — the frontier, already sorted by edge id, is
   partitioned into contiguous edge-id ranges (balanced by incidence
   count); each worker gathers its edges' incidence slots and returns
   the still-live triangle ids it destroyed.  The coordinator unions
   the per-partition candidates (``np.unique`` dedupes triangles
   reached from two frontier edges in different partitions) and marks
   them dead — the cross-partition analogue of the serial ``tdead``
   dedupe, so supports stay *exact*, never clamped;
2. **decrement** — the dead-triangle list is range-partitioned; each
   worker emits a per-partition decrement buffer ``(edge ids, counts)``
   for the surviving partner edges, and the coordinator merges the
   buffers with one bincount reduction, updates supports and the
   alive-support histogram, and gathers the next frontier from the
   touched edges that fell to the floor.

Because both phases are barriers, workers only ever read blocks the
coordinator is not writing in that phase; no locks are needed.

``jobs=1`` executes the identical protocol in-process (no pool, no
shared-memory copies), which is also the fallback when the graph is
too small for process fan-out to pay (see ``_resolve_jobs``).  Without
numpy the method degrades to the stdlib flat engine — same result,
``stdlib_fallback`` recorded in the stats.

Scaling expectations: each wave costs two IPC round trips, so speedup
appears once waves are large (massive graphs, small kmax) and cores
are real; on a single-core container or CI runner the pool can only
add overhead — ``benchmarks/bench_ablation_parallel_scaling.py``
measures exactly where the crossover lands and records it in
``BENCH_parallel.json``.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.flat import (
    _as_csr,
    _collect_hits_arrays,
    _count_decrements_arrays,
    _initial_supports_python,
    _peel_wedge_bisect,
    _triangle_index,
    result_from_phi,
    run_wave_peel,
)
from repro.graph.csr import CSRGraph

try:  # optional accelerator; the stdlib fallback degrades to core.flat
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:
    import multiprocessing as _mp
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - CPython always ships it
    _mp = None
    _shm = None

#: below this edge count, ``jobs=None`` resolves to a serial run — the
#: per-wave IPC round trips dominate any fan-out win on small graphs
_MIN_PARALLEL_EDGES = 50_000

#: worker-side state: name -> numpy view over an attached shm block
_WORKER_VIEWS: Dict[str, object] = {}


def _resolve_jobs(jobs: Optional[int], m: int) -> int:
    """An explicit ``jobs`` is honored exactly; ``None`` is heuristic."""
    if jobs is not None:
        return max(1, int(jobs))
    if m < _MIN_PARALLEL_EDGES:
        return 1
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _attach_worker(spec: Dict[str, Tuple[str, tuple, str]]) -> None:
    """Pool initializer: map every shared block as a numpy view.

    Attaching must not register the blocks with the worker's resource
    tracker: the coordinator owns their lifetime, and a worker-side
    registration would either double-unregister (fork start method,
    where the tracker process is shared) or unlink-on-worker-exit
    (spawn).  Python 3.13 has ``track=False`` for this; here the
    registration is suppressed for the duration of the attach.
    """
    from multiprocessing import resource_tracker

    _WORKER_VIEWS.clear()
    segments = []
    original_register = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        for name, (shm_name, shape, dtype) in spec.items():
            seg = _shm.SharedMemory(name=shm_name)
            segments.append(seg)
            _WORKER_VIEWS[name] = _np.ndarray(
                shape, dtype=dtype, buffer=seg.buf
            )
    finally:
        resource_tracker.register = original_register
    _WORKER_VIEWS["_segments"] = segments  # keep the mappings alive


def _collect_hits(frontier):
    """Phase 1 (in a worker): destroyed triangles for a frontier slice.

    A picklable module-level shim over the shared gather logic in
    :func:`repro.core.flat._collect_hits_arrays`, reading the
    shared-memory views this worker attached at pool init.
    """
    views = _WORKER_VIEWS
    return _collect_hits_arrays(
        views["tptr"], views["tinc"], views["tdead"], frontier
    )


def _count_decrements(hit):
    """Phase 2 (in a worker): the decrement buffer for a triangle slice."""
    views = _WORKER_VIEWS
    return _count_decrements_arrays(
        views["e1"], views["e2"], views["e3"], views["alive"], hit
    )


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------
def _split_weighted(frontier, tptr, jobs: int) -> List:
    """Contiguous edge-id-range partition, balanced by incidence count."""
    if jobs <= 1 or frontier.size <= 1:
        return [frontier]
    weight = (tptr[frontier + 1] - tptr[frontier]) + 1  # +1: pop cost
    cum = _np.cumsum(weight)
    targets = cum[-1] * _np.arange(1, jobs, dtype=_np.float64) / jobs
    cuts = _np.searchsorted(cum, targets)
    return _np.split(frontier, cuts)


class _SharedBlocks:
    """Owner of the peel state's shared-memory segments."""

    def __init__(self, arrays: Dict[str, object]) -> None:
        self.segments = []
        self.views: Dict[str, object] = {}
        self.spec: Dict[str, Tuple[str, tuple, str]] = {}
        try:
            for name, arr in arrays.items():
                seg = _shm.SharedMemory(
                    create=True, size=max(1, arr.nbytes)
                )
                self.segments.append(seg)
                view = _np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                self.views[name] = view
                self.spec[name] = (seg.name, arr.shape, arr.dtype.str)
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        for seg in self.segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


def _peel_waves_shared(
    csr: CSRGraph, m: int, jobs: int, stats: DecompositionStats
) -> Tuple[array, int]:
    """The wave peel of ``flat``, fanned out over ``jobs`` workers.

    One loop serves both engines — :func:`repro.core.flat.run_wave_peel`
    — so the wave/level schedule (and therefore the trussness map) is
    identical by construction.  With ``jobs=1`` the phases run inline
    on plain local arrays; with ``jobs>1`` the peel state is copied
    into shared memory once, a persistent pool attaches to it, and
    every wave is two ``pool.map`` barriers over edge-id-range
    partitions.
    """
    e1, e2, e3, tptr, tinc, sup = _triangle_index(csr, m)
    n_tri = len(e1)
    arrays = {
        "e1": e1,
        "e2": e2,
        "e3": e3,
        "tptr": tptr,
        "tinc": tinc,
        "sup": sup,
        "alive": _np.ones(m, dtype=bool),
        "tdead": _np.zeros(max(n_tri, 0), dtype=bool),
    }
    blocks = None
    pool = None
    try:
        if jobs > 1:
            blocks = _SharedBlocks(arrays)
            views = blocks.views
            pool = _mp.get_context().Pool(
                processes=jobs,
                initializer=_attach_worker,
                initargs=(blocks.spec,),
            )
            phi, k, wave_stats = run_wave_peel(
                m,
                views,
                _collect_hits,  # workers read their attached shm views
                _count_decrements,
                split_frontier=lambda f: _split_weighted(f, tptr, jobs),
                split_hits=lambda h: _np.array_split(h, jobs),
                run_map=pool.map,
            )
        else:
            # inline closures over the local arrays: no pool, no shared
            # memory, no module globals — plain reentrant numpy
            phi, k, wave_stats = run_wave_peel(
                m,
                arrays,
                lambda f: _collect_hits_arrays(
                    tptr, tinc, arrays["tdead"], f
                ),
                lambda h: _count_decrements_arrays(
                    e1, e2, e3, arrays["alive"], h
                ),
            )
        for key, value in wave_stats.items():
            stats.record(key, value)
        stats.record("triangles", n_tri)
        return array("q", phi.tobytes()), k
    finally:
        if pool is not None:
            pool.close()
            pool.join()
        if blocks is not None:
            blocks.close()


def truss_decomposition_parallel(g, jobs: Optional[int] = None) -> TrussDecomposition:
    """Truss-decompose ``g`` with the shared-memory parallel wave peel.

    Args:
        g: a :class:`~repro.graph.adjacency.Graph` (snapshotted, not
            modified) or a :class:`CSRGraph` from the streaming ingest.
        jobs: worker processes.  ``None`` picks ``os.cpu_count()`` for
            graphs with at least ``_MIN_PARALLEL_EDGES`` edges and a
            serial in-process run below that; an explicit value is
            honored exactly (``jobs=1`` forces the serial path).

    Returns the identical trussness map as ``method="flat"`` and
    ``method="improved"`` — the wave schedule does not depend on the
    worker count.
    """
    csr = _as_csr(g)
    m = csr.num_edges
    stats = DecompositionStats(method="parallel")
    if _np is None or _shm is None:
        # no vectorized substrate: degrade to the stdlib flat engine
        stats.record("stdlib_fallback", 1)
        stats.record("jobs", 1)
        sup = _initial_supports_python(csr, m)
        eu, ev = csr.edge_endpoints()
        phi, k = _peel_wedge_bisect(csr, m, sup, eu, ev)
        return result_from_phi(csr, phi, k if m else 2, stats)
    njobs = _resolve_jobs(jobs, m)
    stats.record("jobs", njobs)
    if not m:
        return result_from_phi(csr, array("q"), 2, stats)
    phi, k = _peel_waves_shared(csr, m, njobs, stats)
    return result_from_phi(csr, phi, k, stats)
