"""Parallel level-synchronous wave peeling over shared-memory flat arrays.

``truss_decomposition_parallel`` runs the same wave peel as
:func:`repro.core.flat._peel_waves` — identical trussness map, bit for
bit — but fans each wave's frontier out over a persistent pool of
worker processes, in the shared-memory style of Kabir & Madduri's PKT
(arXiv:1707.02000); the level-synchronous frontier structure also
matches Jakkula & Karypis's batch formulation (arXiv:1908.10550).

Layout
------
The mutable peel state — the support array and the ``alive``/``tdead``
bitmaps (plus ``phi``/histogram rows in static mode) — lives in
:mod:`multiprocessing.shared_memory` blocks wrapped as numpy views, so
workers attach once (pool initializer) and never receive more than
their slice of the current frontier over the IPC channel.  The
read-only O(|△G|) triangle index (``e1``/``e2``/``e3`` edge columns,
the ``tptr``/``tinc`` edge->triangle incidence) comes from the
streaming counting builder (:mod:`repro.triangles.index_builder`) and
travels by ``index_storage``: ``"ram"`` shares it through the same shm
blocks, ``"mmap"`` streams it to disk and every process (coordinator
and workers alike) maps the ``.npy`` files read-only — the page cache
is the sharing medium and no triangle-length shm copy exists.
Zero-length arrays (a triangle-free graph has empty
``e1``/``tinc``/``tdead``) are never backed by a shared block at all —
each worker materializes its own empty view.

Wave protocols
--------------
Two shard modes share the level/wave schedule (and therefore produce
the identical trussness map):

``shards="dynamic"`` (the default) re-partitions every wave's frontier
into fresh contiguous edge-id ranges and keeps all mutable state
coordinator-merged.  Each wave is two synchronous phases over the pool:

1. **collect** — the frontier, already sorted by edge id, is
   partitioned into contiguous edge-id ranges (balanced by incidence
   count); each worker gathers its edges' incidence slots and returns
   the still-live triangle ids it destroyed.  The coordinator unions
   the per-partition candidates (``np.unique`` dedupes triangles
   reached from two frontier edges in different partitions) and marks
   them dead — the cross-partition analogue of the serial ``tdead``
   dedupe, so supports stay *exact*, never clamped;
2. **decrement** — the dead-triangle list is range-partitioned; each
   worker emits a per-partition decrement buffer ``(edge ids, counts)``
   for the surviving partner edges, and the coordinator merges the
   buffers with one bincount reduction, updates supports and the
   alive-support histogram, and gathers the next frontier from the
   touched edges that fell to the floor.

``shards="static"`` is the **owner-computes** layout: a
:class:`repro.partition.edge_shards.EdgeShardPlan` assigns each
canonical edge id to exactly one shard *at construction time*
(contiguous ranges balanced by triangle-incidence weight from
``tptr``), and shard ``s`` owns the ``sup``/``alive``/``phi`` entries
of its edge range plus row ``s`` of a per-shard alive-support
histogram for the whole peel.  The shard-ownership protocol per wave:

1. **collect** — the coordinator routes the sorted frontier through
   the static bounds (one ``searchsorted``), sending shard ``s`` *only
   the frontier edges it owns*; the owning task pops them itself
   (sets ``phi``, clears ``alive``, debits its histogram row) and
   returns destroyed-triangle candidates, which the coordinator
   dedupes into ``tdead`` exactly as above;
2. **decrement** — the coordinator routes each dead triangle to the
   shard(s) owning its partner edges (deduped per shard, so a triangle
   decrements each partner exactly once); the owning task applies the
   decrements to its *own* support slice and histogram row and returns
   the owned edges that fell to the floor — no coordinator-side
   bincount merge exists in this mode.  The routed per-shard buffers
   are precisely the messages a distributed peel would exchange; the
   coordinator's remaining jobs (triangle dedupe, floor scan over
   histogram column sums) are the reduction half of that exchange.

Because both phases are barriers, and static-mode tasks write only the
slices their shard owns, workers never write a block another worker
(or the coordinator) touches in the same phase; no locks are needed.
A ``multiprocessing.Pool`` does not pin task ``s`` to OS process
``s`` — ownership is carried by the task, not the process — but the
message pattern (who is sent what, who writes what) is exactly the
owner-computes one.

``jobs=1`` executes the identical protocol in-process (no pool, no
shared-memory copies), which is also the fallback when the graph is
too small for process fan-out to pay (see ``_resolve_jobs``).  Without
numpy the method degrades to the stdlib flat engine — same result,
``stdlib_fallback`` recorded in the stats.

Scaling expectations: each wave costs two IPC round trips, so speedup
appears once waves are large (massive graphs, small kmax) and cores
are real; on a single-core container or CI runner the pool can only
add overhead — ``benchmarks/bench_ablation_parallel_scaling.py``
measures exactly where the crossover lands, and
``benchmarks/bench_ablation_static_shards.py`` compares the two shard
modes' wall time and per-wave IPC bytes (``ipc_bytes`` in the stats)
in ``BENCH_shards.json``.
"""

from __future__ import annotations

import os
import tempfile
from array import array
from time import perf_counter as _perf
from typing import Dict, List, Optional, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.flat import (
    _as_csr,
    _initial_supports_python,
    _peel_wedge_bisect,
    _record_index_build,
    resolve_index_storage,
    result_from_phi,
    run_wave_peel,
)
from repro.errors import DecompositionError
from repro.kernels import PeelKernel, get_kernel, resolve_kernel
from repro.obs import NULL_TRACER, CountingKernel, warn_degraded
from repro.graph.csr import CSRGraph
from repro.partition.edge_shards import (
    balanced_prefix_cuts,
    plan_edge_shards,
    route_dead_triangles,
)
from repro.triangles.index_builder import (
    TriangleIndex,
    build_triangle_index,
)

try:  # optional accelerator; the stdlib fallback degrades to core.flat
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:
    import multiprocessing as _mp
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - CPython always ships it
    _mp = None
    _shm = None

#: below this edge count, ``jobs=None`` resolves to a serial run — the
#: per-wave IPC round trips dominate any fan-out win on small graphs
_MIN_PARALLEL_EDGES = 50_000

#: the frontier-partitioning strategies of the parallel peel
SHARD_MODES = ("dynamic", "static")

#: worker-side state: name -> numpy view over an attached shm block
_WORKER_VIEWS: Dict[str, object] = {}

#: worker-side kernel backend, pinned by the pool initializer so every
#: worker runs the same backend the coordinator resolved
_WORKER_KERNEL: Optional[PeelKernel] = None


def _worker_kernel() -> PeelKernel:
    """This process's pinned backend (auto-resolved outside a pool)."""
    global _WORKER_KERNEL
    if _WORKER_KERNEL is None:
        _WORKER_KERNEL = get_kernel()
    return _WORKER_KERNEL


def _resolve_jobs(jobs: Optional[int], m: int) -> int:
    """An explicit ``jobs`` is honored exactly; ``None`` is heuristic."""
    if jobs is not None:
        return max(1, int(jobs))
    if m < _MIN_PARALLEL_EDGES:
        return 1
    return os.cpu_count() or 1


def _resolve_shards(shards: Optional[str]) -> str:
    """Validate the shard mode (``None`` means the dynamic default)."""
    if shards is None:
        return "dynamic"
    if shards not in SHARD_MODES:
        raise DecompositionError(
            f"unknown shards mode {shards!r}; expected one of {SHARD_MODES}"
        )
    return shards


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _attach_worker(
    spec: Dict[str, Tuple[Optional[str], tuple, str]],
    index_dir: Optional[str] = None,
    kernel: Optional[str] = None,
) -> None:
    """Pool initializer: map every shared block as a numpy view.

    Attaching must not register the blocks with the worker's resource
    tracker: the coordinator owns their lifetime, and a worker-side
    registration would either double-unregister (fork start method,
    where the tracker process is shared) or unlink-on-worker-exit
    (spawn).  Python 3.13 has ``track=False`` for this; here the
    registration is suppressed for the duration of the attach.

    A ``None`` block name marks a zero-length array (no shared block
    exists — there are no bytes to share); the worker materializes its
    own empty view.

    With ``index_dir`` set, the read-only triangle index is *not* in
    shared memory at all: the worker opens the on-disk
    :class:`~repro.triangles.index_builder.TriangleIndex` memory-mapped
    — every process shares the page cache, exactly like the dist ranks.
    """
    from multiprocessing import resource_tracker

    global _WORKER_KERNEL
    _WORKER_KERNEL = get_kernel(kernel)
    _WORKER_VIEWS.clear()
    segments = []
    original_register = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        for name, (shm_name, shape, dtype) in spec.items():
            if shm_name is None:
                _WORKER_VIEWS[name] = _np.zeros(shape, dtype=dtype)
                continue
            seg = _shm.SharedMemory(name=shm_name)
            segments.append(seg)
            _WORKER_VIEWS[name] = _np.ndarray(
                shape, dtype=dtype, buffer=seg.buf
            )
    finally:
        resource_tracker.register = original_register
    if index_dir is not None:
        tri = TriangleIndex.open(index_dir)
        for name in TriangleIndex.FIELDS:
            _WORKER_VIEWS[name] = getattr(tri, name)
    _WORKER_VIEWS["_segments"] = segments  # keep the mappings alive


def _collect_hits(frontier):
    """Phase 1 (in a worker): destroyed triangles for a frontier slice.

    A picklable module-level shim over the pinned kernel's incidence
    gather (:meth:`repro.kernels.PeelKernel.gather_incident`), reading
    the shared-memory views this worker attached at pool init.
    """
    views = _WORKER_VIEWS
    return _worker_kernel().gather_incident(
        views["tptr"], views["tinc"], frontier, views["tdead"]
    )


def _count_decrements(hit):
    """Phase 2 (in a worker): the decrement buffer for a triangle slice."""
    views = _WORKER_VIEWS
    return _worker_kernel().count_decrements(
        views["e1"], views["e2"], views["e3"], hit, views["alive"]
    )


# --- static-shard tasks: ownership travels with the task, and every
# --- write lands inside the owning shard's slices
def _static_collect_views(views, task, kern: PeelKernel):
    """Phase 1 (static): the owning shard pops its frontier edges.

    ``task`` is ``(shard, owned_frontier, k)``.  The shard writes only
    state it owns — its ``phi``/``alive`` entries and histogram row
    (the kernel pop over the shared views plus row ``s`` of the
    per-shard histogram) — then gathers the destroyed-triangle
    candidates from its edges' incidence windows.
    """
    s, part, k = task
    kern.pop_frontier(
        views["sup"], views["alive"], views["phi"],
        views["hist"][s], part, k,
    )
    return kern.gather_incident(
        views["tptr"], views["tinc"], part, views["tdead"]
    )


def _static_decrement_views(views, task, kern: PeelKernel):
    """Phase 2 (static): the owning shard applies its routed decrements.

    ``task`` is ``(shard, routed_triangles, k)``: the dead triangles
    with at least one partner edge in this shard, deduped by the
    router.  The shard counts its owned still-alive partners (the
    kernel's bounded scatter count — partners outside ``[lo, hi)``
    belong to other shards; ``base=0``, the views are global), commits
    them to its own support slice and histogram row, and returns the
    owned edges that fell to the wave floor — the shard's contribution
    to the next frontier.
    """
    s, tris, k = task
    bounds = views["shard_bounds"]
    lo, hi = int(bounds[s]), int(bounds[s + 1])
    touched, dec = kern.count_decrements(
        views["e1"], views["e2"], views["e3"], tris, views["alive"],
        lo=lo, hi=hi,
    )
    return kern.apply_decrements(
        views["sup"], views["hist"][s], touched, dec, k
    )


def _static_collect(task):
    """Picklable pool entry for :func:`_static_collect_views`."""
    return _static_collect_views(_WORKER_VIEWS, task, _worker_kernel())


def _static_decrement(task):
    """Picklable pool entry for :func:`_static_decrement_views`."""
    return _static_decrement_views(_WORKER_VIEWS, task, _worker_kernel())


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------
def _split_weighted(frontier, tptr, jobs: int) -> List:
    """Contiguous edge-id-range partition, balanced by incidence count.

    Same charge and cut rule as the static shard planner — one shared
    kernel, so the two modes can never drift apart on the cost model.
    """
    if jobs <= 1 or frontier.size <= 1:
        return [frontier]
    cuts = balanced_prefix_cuts(tptr[frontier + 1] - tptr[frontier], jobs)
    return _np.split(frontier, cuts)


class _SharedBlocks:
    """Owner of the peel state's shared-memory segments.

    Zero-length arrays get no segment (``SharedMemory`` of size 0 is
    invalid and there is nothing to share anyway); their spec entry
    carries ``None`` for the block name and workers build their own
    empty views.
    """

    def __init__(self, arrays: Dict[str, object]) -> None:
        self.segments = []
        self.views: Dict[str, object] = {}
        self.spec: Dict[str, Tuple[Optional[str], tuple, str]] = {}
        try:
            for name, arr in arrays.items():
                if arr.nbytes == 0:
                    self.views[name] = arr
                    self.spec[name] = (None, arr.shape, arr.dtype.str)
                    continue
                seg = _shm.SharedMemory(create=True, size=arr.nbytes)
                self.segments.append(seg)
                view = _np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                self.views[name] = view
                self.spec[name] = (seg.name, arr.shape, arr.dtype.str)
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        for seg in self.segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


def run_static_wave_peel(
    m: int,
    views,
    plan,
    collect,
    decrement,
    run_map=None,
    account_ipc: bool = False,
    tracer=None,
    metrics=None,
):
    """The owner-computes wave peel over a static edge-shard plan.

    The same level/wave schedule as :func:`repro.core.flat.run_wave_peel`
    — every live edge at or below the floor pops in one wave, supports
    stay exact via the deduped ``tdead`` — but all mutable edge state
    (``sup``/``alive``/``phi`` and one histogram row per shard) is
    written exclusively by the shard that owns the edge range, with the
    coordinator reduced to routing and triangle dedupe.  ``plan`` is
    the static :class:`~repro.partition.edge_shards.EdgeShardPlan`
    (its ``split_sorted`` is the frontier router); ``views`` must hold
    ``phi`` (int64) and ``hist`` (``(num_shards, max_sup + 1)`` int64)
    in addition to the peel state, all sliced by the plan's bounds.

    With ``account_ipc``, totals the bytes of every routed array
    (frontier and triangle slices out, candidates and sub-frontiers
    back) into the ``ipc_bytes`` wave stat.  ``tracer``/``metrics``
    emit the same wave/level spans and frontier histogram as
    :func:`repro.core.flat.run_wave_peel`.

    Returns ``(phi, k, wave_stats)`` — ``phi`` is the shared view.
    """
    if run_map is None:
        run_map = lambda fn, tasks: [fn(t) for t in tasks]  # noqa: E731
    tr = tracer if tracer is not None else NULL_TRACER
    trace_on = tr.enabled
    sup, alive, tdead = views["sup"], views["alive"], views["tdead"]
    e1, e2, e3 = views["e1"], views["e2"], views["e3"]
    phi, hist = views["phi"], views["hist"]
    bounds = _np.asarray(plan.bounds, dtype=_np.int64)
    stride = max(len(e1), 1)
    floor = 0
    k = 2
    remaining = m
    waves = levels = max_wave = 0
    ipc_bytes = 0
    while remaining:
        while not int(hist[:, floor].sum()):
            floor += 1
        if floor + 2 > k:
            k = floor + 2
        levels += 1
        if trace_on:
            level_t0 = _perf()
            level_waves = level_popped = 0
        frontier = _np.flatnonzero(alive & (sup <= k - 2))
        while frontier.size:
            waves += 1
            wave_size = int(frontier.size)
            max_wave = max(max_wave, wave_size)
            remaining -= wave_size
            if trace_on:
                wave_t0 = _perf()
                wave_ipc0 = ipc_bytes
                level_waves += 1
                level_popped += wave_size
                if metrics is not None:
                    metrics.observe("repro_wave_frontier_edges", wave_size)
            # route: each shard is sent only the frontier edges it owns
            pieces = plan.split_sorted(frontier)
            tasks = [
                (s, piece, k)
                for s, piece in enumerate(pieces)
                if piece.size
            ]
            cands = run_map(collect, tasks)
            if account_ipc:
                ipc_bytes += sum(int(t[1].nbytes) for t in tasks)
                ipc_bytes += sum(int(c.nbytes) for c in cands)
            hit = cands[0] if len(cands) == 1 else _np.unique(
                _np.concatenate(cands)
            )
            if hit.size == 0:
                if trace_on:
                    tr.complete_span(
                        "wave", _perf() - wave_t0, k=int(k),
                        frontier=wave_size, killed=0,
                        ipc_bytes=ipc_bytes - wave_ipc0,
                    )
                break
            tdead[hit] = True
            # route: each dead triangle goes to the owner shard(s) of
            # its partner edges, once per shard (the shared unique over
            # (owner, triangle) keys is the exactly-once guarantee)
            routed = route_dead_triangles(bounds, stride, hit, e1, e2, e3)
            tasks = [
                (s, tris, k)
                for s, tris in enumerate(routed)
                if tris.size
            ]
            outs = run_map(decrement, tasks)
            if account_ipc:
                ipc_bytes += sum(int(t[1].nbytes) for t in tasks)
                ipc_bytes += sum(int(o.nbytes) for o in outs)
            # shard outputs are sorted and shard ranges ascend, so the
            # concatenation is the globally sorted next frontier
            frontier = (
                _np.concatenate(outs)
                if outs
                else _np.zeros(0, dtype=_np.int64)
            )
            if trace_on:
                tr.complete_span(
                    "wave", _perf() - wave_t0, k=int(k),
                    frontier=wave_size, killed=int(hit.size),
                    ipc_bytes=ipc_bytes - wave_ipc0,
                )
        if trace_on:
            tr.complete_span(
                "level", _perf() - level_t0, k=int(k),
                waves=level_waves, popped=level_popped, floor=int(floor),
            )
    return phi, k, {
        "waves": waves,
        "levels": levels,
        "max_wave": max_wave,
        "ipc_bytes": ipc_bytes,
    }


def _index_views(tri: TriangleIndex) -> Dict[str, object]:
    """The read-only triangle index, keyed like the worker views."""
    return {name: getattr(tri, name) for name in TriangleIndex.FIELDS}


def _mutable_arrays(tri: TriangleIndex, m: int) -> Dict[str, object]:
    """The peel state both shard modes share, keyed for the shm spec.

    One layout definition — ``sup``/``alive``/``tdead`` — so the two
    modes can never drift on dtypes, sizing or key names.  Unlike the
    index views these are written every wave, so they always live in
    RAM (and in shared memory when a pool runs).
    """
    return {
        "sup": tri.initial_supports(),
        "alive": _np.ones(m, dtype=bool),
        "tdead": _np.zeros(tri.num_triangles, dtype=bool),
    }


def _static_extras(
    tri: TriangleIndex, sup, m: int, jobs: int
) -> Tuple[Dict[str, object], object]:
    """The owner-computes additions to the mutable peel state.

    The shard bounds, the sharded ``phi``, and the per-shard
    alive-support histogram (row ``s`` counts shard ``s``'s live edges
    by support value; the global histogram is the column sum).
    Returns ``(arrays, plan)`` — the plan is the coordinator's router,
    the bounds array its worker-visible twin.
    """
    plan = plan_edge_shards(m, jobs, weights=tri.initial_supports())
    height = int(sup.max()) + 1 if m else 1
    hist = _np.zeros((plan.num_shards, height), dtype=_np.int64)
    for s, lo, hi in plan.iter_shards():
        if hi > lo:
            hist[s] = _np.bincount(sup[lo:hi], minlength=height)
    return {
        "phi": _np.zeros(m, dtype=_np.int64),
        "hist": hist,
        "shard_bounds": _np.asarray(plan.bounds, dtype=_np.int64),
    }, plan


def _peel_waves_shared(
    csr: CSRGraph,
    m: int,
    jobs: int,
    shards: str,
    stats: DecompositionStats,
    index_storage: Optional[str] = None,
    kname: Optional[str] = None,
    tracer=None,
) -> Tuple[array, int]:
    """The wave peel of ``flat``, fanned out over ``jobs`` workers.

    One loop per shard mode serves jobs=1 and jobs>1 alike —
    :func:`repro.core.flat.run_wave_peel` for the dynamic per-wave
    split, :func:`run_static_wave_peel` for the owner-computes static
    plan — so the wave/level schedule (and therefore the trussness
    map) is identical by construction across modes and worker counts.
    With ``jobs=1`` the phases run inline on plain local arrays; with
    ``jobs>1`` the mutable peel state is copied into shared memory
    once, a persistent pool attaches to it, and every wave is two
    ``pool.map`` barriers.  The triangle index comes from the
    streaming counting builder: with ``index_storage="ram"`` it is
    shared with the workers through the same shm blocks, with
    ``"mmap"`` every process maps the on-disk index read-only (no
    triangle-length shm copy exists anywhere).
    """
    mode = resolve_index_storage(index_storage)
    kern = get_kernel(kname)
    tr = tracer if tracer is not None else NULL_TRACER
    if tr.enabled:
        kern = CountingKernel(kern)
    with tempfile.TemporaryDirectory(prefix="repro-triidx-") as tmp:
        t0 = _perf()
        tri = build_triangle_index(
            csr, storage=mode, dirpath=tmp if mode != "ram" else None
        )
        _record_index_build(tri, _perf() - t0, stats, tr)
        stats.record("index_storage", tri.storage)
        index_views = _index_views(tri)
        mutable = _mutable_arrays(tri, m)
        if shards == "static":
            extras, plan = _static_extras(tri, mutable["sup"], m, jobs)
            mutable.update(extras)

            def run_pooled(views, pool):
                return run_static_wave_peel(
                    m,
                    views,
                    plan,
                    _static_collect,  # workers write attached views
                    _static_decrement,
                    run_map=pool.map,
                    account_ipc=True,
                    tracer=tr,
                    metrics=stats.metrics,
                )

            def run_inline(views):
                return run_static_wave_peel(
                    m,
                    views,
                    plan,
                    lambda t: _static_collect_views(views, t, kern),
                    lambda t: _static_decrement_views(views, t, kern),
                    tracer=tr,
                    metrics=stats.metrics,
                )
        else:
            tptr, tinc = index_views["tptr"], index_views["tinc"]
            e1, e2, e3 = (
                index_views["e1"], index_views["e2"], index_views["e3"]
            )

            def run_pooled(views, pool):
                return run_wave_peel(
                    m,
                    views,
                    _collect_hits,  # workers read attached views
                    _count_decrements,
                    kernel=kern,
                    split_frontier=lambda f: _split_weighted(
                        f, tptr, jobs
                    ),
                    split_hits=lambda h: _np.array_split(h, jobs),
                    run_map=pool.map,
                    account_ipc=True,
                    tracer=tr,
                    metrics=stats.metrics,
                )

            def run_inline(views):
                # inline closures over the local arrays: no pool, no
                # shared memory, no module globals — one kernel instance
                return run_wave_peel(
                    m,
                    views,
                    lambda f: kern.gather_incident(
                        tptr, tinc, f, views["tdead"]
                    ),
                    lambda h: kern.count_decrements(
                        e1, e2, e3, h, views["alive"]
                    ),
                    kernel=kern,
                    tracer=tr,
                    metrics=stats.metrics,
                )

        blocks = None
        pool = None
        try:
            t_peel = _perf()
            if jobs > 1:
                # the index crosses to the workers as shm blocks (ram)
                # or as the mmapped files themselves (mmap); the
                # mutable state is always shm
                if tri.storage == "mmap":
                    blocks = _SharedBlocks(mutable)
                    initargs = (blocks.spec, str(tri.dirpath), kern.name)
                else:
                    blocks = _SharedBlocks({**index_views, **mutable})
                    initargs = (blocks.spec, None, kern.name)
                pool = _mp.get_context().Pool(
                    processes=jobs,
                    initializer=_attach_worker,
                    initargs=initargs,
                )
                views = {**index_views, **blocks.views}
                phi, k, wave_stats = run_pooled(views, pool)
            else:
                phi, k, wave_stats = run_inline(
                    {**index_views, **mutable}
                )
            peel_s = _perf() - t_peel
            stats.record("peel_s", round(peel_s, 6))
            for key, value in wave_stats.items():
                stats.record(key, value)
            stats.record("triangles", tri.num_triangles)
            if tr.enabled:
                tr.complete_span("peel", peel_s, engine="parallel",
                                 jobs=int(jobs), shards=shards)
                kern.flush_into(stats.metrics)
            return array("q", phi.tobytes()), k
        finally:
            if pool is not None:
                pool.close()
                pool.join()
            if blocks is not None:
                blocks.close()


def truss_decomposition_parallel(
    g,
    jobs: Optional[int] = None,
    shards: Optional[str] = None,
    index_storage: Optional[str] = None,
    kernel: Optional[str] = None,
    trace=None,
) -> TrussDecomposition:
    """Truss-decompose ``g`` with the shared-memory parallel wave peel.

    Args:
        g: a :class:`~repro.graph.adjacency.Graph` (snapshotted, not
            modified) or a :class:`CSRGraph` from the streaming ingest.
        jobs: worker processes.  ``None`` picks ``os.cpu_count()`` for
            graphs with at least ``_MIN_PARALLEL_EDGES`` edges and a
            serial in-process run below that; an explicit value is
            honored exactly (``jobs=1`` forces the serial path).
        shards: frontier-partitioning strategy, one of
            :data:`SHARD_MODES`.  ``"dynamic"`` (the default) splits
            each wave's frontier into fresh balanced ranges;
            ``"static"`` fixes an incidence-balanced edge-id shard per
            worker up front and runs the owner-computes protocol (see
            the module docstring).
        index_storage: the triangle index destination — ``"ram"``
            (shared-memory blocks), ``"mmap"`` (streamed to disk, every
            process maps it read-only), or ``None`` (auto by size).
            The stdlib fallback peels without an index and ignores it.
        kernel: the wave-step backend (``"auto"``/``"python"``/
            ``"numpy"``/``"numba"``; ``None``: auto), pinned on the
            coordinator *and* every pool worker.

    Returns the identical trussness map as ``method="flat"`` and
    ``method="improved"`` — neither the worker count, the shard mode,
    the index storage nor the kernel changes the wave schedule.
    """
    mode = _resolve_shards(shards)
    resolve_index_storage(index_storage)  # validate eagerly, any path
    kname = resolve_kernel(kernel)
    csr = _as_csr(g)
    m = csr.num_edges
    stats = DecompositionStats(method="parallel")
    stats.record("shards", mode)
    tr = trace if trace is not None else NULL_TRACER
    if _np is None or _shm is None:
        # no vectorized substrate: degrade to the stdlib flat engine
        if tr.enabled:
            tr.event("run_start", engine="parallel", m=int(m),
                     shards=mode, jobs=1)
        if m:
            warn_degraded(tr, stats.metrics, "stdlib_fallback",
                          engine="parallel")
        stats.record("stdlib_fallback", 1)
        stats.record("jobs", 1)
        t0 = _perf()
        sup = _initial_supports_python(csr, m)
        eu, ev = csr.edge_endpoints()
        phi, k = _peel_wedge_bisect(csr, m, sup, eu, ev)
        peel_s = _perf() - t0
        stats.record("peel_s", round(peel_s, 6))
        if tr.enabled:
            tr.complete_span("peel", peel_s, engine="parallel")
        return result_from_phi(csr, phi, k if m else 2, stats)
    njobs = _resolve_jobs(jobs, m)
    stats.record("jobs", njobs)
    stats.record("kernel", kname)
    if tr.enabled:
        tr.event("run_start", engine="parallel", m=int(m), kernel=kname,
                 jobs=int(njobs), shards=mode)
    if not m:
        return result_from_phi(csr, array("q"), 2, stats)
    phi, k = _peel_waves_shared(
        csr, m, njobs, mode, stats, index_storage, kname, tracer=tr
    )
    return result_from_phi(csr, phi, k, stats)
