"""The library's front door: uniform truss-decomposition entry points.

``truss_decomposition(g, method=...)`` dispatches to the paper's
implementations plus this repo's flat engine; ``k_truss``/
``trussness``/``top_t_classes`` are the conveniences most applications
want.

Methods:

========== ==================================== =========================
name       algorithm                             when to use
========== ==================================== =========================
improved   Algorithm 2 (TD-inmem+)               default; graph fits RAM
flat       Algorithm 2 over flat edge-id arrays  fastest serial path
parallel   shared-memory parallel wave peel      multi-core machines
dist       rank-distributed wave peel            graph exceeds one node
baseline   Algorithm 1 (TD-inmem, Cohen)         comparison only
bottomup   Algorithms 3+4 (TD-bottomup)          graph exceeds memory
topdown    Algorithm 7 (TD-topdown)              only the top-t classes
mapreduce  Cohen's TD-MR                         comparison only
========== ==================================== =========================

``flat`` (see :mod:`repro.core.flat`) is not in the paper: it runs the
same bin-sorted peeling as ``improved`` but over the CSR snapshot's
canonical edge ids — integer arrays instead of dict-of-set adjacency.
``parallel`` (see :mod:`repro.core.parallel`) fans the flat engine's
level-synchronous waves out over a pool of worker processes sharing
the triangle index through ``multiprocessing.shared_memory``; the
``jobs`` knob sets the worker count and ``shards`` picks between the
per-wave dynamic frontier split and the static owner-computes edge-id
shards of :mod:`repro.partition.edge_shards`.  ``dist`` (see
:mod:`repro.core.dist` and :mod:`repro.dist`) replaces the pool
barriers with a real message transport: one rank process/thread per
static edge shard, exchanging candidate/dead-triangle buffers over
in-process queues (``transport="loopback"``) or length-prefixed
localhost sockets (``transport="tcp"``), with the triangle dedupe
hash-partitioned across ranks so no node holds the global triangle
state.  All three peel over one shared triangle-index pipeline — the
streaming two-pass counting builder of
:mod:`repro.triangles.index_builder`, whose destination the
``index_storage`` knob selects (in-RAM arrays or the on-disk mmap
layout, holding build memory at O(m + chunk)).  All three accept a
ready :class:`~repro.graph.csr.CSRGraph` in place of a ``Graph``, and
:func:`decompose_file` feeds them straight from an edge-list file via
the dict-free streaming ingest.
"""

from __future__ import annotations

import time as _time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.bottomup import truss_decomposition_bottomup
from repro.core.decomposition import TrussDecomposition
from repro.core.dist import truss_decomposition_dist
from repro.core.flat import truss_decomposition_flat
from repro.core.mapreduce_truss import truss_decomposition_mapreduce
from repro.core.parallel import truss_decomposition_parallel
from repro.core.topdown import truss_decomposition_topdown
from repro.core.truss_baseline import truss_decomposition_baseline
from repro.core.truss_improved import truss_decomposition_improved
from repro.errors import DecompositionError
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.edges import Edge
from repro.obs import open_tracer
from repro.partition.base import Partitioner

METHODS = (
    "improved", "flat", "parallel", "dist", "baseline", "bottomup",
    "topdown", "mapreduce",
)

#: methods that peel over the CSR substrate and accept it directly —
#: these ride the dict-free file ingest in :func:`decompose_file`
CSR_METHODS = ("flat", "parallel", "dist")


def truss_decomposition(
    g: Graph,
    method: str = "improved",
    *,
    memory_budget: Optional[MemoryBudget] = None,
    partitioner: Optional[Partitioner] = None,
    workdir: Optional[Path] = None,
    io_stats: Optional[IOStats] = None,
    top_t: Optional[int] = None,
    jobs: Optional[int] = None,
    shards: Optional[str] = None,
    ranks: Optional[int] = None,
    transport: Optional[str] = None,
    timeout: Optional[float] = None,
    on_failure: Optional[str] = None,
    index_storage: Optional[str] = None,
    kernel: Optional[str] = None,
    trace=None,
    trace_path=None,
) -> TrussDecomposition:
    """Compute the truss decomposition of ``g``.

    Args:
        g: the input graph (undirected, simple).  The ``flat`` and
            ``parallel`` methods also accept a ready
            :class:`~repro.graph.csr.CSRGraph` snapshot.
        method: one of :data:`METHODS`.
        memory_budget: simulated memory ``M`` for the external methods.
        partitioner: partitioning strategy for the external methods.
        workdir: scratch directory for spill files (temp dir by default).
        io_stats: block-I/O counter to populate (external methods).
        top_t: with ``method='topdown'``, compute only the top-t classes.
        jobs: with ``method='parallel'``, the worker-process count
            (``None``: auto — serial on small graphs, one worker per
            core otherwise).
        shards: with ``method='parallel'``, the frontier-partitioning
            strategy: ``"dynamic"`` (default) re-splits each wave's
            frontier; ``"static"`` fixes an incidence-balanced edge-id
            shard per worker for the whole peel (owner-computes).
        ranks: with ``method='dist'``, the rank count — one owned
            static edge shard per rank (``None``: auto, like ``jobs``).
        transport: with ``method='dist'``, the message fabric:
            ``"loopback"`` (default, in-process queues) or ``"tcp"``
            (rank processes over framed localhost sockets).
        timeout: with ``method='dist'``, the deadline in seconds for
            any single blocking transport step (socket/queue receives,
            mesh dial, the driver's gather loops); ``None`` uses the
            built-in default.
        on_failure: with ``method='dist'``, the supervisor's policy
            when a rank dies mid-run — ``"raise"`` (default, fail
            fast), ``"retry"`` (respawn the mesh and rewind to the
            newest common checkpoint barrier, bounded by a retry
            budget) or ``"fallback_flat"`` (retry, then degrade to the
            in-process flat engine instead of raising).
        index_storage: for the CSR methods (:data:`CSR_METHODS`), the
            triangle index's destination — ``"ram"`` or ``"mmap"``
            (streamed to disk through the counting builder and mapped
            read-only).  ``None`` is auto: by size for flat/parallel,
            always on disk for dist (whose ranks mmap it regardless).
        kernel: for the CSR methods, the wave-step backend from
            :mod:`repro.kernels` — ``"auto"`` (default), ``"python"``,
            ``"numpy"`` or ``"numba"``; one backend runs the inner
            step of every engine, worker and rank alike.
        trace: an enabled :class:`repro.obs.Tracer` to receive the
            run's structured trace (spans, events, degradation
            warnings) — see :mod:`repro.obs` for the schema.  The CSR
            methods emit their full wave/level timelines; every other
            method emits a whole-run ``decompose`` span.
        trace_path: write the trace to this JSONL file instead —
            opened, flushed and closed here.  Mutually exclusive with
            ``trace``.

    Returns:
        A :class:`TrussDecomposition`; for ``top_t`` runs it is partial
        (contains only the requested classes).
    """
    gated = (
        ("jobs", jobs, "parallel"),
        ("shards", shards, "parallel"),
        ("ranks", ranks, "dist"),
        ("transport", transport, "dist"),
        ("timeout", timeout, "dist"),
        ("on_failure", on_failure, "dist"),
    )
    bad = [
        name for name, value, owner in gated
        if value is not None and method != owner
    ]
    if index_storage is not None and method not in CSR_METHODS:
        bad.append("index_storage")
    if kernel is not None and method not in CSR_METHODS:
        bad.append("kernel")
    if bad:
        raise DecompositionError(
            f"method {method!r} does not accept: {', '.join(bad)}"
        )
    if isinstance(g, CSRGraph) and method not in CSR_METHODS:
        raise DecompositionError(
            f"method {method!r} needs a mutable Graph; CSR snapshots are "
            f"accepted by {', '.join(CSR_METHODS)}"
        )
    try:
        tracer, owned = open_tracer(trace, trace_path)
    except ValueError as exc:
        raise DecompositionError(str(exc)) from None

    def dispatch() -> TrussDecomposition:
        if method == "improved":
            _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
            return truss_decomposition_improved(g)
        if method == "flat":
            _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
            return truss_decomposition_flat(
                g, index_storage=index_storage, kernel=kernel,
                trace=tracer,
            )
        if method == "parallel":
            _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
            return truss_decomposition_parallel(
                g, jobs=jobs, shards=shards, index_storage=index_storage,
                kernel=kernel, trace=tracer,
            )
        if method == "dist":
            _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
            return truss_decomposition_dist(
                g, ranks=ranks, transport=transport, timeout=timeout,
                on_failure=on_failure, index_storage=index_storage,
                kernel=kernel, trace=tracer,
            )
        if method == "baseline":
            _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
            return truss_decomposition_baseline(g)
        if method == "bottomup":
            if top_t is not None:
                raise DecompositionError(
                    "top_t is only meaningful for method='topdown'"
                )
            return truss_decomposition_bottomup(
                g,
                budget=memory_budget,
                partitioner=partitioner,
                workdir=workdir,
                stats=io_stats,
            )
        if method == "topdown":
            return truss_decomposition_topdown(
                g,
                t=top_t,
                budget=memory_budget,
                partitioner=partitioner,
                workdir=workdir,
                stats=io_stats,
            )
        if method == "mapreduce":
            _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
            return truss_decomposition_mapreduce(g)
        raise DecompositionError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )

    try:
        if method in CSR_METHODS or not tracer.enabled:
            return dispatch()
        # the non-CSR methods are not internally instrumented; give
        # their traces a run_start and one whole-run span so every
        # method's trace is renderable by the same report
        tracer.event(
            "run_start", engine=method,
            m=int(getattr(g, "num_edges", 0) or 0),
        )
        t0 = _time.perf_counter()
        td = dispatch()
        tracer.complete_span(
            "decompose", _time.perf_counter() - t0, method=method
        )
        return td
    finally:
        if owned:
            tracer.close()


def _reject_external_args(method, memory_budget, partitioner, io_stats, top_t):
    extras = {
        "memory_budget": memory_budget,
        "partitioner": partitioner,
        "io_stats": io_stats,
        "top_t": top_t,
    }
    bad = [name for name, value in extras.items() if value is not None]
    if bad:
        raise DecompositionError(
            f"method {method!r} does not accept: {', '.join(bad)}"
        )


def decompose_file(
    path,
    method: str = "flat",
    *,
    jobs: Optional[int] = None,
    shards: Optional[str] = None,
    ranks: Optional[int] = None,
    transport: Optional[str] = None,
    timeout: Optional[float] = None,
    on_failure: Optional[str] = None,
    index_storage: Optional[str] = None,
    kernel: Optional[str] = None,
    trace=None,
    trace_path=None,
    **kwargs,
) -> TrussDecomposition:
    """Truss-decompose an edge-list file, riding the ingest fast path.

    For the CSR-substrate methods (:data:`CSR_METHODS`) the file is
    streamed straight into a :class:`~repro.graph.csr.CSRGraph` via
    :meth:`~repro.graph.csr.CSRGraph.from_edge_list_file` — no
    dict-of-set ``Graph`` is ever built, which is ~2x end-to-end on
    parse-dominated inputs.  Every other method falls back to
    ``read_edge_list`` and the normal dispatcher (``kwargs`` are passed
    through to :func:`truss_decomposition`).
    """
    if method in CSR_METHODS:
        csr = CSRGraph.from_edge_list_file(path)
        return truss_decomposition(
            csr, method=method, jobs=jobs, shards=shards, ranks=ranks,
            transport=transport, timeout=timeout,
            on_failure=on_failure, index_storage=index_storage,
            kernel=kernel, trace=trace, trace_path=trace_path, **kwargs
        )
    from repro.graph.io import read_edge_list

    return truss_decomposition(
        read_edge_list(path), method=method, jobs=jobs, shards=shards,
        ranks=ranks, transport=transport, timeout=timeout,
        on_failure=on_failure, index_storage=index_storage,
        kernel=kernel, trace=trace, trace_path=trace_path, **kwargs
    )


def apply_updates(
    g,
    updates,
    *,
    batch_size: int = 1,
    kernel: Optional[str] = None,
    trace=None,
    trace_path=None,
) -> TrussDecomposition:
    """Decompose ``g``, then maintain trussness through ``updates``.

    The incremental write path (see :mod:`repro.stream`): ``g`` (a
    :class:`Graph` or CSR snapshot) is decomposed once with the flat
    engine, then each ``(op, u, v)`` update — ``op`` is ``"insert"``/
    ``"+"`` or ``"delete"``/``"-"`` — repairs only the bounded
    affected region instead of re-peeling the whole graph.
    ``batch_size`` groups updates into batches repaired once each
    (``apply_batch``); the result is bit-identical either way.
    ``trace``/``trace_path`` capture the seeding decomposition and
    every repair as a structured trace, exactly like
    :func:`truss_decomposition`.
    """
    from repro.stream import TrussMaintainer

    if batch_size < 1:
        raise DecompositionError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    try:
        tracer, owned = open_tracer(trace, trace_path)
    except ValueError as exc:
        raise DecompositionError(str(exc)) from None
    try:
        tm = TrussMaintainer.from_graph(g, kernel=kernel, trace=tracer)
        ups = list(updates)
        for i in range(0, len(ups), batch_size):
            tm.apply_batch(ups[i : i + batch_size])
        return tm.as_decomposition()
    finally:
        if owned:
            tracer.close()


def trussness(g: Graph, method: str = "improved") -> Dict[Edge, int]:
    """The ``phi(e)`` map of every edge."""
    return dict(truss_decomposition(g, method=method).trussness)


def k_truss(g: Graph, k: int, method: str = "improved") -> Graph:
    """The k-truss subgraph of ``g`` (``T_2 = g`` by definition)."""
    if k < 2:
        raise DecompositionError(f"k-truss is defined for k >= 2, got {k}")
    if k == 2:
        out = g.copy()
        out.drop_isolated_vertices()
        return out
    return truss_decomposition(g, method=method).k_truss(k)


def top_t_classes(
    g: Graph, t: int, method: str = "topdown"
) -> Dict[int, List[Edge]]:
    """The classes ``Phi_k`` for ``kmax >= k > kmax - t``."""
    if method == "topdown":
        td = truss_decomposition(g, method="topdown", top_t=t)
        kmax = td.kmax
        return {k: td.k_class(k) for k in range(kmax, max(kmax - t, 1), -1)}
    return truss_decomposition(g, method=method).top_classes(t)
