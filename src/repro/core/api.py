"""The library's front door: uniform truss-decomposition entry points.

``truss_decomposition(g, method=...)`` dispatches to the paper's
implementations plus this repo's flat engine; ``k_truss``/
``trussness``/``top_t_classes`` are the conveniences most applications
want.

Methods:

========== ==================================== =========================
name       algorithm                             when to use
========== ==================================== =========================
improved   Algorithm 2 (TD-inmem+)               default; graph fits RAM
flat       Algorithm 2 over flat edge-id arrays  fastest in-memory path
baseline   Algorithm 1 (TD-inmem, Cohen)         comparison only
bottomup   Algorithms 3+4 (TD-bottomup)          graph exceeds memory
topdown    Algorithm 7 (TD-topdown)              only the top-t classes
mapreduce  Cohen's TD-MR                         comparison only
========== ==================================== =========================

``flat`` (see :mod:`repro.core.flat`) is not in the paper: it runs the
same bin-sorted peeling as ``improved`` but over the CSR snapshot's
canonical edge ids — integer arrays instead of dict-of-set adjacency —
and is the substrate future scaling work builds on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.core.bottomup import truss_decomposition_bottomup
from repro.core.decomposition import TrussDecomposition
from repro.core.flat import truss_decomposition_flat
from repro.core.mapreduce_truss import truss_decomposition_mapreduce
from repro.core.topdown import truss_decomposition_topdown
from repro.core.truss_baseline import truss_decomposition_baseline
from repro.core.truss_improved import truss_decomposition_improved
from repro.errors import DecompositionError
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge
from repro.partition.base import Partitioner

METHODS = ("improved", "flat", "baseline", "bottomup", "topdown", "mapreduce")


def truss_decomposition(
    g: Graph,
    method: str = "improved",
    *,
    memory_budget: Optional[MemoryBudget] = None,
    partitioner: Optional[Partitioner] = None,
    workdir: Optional[Path] = None,
    io_stats: Optional[IOStats] = None,
    top_t: Optional[int] = None,
) -> TrussDecomposition:
    """Compute the truss decomposition of ``g``.

    Args:
        g: the input graph (undirected, simple).
        method: one of :data:`METHODS`.
        memory_budget: simulated memory ``M`` for the external methods.
        partitioner: partitioning strategy for the external methods.
        workdir: scratch directory for spill files (temp dir by default).
        io_stats: block-I/O counter to populate (external methods).
        top_t: with ``method='topdown'``, compute only the top-t classes.

    Returns:
        A :class:`TrussDecomposition`; for ``top_t`` runs it is partial
        (contains only the requested classes).
    """
    if method == "improved":
        _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
        return truss_decomposition_improved(g)
    if method == "flat":
        _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
        return truss_decomposition_flat(g)
    if method == "baseline":
        _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
        return truss_decomposition_baseline(g)
    if method == "bottomup":
        if top_t is not None:
            raise DecompositionError(
                "top_t is only meaningful for method='topdown'"
            )
        return truss_decomposition_bottomup(
            g,
            budget=memory_budget,
            partitioner=partitioner,
            workdir=workdir,
            stats=io_stats,
        )
    if method == "topdown":
        return truss_decomposition_topdown(
            g,
            t=top_t,
            budget=memory_budget,
            partitioner=partitioner,
            workdir=workdir,
            stats=io_stats,
        )
    if method == "mapreduce":
        _reject_external_args(method, memory_budget, partitioner, io_stats, top_t)
        return truss_decomposition_mapreduce(g)
    raise DecompositionError(
        f"unknown method {method!r}; expected one of {METHODS}"
    )


def _reject_external_args(method, memory_budget, partitioner, io_stats, top_t):
    extras = {
        "memory_budget": memory_budget,
        "partitioner": partitioner,
        "io_stats": io_stats,
        "top_t": top_t,
    }
    bad = [name for name, value in extras.items() if value is not None]
    if bad:
        raise DecompositionError(
            f"method {method!r} does not accept: {', '.join(bad)}"
        )


def trussness(g: Graph, method: str = "improved") -> Dict[Edge, int]:
    """The ``phi(e)`` map of every edge."""
    return dict(truss_decomposition(g, method=method).trussness)


def k_truss(g: Graph, k: int, method: str = "improved") -> Graph:
    """The k-truss subgraph of ``g`` (``T_2 = g`` by definition)."""
    if k < 2:
        raise DecompositionError(f"k-truss is defined for k >= 2, got {k}")
    if k == 2:
        out = g.copy()
        out.drop_isolated_vertices()
        return out
    return truss_decomposition(g, method=method).k_truss(k)


def top_t_classes(
    g: Graph, t: int, method: str = "topdown"
) -> Dict[int, List[Edge]]:
    """The classes ``Phi_k`` for ``kmax >= k > kmax - t``."""
    if method == "topdown":
        td = truss_decomposition(g, method="topdown", top_t=t)
        kmax = td.kmax
        return {k: td.k_class(k) for k in range(kmax, max(kmax - t, 1), -1)}
    return truss_decomposition(g, method=method).top_classes(t)
