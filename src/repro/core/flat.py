"""The flat peeling engine: Algorithm 2 over integer edge arrays.

``truss_decomposition_flat`` computes the same trussness map as
:func:`repro.core.truss_improved.truss_decomposition_improved` but runs
the whole pipeline over the CSR snapshot's canonical edge ids instead
of dict-of-set adjacency:

1. **support initialization** is compact-forward triangle counting
   (Schank/Latapy, the paper's Step 2) done by *merge-style sorted
   intersection* of rank-oriented adjacency runs — every closing edge's
   id comes straight out of the parallel ``eids`` arrays, with zero
   hash probes.  With numpy available the same intersection is done in
   bulk: rank-DAG wedges are materialized in chunks and closed with one
   ``searchsorted`` against the sorted oriented-edge keys;
2. **peeling** is the paper's bin-sorted edge array (supports, bin
   starts, positions) held in ``array('q')`` plus an ``alive`` bitmap
   (``bytearray``), with the O(1) bucket-move decrement of
   :class:`repro.core.truss_improved._EdgePeeler`;
3. **triangle enumeration** on removal of ``(u, v)`` walks the smaller
   endpoint's adjacency run by index and closes each wedge by binary
   search in the other run — set membership never enters the hot path.
   Runs live in mutable copies of the CSR arrays and are compacted in
   place (a stable filter, so they stay sorted) once half their slots
   are dead, keeping every scan O(remaining degree) like the improved
   method's shrinking dicts rather than O(original degree).

With numpy, steps 2-3 are replaced wholesale by :func:`_peel_waves`, a
level-synchronous wave peel over the materialized triangle index in
the shared-memory style of Kabir & Madduri — same unique trussness
map, 2-3x faster than the improved method end to end.  The index
itself comes from the streaming two-pass counting builder
(:mod:`repro.triangles.index_builder`), in RAM or mmapped from disk
(``index_storage``), so building it never costs a triangle-scale sort
or concatenation.

The result is bit-identical to the other in-memory methods; the flat
integer substrate (``sup``/``order``/``pos``/``alive`` indexed by edge
id) is what the scaling work builds on: :mod:`repro.core.parallel`
fans the same waves out over a shared-memory worker pool,
:mod:`repro.core.semi_external` initializes its per-edge state through
:func:`initial_supports`, and the streaming ingest
(:meth:`~repro.graph.csr.CSRGraph.from_edge_list_file`) feeds
:func:`truss_decomposition_flat` a ready CSR snapshot with no
dict-of-set round trip.
"""

from __future__ import annotations

import tempfile
from array import array
from bisect import bisect_left
from time import perf_counter as _perf
from typing import Optional, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.errors import DecompositionError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.kernels import PeelKernel, get_kernel, resolve_kernel
from repro.obs import NULL_TRACER, CountingKernel, warn_degraded
from repro.triangles.index_builder import (
    INDEX_STORAGES,
    TriangleIndex,
    build_triangle_index,
    count_edge_incidence,
)

try:  # optional accelerator; every code path has a stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def resolve_index_storage(index_storage: Optional[str]) -> str:
    """Validate the index-storage knob (``None`` means size-based auto).

    Shared by the flat, parallel and dist front doors so the accepted
    vocabulary (:data:`~repro.triangles.index_builder.INDEX_STORAGES`)
    can never drift between methods.
    """
    if index_storage is None:
        return "auto"
    if index_storage not in INDEX_STORAGES:
        raise DecompositionError(
            f"unknown index storage {index_storage!r}; expected one of "
            f"{INDEX_STORAGES}"
        )
    return index_storage


def _oriented_runs(csr: CSRGraph) -> Tuple[array, array, array]:
    """Degree-rank-oriented adjacency with parallel edge ids.

    Returns ``(optr, onbr, oeids)``: the out-run of the vertex of rank
    ``r`` is ``onbr[optr[r]:optr[r+1]]``, holding the *ranks* of its
    higher-ranked neighbors in ascending order, with ``oeids`` carrying
    the canonical edge id of each slot.  Storing ranks (not vertex ids)
    makes the intersection a plain sorted merge.

    Built sort-free by two counting passes straight into flat
    ``array('q')`` buffers (count out-degrees, then scatter through
    fill cursors) — no per-vertex Python list pair ever exists.
    Visiting ranks in ascending order and appending each one to its
    lower-ranked neighbors' runs leaves every run already rank-sorted.
    """
    indptr, indices, eids = csr.indptr, csr.indices, csr.eids
    n = csr.num_vertices
    m = len(indices) // 2
    vertex_of_rank = csr.degree_order()
    rank = array("q", [0]) * n
    for r, i in enumerate(vertex_of_rank):
        rank[i] = r
    optr = array("q", [0]) * (n + 1)
    for r in range(n):
        b = vertex_of_rank[r]
        for t in range(indptr[b], indptr[b + 1]):
            rw = rank[indices[t]]
            if rw < r:
                optr[rw + 1] += 1
    for r in range(1, n + 1):
        optr[r] += optr[r - 1]
    fill = array("q", optr[:-1])
    onbr = array("q", [0]) * m
    oeids = array("q", [0]) * m
    for r in range(n):
        b = vertex_of_rank[r]
        for t in range(indptr[b], indptr[b + 1]):
            rw = rank[indices[t]]
            if rw < r:
                p = fill[rw]
                onbr[p] = r
                oeids[p] = eids[t]
                fill[rw] = p + 1
    return optr, onbr, oeids


def _initial_supports_python(csr: CSRGraph, m: int) -> array:
    """Merged oriented intersections, one triangle at a time.

    Same compact-forward scheme as the numpy path: each triangle is
    found exactly once, at its lowest-ranked edge, and the two-pointer
    merge exposes the slots of both closing edges, so every support
    increment is a direct index — ``O(m^1.5)`` total (an out-run holds
    at most ``2*sqrt(m)`` slots).
    """
    optr, onbr, oeids = _oriented_runs(csr)
    sup = array("q", [0]) * m
    for a in range(csr.num_vertices):
        a_lo, a_hi = optr[a], optr[a + 1]
        if a_hi - a_lo < 2:
            continue
        for t in range(a_lo, a_hi):
            rb = onbr[t]
            tb, b_hi = optr[rb], optr[rb + 1]
            if tb == b_hi:
                continue
            # merge out(a) against out(b): both sorted by rank, and
            # common tips rank above b, hence sit after slot t
            count = 0
            ta = t + 1
            while ta < a_hi and tb < b_hi:
                ra = onbr[ta]
                rc = onbr[tb]
                if ra < rc:
                    ta += 1
                elif rc < ra:
                    tb += 1
                else:
                    sup[oeids[ta]] += 1
                    sup[oeids[tb]] += 1
                    count += 1
                    ta += 1
                    tb += 1
            if count:
                sup[oeids[t]] += count
    return sup


def _bin_sort(sup: array, m: int) -> Tuple[array, array, array]:
    """The _EdgePeeler layout over arrays: ``(bin_start, order, pos)``.

    ``order`` holds edge ids ascending by support, ``pos`` the inverse
    permutation, ``bin_start[s]`` the first position of support-``s``
    edges — the edge analogue of Batagelj-Zaversnik bin sort.
    """
    max_sup = max(sup) if m else 0
    bin_start = array("q", [0]) * (max_sup + 2)
    for s in sup:
        bin_start[s + 1] += 1
    for s in range(1, max_sup + 2):
        bin_start[s] += bin_start[s - 1]
    bin_start = bin_start[:-1]
    order = array("q", [0]) * m
    pos = array("q", [0]) * m
    fill = array("q", bin_start)
    for eid in range(m):
        s = sup[eid]
        p = fill[s]
        pos[eid] = p
        order[p] = eid
        fill[s] += 1
    return bin_start, order, pos


def initial_supports(csr: CSRGraph) -> array:
    """Support of every edge, indexed by canonical edge id.

    The flat substrate's triangle-counting pass, exposed for reuse (the
    semi-external baseline's support init rides it): the streaming
    builder's counting pass with numpy (O(m + chunk) peak memory, no
    triangle-length array), the merge-intersection pass without.
    """
    m = csr.num_edges
    if _np is not None and m:
        sup, _n_tri = count_edge_incidence(csr)
        return array("q", sup.astype(_np.int64).tobytes())
    return _initial_supports_python(csr, m)


def run_wave_peel(
    m: int,
    views,
    collect,
    decrement,
    kernel: Optional[PeelKernel] = None,
    split_frontier=None,
    split_hits=None,
    run_map=None,
    account_ipc: bool = False,
    tracer=None,
    metrics=None,
):
    """The level-synchronous wave peel, generic over its execution map.

    ``views`` holds the peel state (``sup``/``alive``/``tdead`` numpy
    arrays — local or shared-memory, the loop cannot tell).  Each wave
    runs ``collect`` over ``split_frontier(frontier)`` and
    ``decrement`` over ``split_hits(hit)`` through ``run_map``; with
    the defaults (identity split, inline map) this *is* the serial
    peel, and :mod:`repro.core.parallel` passes a worker pool's ``map``
    plus range partitioners to fan the same schedule out — one loop,
    one invariant, bit-identical results either way.

    The wave inner step itself — frontier pop, decrement-buffer merge,
    support/histogram commit — is executed by ``kernel``, a
    :class:`repro.kernels.PeelKernel` backend (``None``: the process's
    auto-selected backend); ``collect``/``decrement`` are expected to
    route to the same kernel's gather/count entry points, so the
    registry is the only wave-step code path.

    At level ``k``, every live edge with support <= k-2 pops in one
    wave (Kabir & Madduri's shared-memory style; supports stay *exact*:
    each triangle decrements its partners once, when its first edge
    pops, with ``np.unique`` deduping triangles reached from several
    frontier edges — across partitions too).  The level floor is
    tracked incrementally: ``hist`` counts alive edges per support
    value and is updated on every pop and decrement, so finding the
    next non-empty level is a monotone pointer advance instead of an
    ``O(m)`` ``sup[alive].min()`` re-mask per level.

    With ``account_ipc`` the loop also totals the bytes of every array
    that crosses ``run_map`` (frontier partitions and triangle slices
    out, candidate lists and decrement buffers back) — the per-wave
    message volume of the pooled caller, reported as ``ipc_bytes`` in
    the wave stats (0 when not accounting: the inline map moves
    nothing).

    With a ``tracer`` whose ``enabled`` flag is set, every wave and
    level is emitted as a span (``wave``: k/frontier/killed/ipc_bytes,
    ``level``: k/waves/popped/floor) and ``metrics`` — when given —
    observes each frontier size into the
    ``repro_wave_frontier_edges`` histogram; the untraced path pays a
    single truthiness check per wave.

    Returns ``(phi, k, wave_stats)``.
    """
    identity = lambda x: [x]  # noqa: E731
    split_frontier = split_frontier or identity
    split_hits = split_hits or identity
    if run_map is None:
        run_map = lambda fn, parts: [fn(p) for p in parts]  # noqa: E731
    kern = kernel if kernel is not None else get_kernel()
    tr = tracer if tracer is not None else NULL_TRACER
    trace_on = tr.enabled
    sup, alive, tdead = views["sup"], views["alive"], views["tdead"]
    phi = _np.zeros(m, dtype=_np.int64)
    # alive-support histogram; supports only decrease, so its length is
    # fixed at the initial maximum and the floor pointer never retreats
    hist = _np.bincount(sup)
    floor = 0
    k = 2
    remaining = m
    waves = levels = max_wave = 0
    ipc_bytes = 0
    while remaining:
        while hist[floor] == 0:
            floor += 1
        if floor + 2 > k:
            k = floor + 2
        levels += 1
        if trace_on:
            level_t0 = _perf()
            level_waves = level_popped = 0
        frontier = _np.flatnonzero(alive & (sup <= k - 2))
        while frontier.size:
            waves += 1
            wave_size = int(frontier.size)
            max_wave = max(max_wave, wave_size)
            if trace_on:
                wave_t0 = _perf()
                wave_ipc0 = ipc_bytes
                level_waves += 1
                level_popped += wave_size
                if metrics is not None:
                    metrics.observe("repro_wave_frontier_edges", wave_size)
            kern.pop_frontier(sup, alive, phi, hist, frontier, k)
            remaining -= int(frontier.size)
            # gather: destroyed-triangle candidates per partition, with
            # a cross-partition dedupe (one partition needs none)
            parts = split_frontier(frontier)
            hits = run_map(collect, parts)
            if account_ipc:
                ipc_bytes += sum(int(p.nbytes) for p in parts)
                ipc_bytes += sum(int(h.nbytes) for h in hits)
            hit = hits[0] if len(hits) == 1 else _np.unique(
                _np.concatenate(hits)
            )
            if hit.size == 0:
                if trace_on:
                    tr.complete_span(
                        "wave", _perf() - wave_t0, k=int(k),
                        frontier=wave_size, killed=0,
                        ipc_bytes=ipc_bytes - wave_ipc0,
                    )
                break
            tdead[hit] = True
            # scatter: per-partition decrement buffers, merged exactly
            slices = split_hits(hit)
            buffers = run_map(decrement, slices)
            if account_ipc:
                ipc_bytes += sum(int(s.nbytes) for s in slices)
                ipc_bytes += sum(
                    int(b[0].nbytes) + int(b[1].nbytes) for b in buffers
                )
            touched, dec = kern.merge_decrements(buffers)
            frontier = kern.apply_decrements(sup, hist, touched, dec, k)
            if trace_on:
                tr.complete_span(
                    "wave", _perf() - wave_t0, k=int(k),
                    frontier=wave_size, killed=int(hit.size),
                    ipc_bytes=ipc_bytes - wave_ipc0,
                )
        if trace_on:
            tr.complete_span(
                "level", _perf() - level_t0, k=int(k),
                waves=level_waves, popped=level_popped, floor=int(floor),
            )
    return phi, k, {
        "waves": waves,
        "levels": levels,
        "max_wave": max_wave,
        "ipc_bytes": ipc_bytes,
    }


def _peel_over_index(
    tri: TriangleIndex,
    m: int,
    stats: Optional[DecompositionStats],
    kern: Optional[PeelKernel] = None,
    tracer=None,
) -> Tuple[array, int]:
    """:func:`run_wave_peel` with the identity map over a built index."""
    e1, e2, e3 = tri.e1, tri.e2, tri.e3
    tptr, tinc = tri.tptr, tri.tinc
    kern = kern if kern is not None else get_kernel()
    views = {
        "sup": tri.initial_supports(),
        "alive": _np.ones(m, dtype=bool),
        "tdead": _np.zeros(tri.num_triangles, dtype=bool),
    }
    if stats is not None:
        stats.record("index_storage", tri.storage)
        stats.record("triangles", tri.num_triangles)
    phi, k, wave_stats = run_wave_peel(
        m,
        views,
        lambda f: kern.gather_incident(tptr, tinc, f, views["tdead"]),
        lambda h: kern.count_decrements(
            e1, e2, e3, h, views["alive"]
        ),
        kernel=kern,
        tracer=tracer,
        metrics=stats.metrics if stats is not None else None,
    )
    if stats is not None:
        for key, value in wave_stats.items():
            stats.record(key, value)
    return array("q", phi.tobytes()), k


def _peel_waves(
    csr: CSRGraph,
    m: int,
    index_storage: Optional[str] = None,
    stats: Optional[DecompositionStats] = None,
    kern: Optional[PeelKernel] = None,
    tracer=None,
) -> Tuple[array, int]:
    """Serial wave peeling over the streamed triangle index (numpy).

    The index is built by the two-pass counting builder
    (:func:`repro.triangles.index_builder.build_triangle_index`);
    ``index_storage`` picks its destination — ``"ram"`` for plain
    ndarrays (the classic time/space trade of shared-memory truss
    codes), ``"mmap"`` to stream the O(|△G|) structure to disk and
    peel over read-only maps, or ``None`` to let the builder decide by
    size after the counting pass.  The wedge-closing peel below is the
    index-free stdlib fallback.
    """
    mode = resolve_index_storage(index_storage)
    tr = tracer if tracer is not None else NULL_TRACER
    if mode == "ram":
        t0 = _perf()
        tri = build_triangle_index(csr)
        _record_index_build(tri, _perf() - t0, stats, tr)
        return _peel_over_index(tri, m, stats, kern, tracer=tr)
    # "mmap" or "auto" (which may still choose ram — the tempdir is
    # then simply empty): the on-disk index lives only for the peel
    with tempfile.TemporaryDirectory(prefix="repro-triidx-") as tmp:
        t0 = _perf()
        tri = build_triangle_index(csr, storage=mode, dirpath=tmp)
        _record_index_build(tri, _perf() - t0, stats, tr)
        return _peel_over_index(tri, m, stats, kern, tracer=tr)


def _record_index_build(tri, seconds, stats, tracer) -> None:
    """Log one index build into the stats gauge and the trace."""
    if stats is not None:
        stats.record("index_build_s", round(seconds, 6))
    if tracer.enabled:
        tracer.complete_span(
            "index_build", seconds,
            storage=str(tri.storage), triangles=int(tri.num_triangles),
        )


def _peel_wedge_bisect(
    csr: CSRGraph, m: int, sup: array, eu: array, ev: array
) -> Tuple[array, int]:
    """Peel by closing wedges in the CSR runs (stdlib path).

    Removing ``(u, v)`` walks the smaller endpoint's adjacency run by
    index and binary-searches each surviving neighbor in the other run
    — no set membership.  Runs live in mutable copies of the CSR
    arrays; peeled edges are only flagged in the ``alive`` bitmap, and
    a region is compacted in place (a stable filter, so it stays
    sorted) once it exceeds twice its live degree, keeping every scan
    O(remaining degree).
    """
    bin_start, order, pos = _bin_sort(sup, m)
    indptr = csr.indptr.tolist()
    indices = csr.indices.tolist()
    eids = csr.eids.tolist()
    end = indptr[1:]
    deg = [indptr[i + 1] - indptr[i] for i in range(csr.num_vertices)]

    alive = bytearray(b"\x01") * m
    phi = array("q", [0]) * m
    bisect = bisect_left
    k = 2
    for i in range(m):
        eid = order[i]
        s = sup[eid]
        if s + 2 > k:
            k = s + 2
        phi[eid] = k
        alive[eid] = 0
        u, v = eu[eid], ev[eid]
        deg[u] -= 1
        deg[v] -= 1
        u_lo, u_end = indptr[u], end[u]
        v_lo, v_end = indptr[v], end[v]
        if u_end - u_lo > v_end - v_lo:
            u, v = v, u
            u_lo, u_end, v_lo, v_end = v_lo, v_end, u_lo, u_end
        # walk the smaller run; close each wedge in the other by bisect
        for ta in range(u_lo, u_end):
            f_uw = eids[ta]
            if not alive[f_uw]:
                continue
            w = indices[ta]
            tb = bisect(indices, w, v_lo, v_end)
            if tb == v_end or indices[tb] != w:
                continue
            f_vw = eids[tb]
            if not alive[f_vw]:
                continue
            # clamp: never push a support below the current floor s
            sf = sup[f_uw]
            if sf > s:
                first = bin_start[sf]
                other = order[first]
                if other != f_uw:
                    p = pos[f_uw]
                    order[first] = f_uw
                    order[p] = other
                    pos[f_uw] = first
                    pos[other] = p
                bin_start[sf] += 1
                sup[f_uw] = sf - 1
            sf = sup[f_vw]
            if sf > s:
                first = bin_start[sf]
                other = order[first]
                if other != f_vw:
                    p = pos[f_vw]
                    order[first] = f_vw
                    order[p] = other
                    pos[f_vw] = first
                    pos[other] = p
                bin_start[sf] += 1
                sup[f_vw] = sf - 1
        if u_end - u_lo > 2 * deg[u]:
            # stable in-place compaction of u's region
            t = u_lo
            for ta in range(u_lo, u_end):
                e = eids[ta]
                if alive[e]:
                    indices[t] = indices[ta]
                    eids[t] = e
                    t += 1
            end[u] = t
        if v_end - v_lo > 2 * deg[v]:
            t = v_lo
            for tb in range(v_lo, v_end):
                e = eids[tb]
                if alive[e]:
                    indices[t] = indices[tb]
                    eids[t] = e
                    t += 1
            end[v] = t
    return phi, k


def _as_csr(g) -> CSRGraph:
    """Accept either a mutable :class:`Graph` or a ready CSR snapshot.

    Passing a :class:`CSRGraph` (e.g. from the streaming file ingest)
    skips the dict-of-set round trip entirely.
    """
    return g if isinstance(g, CSRGraph) else CSRGraph.from_graph(g)


def result_from_phi(
    csr: CSRGraph, phi: array, k: int, stats: DecompositionStats
) -> TrussDecomposition:
    """Package an edge-id-indexed ``phi`` array as a decomposition."""
    eu, ev = csr.edge_endpoints()
    m = len(eu)
    stats.record("kmax", k if m else 2)
    # labels ascend, eu[e] < ev[e], phi >= 2: keys are canonical already
    labels = csr.labels
    return TrussDecomposition.from_canonical(
        {(labels[eu[e]], labels[ev[e]]): phi[e] for e in range(m)},
        stats=stats,
    )


def truss_decomposition_flat(
    g,
    index_storage: Optional[str] = None,
    kernel: Optional[str] = None,
    trace=None,
) -> TrussDecomposition:
    """Run Algorithm 2 over flat edge arrays.

    ``g`` may be a :class:`Graph` (snapshotted, not modified) or a
    :class:`CSRGraph` built by the streaming ingest.  ``index_storage``
    picks the triangle index's destination (``"ram"``/``"mmap"``;
    ``None``: auto by size) and ``kernel`` the wave-step backend
    (``"auto"``/``"python"``/``"numpy"``/``"numba"``; ``None``: auto)
    — the stdlib fallback peels without an index and ignores both.
    ``trace`` takes an enabled :class:`repro.obs.Tracer` to emit the
    run's spans and events into (``None``: the no-op tracer).
    """
    resolve_index_storage(index_storage)  # validate eagerly, any path
    kname = resolve_kernel(kernel)
    csr = _as_csr(g)
    m = csr.num_edges
    stats = DecompositionStats(method="flat")
    tr = trace if trace is not None else NULL_TRACER
    if tr.enabled:
        tr.event("run_start", engine="flat", m=int(m), kernel=kname,
                 index_storage=index_storage or "auto")
    if _np is not None and m:
        stats.record("kernel", kname)
        if kname == "python" and kernel in (None, "auto"):
            warn_degraded(tr, stats.metrics, "kernel_auto_python",
                          engine="flat")
        kern = get_kernel(kname)
        if tr.enabled:
            kern = CountingKernel(kern)
        t0 = _perf()
        phi, k = _peel_waves(csr, m, index_storage, stats, kern, tracer=tr)
        build_s = stats.metrics.value("index_build_s") or 0.0
        peel_s = max(_perf() - t0 - build_s, 0.0)
        stats.record("peel_s", round(peel_s, 6))
        if tr.enabled:
            tr.complete_span("peel", peel_s, engine="flat")
            kern.flush_into(stats.metrics)
    else:
        if m:
            warn_degraded(tr, stats.metrics, "stdlib_fallback",
                          engine="flat")
        t0 = _perf()
        sup = _initial_supports_python(csr, m)
        eu, ev = csr.edge_endpoints()
        phi, k = _peel_wedge_bisect(csr, m, sup, eu, ev)
        peel_s = _perf() - t0
        stats.record("peel_s", round(peel_s, 6))
        if tr.enabled:
            tr.complete_span("peel", peel_s, engine="flat")
    return result_from_phi(csr, phi, k if m else 2, stats)
