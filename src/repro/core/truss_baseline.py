"""Algorithm 1: the existing in-memory truss decomposition (Cohen [15]).

This is the paper's baseline, **TD-inmem**.  After initializing edge
supports, it repeatedly removes any edge with support below ``k-2``,
recomputing the triangle partners ``W = nb(u) ∩ nb(v)`` of each removed
edge by *merging the two sorted adjacency lists* — the representation
Section 2 fixes for all algorithms.  Deletion is implicit ("simply
marking that e has been deleted"), so the lists never shrink and every
recomputation pays the full ``O(deg(u) + deg(v))``; over the whole run
that is ``O(Σ_v deg(v)^2)`` — quadratic in hub degrees, which is exactly
what the paper blames for TD-inmem's collapse on power-law graphs
(Table 3's 73× gap on Wiki).

The improved Algorithm 2 differs precisely here: it walks only the
lower-degree endpoint's list and hash-probes the other side, never
paying for the hub.  Keep this file honest — "optimizing" the merge
below would quietly delete the paper's contribution.

Support initialization uses the fast triangle-counting path, which the
paper explicitly allows for Steps 2-3 ("the initialization can be made
faster using the in-memory triangle counting algorithm"); the measured
gap is then entirely the peeling loop's.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Set

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge
from repro.triangles.support import edge_supports


def truss_decomposition_baseline(g: Graph) -> TrussDecomposition:
    """Run Algorithm 1 and return the full decomposition.

    The input graph is not modified.
    """
    # the paper's storage: per-vertex sorted adjacency lists, which are
    # never compacted — removal only flips the edge's "alive" mark
    adj: Dict[int, List[int]] = {v: sorted(g.neighbors(v)) for v in g.vertices()}
    sup: Dict[Edge, int] = edge_supports(g)
    alive: Set[Edge] = set(sup)
    phi: Dict[Edge, int] = {}
    stats = DecompositionStats(method="baseline")

    def triangle_partners(u: int, v: int) -> List[int]:
        """Step 5: W = nb(u) ∩ nb(v) by full sorted-list merge."""
        lu, lv = adj[u], adj[v]
        stats.bump("intersection_work", len(lu) + len(lv))
        out: List[int] = []
        i = j = 0
        nu, nv = len(lu), len(lv)
        while i < nu and j < nv:
            a, b = lu[i], lv[j]
            if a < b:
                i += 1
            elif b < a:
                j += 1
            else:
                # both endpoints still list w; the triangle is live only
                # if neither wing edge has been (implicitly) deleted
                w = a
                if (
                    norm_edge(u, w) in alive
                    and norm_edge(v, w) in alive
                ):
                    out.append(w)
                i += 1
                j += 1
        return out

    k = 3
    remaining = len(alive)
    while remaining > 0:
        # Step 4: queue every edge currently under the k-threshold
        queue: Deque[Edge] = deque(
            e for e in alive if sup[e] < k - 2
        )
        while queue:
            e = queue.popleft()
            if e not in alive:
                continue  # already removed via an earlier cascade
            u, v = e
            for w in triangle_partners(u, v):
                for f in (norm_edge(u, w), norm_edge(v, w)):
                    sup[f] -= 1
                    if sup[f] < k - 2:
                        queue.append(f)
            # e leaves while the k-truss is being computed, so it is in
            # the (k-1)-truss but not the k-truss: phi(e) = k - 1
            alive.discard(e)
            phi[e] = k - 1
            remaining -= 1
        # Step 9: what remains is the k-truss; move to the next level
        if remaining > 0:
            k += 1
    stats.record("kmax", max(phi.values(), default=2))
    return TrussDecomposition(phi, stats=stats)
