"""``method="dist"``: the distributed peel's scatter/run/gather driver.

The driver's whole job is the paper's "massive networks" deployment
shape: build the shard plan, write the triangle index once for the
ranks to mmap, launch one :class:`~repro.dist.rank.Rank` per shard
over the chosen transport, and stitch the returned ``phi`` slices
back together.  The index is *streamed* into its on-disk layout by the
two-pass counting builder (:mod:`repro.triangles.index_builder`,
``index_storage="mmap"``), so the driver's peak memory is O(m + chunk)
— it never materializes a triangle-length array — and it holds *no*
peel state while the ranks run: the level/wave decisions, the support
arrays and the hash-partitioned triangle dedupe all live rank-side
(see :mod:`repro.dist` for the wire protocol).

Two launch modes, selected by ``transport``:

* ``"loopback"`` — every rank is a thread of this process plugged into
  a :class:`~repro.dist.transport.LoopbackFabric`; deterministic and
  cheap, the mode tests and single-machine runs use;
* ``"tcp"`` — every rank is a separate OS process meshed over
  length-prefixed localhost sockets; ports are gathered over a control
  pipe, results and failures come back the same way, and a rank death
  (crash, kill, lost connection) cascades through the mesh and
  surfaces here as a :class:`~repro.dist.transport.DistError` with
  every process reaped and the scratch directory removed.

Survivability — the driver is also a *supervisor*.  When checkpointing
is on, every rank snapshots its shard-local state at level barriers
(:mod:`repro.dist.checkpoint`); on a rank death the whole mesh is
respawned and rewound to the newest barrier every rank can agree on,
bounded by a retry budget.  The ``on_failure`` knob picks the policy —
``"raise"`` (fail fast, the default), ``"retry"`` (respawn + rewind up
to ``max_retries`` times, then raise), or ``"fallback_flat"`` (like
``"retry"``, but a run that exhausts its budget degrades to the
in-process flat engine instead of raising).  Failures themselves are
scriptable through :class:`~repro.dist.faults.FaultPlan`, so every
recovery path is a reproducible fixture rather than a race.

Both modes produce the identical trussness map as ``method="flat"``
at every rank count — with or without injected faults along the way —
the acceptance bar the cross-method parity suite, the fault-schedule
sweep and ``benchmarks/bench_ablation_dist_transport.py`` pin down.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.flat import (
    _as_csr,
    _initial_supports_python,
    _peel_wedge_bisect,
    resolve_index_storage,
    result_from_phi,
)
from repro.dist.checkpoint import latest_common_epoch
from repro.dist.faults import FaultInjectingTransport, FaultPlan
from repro.dist.rank import Rank, TriangleIndex
from repro.triangles.index_builder import build_triangle_index
from repro.dist.transport import (
    DEFAULT_TIMEOUT,
    DistError,
    LoopbackFabric,
    TcpTransport,
    TransportError,
    open_listener,
)
from repro.errors import DecompositionError
from repro.kernels import resolve_kernel
from repro.obs import NULL_TRACER, warn_degraded
from repro.partition.edge_shards import plan_edge_shards

try:  # optional accelerator; the stdlib fallback degrades to core.flat
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:
    import multiprocessing as _mp
except ImportError:  # pragma: no cover - CPython always ships it
    _mp = None

#: the message fabrics of the distributed peel
TRANSPORTS = ("loopback", "tcp")

#: the supervisor's failure policies
ON_FAILURE = ("raise", "retry", "fallback_flat")

#: respawn/rewind attempts before a recovering policy gives up
DEFAULT_MAX_RETRIES = 2

#: waves between checkpoint barriers when a recovering policy is on
#: (``on_failure="raise"`` defaults to 0 — no snapshots, no overhead)
DEFAULT_CHECKPOINT_INTERVAL = 8

#: below this edge count, ``ranks=None`` resolves to a single rank —
#: the per-wave exchange rounds dominate any fan-out win on small graphs
_MIN_DIST_EDGES = 50_000


def _resolve_transport(transport: Optional[str]) -> str:
    """Validate the transport (``None`` means the loopback default)."""
    if transport is None:
        return "loopback"
    if transport not in TRANSPORTS:
        raise DecompositionError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    return transport


def _resolve_ranks(ranks: Optional[int], m: int) -> int:
    """An explicit ``ranks`` is honored exactly; ``None`` is heuristic."""
    if ranks is not None:
        if ranks < 1:
            raise DecompositionError(
                f"need at least 1 rank, got {ranks}"
            )
        return int(ranks)
    if m < _MIN_DIST_EDGES:
        return 1
    return os.cpu_count() or 1


def _resolve_on_failure(on_failure: Optional[str]) -> str:
    if on_failure is None:
        return "raise"
    if on_failure not in ON_FAILURE:
        raise DecompositionError(
            f"unknown on_failure {on_failure!r}; expected one of "
            f"{ON_FAILURE}"
        )
    return on_failure


def _resolve_timeout(timeout: Optional[float]) -> float:
    if timeout is None:
        return DEFAULT_TIMEOUT
    timeout = float(timeout)
    if timeout <= 0:
        raise DecompositionError(
            f"timeout must be positive, got {timeout}"
        )
    return timeout


def _resolve_checkpoint_interval(
    interval: Optional[int], on_failure: str
) -> int:
    if interval is None:
        # fail-fast runs never rewind, so they skip the snapshot cost
        return DEFAULT_CHECKPOINT_INTERVAL if on_failure != "raise" else 0
    interval = int(interval)
    if interval < 0:
        raise DecompositionError(
            f"checkpoint_interval must be >= 0, got {interval}"
        )
    return interval


# ---------------------------------------------------------------------------
# loopback launcher: ranks as fabric-connected threads
# ---------------------------------------------------------------------------
def _run_loopback(
    nranks: int,
    index_dir: str,
    bounds: List[int],
    kernel: Optional[str] = None,
    timeout: float = DEFAULT_TIMEOUT,
    ckpt_dir: Optional[str] = None,
    ckpt_interval: int = 0,
    resume_epoch: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    trace: bool = False,
):
    fabric = LoopbackFabric(nranks)
    results: List = [None] * nranks
    failures: List = [None] * nranks

    def rank_body(r: int) -> None:
        tp = fabric.endpoint(r, timeout=timeout)
        if faults:
            tp = FaultInjectingTransport(tp, faults.for_rank(r))
        try:
            tri = TriangleIndex.open(index_dir)
            results[r] = Rank(
                r, nranks, tp, bounds, tri, kernel=kernel,
                checkpoint_dir=ckpt_dir,
                checkpoint_interval=ckpt_interval,
                resume_epoch=resume_epoch,
                trace=trace,
            ).run()
        except BaseException as exc:
            failures[r] = exc
            tp.abort()  # unblock peers waiting on this rank
        finally:
            tp.close()

    threads = [
        threading.Thread(target=rank_body, args=(r,), daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    try:
        for t in threads:
            t.join()
    except BaseException:
        # KeyboardInterrupt (or any driver-side failure) mid-join:
        # poison every channel so blocked ranks unwind now instead of
        # running out their timeout against a driver that already left
        fabric.poison_all()
        for t in threads:
            t.join(timeout=5)
        raise
    _raise_primary_failure(failures)
    return _assemble(results, bounds)


def _raise_primary_failure(failures: List) -> None:
    """Surface the root-cause rank error, not a secondary cascade one.

    A failing rank poisons its peers, whose exchanges then raise
    :class:`TransportError`; the interesting exception is the
    non-transport one when any rank has it.
    """
    primary = None
    for r, exc in enumerate(failures):
        if exc is None:
            continue
        if primary is None or (
            isinstance(primary[1], TransportError)
            and not isinstance(exc, TransportError)
        ):
            primary = (r, exc)
    if primary is not None:
        r, exc = primary
        raise DistError(f"dist rank {r} failed: {exc}") from exc


def _assemble(results: List, bounds: List[int]):
    """Stitch the per-rank ``phi`` slices into the global array."""
    phi = _np.zeros(bounds[-1], dtype=_np.int64)
    for r, (phi_loc, _k, _st) in enumerate(results):
        phi[bounds[r]:bounds[r + 1]] = phi_loc
    # every rank steps the same schedule, so any rank's k is THE k
    k = results[0][1]
    return phi, k, [st for (_p, _k, st) in results]


# ---------------------------------------------------------------------------
# tcp launcher: ranks as socket-meshed processes
# ---------------------------------------------------------------------------
def _tcp_rank_main(
    rank: int,
    nranks: int,
    conn,
    index_dir: str,
    bounds: List[int],
    timeout: float,
    kernel: Optional[str] = None,
    ckpt_dir: Optional[str] = None,
    ckpt_interval: int = 0,
    resume_epoch: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    trace: bool = False,
) -> None:
    """Rank-process entry: handshake, peel, report — or die loudly.

    Any failure is reported over the control pipe (best effort) and
    turned into a nonzero exit; the process never lingers blocking the
    mesh, and a hard kill is survivable driver-side because peers fail
    on the closed sockets and the driver watches exit codes.  Scripted
    ``crash`` faults exit abruptly (``os._exit``) — a vanished peer,
    not a clean goodbye — so recovery is proven against the real
    failure shape.
    """
    tp = None
    try:
        listener, port = open_listener()
        conn.send(("port", rank, port))
        ports = conn.recv()
        tp = TcpTransport.connect_mesh(
            rank, nranks, ports, listener, timeout=timeout
        )
        if faults:
            tp = FaultInjectingTransport(
                tp,
                faults.for_rank(rank),
                crash=lambda _fault: os._exit(42),
            )
        tri = TriangleIndex.open(index_dir)
        phi, k, st = Rank(
            rank, nranks, tp, bounds, tri, kernel=kernel,
            checkpoint_dir=ckpt_dir,
            checkpoint_interval=ckpt_interval,
            resume_epoch=resume_epoch,
            trace=trace,
        ).run()
        conn.send(("ok", rank, phi.tobytes(), k, st))
    except BaseException as exc:
        try:
            conn.send(("err", rank, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass  # driver sees the exit code instead
        os._exit(1)
    finally:
        if tp is not None:
            tp.close()
        conn.close()


def _collect(
    procs: List,
    pipes: List,
    expect: str,
    timeout: float,
) -> List:
    """Gather one ``expect``-tagged message per rank, watching liveness.

    Raises :class:`DistError` the moment any rank reports an error,
    dies without reporting, or the deadline passes — the caller's
    ``finally`` then reaps the survivors.
    """
    nranks = len(procs)
    out: List = [None] * nranks
    pending = set(range(nranks))
    deadline = time.monotonic() + timeout
    while pending:
        for r in sorted(pending):
            if pipes[r].poll(0.02):
                try:
                    msg = pipes[r].recv()
                except EOFError:
                    raise DistError(
                        f"dist rank {r} died without reporting "
                        f"(exit code {procs[r].exitcode})"
                    ) from None
                if msg[0] == "err":
                    raise DistError(f"dist rank {r} failed: {msg[2]}")
                if msg[0] != expect:
                    raise DistError(
                        f"dist rank {r} sent {msg[0]!r}, expected "
                        f"{expect!r}"
                    )
                out[r] = msg
                pending.discard(r)
            elif procs[r].exitcode is not None:
                raise DistError(
                    f"dist rank {r} exited with code "
                    f"{procs[r].exitcode} before reporting {expect!r}"
                )
        if pending and time.monotonic() > deadline:
            raise DistError(
                f"dist ranks {sorted(pending)} timed out after "
                f"{timeout:.0f}s waiting for {expect!r}"
            )
    return out


def _run_tcp(
    nranks: int,
    index_dir: str,
    bounds: List[int],
    kernel: Optional[str] = None,
    timeout: float = DEFAULT_TIMEOUT,
    ckpt_dir: Optional[str] = None,
    ckpt_interval: int = 0,
    resume_epoch: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    trace: bool = False,
):
    ctx = _mp.get_context()
    procs: List = []
    pipes: List = []
    try:
        for r in range(nranks):
            parent, child = ctx.Pipe()
            p = ctx.Process(
                target=_tcp_rank_main,
                args=(r, nranks, child, index_dir, bounds, timeout),
                kwargs=dict(
                    kernel=kernel,
                    ckpt_dir=ckpt_dir,
                    ckpt_interval=ckpt_interval,
                    resume_epoch=resume_epoch,
                    faults=faults,
                    trace=trace,
                ),
                daemon=True,
            )
            p.start()
            child.close()
            procs.append(p)
            pipes.append(parent)
        port_msgs = _collect(procs, pipes, "port", timeout)
        ports = [None] * nranks
        for _tag, r, port in port_msgs:
            ports[r] = port
        for r, pipe in enumerate(pipes):
            try:
                pipe.send(ports)
            except OSError as exc:
                # the rank died between reporting its port and reading
                # the map; keep the driver's error contract uniform
                raise DistError(
                    f"dist rank {r} died before receiving the port map "
                    f"(exit code {procs[r].exitcode}): {exc}"
                ) from exc
        done = _collect(procs, pipes, "ok", timeout)
        results: List = [None] * nranks
        for _tag, r, phi_bytes, k, st in done:
            results[r] = (
                _np.frombuffer(phi_bytes, dtype=_np.int64), k, st
            )
        return _assemble(results, bounds)
    finally:
        # reap every rank process, alive or not — no zombies, no
        # orphans, whatever path got us here (including a driver-side
        # KeyboardInterrupt mid-gather)
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=10)
        for p in procs:
            if p.is_alive():  # pragma: no cover - terminate sufficed
                p.kill()
                p.join()
        for pipe in pipes:
            pipe.close()


# ---------------------------------------------------------------------------
# the supervisor: launch attempts, rewind to checkpoints, degrade
# ---------------------------------------------------------------------------
def _supervise(
    mode: str,
    nranks: int,
    index_dir: str,
    ckpt_dir: str,
    bounds: List[int],
    kernel: Optional[str],
    timeout: float,
    on_failure: str,
    max_retries: int,
    ckpt_interval: int,
    fault_plan: Optional[FaultPlan],
    stats: DecompositionStats,
    tracer=None,
):
    """Run launch attempts until one completes or the policy gives up.

    Returns ``(phi, k, rank_stats)`` on success, or ``None`` when the
    policy is ``"fallback_flat"`` and the retry budget is exhausted —
    the caller then degrades to the flat engine.  Every failed attempt
    rewinds the next one to :func:`latest_common_epoch`, so completed
    waves are never recomputed once a barrier has them.
    """
    run = _run_tcp if mode == "tcp" else _run_loopback
    tr = tracer if tracer is not None else NULL_TRACER
    budget = max_retries if on_failure != "raise" else 0
    attempt = 0
    resume_epoch: Optional[int] = None
    while True:
        faults = (
            fault_plan.for_attempt(attempt) if fault_plan else None
        )
        try:
            out = run(
                nranks, index_dir, bounds, kernel=kernel,
                timeout=timeout, ckpt_dir=ckpt_dir,
                ckpt_interval=ckpt_interval,
                resume_epoch=resume_epoch, faults=faults,
                trace=tr.enabled,
            )
            stats.record("retries", attempt)
            stats.record(
                "resumed_from_epoch",
                resume_epoch if resume_epoch is not None else -1,
            )
            return out
        except DistError as exc:
            if attempt >= budget:
                if on_failure == "fallback_flat":
                    stats.record("retries", attempt)
                    warn_degraded(
                        tr, stats.metrics, "dist_fallback_flat",
                        retries=attempt, error=str(exc)[:200],
                    )
                    return None
                raise
            attempt += 1
            # rewind target: the newest barrier with a complete, valid
            # snapshot from every rank; None restarts from scratch
            resume_epoch = latest_common_epoch(ckpt_dir, nranks)
            warn_degraded(
                tr, stats.metrics, "dist_retry", attempt=attempt,
                resume_epoch=(
                    resume_epoch if resume_epoch is not None else -1
                ),
                error=str(exc)[:200],
            )


# ---------------------------------------------------------------------------
# the public entry point
# ---------------------------------------------------------------------------
def truss_decomposition_dist(
    g,
    ranks: Optional[int] = None,
    transport: Optional[str] = None,
    index_storage: Optional[str] = None,
    kernel: Optional[str] = None,
    *,
    timeout: Optional[float] = None,
    on_failure: Optional[str] = None,
    max_retries: Optional[int] = None,
    checkpoint_interval: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    trace=None,
) -> TrussDecomposition:
    """Truss-decompose ``g`` with the rank-distributed wave peel.

    Args:
        g: a :class:`~repro.graph.adjacency.Graph` (snapshotted, not
            modified) or a :class:`~repro.graph.csr.CSRGraph` from the
            streaming ingest.
        ranks: shard/rank count.  ``None`` picks ``os.cpu_count()``
            for graphs with at least ``_MIN_DIST_EDGES`` edges and a
            single rank below that; an explicit value is honored
            exactly.
        transport: one of :data:`TRANSPORTS` — ``"loopback"`` (the
            default: in-process queue fabric) or ``"tcp"`` (rank
            processes over framed localhost sockets).
        index_storage: how the driver builds the triangle index the
            ranks mmap.  ``"mmap"`` (the default, also what ``None``
            resolves to) streams it straight into the on-disk layout —
            the driver never holds a triangle-length array; ``"ram"``
            builds the bundle in RAM first and writes it whole (only
            sensible on small graphs).
        kernel: the wave-step backend (``"auto"``/``"python"``/
            ``"numpy"``/``"numba"``; ``None``: auto), resolved by the
            driver and pinned on every rank.
        timeout: deadline in seconds for any single blocking step on
            either transport (socket/queue receives, mesh dial, the
            driver's port/result gathering).  ``None`` uses
            :data:`~repro.dist.transport.DEFAULT_TIMEOUT`.
        on_failure: the supervisor policy when a rank dies or the mesh
            wedges — ``"raise"`` (default: fail fast), ``"retry"``
            (respawn all ranks, rewind to the newest common checkpoint
            barrier, up to ``max_retries`` times, then raise) or
            ``"fallback_flat"`` (retry the same way, but degrade to
            the in-process flat engine instead of raising when the
            budget runs out — the answer still arrives).
        max_retries: respawn attempts for the recovering policies
            (``None``: :data:`DEFAULT_MAX_RETRIES`).
        checkpoint_interval: waves between checkpoint barriers; ``0``
            disables snapshots.  ``None`` resolves to
            :data:`DEFAULT_CHECKPOINT_INTERVAL` under a recovering
            policy and ``0`` under ``"raise"``.
        fault_plan: a :class:`~repro.dist.faults.FaultPlan` of scripted
            crash/drop/delay/duplicate faults — the reproducible chaos
            harness the recovery tests and benchmarks drive; ``None``
            injects nothing.
        trace: an enabled :class:`repro.obs.Tracer` to receive the
            run's spans and events.  Ranks record their own streams in
            memory and ship them back with the results; the driver
            absorbs them here in rank order, so the file holds one
            merged, driver-ordered trace.

    Returns the identical trussness map as ``method="flat"`` — neither
    the rank count, the transport, the index storage nor any survived
    fault schedule changes the wave schedule.
    """
    mode = _resolve_transport(transport)
    # ranks always read the index from disk; "auto" therefore means
    # "stream it there without a RAM detour" for this method
    storage = resolve_index_storage(index_storage)
    if storage == "auto":
        storage = "mmap"
    kname = resolve_kernel(kernel)
    policy = _resolve_on_failure(on_failure)
    deadline = _resolve_timeout(timeout)
    interval = _resolve_checkpoint_interval(checkpoint_interval, policy)
    if max_retries is None:
        retries = DEFAULT_MAX_RETRIES
    else:
        retries = int(max_retries)
        if retries < 0:
            raise DecompositionError(
                f"max_retries must be >= 0, got {max_retries}"
            )
    csr = _as_csr(g)
    m = csr.num_edges
    stats = DecompositionStats(method="dist")
    stats.record("transport", mode)
    tr = trace if trace is not None else NULL_TRACER
    if _np is None or _mp is None:
        # no vectorized substrate: degrade to the stdlib flat engine
        if tr.enabled:
            tr.event("run_start", engine="dist", m=int(m),
                     transport=mode, ranks=1)
        if m:
            warn_degraded(tr, stats.metrics, "stdlib_fallback",
                          engine="dist")
        stats.record("stdlib_fallback", 1)
        stats.record("ranks", 1)
        t0 = time.perf_counter()
        sup = _initial_supports_python(csr, m)
        eu, ev = csr.edge_endpoints()
        phi, k = _peel_wedge_bisect(csr, m, sup, eu, ev)
        peel_s = time.perf_counter() - t0
        stats.record("peel_s", round(peel_s, 6))
        if tr.enabled:
            tr.complete_span("peel", peel_s, engine="dist")
        return result_from_phi(csr, phi, k if m else 2, stats)
    nranks = _resolve_ranks(ranks, m)
    stats.record("ranks", nranks)
    stats.record("index_storage", storage)
    stats.record("kernel", kname)
    stats.record("on_failure", policy)
    stats.record("checkpoint_interval", interval)
    if tr.enabled:
        tr.event("run_start", engine="dist", m=int(m), kernel=kname,
                 transport=mode, ranks=int(nranks), on_failure=policy,
                 checkpoint_interval=int(interval))
    if not m:
        return result_from_phi(csr, array("q"), 2, stats)
    # scratch layout: <tmp>/index (the mmapped triangle index) and
    # <tmp>/ckpt (the wave checkpoints).  mkdtemp + finally instead of
    # the TemporaryDirectory context manager so removal is guaranteed
    # best-effort on *any* unwind — KeyboardInterrupt included, even
    # if a just-reaped rank leaves a half-written snapshot behind.
    tmp = tempfile.mkdtemp(prefix="repro-dist-")
    try:
        index_dir = os.path.join(tmp, "index")
        ckpt_dir = os.path.join(tmp, "ckpt")
        os.mkdir(index_dir)
        os.mkdir(ckpt_dir)
        t0 = time.perf_counter()
        if storage == "ram":
            tri = build_triangle_index(csr)
            TriangleIndex.write(
                Path(index_dir), tri.e1, tri.e2, tri.e3, tri.tptr,
                tri.tinc,
            )
        else:
            tri = build_triangle_index(
                csr, storage="mmap", dirpath=index_dir
            )
        build_s = time.perf_counter() - t0
        stats.record("index_build_s", round(build_s, 6))
        n_tri = tri.num_triangles
        if tr.enabled:
            tr.complete_span("index_build", build_s, storage=storage,
                             triangles=int(n_tri))
        # shard weights need only the O(m) incidence runs, so the
        # driver's peel-time state is O(m) however large |△G| gets
        plan = plan_edge_shards(m, nranks, weights=tri.initial_supports())
        bounds = [int(b) for b in plan.bounds]
        # the ranks mmap the files; drop the driver's handles so no
        # single process keeps holding the whole index
        del tri
        t_peel = time.perf_counter()
        out = _supervise(
            mode, nranks, index_dir, ckpt_dir, bounds, kname,
            deadline, policy, retries, interval, fault_plan, stats,
            tracer=tr,
        )
        if out is None:
            # fallback_flat: the budget ran out; answer locally.  The
            # flat engine shares the kernel layer, so the map is the
            # same bits the mesh would have produced.
            from repro.core.flat import truss_decomposition_flat

            td = truss_decomposition_flat(csr, kernel=kname, trace=tr)
            flat_extra = td.stats.extra
            for key, value in stats.extra.items():
                # keep the flat run's own values; labeled series (the
                # "{...}" keys) merge through the registry below
                if key not in flat_extra and "{" not in key:
                    td.stats.record(key, value)
            for name, labels, value in stats.metrics.counter_items():
                td.stats.metrics.inc(name, value, **labels)
            td.stats.record("fallback", "flat")
            td.stats.record("retries_exhausted", retries)
            return td
        phi, k, rank_stats = out
        peel_s = time.perf_counter() - t_peel
        stats.record("peel_s", round(peel_s, 6))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    if tr.enabled:
        tr.complete_span("peel", peel_s, engine="dist",
                         ranks=int(nranks), transport=mode)
        # the homeward leg: absorb each rank's recorded stream, in
        # rank order, and fold its kernel-op counts into the registry
        for r, st in enumerate(rank_stats):
            tr.absorb(st.pop("trace", []), rank=r)
            for op, n in st.pop("kernel_ops", {}).items():
                stats.metrics.inc("repro_kernel_ops_total", n, op=op)
    # the schedule is identical on every rank; rank 0 speaks for it
    head = rank_stats[0]
    for key in ("waves", "levels", "max_wave", "exchange_rounds",
                "checkpoints"):
        stats.record(key, head[key])
    msg_bytes = sum(st["msg_bytes"] for st in rank_stats)
    stats.record("msg_bytes", msg_bytes)
    stats.record("msg_frames", sum(st["msg_frames"] for st in rank_stats))
    stats.record("bytes_per_wave", msg_bytes / max(head["waves"], 1))
    stats.record(
        "dedupe_peak_bytes",
        max(st["dedupe_bytes"] for st in rank_stats),
    )
    stats.record("triangles", n_tri)
    return result_from_phi(csr, array("q", phi.tobytes()), k, stats)
