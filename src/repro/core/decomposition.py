"""The result model of a truss decomposition.

A decomposition is fully described by the trussness map
``phi: E -> {2, 3, ..., kmax}`` (Definition 2/3).  Everything else —
k-classes, k-trusses, the maximum truss — is derived::

    Phi_k  = { e : phi(e) = k }            (the k-class)
    E_Tk   = union of Phi_j for j >= k     (the k-truss's edges)

:class:`TrussDecomposition` wraps the map with cached derivations plus a
``verify`` method that re-checks the defining invariants against the
source graph — used pervasively by the test suite and available to
users who want belt-and-braces validation on their own data.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import DecompositionError
from repro.exio.iostats import IOStats
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge
from repro.graph.views import union_edge_subgraph
from repro.obs.metrics import MetricsRegistry


class DecompositionStats:
    """Bookkeeping attached to a decomposition run.

    Backed by a :class:`repro.obs.metrics.MetricsRegistry`:
    :meth:`record` sets a gauge (or an info series for string values),
    :meth:`bump` increments a counter, and the legacy ``extra`` dict
    the benchmark harness folds into its tables is a *derived snapshot*
    of the registry — one store, two views, no parallel bookkeeping.
    The registry itself (``metrics``) carries everything the plain dict
    cannot: labeled series, histograms, and the Prometheus/JSON
    expositions behind the CLI's ``--metrics FILE``.
    """

    __slots__ = ("method", "io", "metrics")

    def __init__(
        self,
        method: str,
        io: Optional[IOStats] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.method = method
        self.io = io
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def record(self, key: str, value: float) -> None:
        """Set a named counter (a registry gauge / info series)."""
        self.metrics.set(key, value)

    def bump(self, key: str, amount: float = 1) -> None:
        """Increment a named counter (a registry counter series)."""
        self.metrics.inc(key, amount)

    @property
    def extra(self) -> Dict[str, float]:
        """The legacy flat stats dict, derived from the registry."""
        return self.metrics.as_dict()

    def __repr__(self) -> str:
        return (
            f"DecompositionStats(method={self.method!r}, "
            f"extra={self.extra!r})"
        )


class TrussDecomposition:
    """Immutable truss decomposition result.

    >>> from repro.graph import complete_graph
    >>> from repro.core import truss_decomposition
    >>> td = truss_decomposition(complete_graph(4))
    >>> td.kmax
    4
    >>> sorted(td.k_class(4)) == sorted(complete_graph(4).edges())
    True
    """

    def __init__(
        self,
        trussness: Mapping[Edge, int],
        stats: Optional[DecompositionStats] = None,
    ) -> None:
        self._phi: Dict[Edge, int] = {}
        for (u, v), k in trussness.items():
            if k < 2:
                raise DecompositionError(
                    f"trussness of edge ({u}, {v}) is {k}; minimum is 2"
                )
            self._phi[norm_edge(u, v)] = k
        self.stats = stats
        self._classes: Optional[Dict[int, List[Edge]]] = None

    @classmethod
    def from_canonical(
        cls,
        trussness: Dict[Edge, int],
        stats: Optional[DecompositionStats] = None,
    ) -> "TrussDecomposition":
        """Wrap an already-canonical trussness dict without re-checking.

        Fast path for internal engines that construct their result with
        ``u < v`` keys and ``k >= 2`` values by construction (the flat
        engine's label arrays guarantee both); skips the per-edge
        normalization pass of ``__init__``.  The dict is adopted, not
        copied — callers must hand over ownership.
        """
        td = cls.__new__(cls)
        td._phi = trussness
        td.stats = stats
        td._classes = None
        return td

    # ------------------------------------------------------------------
    @property
    def trussness(self) -> Mapping[Edge, int]:
        """The phi(e) map over canonical edges."""
        return self._phi

    def phi(self, u: int, v: int) -> int:
        """Trussness of one edge; raises KeyError if absent."""
        return self._phi[norm_edge(u, v)]

    @property
    def num_edges(self) -> int:
        """Number of classified edges."""
        return len(self._phi)

    @property
    def kmax(self) -> int:
        """The largest k with a non-empty k-truss (2 for edgeless input)."""
        return max(self._phi.values(), default=2)

    # ------------------------------------------------------------------
    def k_classes(self) -> Dict[int, List[Edge]]:
        """All non-empty k-classes, edges sorted for determinism."""
        if self._classes is None:
            classes: Dict[int, List[Edge]] = {}
            for e, k in self._phi.items():
                classes.setdefault(k, []).append(e)
            for edges in classes.values():
                edges.sort()
            self._classes = classes
        return self._classes

    def k_class(self, k: int) -> List[Edge]:
        """``Phi_k`` (possibly empty)."""
        return list(self.k_classes().get(k, []))

    def k_truss_edges(self, k: int) -> List[Edge]:
        """Edges of ``T_k`` = union of classes >= k, sorted."""
        out: List[Edge] = []
        for j, edges in self.k_classes().items():
            if j >= k:
                out.extend(edges)
        out.sort()
        return out

    def k_truss(self, k: int) -> Graph:
        """``T_k`` as a graph (no isolated vertices)."""
        return union_edge_subgraph([self.k_truss_edges(k)])

    def max_truss(self) -> Tuple[int, Graph]:
        """``(kmax, the kmax-truss)`` — the paper's ``T`` in Table 6."""
        k = self.kmax
        return k, self.k_truss(k)

    def top_classes(self, t: int) -> Dict[int, List[Edge]]:
        """The top-t classes: ``Phi_k`` for ``kmax >= k > kmax - t``.

        Empty classes inside the range are included as empty lists, so
        callers can distinguish "computed and empty" from "not
        computed".
        """
        if t < 1:
            raise DecompositionError(f"top_classes needs t >= 1, got {t}")
        kmax = self.kmax
        return {
            k: self.k_class(k) for k in range(kmax, max(kmax - t, 1), -1)
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrussDecomposition):
            return NotImplemented
        return self._phi == other._phi

    def __repr__(self) -> str:
        return (
            f"TrussDecomposition(m={self.num_edges}, kmax={self.kmax}, "
            f"classes={sorted(self.k_classes())})"
        )

    # ------------------------------------------------------------------
    def verify(self, g: Graph) -> None:
        """Re-check the k-truss definition against the source graph.

        Raises :class:`DecompositionError` on the first violated
        invariant:

        1. the classified edge set is exactly ``E_G``;
        2. within each ``T_k``, every edge has support >= k-2;
        3. each ``T_k`` is *maximal*: every edge of trussness k-1 would
           have support < k-2 if added to ``T_k`` (checked via its
           support at its own level).
        """
        ours = set(self._phi)
        theirs = set(g.edges())
        if ours != theirs:
            raise DecompositionError(
                f"edge sets differ: {len(ours - theirs)} extra, "
                f"{len(theirs - ours)} missing"
            )
        for k in sorted(self.k_classes()):
            tk = self.k_truss(k)
            for u, v in tk.edges():
                s = len(tk.common_neighbors(u, v))
                if s < k - 2:
                    raise DecompositionError(
                        f"edge ({u}, {v}) has support {s} < {k - 2} "
                        f"inside T_{k}"
                    )
        # maximality: peeling T_k at threshold (k+1)-2 by definition must
        # leave exactly the claimed T_{k+1}; anything extra surviving means
        # some class-k edge actually belongs to a higher class.
        for k in sorted(self.k_classes()):
            peeled = self.k_truss(k)
            changed = True
            while changed:
                changed = False
                for u, v in list(peeled.edges()):
                    if len(peeled.common_neighbors(u, v)) < k - 1:
                        peeled.remove_edge(u, v)
                        changed = True
            if set(peeled.edges()) != set(self.k_truss_edges(k + 1)):
                raise DecompositionError(
                    f"T_{k} is not maximal: peeling it at level {k + 1} "
                    f"does not reproduce the claimed T_{k + 1}"
                )
