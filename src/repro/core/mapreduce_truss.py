"""Cohen's MapReduce truss algorithm (**TD-MR**), the paper's baseline.

Follows "Graph Twiddling in a MapReduce World" [16].  One *iteration*
of the k-truss computation is a fixed pipeline of jobs:

1. **degrees**   — bin edges by endpoint; emit each edge tagged with one
   endpoint's degree;
2. **annotate**  — regroup by edge; attach both degrees;
3. **triads**    — assign each edge to its lower-(degree, id) endpoint;
   at each vertex, pair up its assigned edges into open triads keyed by
   the closing pair; edges also flow through keyed by themselves;
4. **triangles → support** — where a triad key meets a real edge a
   triangle exists; emit its three edges and count per edge (edges also
   flow through with count 0 so triangle-free edges are seen);
5. **filter**    — keep edges with support >= k-2.

If the filter dropped anything, the whole pipeline reruns on the kept
edges — dropping edges invalidates triangles, exactly the iteration the
paper blames for TD-MR's slowness ("the iterative counting of triangles
... requires many iterations of a main procedure").  Truss
decomposition then wraps *another* loop over k around this.

The per-edge assignment to the lower endpoint in a global (degree, id)
order guarantees each triangle is generated exactly once (the order is
total, so exactly one triangle vertex owns two of its edges) and bounds
triad blow-up at hubs — Cohen's "low-degree vertex does the work" trick.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge
from repro.mapreduce.engine import LocalMRRuntime, MapReduceJob

_EDGE_MARK = "E"
_TRIAD_MARK = "T"


def _degrees_job() -> MapReduceJob:
    def mapper(_key, edge):
        u, v = edge
        yield (u, edge)
        yield (v, edge)

    def reducer(vertex, edges):
        d = len(edges)
        for e in edges:
            yield (e, (vertex, d))

    return MapReduceJob("degrees", mapper, reducer)


def _annotate_job() -> MapReduceJob:
    def mapper(edge, vertex_degree):
        yield (edge, vertex_degree)

    def reducer(edge, vertex_degrees):
        info = dict(vertex_degrees)
        u, v = edge
        yield (edge, (info[u], info[v]))

    return MapReduceJob("annotate", mapper, reducer)


def _triads_job() -> MapReduceJob:
    def mapper(edge, degrees):
        u, v = edge
        du, dv = degrees
        # assign the edge to its lower endpoint in (degree, id) order
        apex, other = (u, v) if (du, u) < (dv, v) else (v, u)
        yield (apex, other)
        yield (edge, _EDGE_MARK)  # edges flow through for the join

    def reducer(key, values):
        if isinstance(key, tuple):
            # an edge record (keyed by itself): forward it to the join
            yield (key, (_EDGE_MARK, None))
            return
        apex = key
        others = sorted(values)
        for i, w1 in enumerate(others):
            for w2 in others[i + 1 :]:
                yield (norm_edge(w1, w2), (_TRIAD_MARK, apex))

    return MapReduceJob("triads", mapper, reducer)


def _support_job() -> MapReduceJob:
    def mapper(edge, tagged):
        tag, apex = tagged
        if tag == _EDGE_MARK:
            yield (edge, (_EDGE_MARK, None))
        else:
            yield (edge, (_TRIAD_MARK, apex))

    def reducer(edge, values):
        is_edge = any(tag == _EDGE_MARK for tag, _ in values)
        if not is_edge:
            return  # a triad whose closing edge does not exist
        u, v = edge
        support = 0
        for tag, apex in values:
            if tag == _TRIAD_MARK:
                support += 1
                # a closed triad is a triangle: credit the two wing edges
                yield (norm_edge(u, apex), 1)
                yield (norm_edge(v, apex), 1)
        yield (edge, support)

    return MapReduceJob("support", mapper, reducer)


def _sum_job() -> MapReduceJob:
    def mapper(edge, count):
        yield (edge, count)

    def reducer(edge, counts):
        yield (edge, sum(counts))

    return MapReduceJob("sum_support", mapper, reducer)


def _filter_job(k: int) -> MapReduceJob:
    def mapper(edge, support):
        yield (edge, support)

    def reducer(edge, supports):
        if sum(supports) >= k - 2:
            yield (None, edge)

    return MapReduceJob(f"filter_k{k}", mapper, reducer)


def k_truss_mr(
    runtime: LocalMRRuntime, edges: Iterable[Edge], k: int
) -> Tuple[Set[Edge], int]:
    """Compute the k-truss edge set; return it and the iteration count."""
    current: Set[Edge] = {norm_edge(u, v) for u, v in edges}
    iterations = 0
    while True:
        iterations += 1
        if not current:
            return current, iterations
        pairs: List[Tuple[None, Edge]] = [(None, e) for e in sorted(current)]
        data = runtime.run(_degrees_job(), pairs)
        data = runtime.run(_annotate_job(), data)
        data = runtime.run(_triads_job(), data)
        data = runtime.run(_support_job(), data)
        data = runtime.run(_sum_job(), data)
        kept_pairs = runtime.run(_filter_job(k), data)
        kept = {e for _none, e in kept_pairs}
        if kept == current:
            return kept, iterations
        current = kept


def truss_decomposition_mapreduce(
    g: Graph, runtime: Optional[LocalMRRuntime] = None
) -> TrussDecomposition:
    """Full decomposition by iterating k-truss MR jobs upward over k.

    This is intentionally the paper's strawman: every level restarts
    triangle counting from scratch, and every peeling cascade inside a
    level is another full pipeline pass.
    """
    runtime = runtime if runtime is not None else LocalMRRuntime()
    dstats = DecompositionStats(method="mapreduce")
    phi: Dict[Edge, int] = {}
    current: Set[Edge] = set(g.edges())
    k = 3
    while current:
        kept, iterations = k_truss_mr(runtime, current, k)
        dstats.bump("pipeline_iterations", iterations)
        for e in current - kept:
            phi[e] = k - 1
        current = kept
        k += 1
    dstats.record("mr_rounds", runtime.counters.rounds)
    dstats.record("shuffle_records", runtime.counters.shuffle_records)
    dstats.record("shuffle_bytes", runtime.counters.shuffle_bytes)
    return TrussDecomposition(phi, stats=dstats)
