"""Algorithm 3: LowerBounding — stage 1 of the bottom-up approach.

The stage streams the on-disk graph through memory-sized neighborhood
subgraphs.  For each partition block ``P_i`` it loads ``H = NS(P_i)``,
runs the in-memory Algorithm 2 *locally* on ``H``, and uses the local
trussness as a global lower bound (Lemma 1: ``phi(e, H) <= phi(e)``
because ``H`` is a subgraph).  Internal edges are then retired from the
shrinking graph: support-0 edges go straight to the 2-class, the rest
are appended to ``Gnew`` on disk, annotated with their lower bound.

One deviation from the paper's Step 8 as literally written: an internal
edge is emitted to ``Phi_2`` only when its measured support is 0 **and**
its recorded lower bound is still 2.  The measured support is exact only
w.r.t. the *current shrunken* graph; a triangle whose first edge was
retired in an earlier iteration is invisible to it.  The recorded bound
covers exactly that case: when the first edge of any triangle becomes
internal, all three triangle edges sit in the same ``H`` (their
endpoints are covered by the internal edge's block), so every edge that
was ever in a live triangle carries ``lb(e) >= 3`` by the time it is
itself retired.  The guard therefore restores the exact 2-class, which
is ``{e : sup(e, G) = 0}`` (level-3 peeling never cascades).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Set, Tuple

from repro.core.truss_improved import truss_decomposition_improved
from repro.exio.edgefile import DiskEdgeFile
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge
from repro.partition.base import Partitioner, PartitionSource, partition_with_escape
from repro.triangles.support import supports_within

INITIAL_LOWER_BOUND = 2
"""Every edge's trussness is at least 2 (Definition 2)."""


@dataclass
class LowerBoundResult:
    """Output of the LowerBounding stage."""

    phi2: List[Edge]
    gnew: DiskEdgeFile
    iterations: int = 0
    blocks_processed: int = 0
    max_subgraph_size: int = 0
    counters: Dict[str, float] = field(default_factory=dict)


def _read_bucket(
    buckets, index: int
) -> Tuple[Graph, Dict[Edge, int]]:
    """Load one distributed bucket: NS(P_i) plus stored bounds."""
    h = Graph()
    bounds: Dict[Edge, int] = {}
    for u, v, lb in buckets.read(index):
        h.add_edge(u, v)
        bounds[(u, v)] = lb
    return h, bounds


def lower_bounding(
    g_file: DiskEdgeFile,
    gnew_path: Path,
    budget: MemoryBudget,
    partitioner: Partitioner,
    stats: IOStats,
) -> LowerBoundResult:
    """Run Algorithm 3, draining ``g_file`` into ``Phi_2`` + ``Gnew``.

    ``g_file`` must carry the initial bound (2) in its attribute field
    (use :func:`prepare_input`); it is consumed — empty on return.
    Each iteration costs O(scan(|G|)) via one-pass bucket distribution,
    matching the paper's (= [13]'s) I/O bound of O((m/M) scan(|G|))
    over all iterations.
    """
    from repro.partition.distribute import distribute_edges

    workdir = gnew_path.parent / (gnew_path.name + ".buckets")
    gnew = DiskEdgeFile.from_records(gnew_path, [], stats)
    result = LowerBoundResult(phi2=[], gnew=gnew)
    capacity_boost = 1
    while not g_file.is_empty:
        result.iterations += 1
        source = PartitionSource.from_edge_file(g_file)
        blocks = partition_with_escape(
            partitioner, source, budget, boost=capacity_boost
        )
        block_of = {v: i for i, blk in enumerate(blocks) for v in blk}
        buckets = distribute_edges(
            g_file.scan(), block_of, len(blocks), workdir, stats,
            tag=f"lb{result.iterations}",
        )
        retired: Set[Edge] = set()
        updated_bounds: Dict[Edge, int] = {}
        for index, block in enumerate(blocks):
            block_set = set(block)
            h, bounds = _read_bucket(buckets, index)
            if h.num_edges == 0:
                continue
            result.blocks_processed += 1
            result.max_subgraph_size = max(result.max_subgraph_size, h.size)
            # Step 6: local truss decomposition of H (Algorithm 2)
            local = truss_decomposition_improved(h)
            # Step 7: lb(e) <- max(lb(e), phi(e, H)) for every edge of H
            new_bounds: Dict[Edge, int] = {}
            for e, lb in bounds.items():
                new_bounds[e] = max(lb, local.trussness[e])
            # Steps 8-10: retire internal edges
            sup = supports_within(h, block_set)
            emit: List[Tuple[int, int, int]] = []
            for e in sup:
                lb = new_bounds[e]
                if sup[e] == 0 and lb <= 2:
                    result.phi2.append(e)
                else:
                    emit.append((e[0], e[1], lb))
                retired.add(e)
                new_bounds.pop(e)
            gnew.append(emit)
            # external edges keep riding in G with their improved bound;
            # an edge straddling two blocks is external in both, so keep
            # the best bound either block derived for it
            for e, lb in new_bounds.items():
                if lb > updated_bounds.get(e, 0):
                    updated_bounds[e] = lb
        buckets.delete()
        if retired or updated_bounds:
            def transform(rec, dead=retired, upd=updated_bounds):
                e = (rec[0], rec[1])
                if e in dead:
                    return None
                lb = upd.get(e)
                return rec if lb is None else (rec[0], rec[1], lb)

            g_file.rewrite(transform)
        if not retired:
            # no block produced an internal edge: widen the blocks so the
            # next round is guaranteed to make progress eventually
            capacity_boost *= 2
        else:
            capacity_boost = 1
    result.counters["phi2_size"] = len(result.phi2)
    result.counters["gnew_size"] = len(gnew)
    return result


def prepare_input(
    g: Graph, path: Path, stats: IOStats
) -> DiskEdgeFile:
    """Spill an in-memory graph to the attributed edge-file format the
    external algorithms consume (initial lower bound on every edge)."""
    return DiskEdgeFile.from_edges(
        path, g.sorted_edges(), stats, attr=INITIAL_LOWER_BOUND
    )
