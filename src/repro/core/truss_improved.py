"""Algorithm 2: the paper's improved in-memory truss decomposition.

**TD-inmem+** differs from the baseline in two load-bearing ways:

1. edges live in a *bin-sorted edge array* keyed by current support
   (the edge analogue of the Batagelj–Zaversnik sorted degree array
   [5]), so "find the lowest-support edge" and "re-sort after a
   decrement" are O(1);
2. when edge ``(u, v)`` is removed, triangles are found by iterating
   the **lower-degree endpoint's** adjacency and testing membership of
   ``(v, w)`` in a hash table — Steps 6-8 — instead of intersecting both
   neighborhoods.

Theorem 1 shows the second change bounds total work by ``O(m^1.5)``:
a vertex has at most ``2·sqrt(m)`` neighbors of equal-or-higher degree.

The peeling produces the trussness of every edge: when the minimum
support in the array is ``s``, the current class is ``k = max(k, s+2)``
and the popped edge has ``phi(e) = k``.  Supports of surviving edges
are never decremented below the current floor ``s`` (they would be
popped at the same level regardless), which keeps the array ordered
and the level monotone.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge
from repro.triangles.listing import iter_triangles


class _EdgePeeler:
    """Bin-sorted edge array over current supports, with O(1) decrement."""

    def __init__(self, edges: List[Edge], sup: List[int]) -> None:
        m = len(edges)
        self.edges = edges
        self.sup = sup
        max_sup = max(sup, default=0)
        # bin_start[s] = first position of support-s edges in `order`
        counts = [0] * (max_sup + 2)
        for s in sup:
            counts[s + 1] += 1
        for s in range(1, max_sup + 2):
            counts[s] += counts[s - 1]
        self.bin_start = counts[:-1]
        self.order = [0] * m
        self.pos = [0] * m
        fill = self.bin_start.copy()
        for eid in range(m):
            s = sup[eid]
            self.pos[eid] = fill[s]
            self.order[self.pos[eid]] = eid
            fill[s] += 1

    def decrement(self, eid: int) -> None:
        """Move ``eid`` one support bucket down in O(1)."""
        s = self.sup[eid]
        first = self.bin_start[s]
        other = self.order[first]
        if other != eid:
            p = self.pos[eid]
            self.order[first], self.order[p] = eid, other
            self.pos[eid], self.pos[other] = first, p
        self.bin_start[s] += 1
        self.sup[eid] -= 1


def truss_decomposition_improved(g: Graph) -> TrussDecomposition:
    """Run Algorithm 2 on ``g`` (not modified); O(m^1.5) time."""
    # --- initialization: edge ids, supports, adjacency-with-ids --------
    edges: List[Edge] = []
    eid_of: Dict[Edge, int] = {}
    adj: Dict[int, Dict[int, int]] = {v: {} for v in g.vertices()}
    for u, v in g.edges():
        eid = len(edges)
        edges.append((u, v))
        eid_of[(u, v)] = eid
        adj[u][v] = eid
        adj[v][u] = eid
    m = len(edges)
    sup = [0] * m
    for a, b, c in iter_triangles(g):
        sup[eid_of[norm_edge(a, b)]] += 1
        sup[eid_of[norm_edge(a, c)]] += 1
        sup[eid_of[norm_edge(b, c)]] += 1

    peeler = _EdgePeeler(edges, sup)
    phi = [0] * m
    stats = DecompositionStats(method="improved")
    k = 2
    for i in range(m):
        eid = peeler.order[i]
        s = sup[eid]
        if s + 2 > k:
            k = s + 2
        phi[eid] = k
        u, v = edges[eid]
        # iterate the endpoint with the smaller *remaining* degree
        if len(adj[u]) > len(adj[v]):
            u, v = v, u
        adj_v = adj[v]
        for w, f_uw in adj[u].items():
            if w == v:
                continue
            f_vw = adj_v.get(w)
            if f_vw is None:
                continue
            # clamp: never push a support below the current floor s
            if sup[f_uw] > s:
                peeler.decrement(f_uw)
            if sup[f_vw] > s:
                peeler.decrement(f_vw)
        del adj[u][v]
        del adj[v][u]
    stats.record("kmax", k if m else 2)
    return TrussDecomposition(
        {edges[eid]: phi[eid] for eid in range(m)}, stats=stats
    )
