"""Truss hierarchy profiles: the fingerprinting application.

The paper's introduction positions k-trusses as "hierarchical subgraphs
that represent the cores of a network at different levels of
granularity", suitable for "visualization and fingerprinting of
large-scale networks" (the k-core analogue is [3]).  This module
computes that hierarchy: for every level ``k``, the size, density,
component count and clustering of ``T_k`` — a compact structural
signature that differs sharply between, say, a collaboration network
(deep, many plateaus) and a P2P network (shallow, collapses at k=4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.decomposition import TrussDecomposition
from repro.core.truss_improved import truss_decomposition_improved
from repro.cores.metrics import average_clustering, density
from repro.graph.adjacency import Graph
from repro.graph.components import num_connected_components


@dataclass(frozen=True)
class HierarchyLevel:
    """One row of the truss fingerprint: the shape of ``T_k``."""

    k: int
    num_vertices: int
    num_edges: int
    num_components: int
    density: float
    clustering: float


@dataclass(frozen=True)
class TrussHierarchy:
    """The full profile, ``k = 2 .. kmax``."""

    levels: List[HierarchyLevel]

    @property
    def kmax(self) -> int:
        """Deepest non-trivial level."""
        return self.levels[-1].k if self.levels else 2

    def level(self, k: int) -> Optional[HierarchyLevel]:
        """The row for one k (None outside the hierarchy)."""
        for row in self.levels:
            if row.k == k:
                return row
        return None

    def collapse_level(self) -> int:
        """First k at which T_k drops below half of T_2's edges.

        A crude but useful fingerprint scalar: hub-and-spoke networks
        collapse immediately (k=3), community-rich networks much later.
        """
        if not self.levels:
            return 2
        total = self.levels[0].num_edges
        for row in self.levels:
            if row.num_edges * 2 < total:
                return row.k
        return self.kmax + 1

    def signature(self) -> List[int]:
        """Edge counts per level — the comparable fingerprint vector."""
        return [row.num_edges for row in self.levels]


def truss_hierarchy(
    g: Graph, decomposition: Optional[TrussDecomposition] = None
) -> TrussHierarchy:
    """Compute the hierarchy profile of ``g`` (or of a ready result)."""
    td = decomposition if decomposition is not None else truss_decomposition_improved(g)
    levels: List[HierarchyLevel] = []
    for k in range(2, td.kmax + 1):
        tk = g.copy() if k == 2 else td.k_truss(k)
        if k == 2:
            tk.drop_isolated_vertices()
        levels.append(
            HierarchyLevel(
                k=k,
                num_vertices=tk.num_vertices,
                num_edges=tk.num_edges,
                num_components=num_connected_components(tk),
                density=density(tk),
                clustering=average_clustering(tk),
            )
        )
    return TrussHierarchy(levels=levels)
