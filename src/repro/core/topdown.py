"""Algorithm 7 + Procedures 8/10: top-down truss decomposition.

**TD-topdown** serves applications that only want the top-t classes —
the "heart" of the network.  Pipeline:

1. *Preparation* — exact external support counting over the full graph
   (:mod:`repro.triangles.external`) retires ``Phi_2`` and yields
   ``Gnew`` annotated with ``sup(e)``;
2. *UpperBounding* (Procedure 6) rewrites the annotation to
   ``psi(e) >= phi(e)``;
3. *Downward sweep* — for ``k`` from ``max psi`` down: extract
   ``H = NS(U_k)`` where ``U_k`` covers unclassified edges with
   ``psi >= k``; peel *candidates* (unclassified, ``psi >= k``) whose
   support inside the **valid subgraph** falls below ``k-2``; survivors
   are exactly ``Phi_k``; then conservatively prune ``Gnew``.

Two sharpenings relative to the paper's pseudo-code, both required for
correctness (Theorem 4's *statement*, made operational):

* **Valid-support restriction.**  Support for the level-``k`` peel only
  counts triangles whose other two edges are T_k-eligible: classified
  (hence ``phi > k``) or unclassified with ``psi >= k``.  Edges with
  ``psi < k`` are provably outside ``T_k`` and must not prop up a
  candidate (a high-support low-trussness edge — e.g. the spine of a
  book graph — would otherwise survive a level far above its class).
* **Candidate-only peeling.**  Already-classified edges inside ``H``
  are support *providers*, never peel targets; Procedure 8's Step 6
  ("remove any edge in T_j, j > k, and output the rest") is realized by
  keeping them out of the peel's target set.

The ``Gnew`` prune (Steps 7-9) removes a classified edge only when every
one of its remaining triangles consists of classified edges — checked
inside ``H`` where the edge is internal, hence against its complete
current triangle set.

The ``kinit`` fast-forward from Section 6.3 is implemented: when the
first candidate subgraph at ``k = max psi`` would be tiny, the sweep
instead starts at the smallest ``k`` whose estimated ``NS(U_k)`` still
fits in memory and classifies all levels ``>= kinit`` with one in-memory
decomposition.
"""

from __future__ import annotations

import tempfile
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.core.bottomup import ample_budget, peel_level
from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.truss_improved import truss_decomposition_improved
from repro.core.upperbound import upper_bounding
from repro.errors import DecompositionError
from repro.exio.edgefile import DiskEdgeFile
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.edges import Edge
from repro.graph.views import NeighborhoodSubgraph
from repro.partition.base import (
    Partitioner,
    PartitionSource,
    partition_with_escape,
)
from repro.partition.dominating import DominatingSetPartitioner
from repro.triangles.external import external_edge_supports

try:  # optional accelerator for the record->eid mapping
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def _choose_kinit(
    psi_file: DiskEdgeFile, budget: MemoryBudget, k1st: int
) -> int:
    """The smallest k whose estimated NS(U_k) fits the memory budget.

    Uses O(n) state: each vertex's degree and its best incident psi.
    Walking k downward, U_k grows; we stop before the estimate crosses
    the partition capacity.  Returns ``k1st`` when even that level's
    candidate overflows (the sweep then relies on Procedure 10).
    """
    degree: Dict[int, int] = {}
    best_psi: Dict[int, int] = {}
    for u, v, psi in psi_file.scan():
        for w in (u, v):
            degree[w] = degree.get(w, 0) + 1
            if psi > best_psi.get(w, 0):
                best_psi[w] = psi
    capacity = budget.partition_capacity()
    by_psi = sorted(best_psi, key=lambda v: -best_psi[v])
    weight = 0
    idx = 0
    kinit = k1st
    for k in range(k1st, 2, -1):
        while idx < len(by_psi) and best_psi[by_psi[idx]] >= k:
            weight += 1 + 2 * degree[by_psi[idx]]
            idx += 1
        if weight > capacity and k < k1st:
            break
        kinit = k
        if weight > capacity:
            break
    return kinit


def _psi_by_eid(h: CSRGraph, us: array, vs: array, ps: array) -> array:
    """Map scanned ``(u, v, psi)`` records onto H's canonical edge ids.

    The records are exactly H's edges, once each, in original vertex
    ids.  With numpy the mapping is one vectorized rank computation:
    compacted canonical keys ascend exactly in edge-id order, so each
    record's eid is its key's rank among the sorted keys.  The stdlib
    path binary-searches the CSR runs per record.
    """
    m = h.num_edges
    psi = array("q", [0]) * m
    if not m:
        return psi
    if _np is not None:
        lab = _np.asarray(h.labels, dtype=_np.int64)
        u = _np.frombuffer(us, dtype=_np.int64)
        v = _np.frombuffer(vs, dtype=_np.int64)
        # labels are sorted, so searchsorted IS the original->compact map
        cu = _np.searchsorted(lab, _np.minimum(u, v))
        cv = _np.searchsorted(lab, _np.maximum(u, v))
        key = cu * len(lab) + cv
        eid = _np.searchsorted(_np.sort(key), key)
        out = _np.zeros(m, dtype=_np.int64)
        out[eid] = _np.frombuffer(ps, dtype=_np.int64)
        return array("q", out.tobytes())
    for u, v, p in zip(us, vs, ps):
        psi[h.edge_id(h.compact_id(min(u, v)), h.compact_id(max(u, v)))] = p
    return psi


def _extract_candidate(
    gnew: DiskEdgeFile, classified: Dict[Edge, int], k: int
) -> Tuple[CSRGraph, array, Set[int]]:
    """Two scans: U_k, then H = NS(U_k) as a CSR snapshot.

    H is built straight from flat record buffers into
    :class:`~repro.graph.csr.CSRGraph` — no dict-of-set adjacency is
    ever constructed for the candidate subgraph — and ``psi`` comes
    back as a flat array indexed by H's canonical edge ids.
    """
    u_k: Set[int] = set()
    for u, v, psi in gnew.scan():
        if psi >= k and (u, v) not in classified:
            u_k.add(u)
            u_k.add(v)
    if not u_k:
        return CSRGraph(array("q", [0]), array("q"), []), array("q"), u_k
    us, vs, ps = array("q"), array("q"), array("q")
    for u, v, psi in gnew.scan():
        if u in u_k or v in u_k:
            us.append(u)
            vs.append(v)
            ps.append(psi)
    h = CSRGraph.from_edges(zip(us, vs))
    return h, _psi_by_eid(h, us, vs, ps), u_k


def _valid_subgraph(
    h: CSRGraph,
    psi: array,
    classified: Dict[Edge, int],
    k: int,
) -> Tuple[Graph, Set[Edge]]:
    """Restrict H to T_k-eligible edges; return it plus the candidates.

    The returned subgraph is a mutable :class:`Graph` — the level peel
    removes its edges one by one — but it is assembled in one pass over
    H's flat edge arrays, selecting by the eid-indexed ``psi``.
    """
    valid_edges: List[Edge] = []
    candidates: Set[Edge] = set()
    labels = h.labels
    eu, ev = h.edge_endpoints()
    for eid in range(h.num_edges):
        # labels ascend and eu < ev, so the key is canonical already
        e = (labels[eu[eid]], labels[ev[eid]])
        if e in classified:
            valid_edges.append(e)  # phi > k: a support provider
        elif psi[eid] >= k:
            valid_edges.append(e)
            candidates.add(e)
    return Graph(valid_edges), candidates


def _peel_candidates_partitioned(
    valid: Graph,
    candidates: Set[Edge],
    k: int,
    budget: MemoryBudget,
    partitioner: Partitioner,
) -> List[Edge]:
    """Procedure 10: block-local strict peeling iterated to fixpoint."""
    removed_all: List[Edge] = []
    live = set(candidates)
    capacity_boost = 1
    while True:
        source = PartitionSource.from_graph(valid)
        blocks = partition_with_escape(
            partitioner, source, budget, boost=capacity_boost
        )
        removed_round: List[Edge] = []
        for block in blocks:
            block_set = set(block)
            sub = Graph()
            for u in block:
                if not valid.has_vertex(u):
                    continue
                for w in valid.neighbors(u):
                    sub.add_edge(u, w)
            targets = {
                e
                for e in live
                if e[0] in block_set and e[1] in block_set and sub.has_edge(*e)
            }
            removed = peel_level(sub, targets, k, strict=True)
            for e in removed:
                valid.remove_edge(*e)
                live.discard(e)
            removed_round.extend(removed)
        if removed_round:
            removed_all.extend(removed_round)
            capacity_boost = 1
        elif len(blocks) <= 1:
            break
        else:
            capacity_boost *= 2
    return removed_all


def _prune_gnew(
    gnew: DiskEdgeFile,
    h: CSRGraph,
    u_k: Set[int],
    classified: Dict[Edge, int],
    stats: DecompositionStats,
) -> None:
    """Procedure 8 Steps 7-9: drop classified edges whose every triangle
    (in Gnew, visible in full inside H for internal edges) is fully
    classified — they can no longer influence any lower class.

    Triangles are found by merging H's sorted CSR adjacency runs — the
    dict-free analogue of the old ``common_neighbors`` set probes.
    """
    prunable: Set[Edge] = set()
    labels = h.labels
    eu, ev = h.edge_endpoints()
    for eid in range(h.num_edges):
        iu, iv = eu[eid], ev[eid]
        u, v = labels[iu], labels[iv]
        e = (u, v)
        if e not in classified:
            continue
        if u not in u_k or v not in u_k:
            continue  # not internal: triangle set incomplete, keep
        fully_classified = True
        run_u, run_v = h.neighbors(iu), h.neighbors(iv)
        i = j = 0
        while i < len(run_u) and j < len(run_v):
            a, b = run_u[i], run_v[j]
            if a < b:
                i += 1
            elif b < a:
                j += 1
            else:
                w = labels[a]
                f1 = (u, w) if u < w else (w, u)
                f2 = (v, w) if v < w else (w, v)
                if f1 not in classified or f2 not in classified:
                    fully_classified = False
                    break
                i += 1
                j += 1
        if fully_classified:
            prunable.add(e)
    if prunable:
        stats.bump("pruned_edges", len(prunable))
        gnew.rewrite(
            lambda rec: None if (rec[0], rec[1]) in prunable else rec
        )


def truss_decomposition_topdown(
    g: Graph,
    t: Optional[int] = None,
    budget: Optional[MemoryBudget] = None,
    partitioner: Optional[Partitioner] = None,
    workdir: Optional[Path] = None,
    stats: Optional[IOStats] = None,
    use_kinit: bool = True,
) -> TrussDecomposition:
    """Run TD-topdown; compute the top-``t`` classes (all when ``t=None``).

    With ``t`` set, the returned decomposition is *partial*: it contains
    exactly the edges of the top-t classes (``kmax >= k > kmax - t``).
    With ``t=None`` it matches the other algorithms edge-for-edge.
    """
    if t is not None and t < 1:
        raise DecompositionError(f"top-t needs t >= 1, got {t}")
    stats = stats if stats is not None else IOStats()
    partitioner = partitioner if partitioner is not None else DominatingSetPartitioner()
    budget = budget if budget is not None else ample_budget(g)
    dstats = DecompositionStats(method="topdown", io=stats)

    classified: Dict[Edge, int] = {}
    phi2: List[Edge] = []
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        tmp = Path(tmp)
        g_file = DiskEdgeFile.from_edges(tmp / "input.bin", g.sorted_edges(), stats)
        # Step 1: exact supports over the full graph; Phi_2 peels off free
        sup_records = []
        for u, v, sup in external_edge_supports(
            g_file, budget, partitioner, tmp / "supwork", stats
        ):
            if sup == 0:
                phi2.append((u, v))
            else:
                sup_records.append((u, v, sup))
        sup_file = DiskEdgeFile.from_records(tmp / "sup.bin", sup_records, stats)
        del sup_records
        # Step 2: psi(e) upper bounds
        gnew = upper_bounding(sup_file, tmp / "gnew.bin", budget, stats)
        sup_file.delete()
        g_file.delete()

        k1st = 0
        for _u, _v, psi in gnew.scan():
            k1st = max(k1st, psi)
        dstats.record("k1st", k1st)

        kmax_found: Optional[int] = None
        k = k1st
        first_round = True
        while k >= 3 and not gnew.is_empty:
            if (
                t is not None
                and kmax_found is not None
                and k <= kmax_found - t
            ):
                break
            if first_round and use_kinit:
                kinit = _choose_kinit(gnew, budget, k1st)
                if kinit < k:
                    dstats.record("kinit", kinit)
                    k = kinit
            h, psi_of, u_k = _extract_candidate(gnew, classified, k)
            if not u_k:
                remaining = [
                    psi
                    for u, v, psi in gnew.scan()
                    if (u, v) not in classified
                ]
                if not remaining:
                    break
                k = min(k - 1, max(remaining))
                continue
            dstats.bump("candidate_rounds")
            dstats.record(
                "max_candidate_size",
                max(dstats.extra.get("max_candidate_size", 0), h.size),
            )
            valid, candidates = _valid_subgraph(h, psi_of, classified, k)
            if first_round and use_kinit and budget.fits(valid.size):
                # fast-forward: one in-memory decomposition classifies
                # every class >= k at once (classes >= kinit are exact
                # because T_j's edges all carry psi >= j >= kinit)
                local = truss_decomposition_improved(valid)
                newly = {
                    e: j for e, j in local.trussness.items() if j >= k
                }
                for e, j in newly.items():
                    classified[e] = j
                if newly:
                    kmax_found = max(newly.values())
                    dstats.record("kmax", kmax_found)
                _prune_gnew(gnew, h, u_k, classified, dstats)
                first_round = False
                k -= 1
                continue
            first_round = False
            # Procedure 8 (in-memory) or 10 (partitioned)
            if budget.fits(valid.size):
                survivors = set(candidates)
                for e in peel_level(valid, set(candidates), k, strict=True):
                    survivors.discard(e)
            else:
                dstats.bump("procedure10_rounds")
                removed = _peel_candidates_partitioned(
                    valid, set(candidates), k, budget, partitioner
                )
                survivors = set(candidates) - set(removed)
            for e in survivors:
                classified[e] = k
            if survivors and kmax_found is None:
                kmax_found = k
                dstats.record("kmax", kmax_found)
            _prune_gnew(gnew, h, u_k, classified, dstats)
            k -= 1
        gnew.delete()

    phi: Dict[Edge, int] = dict(classified)
    if t is None:
        for e in phi2:
            phi[e] = 2
    else:
        kmax = kmax_found if kmax_found is not None else 2
        cutoff = kmax - t
        phi = {e: j for e, j in phi.items() if j > cutoff}
        if cutoff < 2:  # the top-t window reaches down to the 2-class
            for e in phi2:
                phi[e] = 2
    dstats.record("classified_edges", len(phi))
    return TrussDecomposition(phi, stats=dstats)
