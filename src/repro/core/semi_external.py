"""The naive "run the in-memory algorithm against disk" baseline.

Section 3.3: when the graph exceeds memory, Algorithms 1/2 "reveal that
random access to vertices and edges stored on disk is necessary, which
can incur prohibitively high I/O cost ... the removal of an edge may
trigger the removal of other edges and this propagating effect can
spread to random locations in the graph."

This module makes that argument measurable.  It runs Algorithm 2's
peeling semantics, but the adjacency lists live on disk and are fetched
on demand through a bounded LRU
:class:`~repro.exio.bufferpool.BufferPool` — the "semi-external"
setting (O(m) edge state in memory, graph structure on disk).  Every
cache miss is a block read; every non-sequential fetch is a seek.  The
ablation benchmark contrasts its I/O against TD-bottomup under the same
memory, which is the paper's whole case for designing scan-based
algorithms.

Both sides of the disk boundary are plain integer arrays keyed by the
CSR substrate now.  In memory: one integer of state per edge, indexed
by canonical edge id — supports from
:func:`repro.core.flat.initial_supports`, liveness as a bytearray
bitmap, ``phi`` as an ``array('q')``.  On disk: the spill is the CSR
adjacency itself — vertex ``i``'s record is its run of
``(neighbor compact id, canonical eid)`` int64 pairs at byte offset
``indptr[i] * 16``, written straight from ``CSRGraph.indices``/
``CSRGraph.eids`` — so reloads hand the peel both wing edge ids of
every triangle directly, with no hashed edge tuples, no per-record
vertex-id headers and no ``edge_id`` binary search on the hot path.
The peel loop's *I/O pattern* is untouched (two arbitrary-offset
fetches per removal, cascades landing anywhere), keeping the
random-access profile this baseline exists to measure.  Absolute block
counts are not comparable across this change, though: a record slot
widened from 8 bytes (neighbor id) to 16 (neighbor + eid), so each
fetch touches ~2x the pages of the old layout — the asserted
*orderings* against the scan-based methods are unaffected, only the
raw numbers shift.
"""

from __future__ import annotations

import struct
import tempfile
from array import array
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.flat import initial_supports
from repro.exio.blockfile import BlockWriter
from repro.exio.bufferpool import BufferPool
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph

#: one adjacency slot on disk: (neighbor compact id, canonical eid)
_PAIR = struct.Struct("<qq")


class _EidAdjacencySpill:
    """The CSR adjacency spilled/reloaded as flat eid-keyed int64 pairs.

    Spilling is one sequential pass over ``indices``/``eids`` (plain
    integer-array output, charged to the build's I/O stats); reloading
    vertex ``i`` is a single ``read_range`` of its run — the record
    offsets *are* ``indptr``, so no per-vertex offset dict exists.
    The returned run is sorted by neighbor id (CSR invariant), which
    is what lets the peel merge two runs instead of probing sets.
    """

    def __init__(self, csr: CSRGraph, path: Path, build_stats: IOStats) -> None:
        self.indptr = csr.indptr
        self.path = Path(path)
        self.pool: Optional[BufferPool] = None
        indices, eids = csr.indices, csr.eids
        with BlockWriter(self.path, build_stats) as w:
            for t in range(len(indices)):
                w.write(_PAIR.pack(indices[t], eids[t]))

    def fetch(self, i: int) -> List[Tuple[int, int]]:
        """Reload ``(neighbor, eid)`` pairs of compact vertex ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        blob = self.pool.read_range(lo * _PAIR.size, (hi - lo) * _PAIR.size)
        return list(_PAIR.iter_unpack(blob))


def truss_decomposition_semi_external(
    g: Graph,
    budget: Optional[MemoryBudget] = None,
    workdir: Optional[Path] = None,
    stats: Optional[IOStats] = None,
) -> TrussDecomposition:
    """Peel with on-disk adjacency and a memory-bounded page cache.

    The budget's unit count is converted to buffer-pool pages at one
    graph unit per stored word, mirroring how the same budget bounds the
    in-memory subgraphs of the external algorithms.  Results are
    identical to every other method; only the I/O profile differs —
    which is the measurement this baseline exists for.
    """
    stats = stats if stats is not None else IOStats()
    budget = budget if budget is not None else MemoryBudget(units=max(4, g.size))
    dstats = DecompositionStats(method="semi_external", io=stats)

    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        tmp = Path(tmp)
        # ---- Algorithm 2 semantics over disk-resident adjacency ----
        # in memory: one integer of state per edge (the semi-external
        # allowance), held in flat arrays indexed by canonical edge id;
        # on disk: the eid-keyed adjacency spill (the build's sequential
        # write is charged separately, like the old external-sort build)
        csr = CSRGraph.from_graph(g)
        m = csr.num_edges
        sup = initial_supports(csr)
        eu, ev = csr.edge_endpoints()
        labels = csr.labels
        alive = bytearray(b"\x01") * m
        phi = array("q", [0]) * m

        build_stats = IOStats(block_size=stats.block_size)
        adj = _EidAdjacencySpill(csr, tmp / "g.eadj", build_stats)
        # pages worth `budget` units of 8-byte words
        pages = max(1, (budget.units * 8) // stats.block_size)
        with BufferPool(adj.path, stats, capacity_pages=pages) as pool:
            adj.pool = pool
            remaining = m
            k = 2
            while remaining:
                threshold = k - 2
                queue = [
                    e for e in range(m)
                    if alive[e] and sup[e] <= threshold
                ]
                if not queue:
                    k += 1
                    continue
                while queue:
                    e = queue.pop()
                    if not alive[e]:
                        continue
                    alive[e] = 0
                    remaining -= 1
                    phi[e] = k
                    # the random-access step the paper warns about: both
                    # endpoints' runs fetched from arbitrary disk pages,
                    # for every single removal in the cascade
                    run_u = adj.fetch(eu[e])
                    run_v = adj.fetch(ev[e])
                    # merge the sorted runs; a common neighbor closes a
                    # triangle and both wing eids come off the records
                    i = j = 0
                    while i < len(run_u) and j < len(run_v):
                        wu, fu = run_u[i]
                        wv, fv = run_v[j]
                        if wu < wv:
                            i += 1
                            continue
                        if wv < wu:
                            j += 1
                            continue
                        i += 1
                        j += 1
                        # the triangle was live only if both wings are
                        # (disk runs never shrink; liveness is edge state)
                        if alive[fu] and alive[fv]:
                            for f in (fu, fv):
                                sup[f] -= 1
                                if sup[f] <= threshold:
                                    queue.append(f)
                k += 1
            dstats.record("buffer_hits", pool.hits)
            dstats.record("buffer_misses", pool.misses)
            dstats.record("buffer_hit_rate", pool.hit_rate)
    dstats.record("kmax", max(phi, default=2))
    # labels ascend and eu[e] < ev[e], so the keys are canonical already
    return TrussDecomposition.from_canonical(
        {(labels[eu[e]], labels[ev[e]]): phi[e] for e in range(m)},
        stats=dstats,
    )
