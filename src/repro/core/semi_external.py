"""The naive "run the in-memory algorithm against disk" baseline.

Section 3.3: when the graph exceeds memory, Algorithms 1/2 "reveal that
random access to vertices and edges stored on disk is necessary, which
can incur prohibitively high I/O cost ... the removal of an edge may
trigger the removal of other edges and this propagating effect can
spread to random locations in the graph."

This module makes that argument measurable.  It runs Algorithm 2's
peeling semantics, but the adjacency lists live in the on-disk
adjacency file and are fetched on demand through a bounded LRU
:class:`~repro.exio.bufferpool.BufferPool` — the "semi-external"
setting (O(m) edge state in memory, graph structure on disk).  Every
cache miss is a block read; every non-sequential fetch is a seek.  The
ablation benchmark contrasts its I/O against TD-bottomup under the same
memory, which is the paper's whole case for designing scan-based
algorithms.

The in-memory edge state lives entirely in flat integer arrays indexed
by canonical edge id — supports from
:func:`repro.core.flat.initial_supports` (merge-intersections, no
``set`` probe per edge), liveness as a bytearray bitmap, ``phi`` as an
``array('q')`` — and triangle wings are resolved through
:meth:`~repro.graph.csr.CSRGraph.edge_id` instead of hashed edge
tuples; labeled edges materialize only once, in the emitted trussness
map.  The peel loop's *I/O* is untouched, keeping the random-access
profile this baseline exists to measure.
"""

from __future__ import annotations

import struct
import tempfile
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.flat import initial_supports
from repro.exio.bufferpool import BufferPool
from repro.graph.csr import CSRGraph
from repro.exio.diskgraph import DiskAdjacencyGraph
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph

_HEADER = struct.Struct("<qq")
_ID = struct.Struct("<q")


class _DiskAdjacency:
    """Random-access neighbor lists over the adjacency file."""

    def __init__(self, disk: DiskAdjacencyGraph, pool: BufferPool) -> None:
        self.pool = pool
        # the offset index is O(n) memory — allowed in the semi-external
        # model (the paper's complaint is I/O, not index space)
        self.offsets: Dict[int, Tuple[int, int]] = {}
        offset = 0
        for v, nbrs in disk.scan():
            self.offsets[v] = (offset, len(nbrs))
            offset += _HEADER.size + len(nbrs) * _ID.size

    def neighbors(self, v: int) -> List[int]:
        """Fetch ``nb(v)`` from disk through the buffer pool."""
        offset, deg = self.offsets[v]
        blob = self.pool.read_range(
            offset + _HEADER.size, deg * _ID.size
        )
        return [x[0] for x in _ID.iter_unpack(blob)]


def truss_decomposition_semi_external(
    g: Graph,
    budget: Optional[MemoryBudget] = None,
    workdir: Optional[Path] = None,
    stats: Optional[IOStats] = None,
) -> TrussDecomposition:
    """Peel with on-disk adjacency and a memory-bounded page cache.

    The budget's unit count is converted to buffer-pool pages at one
    graph unit per stored word, mirroring how the same budget bounds the
    in-memory subgraphs of the external algorithms.  Results are
    identical to every other method; only the I/O profile differs —
    which is the measurement this baseline exists for.
    """
    stats = stats if stats is not None else IOStats()
    budget = budget if budget is not None else MemoryBudget(units=max(4, g.size))
    dstats = DecompositionStats(method="semi_external", io=stats)

    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        tmp = Path(tmp)
        build_stats = IOStats(block_size=stats.block_size)
        disk = DiskAdjacencyGraph.build_from_graph(
            g, tmp / "g.adj", build_stats, tmp / "work"
        )
        # pages worth `budget` units of 8-byte words
        pages = max(1, (budget.units * 8) // stats.block_size)
        with BufferPool(disk.path, stats, capacity_pages=pages) as pool:
            adj = _DiskAdjacency(disk, pool)

            # ---- Algorithm 2 semantics over disk-resident adjacency ----
            # in memory: one integer of state per edge (the semi-external
            # allowance), held in flat arrays indexed by canonical edge
            # id — no Dict[Edge, int] round trip; the adjacency structure
            # itself stays on disk
            csr = CSRGraph.from_graph(g)
            m = csr.num_edges
            sup = initial_supports(csr)
            eu, ev = csr.edge_endpoints()
            labels = csr.labels
            alive = bytearray(b"\x01") * m
            phi = array("q", [0]) * m

            remaining = m
            k = 2
            while remaining:
                threshold = k - 2
                queue = [
                    e for e in range(m)
                    if alive[e] and sup[e] <= threshold
                ]
                if not queue:
                    k += 1
                    continue
                while queue:
                    e = queue.pop()
                    if not alive[e]:
                        continue
                    alive[e] = 0
                    remaining -= 1
                    phi[e] = k
                    iu, iv = eu[e], ev[e]
                    u, v = labels[iu], labels[iv]
                    # the random-access step the paper warns about: both
                    # endpoints' lists fetched from arbitrary disk pages,
                    # for every single removal in the cascade
                    nu = adj.neighbors(u)
                    nv = set(adj.neighbors(v))
                    for w in nu:
                        if w not in nv:
                            continue
                        iw = csr.compact_id(w)
                        fu = csr.edge_id(iu, iw)
                        fv = csr.edge_id(iv, iw)
                        # the triangle was live only if both wings are
                        # (disk lists never shrink; liveness is edge state)
                        if alive[fu] and alive[fv]:
                            for f in (fu, fv):
                                sup[f] -= 1
                                if sup[f] <= threshold:
                                    queue.append(f)
                k += 1
            dstats.record("buffer_hits", pool.hits)
            dstats.record("buffer_misses", pool.misses)
            dstats.record("buffer_hit_rate", pool.hit_rate)
    dstats.record("kmax", max(phi, default=2))
    # labels ascend and eu[e] < ev[e], so the keys are canonical already
    return TrussDecomposition.from_canonical(
        {(labels[eu[e]], labels[ev[e]]): phi[e] for e in range(m)},
        stats=dstats,
    )
