"""The naive "run the in-memory algorithm against disk" baseline.

Section 3.3: when the graph exceeds memory, Algorithms 1/2 "reveal that
random access to vertices and edges stored on disk is necessary, which
can incur prohibitively high I/O cost ... the removal of an edge may
trigger the removal of other edges and this propagating effect can
spread to random locations in the graph."

This module makes that argument measurable.  It runs Algorithm 2's
peeling semantics, but the adjacency lists live in the on-disk
adjacency file and are fetched on demand through a bounded LRU
:class:`~repro.exio.bufferpool.BufferPool` — the "semi-external"
setting (O(m) edge state in memory, graph structure on disk).  Every
cache miss is a block read; every non-sequential fetch is a seek.  The
ablation benchmark contrasts its I/O against TD-bottomup under the same
memory, which is the paper's whole case for designing scan-based
algorithms.

Initial supports are the in-memory edge state, so they are computed
once over the flat CSR/edge-id substrate
(:func:`repro.core.flat.initial_supports` — merge-intersections, no
``set`` probe per edge) before the disk-resident peel begins; the peel
loop itself is untouched, keeping the random-access I/O profile that
this baseline exists to measure.
"""

from __future__ import annotations

import struct
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.decomposition import DecompositionStats, TrussDecomposition
from repro.core.flat import initial_supports
from repro.exio.bufferpool import BufferPool
from repro.graph.csr import CSRGraph
from repro.exio.diskgraph import DiskAdjacencyGraph
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget
from repro.graph.adjacency import Graph
from repro.graph.edges import Edge, norm_edge

_HEADER = struct.Struct("<qq")
_ID = struct.Struct("<q")


class _DiskAdjacency:
    """Random-access neighbor lists over the adjacency file."""

    def __init__(self, disk: DiskAdjacencyGraph, pool: BufferPool) -> None:
        self.pool = pool
        # the offset index is O(n) memory — allowed in the semi-external
        # model (the paper's complaint is I/O, not index space)
        self.offsets: Dict[int, Tuple[int, int]] = {}
        offset = 0
        for v, nbrs in disk.scan():
            self.offsets[v] = (offset, len(nbrs))
            offset += _HEADER.size + len(nbrs) * _ID.size

    def neighbors(self, v: int) -> List[int]:
        """Fetch ``nb(v)`` from disk through the buffer pool."""
        offset, deg = self.offsets[v]
        blob = self.pool.read_range(
            offset + _HEADER.size, deg * _ID.size
        )
        return [x[0] for x in _ID.iter_unpack(blob)]


def truss_decomposition_semi_external(
    g: Graph,
    budget: Optional[MemoryBudget] = None,
    workdir: Optional[Path] = None,
    stats: Optional[IOStats] = None,
) -> TrussDecomposition:
    """Peel with on-disk adjacency and a memory-bounded page cache.

    The budget's unit count is converted to buffer-pool pages at one
    graph unit per stored word, mirroring how the same budget bounds the
    in-memory subgraphs of the external algorithms.  Results are
    identical to every other method; only the I/O profile differs —
    which is the measurement this baseline exists for.
    """
    stats = stats if stats is not None else IOStats()
    budget = budget if budget is not None else MemoryBudget(units=max(4, g.size))
    dstats = DecompositionStats(method="semi_external", io=stats)

    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        tmp = Path(tmp)
        build_stats = IOStats(block_size=stats.block_size)
        disk = DiskAdjacencyGraph.build_from_graph(
            g, tmp / "g.adj", build_stats, tmp / "work"
        )
        # pages worth `budget` units of 8-byte words
        pages = max(1, (budget.units * 8) // stats.block_size)
        with BufferPool(disk.path, stats, capacity_pages=pages) as pool:
            adj = _DiskAdjacency(disk, pool)

            # ---- Algorithm 2 semantics over disk-resident adjacency ----
            # in memory: one integer of state per edge (the semi-external
            # allowance); the adjacency structure itself stays on disk.
            # That state is initialized over the flat CSR substrate —
            # one merge-intersection pass over canonical edge ids, not a
            # set(adj.neighbors(v)) probe per edge against the disk file
            csr = CSRGraph.from_graph(g)
            sup_flat = initial_supports(csr)
            eu, ev = csr.edge_endpoints()
            labels = csr.labels
            sup: Dict[Edge, int] = {
                (labels[eu[e]], labels[ev[e]]): sup_flat[e]
                for e in range(csr.num_edges)
            }

            phi: Dict[Edge, int] = {}
            remaining = set(sup)
            k = 2
            while remaining:
                threshold = k - 2
                queue = [e for e in remaining if sup[e] <= threshold]
                if not queue:
                    k += 1
                    continue
                while queue:
                    e = queue.pop()
                    if e not in remaining:
                        continue
                    u, v = e
                    remaining.discard(e)
                    phi[e] = k
                    # the random-access step the paper warns about: both
                    # endpoints' lists fetched from arbitrary disk pages,
                    # for every single removal in the cascade
                    nu = adj.neighbors(u)
                    nv = set(adj.neighbors(v))
                    for w in nu:
                        if w not in nv:
                            continue
                        fu = norm_edge(u, w)
                        fv = norm_edge(v, w)
                        # the triangle was live only if both wings are
                        # (disk lists never shrink; liveness is edge state)
                        if fu in remaining and fv in remaining:
                            for f in (fu, fv):
                                sup[f] -= 1
                                if sup[f] <= threshold:
                                    queue.append(f)
                    del sup[e]
                k += 1
            dstats.record("buffer_hits", pool.hits)
            dstats.record("buffer_misses", pool.misses)
            dstats.record("buffer_hit_rate", pool.hit_rate)
    dstats.record("kmax", max(phi.values(), default=2))
    return TrussDecomposition(phi, stats=dstats)
