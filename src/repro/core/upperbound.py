"""Procedure 6: UpperBounding — the top-down approach's pruning lever.

For an edge ``e = (u, v)`` with exact support ``sup(e)``, let ``x_w``
(for ``w ∈ {u, v}``) be the largest ``x`` such that at least ``x`` edges
incident to ``w``, *excluding e*, have support at least ``x`` — an
h-index over the incident support multiset.  Then

    psi(e) = min(sup(e), x_u, x_v) + 2

is an upper bound on the trussness (Lemma 2): were ``phi(e) > psi(e)``,
``e`` would sit in more than ``psi(e) - 2`` triangles of ``T_phi(e)``,
forcing ``sup(e)``, ``x_u`` and ``x_v`` all above ``psi(e) - 2``.

The bound is only valid when the supports are exact in the full graph,
which is why the top-down pipeline feeds this from
:func:`repro.triangles.external.external_edge_supports` rather than the
shrinking-graph pass (see that module's docstring).

Implementation note: rather than materializing ``NS(P_i)`` per block, we
compute per-vertex h-indexes in degree-bounded vertex batches (each
batch's incident-support lists fit in memory) and then rewrite the edge
file once.  The per-edge "excluding e" adjustment falls out of two
per-vertex numbers: the h-index ``h_v`` over *all* incident supports and
the count ``c_v`` of incident edges with support ``>= h_v`` — excluding
one edge with ``sup >= h_v`` lowers the h-index exactly when
``c_v == h_v``.  This computes the same ``x`` values as the paper's
per-edge definition with ``O(scan(|Gnew|) * ceil(2m/M))`` I/O and O(n)
vertex state.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.exio.edgefile import DiskEdgeFile
from repro.exio.iostats import IOStats
from repro.exio.memory import MemoryBudget


def h_index(values: Iterable[int]) -> int:
    """The h-index of a multiset: max x with >= x values >= x."""
    sorted_vals = sorted(values, reverse=True)
    h = 0
    for i, val in enumerate(sorted_vals):
        if val >= i + 1:
            h = i + 1
        else:
            break
    return h


def x_excluding(h: int, count_at_h: int, excluded_support: int) -> int:
    """The h-index after removing one element of the given support."""
    if excluded_support >= h and count_at_h == h:
        return h - 1
    return h


def _vertex_h_indexes(
    sup_file: DiskEdgeFile, budget: MemoryBudget
) -> Dict[int, Tuple[int, int]]:
    """Per-vertex ``(h, count_at_h)`` over incident edge supports.

    Vertices are processed in batches whose total incident-list length
    respects the memory budget; each batch costs one scan of the file.
    """
    degrees: Dict[int, int] = {}
    for u, v, _sup in sup_file.scan():
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    result: Dict[int, Tuple[int, int]] = {}
    capacity = budget.partition_capacity()
    batch: List[int] = []
    batch_load = 0

    def flush(batch_vertices: List[int]) -> None:
        if not batch_vertices:
            return
        wanted = set(batch_vertices)
        incident: Dict[int, List[int]] = {v: [] for v in batch_vertices}
        for u, v, sup in sup_file.scan():
            if u in wanted:
                incident[u].append(sup)
            if v in wanted:
                incident[v].append(sup)
        for v in batch_vertices:
            h = h_index(incident[v])
            c = sum(1 for s in incident[v] if s >= h)
            result[v] = (h, c)

    for v in sorted(degrees):
        if batch and batch_load + degrees[v] > capacity:
            flush(batch)
            batch, batch_load = [], 0
        batch.append(v)
        batch_load += degrees[v]
    flush(batch)
    return result


def upper_bounding(
    sup_file: DiskEdgeFile,
    out_path: Path,
    budget: MemoryBudget,
    stats: IOStats,
) -> DiskEdgeFile:
    """Turn a support-annotated edge file into a psi-annotated one.

    ``sup_file`` is left intact; the result file carries
    ``psi(e) = min(sup(e), x_u, x_v) + 2`` per edge.
    """
    hx = _vertex_h_indexes(sup_file, budget)

    def records() -> Iterable[Tuple[int, int, int]]:
        for u, v, sup in sup_file.scan():
            hu, cu = hx[u]
            hv, cv = hx[v]
            xu = x_excluding(hu, cu, sup)
            xv = x_excluding(hv, cv, sup)
            yield (u, v, min(sup, xu, xv) + 2)

    return DiskEdgeFile.from_records(out_path, records(), stats)
