"""The vectorized reference backend (the engines' original wave code).

This is the bit-identity baseline of the kernel registry: the gather
(`repro.core.flat._collect_hits_arrays` before the extraction) and
scatter count (``_count_decrements_arrays``), plus the frontier pop and
support/histogram commit the engines used to inline, moved here — not
rewritten.  Every other backend must reproduce these outputs bit for
bit (see the package doc for the contract).
"""

from __future__ import annotations

import numpy as _np

from repro.kernels import PeelKernel


class NumpyKernel(PeelKernel):
    """Vectorized wave step over the flat eid-indexed state arrays."""

    name = "numpy"

    def pop_frontier(self, sup, alive, phi, hist, frontier, k) -> None:
        if not len(frontier):
            return
        phi[frontier] = k
        _np.subtract.at(hist, sup[frontier], 1)
        alive[frontier] = False

    def gather_incident(self, tptr, tinc, edge_ids, tdead=None):
        if not len(edge_ids):
            return _np.zeros(0, dtype=_np.int64)
        edge_ids = _np.asarray(edge_ids, dtype=_np.int64)
        # asarray: tptr/tinc may be read-only mmaps (dist ranks, the
        # parallel pool's mmap index mode) — fancy indexing them
        # already yields plain ndarrays, this just pins the dtype
        starts = _np.asarray(tptr[edge_ids], dtype=_np.int64)
        cnt = _np.asarray(tptr[edge_ids + 1], dtype=_np.int64) - starts
        total = int(cnt.sum())
        if total == 0:
            return _np.zeros(0, dtype=_np.int64)
        ends = _np.cumsum(cnt)
        offs = _np.arange(total, dtype=_np.int64) - _np.repeat(
            ends - cnt, cnt
        )
        slots = _np.repeat(starts, cnt) + offs
        hit = _np.asarray(tinc[slots], dtype=_np.int64)
        if tdead is not None:
            hit = hit[~tdead[hit]]
        return _np.unique(hit)

    def count_decrements(
        self, e1, e2, e3, tris, alive, lo=None, hi=None, base=0
    ):
        empty = _np.zeros(0, dtype=_np.int64)
        if not len(tris):
            return empty, empty
        partners = _np.concatenate((e1[tris], e2[tris], e3[tris]))
        if lo is not None:
            partners = partners[(partners >= lo) & (partners < hi)]
        if base:
            partners = partners - base
        partners = partners[alive[partners]]
        if not partners.size:
            return empty, empty
        return _np.unique(partners, return_counts=True)

    def apply_decrements(self, sup, hist, touched, counts, k):
        if not len(touched):
            return _np.zeros(0, dtype=_np.int64)
        old = sup[touched]
        new = old - counts
        sup[touched] = new
        _np.subtract.at(hist, old, 1)
        _np.add.at(hist, new, 1)
        return touched[new <= k - 2]

    def merge_decrements(self, buffers):
        if len(buffers) == 1:
            return buffers[0]
        ids = _np.concatenate([b[0] for b in buffers])
        cnts = _np.concatenate([b[1] for b in buffers])
        touched, inv = _np.unique(ids, return_inverse=True)
        dec = _np.bincount(
            inv, weights=cnts, minlength=len(touched)
        ).astype(_np.int64)
        return touched, dec
