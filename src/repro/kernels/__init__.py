"""The pluggable peel-kernel layer: one wave inner step, every engine.

Every CSR peel engine — ``flat`` serial waves
(:func:`repro.core.flat.run_wave_peel`), the shared-memory ``parallel``
pool in both shard modes (:mod:`repro.core.parallel`) and the
rank-distributed ``dist`` peel (:meth:`repro.dist.rank.Rank.run`) —
executes the same bulk-synchronous wave inner step, the loop Kabir &
Madduri's PKT (arXiv:1707.02000) shows saturating shared-memory
hardware when it is a tight kernel.  This package owns that step behind
one interface, :class:`PeelKernel`, so a compiled backend dropped in
here speeds up all three engines simultaneously; no engine carries a
private gather/decrement implementation anymore.

The kernel contract
-------------------
A backend implements five operations over the flat eid-indexed peel
state the engines already share — the ``sup``/``alive``/``phi``/
``hist`` arrays plus the :class:`~repro.triangles.index_builder.
TriangleIndex` columns (``e1``/``e2``/``e3``/``tptr``/``tinc``, plain
ndarrays or read-only mmaps; a kernel must accept either):

* :meth:`~PeelKernel.pop_frontier` — pop a wave's frontier: set
  ``phi`` to the current level ``k``, debit the alive-support
  histogram at each popped edge's *current* support, clear ``alive``.
  ``frontier`` holds **array-local** indices (global edge id minus the
  slice's base offset), so the same call serves the global arrays
  (flat), a shared-memory view (parallel) and a rank-local shard
  slice (dist).  Must be a no-op on an empty frontier.
* :meth:`~PeelKernel.gather_incident` — the incidence gather: the
  sorted, deduplicated triangle ids incident to ``edge_ids`` (these
  are **global** edge ids indexing ``tptr``; callers add their ``lo``
  offset first).  With ``tdead`` given, triangles already marked dead
  are dropped — the *first-edge-wins* invariant: a triangle is
  destroyed exactly once, in the wave its first frontier edge pops,
  and only the survivor set is returned.  With ``tdead=None`` the raw
  deduped incidence is returned (the distributed peel defers liveness
  to each triangle's hash owner).
* :meth:`~PeelKernel.count_decrements` — the scatter count: for each
  destroyed triangle, its still-alive partner edges, as a sorted
  ``(touched, counts)`` decrement buffer.  ``lo``/``hi`` (when not
  ``None``) bound the caller's owned global edge-id range — partners
  outside it belong to another shard and are skipped; ``base`` is the
  array offset of the ``alive`` slice, and ``touched`` comes back
  array-local (global id minus ``base``).  Flat callers pass
  unbounded/offsetless; shard owners pass their plan bounds.
* :meth:`~PeelKernel.apply_decrements` — the support/histogram commit:
  ``sup[t] -= c`` for the buffer, histogram rows moved from the old to
  the new support value, returning the sub-frontier (touched edges at
  or below the wave floor ``k - 2``), sorted.  Supports here are
  *exact*, never clamped — the histogram floor scan depends on it.
* :meth:`~PeelKernel.merge_decrements` — fold per-partition decrement
  buffers into one (the dynamic-mode coordinator's reduction); the
  single-buffer case must pass through untouched.

Outputs are int64 and **sorted ascending, duplicate-free** wherever
the contract says so — engines searchsorted/route/split these arrays
and every backend must be bit-for-bit interchangeable: an admissible
backend produces, on every input, exactly the arrays the ``numpy``
reference backend produces (the cross-backend hypothesis sweep in
``tests/kernels/`` enforces this against the brute-force oracle, and
``kernel="numpy"`` is pinned as the bit-identity reference for the
pre-refactor engines).  A new backend registers a factory in
``_FACTORIES`` and passes that sweep; nothing else in the engines
needs to change.

Backends
--------
``python``
    Interpreted loops over the arrays' buffers using only stdlib
    operations (scratch state is ``dict``/``list``/``array``).  Always
    available; the portability baseline and the only backend with no
    numpy dependency of its own (the engines' index substrate still
    needs numpy, so this backend mostly serves as the admissibility
    reference and worst-case timing floor in ``BENCH_kernel.json``).
``numpy``
    The vectorized implementation the engines shipped with, moved here
    verbatim — the bit-identity reference and the default when numba
    is not installed.
``numba``
    Optional ``@njit``-compiled gather/scatter loops (auto-selected by
    ``kernel="auto"`` when importable).  Compiled lazily with
    ``cache=True`` so worker processes and ranks reuse the on-disk
    compilation cache instead of each paying the JIT warm-up;
    :func:`warmup_kernel` pre-compiles every entry point on arrays of
    the real dtypes.  Never required: every caller degrades to
    ``numpy`` (then ``python``) when the import fails.

Selection is threaded end to end as ``kernel="auto"|"python"|"numpy"|
"numba"`` through ``truss_decomposition``/``decompose_file``/the CLI's
``--kernel`` flag, mirroring ``--index-storage``; ``"auto"`` resolves
via :func:`resolve_kernel` to the best available backend.  The
follow-on the ROADMAP names — a cython/C extension — is one more
factory in this registry.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import DecompositionError

try:  # optional accelerator; the python backend works without it
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: every kernel name the knob accepts (besides ``"auto"``/``None``)
KERNELS = ("python", "numpy", "numba")

#: ``"auto"`` preference order: most-compiled first
_AUTO_ORDER = ("numba", "numpy", "python")


class PeelKernel:
    """The wave inner step: pop, gather, count, apply, merge.

    Array arguments follow the engines' flat eid-indexed layout (see
    the module doc for the full contract).  Backends are stateless —
    one shared instance per process serves every concurrent peel.
    """

    name = "abstract"

    def pop_frontier(self, sup, alive, phi, hist, frontier, k) -> None:
        """Pop ``frontier`` (array-local indices) at level ``k``."""
        raise NotImplementedError

    def gather_incident(self, tptr, tinc, edge_ids, tdead=None):
        """Sorted unique triangles incident to global ``edge_ids``."""
        raise NotImplementedError

    def count_decrements(
        self, e1, e2, e3, tris, alive, lo=None, hi=None, base=0
    ):
        """Sorted ``(touched, counts)`` for ``tris``'s live partners."""
        raise NotImplementedError

    def apply_decrements(self, sup, hist, touched, counts, k):
        """Commit a decrement buffer; return the sub-frontier."""
        raise NotImplementedError

    def merge_decrements(self, buffers):
        """Fold per-partition ``(touched, counts)`` buffers into one."""
        raise NotImplementedError


def _make_python() -> PeelKernel:
    from repro.kernels.python_backend import PythonKernel

    return PythonKernel()


def _make_numpy() -> PeelKernel:
    if _np is None:
        raise DecompositionError(
            "kernel 'numpy' needs numpy, which is not installed"
        )
    from repro.kernels.numpy_backend import NumpyKernel

    return NumpyKernel()


def _make_numba() -> PeelKernel:
    if _np is None:
        raise DecompositionError(
            "kernel 'numba' needs numpy, which is not installed"
        )
    try:
        from repro.kernels.numba_backend import NumbaKernel
    except ImportError as exc:
        raise DecompositionError(
            "kernel 'numba' needs the optional numba package, which is "
            f"not installed ({exc}); use kernel='auto' to fall back"
        ) from None
    return NumbaKernel()


_FACTORIES: Dict[str, Callable[[], PeelKernel]] = {
    "python": _make_python,
    "numpy": _make_numpy,
    "numba": _make_numba,
}

#: one stateless instance per backend per process
_INSTANCES: Dict[str, PeelKernel] = {}


def kernel_available(name: str) -> bool:
    """Whether backend ``name`` can be constructed in this process."""
    if name not in _FACTORIES:
        return False
    if name in _INSTANCES:
        return True
    try:
        _INSTANCES[name] = _FACTORIES[name]()
    except DecompositionError:
        return False
    return True


def available_kernels() -> Tuple[str, ...]:
    """The constructible backends, in registry order."""
    return tuple(name for name in KERNELS if kernel_available(name))


def resolve_kernel(kernel: Optional[str]) -> str:
    """Validate the kernel knob; ``None``/``"auto"`` picks the best.

    Shared by the flat, parallel and dist front doors so the accepted
    vocabulary (:data:`KERNELS`) can never drift between methods, just
    like :func:`repro.core.flat.resolve_index_storage` for the index.
    Raises :class:`~repro.errors.DecompositionError` for unknown names
    and for named backends that are not available (``"auto"`` never
    fails: the ``python`` backend always constructs).
    """
    if kernel is None or kernel == "auto":
        for name in _AUTO_ORDER:
            if kernel_available(name):
                return name
        return "python"  # pragma: no cover - python always constructs
    if kernel not in KERNELS:
        raise DecompositionError(
            f"unknown kernel {kernel!r}; expected one of "
            f"{('auto',) + KERNELS}"
        )
    if not kernel_available(kernel):
        # surface the factory's specific message (missing numpy/numba)
        _FACTORIES[kernel]()
        raise DecompositionError(  # pragma: no cover - factory raised
            f"kernel {kernel!r} is unavailable"
        )
    return kernel


def get_kernel(kernel: Optional[str] = None) -> PeelKernel:
    """The shared backend instance for ``kernel`` (default: auto)."""
    return _INSTANCES[resolve_kernel(kernel)]


__all__ = [
    "KERNELS",
    "PeelKernel",
    "available_kernels",
    "get_kernel",
    "kernel_available",
    "resolve_kernel",
]
