"""The interpreted stdlib backend: plain loops, no vectorization.

Always constructible — its only scratch state is ``dict``/``list``/
``array`` and it indexes whatever buffers it is handed one element at
a time, so it runs over numpy arrays, mmaps or ``array('q')`` alike.
It exists as the admissibility baseline (any input a compiled backend
mishandles can be replayed here) and as the worst-case timing floor
the kernel ablation records; outputs are converted to int64 ndarrays
when numpy is importable so engines can keep routing them through
``searchsorted``/``split`` without caring which backend ran.
"""

from __future__ import annotations

from array import array

from repro.kernels import PeelKernel

try:  # only used to shape outputs for the numpy-substrate engines
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def _out(values):
    """An int64 output buffer from a python list of ints."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


class PythonKernel(PeelKernel):
    """Interpreted wave step over the flat eid-indexed state arrays."""

    name = "python"

    def pop_frontier(self, sup, alive, phi, hist, frontier, k) -> None:
        for e in frontier:
            e = int(e)
            phi[e] = k
            hist[int(sup[e])] -= 1
            alive[e] = False

    def gather_incident(self, tptr, tinc, edge_ids, tdead=None):
        seen = set()
        for e in edge_ids:
            e = int(e)
            for slot in range(int(tptr[e]), int(tptr[e + 1])):
                t = int(tinc[slot])
                if tdead is not None and tdead[t]:
                    continue
                seen.add(t)
        return _out(sorted(seen))

    def count_decrements(
        self, e1, e2, e3, tris, alive, lo=None, hi=None, base=0
    ):
        counts = {}
        for t in tris:
            t = int(t)
            for col in (e1, e2, e3):
                p = int(col[t])
                if lo is not None and not lo <= p < hi:
                    continue
                p -= base
                if alive[p]:
                    counts[p] = counts.get(p, 0) + 1
        touched = sorted(counts)
        return _out(touched), _out([counts[p] for p in touched])

    def apply_decrements(self, sup, hist, touched, counts, k):
        floor = k - 2
        frontier = []
        for i in range(len(touched)):
            e = int(touched[i])
            old = int(sup[e])
            new = old - int(counts[i])
            sup[e] = new
            hist[old] -= 1
            hist[new] += 1
            if new <= floor:
                frontier.append(e)
        return _out(frontier)

    def merge_decrements(self, buffers):
        if len(buffers) == 1:
            return buffers[0]
        counts = {}
        for ids, cnts in buffers:
            for i in range(len(ids)):
                e = int(ids[i])
                counts[e] = counts.get(e, 0) + int(cnts[i])
        touched = sorted(counts)
        return _out(touched), _out([counts[e] for e in touched])
