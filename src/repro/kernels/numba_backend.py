"""Optional ``@njit``-compiled backend (import-gated; never required).

The four hot operations — frontier pop, incidence gather, partner
count, support/histogram commit — are nopython loops compiled with
``cache=True``, so the first process ever to run them pays the JIT
compile and every later process (pool workers, TCP rank processes, the
next benchmark run) loads the on-disk cache instead.  Construction
runs :meth:`NumbaKernel.warmup`, compiling every entry point on tiny
arrays of the real dtypes, so the first wave of a peel is never the
one that compiles.

``merge_decrements`` is inherited from the numpy reference backend:
it is the dynamic-mode coordinator's reduction, not a per-edge loop,
and keeping it shared is one less place for bit-identity to drift.

Outputs are bit-identical to :class:`~repro.kernels.numpy_backend.
NumpyKernel` by construction: gathers sort-then-dedupe (== ``np.
unique``), counts run-length-encode a sorted partner buffer (==
``np.unique(..., return_counts=True)``), and commits walk the sorted
buffer in order.
"""

from __future__ import annotations

import numpy as _np
from numba import njit

from repro.kernels.numpy_backend import NumpyKernel

_EMPTY_I64 = _np.zeros(0, dtype=_np.int64)
_EMPTY_BOOL = _np.zeros(0, dtype=_np.bool_)


@njit(cache=True)
def _pop(sup, alive, phi, hist, frontier, k):
    for i in range(frontier.size):
        e = frontier[i]
        phi[e] = k
        hist[sup[e]] -= 1
        alive[e] = False


@njit(cache=True)
def _dedupe_sorted(buf):
    """In-place dedupe of a sorted buffer; returns the unique prefix."""
    n = buf.size
    if n == 0:
        return buf
    w = 1
    for i in range(1, n):
        if buf[i] != buf[w - 1]:
            buf[w] = buf[i]
            w += 1
    return buf[:w]


@njit(cache=True)
def _gather(tptr, tinc, edge_ids, tdead, use_tdead):
    total = 0
    for i in range(edge_ids.size):
        e = edge_ids[i]
        total += tptr[e + 1] - tptr[e]
    buf = _np.empty(total, dtype=_np.int64)
    n = 0
    for i in range(edge_ids.size):
        e = edge_ids[i]
        for slot in range(tptr[e], tptr[e + 1]):
            t = tinc[slot]
            if use_tdead and tdead[t]:
                continue
            buf[n] = t
            n += 1
    buf = buf[:n]
    buf.sort()
    return _dedupe_sorted(buf)


@njit(cache=True)
def _count(e1, e2, e3, tris, alive, lo, hi, base, bounded):
    buf = _np.empty(3 * tris.size, dtype=_np.int64)
    n = 0
    for i in range(tris.size):
        t = tris[i]
        for j in range(3):
            if j == 0:
                p = e1[t]
            elif j == 1:
                p = e2[t]
            else:
                p = e3[t]
            if bounded and (p < lo or p >= hi):
                continue
            p -= base
            if alive[p]:
                buf[n] = p
                n += 1
    buf = buf[:n]
    buf.sort()
    if n == 0:
        return buf, buf
    touched = _np.empty(n, dtype=_np.int64)
    counts = _np.empty(n, dtype=_np.int64)
    w = 0
    touched[0] = buf[0]
    counts[0] = 1
    for i in range(1, n):
        if buf[i] == touched[w]:
            counts[w] += 1
        else:
            w += 1
            touched[w] = buf[i]
            counts[w] = 1
    return touched[:w + 1], counts[:w + 1]


@njit(cache=True)
def _apply(sup, hist, touched, counts, k):
    out = _np.empty(touched.size, dtype=_np.int64)
    floor = k - 2
    n = 0
    for i in range(touched.size):
        e = touched[i]
        old = sup[e]
        new = old - counts[i]
        sup[e] = new
        hist[old] -= 1
        hist[new] += 1
        if new <= floor:
            out[n] = e
            n += 1
    return out[:n]


class NumbaKernel(NumpyKernel):
    """JIT-compiled wave step over the flat eid-indexed state arrays."""

    name = "numba"

    def __init__(self) -> None:
        self.warmup()

    @staticmethod
    def warmup() -> None:
        """Compile (or load from cache) every entry point up front."""
        tptr = _np.zeros(2, dtype=_np.int64)
        ids = _np.zeros(1, dtype=_np.int64)
        flags = _np.ones(1, dtype=_np.bool_)
        _pop(
            _np.ones(1, dtype=_np.int64), flags.copy(),
            _np.zeros(1, dtype=_np.int64), _np.zeros(2, dtype=_np.int64),
            ids.copy(), 2,
        )
        _gather(tptr, _EMPTY_I64, ids.copy(), _EMPTY_BOOL, False)
        _count(
            ids, ids, ids, _EMPTY_I64, flags, 0, 1, 0, True
        )
        _apply(
            _np.ones(1, dtype=_np.int64), _np.zeros(2, dtype=_np.int64),
            _EMPTY_I64, _EMPTY_I64, 2,
        )

    def pop_frontier(self, sup, alive, phi, hist, frontier, k) -> None:
        _pop(
            _np.asarray(sup), _np.asarray(alive), _np.asarray(phi),
            _np.asarray(hist),
            _np.asarray(frontier, dtype=_np.int64), k,
        )

    def gather_incident(self, tptr, tinc, edge_ids, tdead=None):
        # asarray unwraps mmapped index columns to plain ndarray views
        # (no copy) so numba types them as ordinary arrays
        return _gather(
            _np.asarray(tptr), _np.asarray(tinc),
            _np.asarray(edge_ids, dtype=_np.int64),
            _EMPTY_BOOL if tdead is None else _np.asarray(tdead),
            tdead is not None,
        )

    def count_decrements(
        self, e1, e2, e3, tris, alive, lo=None, hi=None, base=0
    ):
        bounded = lo is not None
        return _count(
            _np.asarray(e1), _np.asarray(e2), _np.asarray(e3),
            _np.asarray(tris, dtype=_np.int64), _np.asarray(alive),
            lo if bounded else 0, hi if bounded else 0, base, bounded,
        )

    def apply_decrements(self, sup, hist, touched, counts, k):
        return _apply(
            _np.asarray(sup), _np.asarray(hist),
            _np.asarray(touched, dtype=_np.int64),
            _np.asarray(counts, dtype=_np.int64), k,
        )
