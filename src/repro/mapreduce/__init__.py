"""Local MapReduce runtime substrate (for the TD-MR baseline).

Public surface::

    LocalMRRuntime     map-shuffle-reduce executor with cost counters
    MapReduceJob       job description (mapper, reducer, combiner)
    MRCounters         rounds / records / shuffle-bytes metering
"""

from repro.mapreduce.engine import LocalMRRuntime, MapReduceJob, MRCounters

__all__ = ["LocalMRRuntime", "MapReduceJob", "MRCounters"]
