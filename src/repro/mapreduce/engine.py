"""A local MapReduce runtime with the cost counters the paper argues by.

The paper's external baseline, **TD-MR**, is Cohen's "graph twiddling"
truss algorithm expressed as MapReduce jobs [16].  Its problem is not
any single job but the *iteration*: truss peeling forces a fresh
triangle-count round every time edges drop, and MapReduce pays a full
shuffle per round.  To reproduce that argument without a cluster we run
the jobs in-process but meter exactly what a cluster would move:

* ``rounds``          — MR jobs executed (cluster job launches);
* ``map_records``     — records emitted by mappers;
* ``shuffle_records`` / ``shuffle_bytes`` — data crossing the shuffle;
* ``reduce_groups``   — distinct keys reduced.

The shuffle can optionally spill through :mod:`repro.exio` so block I/O
is accounted too; by default it sorts in memory (a 20-node cluster has
plenty of RAM — the *network* shuffle volume is what matters, and that
is metered either way).
"""

from __future__ import annotations

import itertools
import pickle
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exio.blockfile import BlockReader, BlockWriter, remove_if_exists
from repro.exio.iostats import IOStats

Pair = Tuple[Any, Any]
MapFn = Callable[[Any, Any], Iterable[Pair]]
ReduceFn = Callable[[Any, List[Any]], Iterable[Pair]]

_LEN = struct.Struct("<I")


@dataclass
class MRCounters:
    """Cumulative cost counters across all jobs run on one engine."""

    rounds: int = 0
    map_records: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    reduce_groups: int = 0
    reduce_records: int = 0

    def snapshot(self) -> "MRCounters":
        return MRCounters(**vars(self))

    def delta_since(self, earlier: "MRCounters") -> "MRCounters":
        return MRCounters(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )


def _estimate_bytes(value: Any) -> int:
    """Rough wire size of a key or value (ints, tuples, strings)."""
    if isinstance(value, tuple):
        return sum(_estimate_bytes(v) for v in value)
    if isinstance(value, (bytes, str)):
        return len(value)
    return 8


@dataclass
class MapReduceJob:
    """One job: a mapper, a reducer, and an optional combiner."""

    name: str
    mapper: MapFn
    reducer: ReduceFn
    combiner: Optional[ReduceFn] = None


class LocalMRRuntime:
    """Runs jobs over in-memory pair streams with full cost metering.

    With ``spill_dir`` set, every round *materializes* its shuffle data
    and its reduce output through the block-accounted file layer —
    Hadoop 0.20 (the paper's TD-MR platform) persists each job's output
    to HDFS and re-reads it for the next job, and that disk round-trip
    per iteration is a large part of why iterative algorithms suffer on
    MapReduce.  ``io_stats`` then carries block counts comparable with
    the external truss algorithms'.
    """

    def __init__(
        self,
        num_reducers: int = 4,
        spill_dir: Optional[Path] = None,
        io_stats: Optional[IOStats] = None,
    ) -> None:
        if num_reducers < 1:
            raise ValueError("need at least one reducer")
        self.num_reducers = num_reducers
        self.counters = MRCounters()
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.io_stats = io_stats if io_stats is not None else IOStats()
        self._spill_seq = itertools.count()
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _materialize(self, pairs: List[Pair], tag: str) -> List[Pair]:
        """Write pairs to a spill file and read them back, accounted."""
        if self.spill_dir is None:
            return pairs
        path = self.spill_dir / f"mr-{tag}-{next(self._spill_seq)}.spill"
        with BlockWriter(path, self.io_stats) as w:
            for pair in pairs:
                blob = pickle.dumps(pair, protocol=pickle.HIGHEST_PROTOCOL)
                w.write(_LEN.pack(len(blob)))
                w.write(blob)
        out: List[Pair] = []
        with BlockReader(path, self.io_stats) as r:
            while True:
                head = r.read_exactly(_LEN.size)
                if not head:
                    break
                (n,) = _LEN.unpack(head)
                out.append(pickle.loads(r.read_exactly(n)))
        remove_if_exists(path)
        return out

    # ------------------------------------------------------------------
    def run(self, job: MapReduceJob, pairs: Iterable[Pair]) -> List[Pair]:
        """Execute one map-shuffle-reduce round; return the output pairs."""
        self.counters.rounds += 1
        # map phase, hash-partitioned into reducer buckets
        buckets: List[Dict[Any, List[Any]]] = [
            {} for _ in range(self.num_reducers)
        ]
        for key, value in pairs:
            for out_key, out_value in job.mapper(key, value):
                self.counters.map_records += 1
                bucket = buckets[hash(out_key) % self.num_reducers]
                bucket.setdefault(out_key, []).append(out_value)
        # optional combiner (runs "map side", before the shuffle)
        if job.combiner is not None:
            for bucket in buckets:
                for key in list(bucket):
                    combined: List[Any] = []
                    for k, v in job.combiner(key, bucket[key]):
                        combined.append(v)
                    bucket[key] = combined
        # shuffle accounting: every post-combine record crosses the wire
        # (and, when spilling, the disk) before reducers see it
        shuffle_pairs: List[Pair] = []
        for bucket in buckets:
            for key, values in bucket.items():
                self.counters.shuffle_records += len(values)
                self.counters.shuffle_bytes += sum(
                    _estimate_bytes(key) + _estimate_bytes(v) for v in values
                )
                if self.spill_dir is not None:
                    shuffle_pairs.extend((key, v) for v in values)
        if self.spill_dir is not None:
            self._materialize(shuffle_pairs, "shuffle")
        # reduce phase, keys processed in sorted order per reducer
        output: List[Pair] = []
        for bucket in buckets:
            for key in sorted(bucket, key=repr):
                self.counters.reduce_groups += 1
                for out in job.reducer(key, bucket[key]):
                    self.counters.reduce_records += 1
                    output.append(out)
        # job output persists to the distributed filesystem and is read
        # back by the next job in the chain
        return self._materialize(output, "out")

    def chain(
        self, jobs: Iterable[MapReduceJob], pairs: Iterable[Pair]
    ) -> List[Pair]:
        """Run jobs back to back, feeding each the previous output."""
        data = list(pairs)
        for job in jobs:
            data = self.run(job, data)
        return data
